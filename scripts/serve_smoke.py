"""CI smoke test for the job service (see .github/workflows/ci.yml).

Boots a real ``repro serve`` server as a subprocess, then drives it
through the client exactly as a user would:

1. submit a cache-cold job and watch its SSE feed to completion;
2. assert its metrics are byte-identical to a direct engine run of the
   same spec (the end-to-end parity gate);
3. resubmit the same spec and assert it is answered from the cache
   (``cached: true``, state ``done`` immediately, no worker dispatch);
4. submit a longer job, send the server SIGTERM mid-job, and assert the
   graceful drain finishes the job before the process exits.

Exits non-zero on the first violated expectation.
"""

import json
import os
import signal
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.engine import ExperimentEngine, request  # noqa: E402
from repro.serve.client import Client  # noqa: E402

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "18546"))
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-serve-cache")


def fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_server() -> subprocess.Popen:
    env = dict(os.environ, REPRO_CACHE_DIR=CACHE_DIR,
               PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(PORT),
         "--shards", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    line = process.stdout.readline()
    if "listening" not in line:
        fail(f"server did not announce itself: {line!r}")
    print(line.strip())
    return process


def main() -> int:
    client = Client(f"127.0.0.1:{PORT}")
    spec = request("wc", "compcomm", items=96)

    server = start_server()
    try:
        # 1. cache-cold job, watched over SSE to completion
        cold = client.submit(spec)
        print(f"cold job {cold.job_id}: {cold.state}")
        if cold.cached:
            fail("first submission must not be cache-served "
                 "(stale cache dir?)")
        heartbeats = 0
        final = None
        for event, payload in client.watch(cold.job_id):
            if event == "heartbeat":
                heartbeats += 1
            elif event == "state":
                print(f"  -> {payload['state']}")
                final = payload
        if final is None or final["state"] != "done":
            fail(f"cold job did not complete: {final}")
        print(f"cold job done ({heartbeats} heartbeats)")

        # 2. parity: identical to a direct engine run (same cache dir,
        # so the direct run is served from the record the job stored)
        engine = ExperimentEngine(cache_dir=CACHE_DIR, progress=False)
        direct = engine.run(spec)
        if not direct.cache_hit:
            fail("direct run missed the cache the job populated")
        if json.dumps(final["result"], sort_keys=True) != \
                json.dumps(direct.to_dict(), sort_keys=True):
            fail("job result differs from the direct engine run")
        print(f"parity OK: {direct.cycles} cycles both ways")

        # 3. cache-hot resubmission: done immediately, cached, no worker
        before = client.health()["running_workers"]
        hot = client.submit(spec)
        if hot.state != "done" or not hot.cached:
            fail(f"hot submission not cache-served: "
                 f"state={hot.state} cached={hot.cached}")
        if client.health()["running_workers"] != before:
            fail("hot submission dispatched a worker")
        print(f"hot job {hot.job_id} cache-served")

        # 4. graceful drain: SIGTERM mid-job must finish the job
        long_job = client.submit(request("wc", "seq", items=3072))
        deadline = time.time() + 60
        while time.time() < deadline:
            if client.status(long_job.job_id).state == "running":
                break
            time.sleep(0.05)
        else:
            fail("long job never started running")
        server.send_signal(signal.SIGTERM)
        print(f"SIGTERM sent while {long_job.job_id} is running")
        if server.wait(timeout=180) != 0:
            fail(f"server exited non-zero: {server.returncode}")
        # the job's record survives in the cache: a fresh direct run of
        # the same spec must be a hit, proving the drain finished it
        drained = ExperimentEngine(cache_dir=CACHE_DIR, progress=False) \
            .run(request("wc", "seq", items=3072))
        if not drained.cache_hit:
            fail("drained job's result never reached the cache")
        print(f"graceful drain OK: job finished "
              f"({drained.cycles} cycles) before exit")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)

    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
