"""System-level tests: machine assembly, migration, SPL integration."""

import pytest

from repro.common.config import (SystemConfig, ooo1_cluster, ooo2_cluster,
                                 remap_cluster, remap_system)
from repro.common.errors import ConfigError, SimulationError
from repro.core.function import identity_function
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system import Machine, Workload


def _counting_program(n, out, tid=1):
    a = Asm(f"count{tid}")
    a.li("r1", 0)
    a.li("r2", n)
    a.label("loop")
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.li("r3", out)
    a.sw("r1", "r3", 0)
    a.halt()
    return a.assemble()


class TestMachineAssembly:
    def test_clusters_and_ports(self):
        machine = Machine(remap_system())
        assert len(machine.cores) == 8
        assert machine.clusters[0].controller is not None
        assert machine.clusters[1].controller is None
        for index in range(4):
            assert machine.cores[index].spl_port is not None
        for index in range(4, 8):
            assert machine.cores[index].spl_port is None

    def test_core_slot_lookup(self):
        machine = Machine(remap_system())
        cluster, slot = machine.core_slot(5)
        assert cluster.index == 1 and slot == 1
        with pytest.raises(ConfigError):
            machine.core_slot(99)

    def test_configure_spl_on_conventional_rejected(self):
        machine = Machine(remap_system())
        with pytest.raises(ConfigError):
            machine.configure_spl(5, 1, identity_function())

    def test_placement_validation(self):
        image = MemoryImage()
        program = _counting_program(5, image.alloc_zeroed(1))
        with pytest.raises(Exception):
            Workload("w", image, [ThreadSpec(program, 1),
                                  ThreadSpec(program, 2)],
                     placement=[0, 0])


class TestExecution:
    def test_two_threads_finish(self):
        image = MemoryImage()
        out_a = image.alloc_zeroed(1)
        out_b = image.alloc_zeroed(1)
        workload = Workload(
            "w", image,
            [ThreadSpec(_counting_program(50, out_a, 1), 1),
             ThreadSpec(_counting_program(80, out_b, 2), 2)],
            placement=[0, 1])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=100_000)
        assert machine.finished()
        assert machine.memory.read_word_signed(out_a) == 50
        assert machine.memory.read_word_signed(out_b) == 80
        assert machine.total_retired() > 0

    def test_run_until_predicate(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        workload = Workload("w", image,
                            [ThreadSpec(_counting_program(10_000, out), 1)],
                            placement=[0])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=1_000_000, until=lambda: machine.cycle >= 500)
        assert 500 <= machine.cycle < 600

    def test_cycle_limit_raises(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        workload = Workload("w", image,
                            [ThreadSpec(_counting_program(100_000, out), 1)],
                            placement=[0])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        with pytest.raises(SimulationError):
            machine.run(max_cycles=1_000)


class TestMigration:
    def test_migrate_preserves_state(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        workload = Workload("w", image,
                            [ThreadSpec(_counting_program(40_000, out), 1)],
                            placement=[0])
        machine = Machine(SystemConfig(
            clusters=[ooo1_cluster(), ooo2_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=2_000, until=lambda: machine.cycle >= 1_000)
        machine.migrate(1, dest_core=4)
        assert machine.thread_core[1] == 4
        machine.run(max_cycles=5_000_000)
        assert machine.memory.read_word_signed(out) == 40_000
        assert machine.stats.get("migrations") == 1

    def test_migrate_to_occupied_core_rejected(self):
        image = MemoryImage()
        out_a = image.alloc_zeroed(1)
        out_b = image.alloc_zeroed(1)
        workload = Workload(
            "w", image,
            [ThreadSpec(_counting_program(100_000, out_a, 1), 1),
             ThreadSpec(_counting_program(100_000, out_b, 2), 2)],
            placement=[0, 1])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        with pytest.raises(SimulationError):
            machine.migrate(1, dest_core=1)

    def test_migration_charges_switch_cycles(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        workload = Workload("w", image,
                            [ThreadSpec(_counting_program(10, out), 1)],
                            placement=[0])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=100_000)
        baseline = machine.cycle

        image2 = MemoryImage()
        out2 = image2.alloc_zeroed(1)
        workload2 = Workload("w2", image2,
                             [ThreadSpec(_counting_program(10, out2), 1)],
                             placement=[0])
        machine2 = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine2.load(workload2)
        machine2.run(max_cycles=1_000, until=lambda: machine2.cycle >= 20)
        machine2.migrate(1, dest_core=1)
        machine2.run(max_cycles=100_000)
        # The migrated run pays the drain + 500-cycle context switch.
        assert machine2.cycle >= baseline + 400


class TestSplIntegration:
    def test_switch_out_blocked_by_in_flight(self):
        """A consumer with fabric results in flight cannot be migrated
        until the data is delivered (Section II-B1)."""
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        producer = Asm("prod")
        producer.li("r1", 123)
        producer.spl_load("r1", 0)
        producer.spl_init(1)
        producer.halt()
        consumer = Asm("cons")
        consumer.spl_recv("r1")
        consumer.li("r2", out)
        consumer.sw("r1", "r2", 0)
        consumer.halt()
        workload = Workload(
            "w", image,
            [ThreadSpec(producer.assemble(), 1),
             ThreadSpec(consumer.assemble(), 2)],
            placement=[0, 1],
            setup=lambda m: m.configure_spl(0, 1, identity_function(),
                                            dest_thread=2))
        system = SystemConfig(clusters=[remap_cluster(), ooo1_cluster()])
        machine = Machine(system)
        machine.load(workload)
        machine.run(max_cycles=100_000)
        assert machine.memory.read_word_signed(out) == 123
