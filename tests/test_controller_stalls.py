"""Backpressure and stall paths of the SPL controller."""

import pytest

from repro.common.config import SplConfig, spl_config
from repro.common.errors import SplError
from repro.common.stats import Stats
from repro.core.controller import SplClusterController
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction, identity_function
from repro.core.tables import BarrierBus


def _controller(config=None):
    config = config or spl_config()
    bus = BarrierBus(config.barrier_bus_latency)
    controller = SplClusterController(0, config, bus, Stats("spl"))
    for slot in range(config.sharers):
        controller.table.set_thread(slot, slot + 1, app_id=1)
    return controller


def _drain(controller, cycles, start=0):
    for cycle in range(start, start + cycles):
        controller.tick(cycle)


class TestBackpressure:
    def test_input_queue_full_rejects_init(self):
        config = SplConfig(input_queue_entries=2)
        controller = _controller(config)
        controller.configure(0, 1, identity_function())
        port = controller.ports[0]
        accepted = 0
        for _ in range(4):  # no ticks: nothing drains
            port.stage_load(1, 0, 0)
            if port.init(1, 0):
                accepted += 1
        assert accepted == 2
        assert controller.stats.get("input_queue_full") == 2

    def test_inflight_cap_stalls_init(self):
        controller = _controller()
        controller.configure(0, 1, identity_function(), dest_thread=2)
        port = controller.ports[0]
        # Saturate the destination's 5-bit in-flight counter directly.
        from repro.core.tables import MAX_IN_FLIGHT
        for _ in range(MAX_IN_FLIGHT):
            assert controller.table.try_reserve(1)
        port.stage_load(1, 0, 0)
        assert not port.init(1, 0)
        assert controller.stats.get("inflight_cap_stalls") == 1

    def test_output_queue_backpressure_holds_results(self):
        """Results wait in the fabric when the output queue is full, and
        drain once the consumer pops (Section II-B1's on-demand queueing)."""
        config = SplConfig(output_queue_entries=1)  # 4 words
        controller = _controller(config)
        controller.configure(0, 1, identity_function())
        port = controller.ports[0]
        for i in range(8):
            port.stage_load(i, 0, 0)
            assert port.init(1, 0)
        _drain(controller, 400)
        assert controller.stats.get("output_queue_stalls") > 0
        # Pop everything; deliveries resume as space appears.
        values = []
        cycle = 400
        while len(values) < 8 and cycle < 2000:
            controller.tick(cycle)
            value = port.recv(cycle)
            if value is not None:
                values.append(value)
            cycle += 1
        assert values == list(range(8))

    def test_ready_gating_defers_issue(self):
        """A request whose spl_loadm data has not arrived cannot issue."""
        controller = _controller()
        controller.configure(0, 1, identity_function())
        port = controller.ports[0]
        port.stage_load(5, 0, 0, ready=1000)  # data lands at cycle 1000
        assert port.init(1, 0)
        _drain(controller, 900)
        assert port.recv(900) is None        # still waiting on the data
        _drain(controller, 200, start=900)
        assert port.recv(1100) == 5

    def test_repartition_with_results_in_flight_rejected(self):
        controller = _controller()
        controller.configure(0, 1, identity_function())
        controller.ports[0].stage_load(1, 0, 0)
        controller.ports[0].init(1, 0)
        _drain(controller, 8)  # issued but results still in the pipeline
        with pytest.raises(SplError):
            controller.set_partitions([12, 12], [0, 0, 1, 1])


class TestVirtualization:
    def _deep_function(self, name="deep"):
        """A ~32-row function: chain of multiplies."""
        g = Dfg(name)
        node = g.input("x", 0)
        for _ in range(8):
            node = g.op(DfgOp.MUL, node, g.const(1))
        g.output("o", node)
        return SplFunction(g)

    def test_virtualized_function_still_correct(self):
        fn = self._deep_function()
        assert fn.rows > 24  # must be virtualized on the full fabric
        controller = _controller()
        controller.configure(0, 1, fn)
        port = controller.ports[0]
        for value in (3, -7, 11):
            port.stage_load(value, 0, 0)
            assert port.init(1, 0)
        _drain(controller, 2000)
        assert [port.recv(2000) for _ in range(3)] == [3, -7, 11]

    def test_virtualization_lowers_throughput(self):
        """The same stream takes longer on a quarter partition."""
        def run(partitioned):
            fn = self._deep_function()
            controller = _controller()
            if partitioned:
                controller.set_partitions([6, 6, 6, 6], [0, 1, 2, 3])
            controller.configure(0, 1, fn)
            port = controller.ports[0]
            for value in range(6):
                port.stage_load(value, 0, 0)
                assert port.init(1, 0)
            cycle = 0
            received = 0
            while received < 6:
                controller.tick(cycle)
                if port.recv(cycle) is not None:
                    received += 1
                cycle += 1
                assert cycle < 50_000
            return cycle

        assert run(partitioned=True) > run(partitioned=False)


class TestMisuse:
    def test_barrier_flag_mismatch(self):
        from repro.core.controller import SplBinding
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            SplBinding(identity_function(), barrier_id=1)

    def test_config_id_out_of_range(self):
        from repro.common.errors import ConfigError
        controller = _controller()
        with pytest.raises(ConfigError):
            controller.configure(0, 999, identity_function())

    def test_barrier_arrival_without_thread(self):
        from repro.core.function import barrier_token_function
        controller = _controller()
        controller.barrier_bus.register(1, 1, (1, 2, 3, 4))
        controller.configure(0, 2, barrier_token_function(4), barrier_id=1)
        controller.table.set_thread(0, None)
        controller.ports[0].stage_load(0, 0, 0)
        with pytest.raises(SplError):
            controller.ports[0].init(2, 0)
