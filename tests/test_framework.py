"""Tests for the workload frameworks: base, sync backends, stream kernels,
the interpreter's SPL model, and RunSpec plumbing."""

import pytest

from repro.common.errors import WorkloadError
from repro.experiments.runner import RunResult, execute
from repro.isa import MemoryImage
from repro.workloads.base import (RunSpec, chunk_bounds,
                                  homogeneous_barrier_system, ooo2_system,
                                  remap_machine_system,
                                  require_power_of_two_threads, seq_system,
                                  spl_clusters_for_threads)
from repro.workloads.sync_backends import SyncBackend, make_backend


class TestChunking:
    def test_even_split(self):
        assert chunk_bounds(8, 4, 0) == (0, 2)
        assert chunk_bounds(8, 4, 3) == (6, 8)

    def test_remainder_goes_first(self):
        bounds = [chunk_bounds(10, 4, t) for t in range(4)]
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [3, 3, 2, 2]
        assert bounds[0][0] == 0 and bounds[-1][1] == 10

    def test_empty_chunks(self):
        bounds = [chunk_bounds(2, 8, t) for t in range(8)]
        assert sum(hi - lo for lo, hi in bounds) == 2
        assert all(hi >= lo for lo, hi in bounds)

    def test_coverage_no_overlap(self):
        for total, p in ((17, 4), (3, 8), (100, 16)):
            covered = []
            for t in range(p):
                lo, hi = chunk_bounds(total, p, t)
                covered.extend(range(lo, hi))
            assert covered == list(range(total))


class TestSystems:
    def test_presets(self):
        assert seq_system().n_cores == 4
        assert ooo2_system().clusters[0].core.name == "OOO2"
        assert remap_machine_system(3).n_cores == 12
        assert homogeneous_barrier_system(8).n_cores == 12  # 2 x 6 cores

    def test_cluster_math(self):
        assert spl_clusters_for_threads(1) == 1
        assert spl_clusters_for_threads(4) == 1
        assert spl_clusters_for_threads(5) == 2
        assert spl_clusters_for_threads(16) == 4

    def test_thread_count_validation(self):
        require_power_of_two_threads(8, "x")
        with pytest.raises(WorkloadError):
            require_power_of_two_threads(6, "x")

    def test_runspec_validation(self):
        from repro.system.workload import Workload
        from repro.isa import Asm, ThreadSpec
        a = Asm("t")
        a.halt()
        image = MemoryImage()
        workload = Workload("w", image,
                            [ThreadSpec(a.assemble(), 1)], placement=[0])
        with pytest.raises(WorkloadError):
            RunSpec("bad", workload, seq_system(), region_items=0)


class TestSyncBackends:
    def test_kinds(self):
        image = MemoryImage()
        for kind in ("sw", "spl", "net"):
            backend = make_backend(kind, 8, image)
            assert backend.system().n_cores >= 8
            cores, spl = backend.energy_fields()
            assert len(cores) >= 8
            if kind == "spl":
                assert spl
            else:
                assert not spl

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_backend("smoke", 4, MemoryImage())

    def test_net_charges_idle_cores(self):
        """The homogeneous baseline pays for all six cores per cluster."""
        backend = make_backend("net", 4, MemoryImage())
        cores, _ = backend.energy_fields()
        assert len(cores) == 6


class TestRunResultAccounting:
    def test_summary_fields(self):
        from repro.workloads import wc
        spec = wc.VARIANTS["seq"](items=32)
        result = execute(spec)
        assert isinstance(result, RunResult)
        summary = result.summary()
        assert set(summary) == {"cycles", "cycles_per_item", "energy_j",
                                "ed"}
        assert summary["cycles_per_item"] == \
            pytest.approx(result.cycles / 32)
        assert result.seconds > 0

    def test_energy_divisor_applies(self):
        from repro.workloads import g721
        spec = g721.spl_spec(items=6, copies=4)
        assert spec.energy_divisor == 4
        result = execute(spec)
        assert result.energy_joules == \
            pytest.approx(result.energy.total / 4)


class TestStreamFrameworkVariants:
    def test_all_variants_present(self):
        from repro.workloads.wc import VARIANTS
        assert set(VARIANTS) == {"seq", "seq_ooo2", "spl", "comm",
                                 "compcomm", "ooo2comm", "swqueue"}

    def test_stateful_kernels_get_private_partitions(self):
        """adpcm's fabric state forces per-thread function instances."""
        from repro.workloads import adpcm
        from repro.system.machine import Machine
        spec = adpcm.VARIANTS["spl"](items=16)
        machine = Machine(spec.system)
        machine.load(spec.workload)
        controller = machine.clusters[0].controller
        assert len(controller.partitions) == 4
        functions = {id(binding.function)
                     for binding in controller.bindings.values()}
        assert len(functions) == 4  # one instance per thread

    def test_stateless_kernels_share_one_function(self):
        from repro.workloads import twolf
        from repro.system.machine import Machine
        spec = twolf.VARIANTS["spl"](items=16)
        machine = Machine(spec.system)
        machine.load(spec.workload)
        controller = machine.clusters[0].controller
        functions = {id(binding.function)
                     for binding in controller.bindings.values()}
        assert len(functions) == 1
