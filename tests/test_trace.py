"""Tests for the pipeline tracer (an event-bus sink)."""

import pytest

from repro.common.config import SystemConfig, ooo1_cluster
from repro.cpu.trace import PipelineTracer
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system import Machine, Workload


def _counting_machine():
    image = MemoryImage()
    out = image.alloc_zeroed(1)
    a = Asm("t")
    a.li("r1", 0)
    a.li("r2", 20)
    a.label("loop")
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.li("r3", out)
    a.sw("r1", "r3", 0)
    a.halt()
    machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
    machine.load(Workload("t", image, [ThreadSpec(a.assemble(), 1)],
                          placement=[0]))
    return machine


def _machine_with_tracer(stages=None, limit=100_000):
    machine = _counting_machine()
    tracer = PipelineTracer(limit=limit, stages=stages)
    machine.obs.attach(tracer, kinds=tracer.kinds, sources={"cpu0"})
    machine.run(max_cycles=100_000)
    return machine, tracer


def test_records_all_stages():
    _, tracer = _machine_with_tracer()
    stages = {event.stage for event in tracer.events}
    assert {"fetch", "dispatch", "issue", "complete", "retire"} <= stages


def test_retire_count_matches_stats():
    machine, tracer = _machine_with_tracer()
    retired = machine.stats.find("cpu0").get("retired")
    assert len(tracer.of_stage("retire")) == retired


def test_stage_filter():
    _, tracer = _machine_with_tracer(stages=["retire"])
    assert tracer.events
    assert all(event.stage == "retire" for event in tracer.events)


def test_limit_and_dropped():
    _, tracer = _machine_with_tracer(limit=10)
    assert len(tracer.events) == 10
    assert tracer.dropped > 0
    assert "dropped" in tracer.render()


def test_render_format():
    _, tracer = _machine_with_tracer(stages=["retire"])
    text = tracer.render(last=5)
    assert "retire" in text and "cycle" in text


def test_clear():
    _, tracer = _machine_with_tracer()
    tracer.clear()
    assert not tracer.events and tracer.dropped == 0


def test_attach_tracer_compat_stub_warns_but_works():
    from repro.api.compat import attach_tracer
    machine = _counting_machine()
    with pytest.warns(DeprecationWarning):
        tracer = attach_tracer(machine.cores[0], stages=["retire"])
    machine.run(max_cycles=100_000)
    retired = machine.stats.find("cpu0").get("retired")
    assert len(tracer.of_stage("retire")) == retired


def test_mispredict_produces_flush_events():
    image = MemoryImage()
    values = [(i * 2654435761) % 31 - 15 for i in range(40)]
    arr = image.alloc_words(values)
    a = Asm("t")
    a.li("r1", arr)
    a.li("r2", 0)
    a.li("r3", len(values))
    a.li("r4", 0)
    a.label("loop")
    a.lw("r5", "r1", 0)
    skip = a.fresh_label("s")
    a.blt("r5", "r0", skip)
    a.addi("r4", "r4", 1)
    a.label(skip)
    a.addi("r1", "r1", 4)
    a.addi("r2", "r2", 1)
    a.blt("r2", "r3", "loop")
    a.halt()
    machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
    machine.load(Workload("t", image, [ThreadSpec(a.assemble(), 1)],
                          placement=[0]))
    tracer = PipelineTracer(stages=["flush"])
    machine.obs.attach(tracer, kinds=tracer.kinds, sources={"cpu0"})
    machine.run(max_cycles=100_000)
    assert tracer.of_stage("flush")
