"""Tests of the parallel experiment engine and its persistent cache."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.experiments.engine import (ExperimentBatchError, ExperimentEngine,
                                      ResultCache, SpecError, SpecRequest,
                                      build_spec, request)
from repro.experiments.runner import (RESULT_SCHEMA_VERSION, RunResult,
                                      execute)


def _engine(tmp_path=None, **kwargs):
    """An engine isolated from the user's real cache."""
    if tmp_path is None:
        return ExperimentEngine(use_cache=False, **kwargs)
    return ExperimentEngine(cache_dir=tmp_path / "cache", **kwargs)


class TestSpecRequest:
    def test_label_and_cache_key_stability(self):
        a = request("wc", "seq", items=32)
        b = request("wc", "seq", items=32)
        c = request("wc", "seq", items=64)
        assert a.label == "wc/seq"
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_param_order_irrelevant(self):
        a = request("hmmer", "seq", M=64, R=3)
        b = request("hmmer", "seq", R=3, M=64)
        assert a.cache_key() == b.cache_key()

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ConfigError):
            request("wc", "seq", items=[1, 2])

    def test_requests_are_picklable_and_hashable(self):
        import pickle
        req = request("wc", "seq", items=32)
        assert pickle.loads(pickle.dumps(req)) == req
        assert len({req, request("wc", "seq", items=32)}) == 1

    def test_build_spec_unknown_names(self):
        with pytest.raises(ConfigError):
            build_spec(SpecRequest(bench="nope", variant="seq"))
        with pytest.raises(ConfigError):
            build_spec(SpecRequest(bench="wc", variant="warp"))

    def test_build_spec_matches_direct_factory(self):
        from repro.workloads import wc
        built = build_spec(request("wc", "seq", items=32))
        direct = wc.VARIANTS["seq"](items=32)
        assert built.name == direct.name
        assert built.region_items == direct.region_items
        assert built.system == direct.system


class TestRoundTrip:
    def test_from_dict_to_dict_identity(self):
        result = execute(build_spec(request("wc", "seq", items=32)))
        record = result.to_dict()
        rebuilt = RunResult.from_dict(record)
        assert rebuilt.to_dict() == record
        assert rebuilt.spec is None
        # Every metric consumers use survives the trip.
        assert rebuilt.cycles == result.cycles
        assert rebuilt.cycles_per_item == result.cycles_per_item
        assert rebuilt.energy_joules == result.energy_joules
        assert rebuilt.energy_delay == result.energy_delay
        assert rebuilt.seconds == result.seconds
        assert rebuilt.counters == result.counters

    def test_schema_mismatch_rejected(self):
        result = execute(build_spec(request("wc", "seq", items=32)))
        record = result.to_dict()
        record["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ConfigError):
            RunResult.from_dict(record)

    def test_malformed_record_rejected(self):
        with pytest.raises(ConfigError):
            RunResult.from_dict({"schema": RESULT_SCHEMA_VERSION})


class TestCache:
    def test_hit_miss_determinism(self, tmp_path):
        req = request("wc", "seq", items=32)
        cold = _engine(tmp_path).run(req)
        assert not cold.cache_hit
        warm_engine = _engine(tmp_path)
        warm = warm_engine.run(req)
        assert warm.cache_hit
        assert warm_engine.simulated == 0
        assert warm_engine.cache_hits == 1
        assert warm.to_dict() == cold.to_dict()

    def test_different_params_miss(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run(request("wc", "seq", items=32))
        engine.run(request("wc", "seq", items=16))
        assert engine.simulated == 2
        assert engine.cache_hits == 0

    def test_duplicate_requests_simulate_once(self, tmp_path):
        engine = _engine(tmp_path)
        a, b = engine.run_batch([request("wc", "seq", items=32),
                                 request("wc", "seq", items=32)])
        assert engine.simulated == 1
        assert a.to_dict() == b.to_dict()

    def test_corrupt_entry_ignored(self, tmp_path):
        engine = _engine(tmp_path)
        req = request("wc", "seq", items=32)
        engine.run(req)
        cache = ResultCache(tmp_path / "cache")
        path = cache._path(req.cache_key())
        path.write_text("{not json")
        rerun_engine = _engine(tmp_path)
        result = rerun_engine.run(req)
        assert not result.cache_hit and rerun_engine.simulated == 1


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        reqs = [request("wc", "seq", items=16),
                request("wc", "compcomm", items=16),
                request("g721enc", "spl", items=8)]
        serial = _engine(jobs=1).run_batch(reqs)
        parallel = _engine(jobs=2).run_batch(reqs)
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in parallel]

    def test_parallel_fills_cache(self, tmp_path):
        reqs = [request("wc", "seq", items=16),
                request("wc", "compcomm", items=16)]
        _engine(tmp_path, jobs=2).run_batch(reqs)
        warm = _engine(tmp_path, jobs=2)
        results = warm.run_batch(reqs)
        assert warm.simulated == 0 and warm.cache_hits == 2
        assert all(r.cache_hit for r in results)


class TestErrors:
    def test_structured_error_without_killing_batch(self):
        engine = _engine(jobs=2)
        out = engine.run_batch([request("wc", "seq", items=16),
                                request("wc", "seq", items=-1),
                                request("wc", "compcomm", items=16)],
                               strict=False)
        assert isinstance(out[0], RunResult)
        assert isinstance(out[2], RunResult)
        error = out[1]
        assert isinstance(error, SpecError)
        assert error.exception_type == "WorkloadError"
        assert "region_items" in error.message
        assert error.request.params == (("items", -1),)
        assert "Traceback" in error.traceback_text
        assert engine.failed == 1 and engine.simulated == 2

    def test_strict_batch_raises_after_completion(self):
        engine = _engine()
        with pytest.raises(ExperimentBatchError) as exc_info:
            engine.run_batch([request("wc", "seq", items=16),
                              request("wc", "warp")])
        assert len(exc_info.value.errors) == 1
        # The healthy spec still ran before the raise.
        assert engine.simulated == 1

    def test_gather_raises_with_every_failure(self):
        engine = _engine()
        engine.submit(request("wc", "warp"), key="a")
        engine.submit(request("wc", "seq", items=-1), key="b")
        with pytest.raises(ExperimentBatchError) as exc_info:
            engine.gather()
        assert len(exc_info.value.errors) == 2


class TestSubmitGather:
    def test_keyed_results_in_submission_order(self):
        engine = _engine()
        engine.submit(request("wc", "seq", items=16), key=("wc", "seq"))
        engine.submit(request("wc", "compcomm", items=16),
                      key=("wc", "compcomm"))
        results = engine.gather()
        assert list(results) == [("wc", "seq"), ("wc", "compcomm")]
        assert results[("wc", "seq")].name == "wc/seq"
        # gather drains the queue.
        assert engine.gather() == {}

    def test_system_override_and_transform(self):
        from repro.experiments.ablations import _spl_system
        from repro.common.config import SplConfig
        system = _spl_system(dataclasses.replace(SplConfig(),
                                                 barrier_bus_latency=77))
        spec = build_spec(request("dijkstra", "barrier", n=16, p=4,
                                  system=system, name="dijkstra/bus77"))
        assert spec.name == "dijkstra/bus77"
        assert spec.system.clusters[0].spl.barrier_bus_latency == 77
        stripped = build_spec(request(
            "ll3", "barrier_comp", n=32, p=4, passes=2,
            transform="repro.experiments.ablations:strip_partitions"))
        result = execute(stripped)  # setup runs without set_partitions
        assert result.cycles > 0


class TestStudiesThroughEngine:
    def test_region_study_uses_engine(self, tmp_path):
        from repro.experiments.regions import run_region_study
        engine = _engine(tmp_path)
        study = run_region_study(["wc"], overrides={"wc": {"items": 32}},
                                 engine=engine)
        assert engine.simulated == len(study["wc"].runs)
        warm_engine = _engine(tmp_path)
        warm = run_region_study(["wc"], overrides={"wc": {"items": 32}},
                                engine=warm_engine)
        assert warm_engine.simulated == 0
        assert {k: r.to_dict() for k, r in study["wc"].runs.items()} == \
            {k: r.to_dict() for k, r in warm["wc"].runs.items()}

    def test_barrier_sweep_uses_engine(self):
        from repro.experiments.barriers import run_barrier_sweep
        engine = _engine()
        sweep = run_barrier_sweep("ll2", sizes=[16], thread_counts=(4,),
                                  engine=engine)
        assert set(sweep.runs) == {("seq", 0, 16), ("sw", 4, 16),
                                   ("barrier", 4, 16)}
        assert engine.simulated == 3


class TestLintCache:
    def test_verdict_persisted_and_reused(self, tmp_path):
        from repro.experiments.engine import LintCache
        req = request("wc", "seq", items=32)
        engine = _engine(tmp_path)
        engine.run(req)
        cache = LintCache(tmp_path / "cache")
        record = cache.load(req.cache_key())
        assert record == {"ok": True}
        # Drop the cached *result* so the warm engine must simulate
        # again, then poison lint_spec: the disk verdict must be trusted
        # instead of re-linting.
        ResultCache(tmp_path / "cache")._path(req.cache_key()).unlink()
        import repro.analysis as analysis

        def boom(*args, **kwargs):
            raise AssertionError("lint_spec re-ran despite cached verdict")

        original = analysis.lint_spec
        analysis.lint_spec = boom
        try:
            warm = _engine(tmp_path)
            result = warm.run(req)
        finally:
            analysis.lint_spec = original
        assert warm.simulated == 1 and result.cycles > 0

    def test_cached_failure_replays_without_relint(self, tmp_path):
        from repro.experiments.engine import LintCache
        req = request("wc", "seq", items=48)
        LintCache(tmp_path / "cache").store(
            req.cache_key(),
            ("error", "LintError", "static pre-flight found problems",
             "error[XXX999] test: seeded verdict"))
        engine = _engine(tmp_path)
        with pytest.raises(ExperimentBatchError) as excinfo:
            engine.run(req)
        (error,) = excinfo.value.errors
        assert error.exception_type == "LintError"
        assert "seeded verdict" in error.traceback_text

    def test_no_cache_engine_has_no_lint_cache(self):
        assert _engine().lint_cache is None
