"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_kwargs, build_parser, main


class TestParsing:
    def test_kwargs(self):
        assert _parse_kwargs(["M=64", "R=3"]) == {"M": 64, "R": 3}
        with pytest.raises(SystemExit):
            _parse_kwargs(["M"])

    def test_kwargs_typed_values(self):
        parsed = _parse_kwargs(["scale=0.5", "wide_core=true", "flip=False",
                                "bench=g721dec", "items=48"])
        assert parsed == {"scale": 0.5, "wide_core": True, "flip": False,
                          "bench": "g721dec", "items": 48}
        assert isinstance(parsed["items"], int)
        assert isinstance(parsed["scale"], float)

    def test_kwargs_error_names_the_pair(self):
        with pytest.raises(SystemExit, match="bogus"):
            _parse_kwargs(["bogus"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["table", "1"])
        assert args.number == 1
        args = parser.parse_args(["figure", "12", "--quick",
                                  "--bench", "ll3"])
        assert args.quick and args.benchmarks == ["ll3"]

    def test_engine_flags(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "10", "--jobs", "4",
                                  "--no-cache", "--cache-dir", "/tmp/x"])
        assert args.jobs == 4 and args.no_cache
        assert args.cache_dir == "/tmp/x"
        args = parser.parse_args(["run", "wc", "seq", "--jobs", "2"])
        assert args.jobs == 2 and not args.no_cache


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hmmer" in out and "dijkstra" in out

    def test_tables(self, capsys):
        for number in ("1", "2", "3"):
            assert main(["table", number]) == 0
        out = capsys.readouterr().out
        assert "0.51" in out and "MESI" in out and "P7Viterbi" in out

    def test_bad_table(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])

    def test_run_variant(self, capsys):
        assert main(["run", "wc", "compcomm", "--items", "items=48"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_run_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "nope", "seq"])

    def test_run_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["run", "wc", "warp"])

    def test_ablation_unknown(self):
        with pytest.raises(SystemExit):
            main(["ablation", "nope"])

    def test_ablation_sharing(self, capsys):
        assert main(["ablation", "sharing"]) == 0
        assert "sharers" in capsys.readouterr().out


def test_run_json_output(capsys):
    import json
    assert main(["run", "twolf", "seq", "--items", "items=16",
                 "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["name"] == "twolf/seq"
    assert record["results"]["cycles"] > 0
    assert "system" in record and record["system"]["clusters"]


# -- the exit-code convention --------------------------------------------------
#
# Every cmd_* handler returns an int exit code (0 ok, 1 failed gate,
# 2 usage); main() passes it through untouched.  The table is printed
# in --help.

def _handlers():
    import repro.cli as cli
    return sorted(name for name in vars(cli)
                  if name.startswith("cmd_"))


def test_every_handler_is_declared_to_return_int():
    import inspect

    import repro.cli as cli
    assert _handlers(), "no cmd_* handlers found"
    for name in _handlers():
        annotation = inspect.signature(
            getattr(cli, name)).return_annotation
        assert annotation in (int, "int"), \
            f"{name} must declare -> int (got {annotation!r})"


@pytest.mark.parametrize("argv", [
    ["list"],
    ["table", "1"],
    ["table", "2"],
    ["table", "3"],
    ["run", "wc", "seq", "--items", "items=16"],
    ["lint", "--bench", "wc"],
])
def test_cheap_commands_return_int_zero(argv, capsys):
    code = main(argv)
    assert isinstance(code, int) and code == 0
    capsys.readouterr()  # drain output so failures print cleanly


def test_help_epilog_documents_exit_codes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "exit codes:" in out
    assert "usage error" in out


def test_usage_errors_exit_2():
    with pytest.raises(SystemExit) as excinfo:
        main(["no-such-command"])
    assert excinfo.value.code == 2


def test_service_commands_parse():
    parser = build_parser()
    args = parser.parse_args(["serve", "--port", "0", "--shards", "4",
                              "--queue-limit", "8"])
    assert args.port == 0 and args.shards == 4 and args.queue_limit == 8
    args = parser.parse_args(["submit", "wc", "seq", "--items", "items=8",
                              "--tenant", "t", "--priority", "3",
                              "--watch"])
    assert args.tenant == "t" and args.priority == 3 and args.watch
    args = parser.parse_args(["status"])
    assert args.job_id is None
    args = parser.parse_args(["watch", "abc123", "--url", "host:1"])
    assert args.job_id == "abc123" and args.url == "host:1"
