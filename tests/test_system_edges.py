"""Edge-case system tests: cache inclusion, icache stalls, deadlocks,
memory-dependence blocking, and fetch robustness."""

import pytest

from repro.common.config import (CacheConfig, ClusterConfig, SystemConfig,
                                 ooo1_config, ooo1_cluster)
from repro.common.errors import DeadlockError
from repro.common.stats import Stats
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.mem.hierarchy import CoherentMemorySystem
from repro.system import Machine, Workload

import dataclasses


class TestInclusionAndEviction:
    def _tiny_system(self):
        """Caches small enough to force L2 evictions quickly."""
        core = ooo1_config()
        l1 = CacheConfig("L1D", 128, 2, 32, 2)    # 4 lines
        l2 = CacheConfig("L2", 256, 2, 32, 10)    # 8 lines
        core = dataclasses.replace(core, l1d=l1, l2=l2)
        system = SystemConfig(clusters=[ooo1_cluster()])
        return CoherentMemorySystem([(core.l1i, core.l1d, core.l2)],
                                    system, Stats("mem"))

    def test_l2_eviction_invalidates_l1(self):
        mem = self._tiny_system()
        cycle = 0
        # Touch many distinct lines mapping over the tiny L2.
        for i in range(32):
            cycle = mem.data_access(0, i * 32, True, cycle)
        port = mem.ports[0]
        # Inclusion: every line still tracked must be consistent, and
        # dirty evictions were recorded.
        assert port.stats.get("l2_writebacks") > 0
        for line in list(port.states):
            in_l2 = port.l2.contains(line)
            assert in_l2, "state tracked for a line evicted from L2"
        mem.check_invariants()

    def test_eviction_then_reload_misses(self):
        mem = self._tiny_system()
        cycle = mem.data_access(0, 0, False, 0)
        for i in range(1, 32):
            cycle = mem.data_access(0, i * 32, False, cycle)
        before = mem.ports[0].stats.get("l2_misses")
        mem.data_access(0, 0, False, cycle)
        assert mem.ports[0].stats.get("l2_misses") == before + 1


class TestIcacheBehaviour:
    def test_cold_fetch_stalls_then_warms(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", 0)
        a.li("r2", 200)
        a.label("loop")
        # A loop body spanning several 8-instruction fetch lines, so the
        # front end crosses line boundaries every iteration.
        for _ in range(14):
            a.addi("r4", "r4", 1)
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        a.li("r3", out)
        a.sw("r1", "r3", 0)
        a.halt()
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(Workload("t", image, [ThreadSpec(a.assemble(), 1)],
                              placement=[0]))
        machine.run(max_cycles=100_000)
        cpu = machine.stats.find("cpu0")
        mem = machine.stats.find("mem").find("core0")
        assert cpu.get("icache_stall_cycles") > 0   # cold misses
        assert mem.get("l1i_hits") > mem.get("l1i_misses")  # warm loop


class TestDeadlockDetection:
    def test_blocked_spl_recv_trips_watchdog(self):
        """A consumer waiting forever on an empty SPL queue retires
        nothing; the watchdog must convert that into DeadlockError."""
        from repro.common.config import remap_cluster
        from repro.core.function import identity_function
        a = Asm("t")
        a.spl_recv("r1")   # nobody ever sends
        a.halt()
        system = SystemConfig(clusters=[remap_cluster()],
                              deadlock_cycles=3_000)
        machine = Machine(system)
        machine.load(Workload(
            "t", MemoryImage(), [ThreadSpec(a.assemble(), 1)],
            placement=[0],
            setup=lambda m: m.configure_spl(0, 1, identity_function())))
        with pytest.raises(DeadlockError):
            machine.run(max_cycles=100_000)


class TestMemoryDependences:
    def test_load_blocked_by_unknown_store_address(self):
        """A load must not bypass an older store whose address resolves
        late to the same location."""
        image = MemoryImage()
        slot = image.alloc_words([111])
        out = image.alloc_zeroed(1)
        a = Asm("t")
        # The store's address depends on a long divide chain.
        a.li("r1", slot * 3)
        a.li("r2", 3)
        a.div("r1", "r1", "r2")     # r1 = slot, ready late
        a.li("r3", 222)
        a.sw("r3", "r1", 0)         # store to [slot], address late
        a.li("r4", slot)
        a.lw("r5", "r4", 0)         # younger load to the same address
        a.li("r6", out)
        a.sw("r5", "r6", 0)
        a.halt()
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(Workload("t", image, [ThreadSpec(a.assemble(), 1)],
                              placement=[0]))
        machine.run(max_cycles=100_000)
        assert machine.memory.read_word_signed(out) == 222

    def test_partial_overlap_blocks_until_store_retires(self):
        """A word load overlapping an older byte store gets the merged
        value (conservatively waiting out the store)."""
        image = MemoryImage()
        slot = image.alloc_words([0x11223344])
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", slot)
        a.li("r2", 0xAA)
        a.sb("r2", "r1", 1)     # byte store into the middle of the word
        a.lw("r3", "r1", 0)     # overlapping word load
        a.li("r4", out)
        a.sw("r3", "r4", 0)
        a.halt()
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(Workload("t", image, [ThreadSpec(a.assemble(), 1)],
                              placement=[0]))
        machine.run(max_cycles=100_000)
        assert machine.memory.read_word(out) == 0x1122AA44


class TestFetchRobustness:
    def test_program_without_trailing_halt_past_end(self):
        """Fetch runs off the end harmlessly until the HALT retires."""
        a = Asm("t")
        a.li("r1", 5)
        a.halt()
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(Workload("t", MemoryImage(),
                              [ThreadSpec(a.assemble(), 1)],
                              placement=[0]))
        machine.run(max_cycles=10_000)
        assert machine.finished()
