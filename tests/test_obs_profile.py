"""Cycle-accounting profiler: the accounting identity must hold exactly.

Property test across registry benches of different shapes (sequential,
barrier-synchronized SPL, producer/consumer SPL): every core-cycle of a
run lands in exactly one of {compute, spl_queue_stall, barrier_wait,
mem_stall, idle}, and the five buckets sum to the machine's total cycle
count for every core.
"""

import pytest

from repro.common.errors import SimulationError
from repro.obs import events as ev
from repro.obs.profile import CycleAccounting, ProfilerSink
from repro.system.machine import Machine
from repro.workloads import registry

_BENCHES = [
    ("wc", "seq", {"items": 8}),
    ("dijkstra", "barrier", {"n": 12, "p": 2}),
    ("hmmer", "compcomm", {"M": 48, "R": 2}),
]


def _profiled_run(bench, variant, params):
    spec = registry.REGISTRY[bench].variants[variant](**params)
    machine = Machine(spec.system)
    sink = ProfilerSink()
    machine.obs.attach(sink, kinds=ProfilerSink.KINDS)
    machine.load(spec.workload)
    machine.run(max_cycles=spec.max_cycles)
    machine.finish_observation()
    return machine, sink


@pytest.mark.parametrize("bench,variant,params", _BENCHES,
                         ids=[b for b, _, _ in _BENCHES])
def test_accounting_identity(bench, variant, params):
    machine, sink = _profiled_run(bench, variant, params)
    accounting = sink.accounting()  # verify=True raises on any leak
    assert accounting.total_cycles == machine.cycle
    for source in accounting.sources():
        row = accounting.row(source)
        assert sum(row.values()) == machine.cycle
        assert all(v >= 0 for v in row.values())
    # One row per core that ran.
    ran = {f"cpu{c.index}" for c in machine.cores
           if c.stats.get("cycles")}
    assert set(accounting.sources()) == ran


def test_barrier_workload_shows_barrier_wait():
    _machine, sink = _profiled_run("dijkstra", "barrier",
                                   {"n": 12, "p": 2})
    accounting = sink.accounting()
    total_barrier = sum(accounting.row(s)[ev.CLS_BARRIER]
                        for s in accounting.sources())
    assert total_barrier > 0


def test_sequential_workload_has_no_spl_stalls():
    _machine, sink = _profiled_run("wc", "seq", {"items": 8})
    accounting = sink.accounting()
    for source in accounting.sources():
        row = accounting.row(source)
        assert row[ev.CLS_SPL_QUEUE] == 0
        assert row[ev.CLS_BARRIER] == 0
        assert row[ev.CLS_COMPUTE] > 0


def test_verify_rejects_overcounted_spans():
    accounting = CycleAccounting(10, {"cpu0": {ev.CLS_COMPUTE: 12}})
    with pytest.raises(SimulationError):
        accounting.verify()


def test_rows_render_shape():
    accounting = CycleAccounting(10, {"cpu0": {ev.CLS_COMPUTE: 4,
                                               ev.CLS_MEM: 3}})
    (row,) = accounting.rows()
    assert row["core"] == "cpu0"
    assert row[ev.CLS_IDLE] == 3
    assert row["total"] == 10
    from repro.obs.render import render_profile
    text = render_profile(accounting)
    assert "cpu0" in text and "10" in text
