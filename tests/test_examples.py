"""Every shipped example must run end-to-end (their asserts self-verify)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", [
    "quickstart.py",
    "custom_accelerator.py",
    "heterogeneous_migration.py",
])
def test_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert "✓" in out or "verified" in out


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "hmmer_pipeline.py", "dijkstra_barriers.py",
            "custom_accelerator.py",
            "heterogeneous_migration.py"} <= names
