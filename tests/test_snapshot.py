"""Deterministic snapshot/restore equivalence (DESIGN.md §8).

The contract: pausing a run at any cycle, serializing the machine to
JSON, rebuilding a fresh machine from the same recipe, restoring, and
continuing must be *the same simulation* as never pausing — identical
final cycle, identical stats down to every counter, identical
cycle-accounting profile, and an identical Perfetto event multiset.
These tests sweep the benchmark registry at mid-run pause points plus
the adversarial states called out in the design: mid-SPL-staging,
mid-barrier-wait, and inside a fast-forward elision window.
"""

import json
import os

import pytest

from repro.common.config import (ENV_NO_CODEGEN, ENV_NO_FASTFORWARD,
                                 RunOptions, env_enabled)
from repro.common.errors import ConfigError
from repro.common.serialize import (decode_record, encode_record,
                                    registered_codecs)
from repro.experiments.engine import build_spec, request
from repro.obs.perfetto import PERFETTO_KINDS, PerfettoSink
from repro.obs.profile import ProfilerSink
from repro.system.machine import Machine
from repro.system.snapshot import (read_snapshot, restore_machine,
                                   resume_from_file, take_snapshot,
                                   write_snapshot)
from repro.workloads import registry

#: Small spec kwargs per benchmark (mirrors tests/test_fastforward.py).
_SMALL = {
    "g721enc": {"items": 10}, "g721dec": {"items": 10},
    "mpeg2enc": {"items": 6}, "mpeg2dec": {"items": 48},
    "gsmtoast": {"items": 32}, "gsmuntoast": {"items": 24},
    "libquantum": {"items": 8, "passes": 3}, "wc": {"items": 64},
    "unepic": {"items": 64}, "cjpeg": {"items": 64},
    "adpcm": {"items": 96}, "twolf": {"items": 64},
    "hmmer": {"M": 48, "R": 2}, "astar": {"items": 48},
}

_COMP_VARIANTS = ("seq", "seq_ooo2", "spl")
_COMM_VARIANTS = ("seq", "seq_ooo2", "spl", "comm", "compcomm", "ooo2comm",
                  "swqueue")

_BARRIER_CASES = [
    ("ll2", "barrier", {"n": 16, "passes": 2, "p": 4}),
    ("ll2", "hwbar", {"n": 16, "passes": 2, "p": 4}),
    ("ll3", "barrier", {"n": 64, "passes": 3, "p": 4}),
    ("ll3", "barrier_comp", {"n": 64, "passes": 3, "p": 8}),
    ("ll3", "hwbar", {"n": 64, "passes": 3, "p": 8}),
    ("ll6", "barrier", {"n": 16, "passes": 2, "p": 4}),
    ("dijkstra", "barrier", {"n": 20, "p": 16}),
    ("dijkstra", "barrier_comp", {"n": 16, "p": 8}),
    ("dijkstra", "hwbar", {"n": 16, "p": 4}),
]


def _registry_cases():
    cases = []
    for info in registry.computation_only():
        for variant in _COMP_VARIANTS:
            cases.append((info.name, variant, dict(_SMALL[info.name])))
    for info in registry.communicating():
        for variant in _COMM_VARIANTS:
            kwargs = dict(_SMALL[info.name])
            if info.name != "libquantum":
                kwargs.pop("passes", None)
            cases.append((info.name, variant, kwargs))
    return cases + _BARRIER_CASES


def _build(bench, variant, kwargs):
    # Workload images are consumed by execution: build a fresh machine
    # (and spec) per run.
    spec = registry.REGISTRY[bench].variants[variant](**kwargs)
    machine = Machine(spec.system)
    machine.load(spec.workload)
    return machine


def _roundtrip(machine):
    """Snapshot through an actual JSON string, as a file would."""
    return json.loads(json.dumps(machine.snapshot()))


def _restore(bench, variant, kwargs, state):
    machine = _build(bench, variant, kwargs)
    machine.restore(state)
    return machine


@pytest.mark.parametrize(
    "bench,variant,kwargs", _registry_cases(),
    ids=lambda v: v if isinstance(v, str) else "")
def test_restore_equals_uninterrupted(bench, variant, kwargs):
    """Every registry bench x variant: pause mid-run, snapshot, restore
    into a fresh machine, continue — same cycles, same stats tree."""
    full = _build(bench, variant, kwargs)
    total = full.run(options=RunOptions())
    if total < 4:
        pytest.skip("run too short to pause")
    paused = _build(bench, variant, kwargs)
    paused.run(options=RunOptions(pause_at=total // 2))
    assert paused.cycle == total // 2
    state = _roundtrip(paused)
    restored = _restore(bench, variant, kwargs, state)
    assert restored.cycle == total // 2
    assert restored.run(options=RunOptions()) == total
    assert restored.stats.as_dict() == full.stats.as_dict()
    assert restored.total_retired() == full.total_retired()


#: Observability subset: one case per hardware flavour is enough to cover
#: every span/emission path without repeating the whole sweep.
_OBSERVED_CASES = [
    ("g721dec", "seq", {"items": 10}),
    ("g721dec", "spl", {"items": 10}),
    ("adpcm", "compcomm", {"items": 96}),
    ("ll3", "barrier", {"n": 64, "passes": 3, "p": 4}),
    ("ll3", "hwbar", {"n": 64, "passes": 3, "p": 8}),
    ("dijkstra", "hwbar", {"n": 16, "p": 4}),
]


@pytest.mark.parametrize(
    "bench,variant,kwargs", _OBSERVED_CASES,
    ids=lambda v: v if isinstance(v, str) else "")
def test_restore_preserves_profile(bench, variant, kwargs):
    """Cycle-accounting rows are identical when the run is split by a
    snapshot: the paused half and the restored half feed one sink."""
    reference = ProfilerSink()
    full = _build(bench, variant, kwargs)
    full.obs.attach(reference, kinds=ProfilerSink.KINDS)
    full.run(options=RunOptions())
    full.finish_observation()
    total = full.cycle

    shared = ProfilerSink()
    paused = _build(bench, variant, kwargs)
    paused.obs.attach(shared, kinds=ProfilerSink.KINDS)
    paused.run(options=RunOptions(pause_at=total // 2))
    state = _roundtrip(paused)
    restored = _restore(bench, variant, kwargs, state)
    restored.obs.attach(shared, kinds=ProfilerSink.KINDS)
    assert restored.run(options=RunOptions()) == total
    restored.finish_observation()

    ref_acc = reference.accounting()
    split_acc = shared.accounting()
    assert split_acc.rows() == ref_acc.rows()
    assert split_acc.total_cycles == ref_acc.total_cycles


@pytest.mark.parametrize(
    "bench,variant,kwargs", _OBSERVED_CASES,
    ids=lambda v: v if isinstance(v, str) else "")
def test_restore_preserves_trace_events(bench, variant, kwargs):
    """The Perfetto event multiset is unchanged by a snapshot split."""
    def multiset(sink):
        return sorted(json.dumps(event, sort_keys=True)
                      for event in sink.trace_events)

    reference = PerfettoSink()
    full = _build(bench, variant, kwargs)
    full.obs.attach(reference, kinds=PERFETTO_KINDS)
    full.run(options=RunOptions())
    full.finish_observation()
    total = full.cycle

    shared = PerfettoSink()
    paused = _build(bench, variant, kwargs)
    paused.obs.attach(shared, kinds=PERFETTO_KINDS)
    paused.run(options=RunOptions(pause_at=total // 2))
    state = _roundtrip(paused)
    restored = _restore(bench, variant, kwargs, state)
    restored.obs.attach(shared, kinds=PERFETTO_KINDS)
    assert restored.run(options=RunOptions()) == total
    restored.finish_observation()
    assert multiset(shared) == multiset(reference)


# -- adversarial pause points ---------------------------------------------------


def _scan_for(bench, variant, kwargs, condition, start, stop, step):
    """Advance one machine through pause points until ``condition`` holds
    on its snapshot; returns (pause_cycle, json-round-tripped state)."""
    machine = _build(bench, variant, kwargs)
    for k in range(start, stop, step):
        machine.run(options=RunOptions(pause_at=k))
        if machine.cycle < k:
            break  # finished before the pause point
        state = _roundtrip(machine)
        if condition(state):
            return k, state
    pytest.fail(f"no pause point in [{start}, {stop}) satisfied the "
                f"condition for {bench}/{variant}")


def _continue_and_compare(bench, variant, kwargs, state):
    full = _build(bench, variant, kwargs)
    total = full.run(options=RunOptions())
    restored = _restore(bench, variant, kwargs, state)
    assert restored.run(options=RunOptions()) == total
    assert restored.stats.as_dict() == full.stats.as_dict()


def test_snapshot_mid_spl_staging():
    """Pause while a core has words staged toward the SPL fabric."""
    bench, variant, kwargs = "adpcm", "compcomm", {"items": 96}

    def staging_busy(state):
        return any(entry["valid"] != 0
                   for controller in state["controllers"]
                   for entry in controller.get("staging", ()))

    _, state = _scan_for(bench, variant, kwargs, staging_busy, 40, 2000, 7)
    _continue_and_compare(bench, variant, kwargs, state)


def test_snapshot_mid_barrier_wait():
    """Pause while some threads have arrived at an unreleased barrier."""
    bench, variant, kwargs = "ll3", "hwbar", {"n": 64, "passes": 3, "p": 8}

    def barrier_waiting(state):
        for controller in state["controllers"]:
            for _bid, participants, arrived in controller.get(
                    "barriers", ()):
                if arrived and len(arrived) < len(participants):
                    return True
        return False

    _, state = _scan_for(bench, variant, kwargs, barrier_waiting,
                         40, 4000, 11)
    _continue_and_compare(bench, variant, kwargs, state)


def test_snapshot_inside_elided_window():
    """Pause while the fast-forward scheduler has a core elided: the
    un-credited window must round-trip and be replayed after restore."""
    bench, variant, kwargs = "dijkstra", "hwbar", {"n": 16, "p": 4}

    def core_elided(state):
        return any(record["state"]["ff_skip_from"] >= 0
                   for record in state["cores"])

    _, state = _scan_for(bench, variant, kwargs, core_elided, 30, 4000, 13)
    _continue_and_compare(bench, variant, kwargs, state)


def test_snapshot_mid_multi_core_window():
    """Pause while multiple cores are mid-flight and the multi-core
    blockgen path has engaged: the pause lands on a fused-window
    boundary, and the un-snapshotted per-core backoff hints must not
    change the replay after restore."""
    bench, variant, kwargs = "ll3", "hwbar", {"n": 64, "passes": 3, "p": 8}
    machine = _build(bench, variant, kwargs)
    state = None
    for k in range(40, 4000, 11):
        machine.run(options=RunOptions(pause_at=k))
        if machine.cycle < k:
            break
        busy = sum(1 for core in machine.cores
                   if core.ctx is not None and not core.halted
                   and core.ff_skip_from < 0)
        if machine._bg_multi.windows and busy >= 2:
            state = _roundtrip(machine)
            break
    assert state is not None, \
        "never paused with a multi-core window behind us and >= 2 busy cores"
    _continue_and_compare(bench, variant, kwargs, state)


# -- snapshot files and provenance ----------------------------------------------


def test_snapshot_file_roundtrip_and_resume(tmp_path):
    req = request("g721dec", "seq", items=10)
    spec = build_spec(req)
    full = Machine(spec.system)
    full.load(spec.workload)
    total = full.run(options=RunOptions())

    spec2 = build_spec(req)
    paused = Machine(spec2.system)
    paused.load(spec2.workload)
    paused.run(options=RunOptions(pause_at=total // 2))
    path = tmp_path / "snap.json"
    write_snapshot(path, paused, req)

    payload = read_snapshot(path)
    assert payload["cycle"] == total // 2
    restored, rebuilt_spec = restore_machine(payload)
    assert rebuilt_spec.name == spec.name
    assert restored.cycle == total // 2
    assert restored.run(options=RunOptions()) == total
    assert restored.stats.as_dict() == full.stats.as_dict()

    machine, cycles = resume_from_file(path)
    assert cycles == total
    assert machine.total_retired() == full.total_retired()


def test_snapshot_without_recipe_refuses_rebuild(tmp_path):
    spec = registry.REGISTRY["g721dec"].variants["seq"](items=10)
    machine = Machine(spec.system)
    machine.load(spec.workload)
    machine.run(options=RunOptions(pause_at=50))
    path = tmp_path / "anon.json"
    write_snapshot(path, machine)  # no request: ad-hoc machine
    payload = read_snapshot(path)
    with pytest.raises(ConfigError):
        restore_machine(payload)


def test_restore_rejects_config_mismatch():
    machine = _build("g721dec", "seq", {"items": 10})
    machine.run(options=RunOptions(pause_at=50))
    state = _roundtrip(machine)
    other = _build("ll3", "hwbar", {"n": 64, "passes": 3, "p": 8})
    with pytest.raises(ConfigError):
        other.restore(state)


# -- RunOptions (the redesigned run surface) ------------------------------------


class TestRunOptions:
    def test_shim_equivalence(self):
        """Loose keywords and options= drive the same simulation."""
        a = _build("g721dec", "seq", {"items": 10})
        b = _build("g721dec", "seq", {"items": 10})
        assert a.run(max_cycles=1_000_000) == \
            b.run(options=RunOptions(max_cycles=1_000_000))
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_mixing_styles_is_an_error(self):
        machine = _build("g721dec", "seq", {"items": 10})
        with pytest.raises(ConfigError):
            machine.run(max_cycles=100, options=RunOptions())

    def test_validate(self):
        with pytest.raises(ConfigError):
            RunOptions(max_cycles=-1).validate()
        with pytest.raises(ConfigError):
            RunOptions(pause_at=-5).validate()

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_NO_FASTFORWARD, raising=False)
        monkeypatch.delenv(ENV_NO_CODEGEN, raising=False)
        resolved = RunOptions().resolve()
        assert resolved.fast_forward is True
        assert resolved.codegen is True
        monkeypatch.setenv(ENV_NO_FASTFORWARD, "1")
        assert RunOptions().resolve().fast_forward is False
        assert env_enabled(ENV_NO_FASTFORWARD) is False
        # An explicit setting wins over the environment.
        assert RunOptions(fast_forward=True).resolve().fast_forward is True

    def test_fingerprint_tracks_env(self, monkeypatch):
        monkeypatch.delenv(ENV_NO_FASTFORWARD, raising=False)
        base = RunOptions().resolve().fingerprint()
        assert base == {"fast_forward": True, "codegen": True,
                        "blockgen": True}
        monkeypatch.setenv(ENV_NO_FASTFORWARD, "1")
        assert RunOptions().resolve().fingerprint()["fast_forward"] is False

    def test_cache_key_includes_fingerprint(self, monkeypatch):
        monkeypatch.delenv(ENV_NO_FASTFORWARD, raising=False)
        req = request("g721dec", "seq", items=10)
        default_key = req.cache_key()
        monkeypatch.setenv(ENV_NO_FASTFORWARD, "1")
        assert req.cache_key() != default_key

    def test_pause_at_stops_exactly(self):
        machine = _build("g721dec", "seq", {"items": 10})
        assert machine.run(options=RunOptions(pause_at=123)) == 123
        assert machine.cycle == 123
        # Resuming the same machine finishes the run normally.
        final = machine.run(options=RunOptions())
        assert final > 123
        assert machine.finished()


# -- codec registry (unified serialization surface) -----------------------------


class TestCodecRegistry:
    def test_all_formats_registered(self):
        # Importing the owning modules registers their codecs.
        import repro.experiments.runner  # noqa: F401
        import repro.obs.metrics  # noqa: F401
        import repro.system.snapshot  # noqa: F401
        kinds = set(registered_codecs())
        assert {"system-config", "run-result", "metrics-snapshot",
                "machine-snapshot"} <= kinds

    def test_system_config_roundtrip(self):
        spec = registry.REGISTRY["g721dec"].variants["seq"](items=10)
        record = encode_record("system-config", spec.system)
        rebuilt = decode_record(json.loads(json.dumps(record)))
        assert rebuilt == spec.system

    def test_run_result_roundtrip(self):
        from repro.experiments.runner import execute
        spec = registry.REGISTRY["g721dec"].variants["seq"](items=10)
        result = execute(spec)
        record = encode_record("run-result", result)
        rebuilt = decode_record(json.loads(json.dumps(record)),
                                expect_kind="run-result")
        assert rebuilt.cycles == result.cycles
        assert rebuilt.counters == result.counters

    def test_version_mismatch_raises(self):
        spec = registry.REGISTRY["g721dec"].variants["seq"](items=10)
        record = encode_record("system-config", spec.system)
        record["schema"] += 1
        with pytest.raises(ConfigError):
            decode_record(record)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            decode_record({"kind": "no-such-format", "schema": 1,
                           "payload": {}})
        with pytest.raises(ConfigError):
            encode_record("no-such-format", {})

    def test_kind_mismatch_raises(self):
        spec = registry.REGISTRY["g721dec"].variants["seq"](items=10)
        record = encode_record("system-config", spec.system)
        with pytest.raises(ConfigError):
            decode_record(record, expect_kind="machine-snapshot")
