"""Integration tests of the out-of-order pipeline via small programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import SystemConfig, ooo1_cluster, ooo2_cluster
from repro.common.errors import DeadlockError, SimulationError
from repro.cpu.exec import alu, branch_taken
from repro.isa import Asm, MemoryImage, Op, ThreadSpec
from repro.system import Machine, Workload


def run_program(asm, image=None, regs=None, system=None, max_cycles=500_000):
    image = image or MemoryImage()
    workload = Workload("t", image,
                        [ThreadSpec(asm.assemble(), thread_id=1,
                                    int_regs=regs or {})],
                        placement=[0])
    machine = Machine(system or SystemConfig(clusters=[ooo1_cluster()]))
    machine.load(workload)
    cycles = machine.run(max_cycles=max_cycles)
    return machine, cycles


class TestArithmetic:
    def test_alu_chain(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", 10)
        a.li("r2", 3)
        a.mul("r3", "r1", "r2")     # 30
        a.div("r4", "r3", "r2")     # 10
        a.rem("r5", "r3", "r1")     # 0
        a.sub("r6", "r3", "r4")     # 20
        a.li("r7", out)
        a.sw("r6", "r7", 0)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(out) == 20

    def test_negative_division_truncates(self):
        image = MemoryImage()
        out = image.alloc_zeroed(2)
        a = Asm("t")
        a.li("r1", -7)
        a.li("r2", 2)
        a.div("r3", "r1", "r2")
        a.rem("r4", "r1", "r2")
        a.li("r5", out)
        a.sw("r3", "r5", 0)
        a.sw("r4", "r5", 4)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_words(out, 2) == [-3, -1]

    def test_shift_ops(self):
        image = MemoryImage()
        out = image.alloc_zeroed(3)
        a = Asm("t")
        a.li("r1", -8)
        a.srai("r2", "r1", 1)     # -4
        a.srli("r3", "r1", 28)    # 15
        a.slli("r4", "r1", 1)     # -16
        a.li("r5", out)
        a.sw("r2", "r5", 0)
        a.sw("r3", "r5", 4)
        a.sw("r4", "r5", 8)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_words(out, 3) == [-4, 15, -16]

    def test_fp_ops(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r9", out)
        a.fadd("f3", "f1", "f2")
        a.fmul("f4", "f3", "f3")
        a.fsw("f4", "r9", 0)
        a.fslt("r1", "f1", "f2")
        a.sw("r1", "r9", 0)  # overwrite: f1 < f2 -> 1
        a.halt()
        workload = Workload("t", image,
                            [ThreadSpec(a.assemble(), thread_id=1,
                                        fp_regs={"f1": 1.5, "f2": 2.5})],
                            placement=[0])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=100_000)
        assert machine.memory.read_word_signed(out) == 1


class TestMemoryOps:
    def test_store_to_load_forwarding(self):
        image = MemoryImage()
        buf = image.alloc_zeroed(1)
        out = image.alloc_zeroed(1)
        a = Asm("t")
        # A slow divide chain keeps the ROB head busy so the store cannot
        # retire before the load issues — the load must forward.
        a.li("r8", 1000)
        a.li("r9", 3)
        a.div("r8", "r8", "r9")
        a.div("r8", "r8", "r9")
        a.li("r1", buf)
        a.li("r2", 42)
        a.sw("r2", "r1", 0)
        a.lw("r3", "r1", 0)   # should forward 42
        a.li("r4", out)
        a.sw("r3", "r4", 0)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(out) == 42
        assert machine.stats.find("cpu0").get("load_forwards") >= 1

    def test_subword_loads(self):
        image = MemoryImage()
        src = image.alloc_words([0])
        image.write_word(src, 0x80FF7F01)
        out = image.alloc_zeroed(4)
        a = Asm("t")
        a.li("r1", src)
        a.li("r9", out)
        a.lb("r2", "r1", 1)    # 0x7F = 127
        a.lbu("r3", "r1", 3)   # 0x80 = 128
        a.lh("r4", "r1", 2)    # 0x80FF = -32513
        a.lhu("r5", "r1", 0)   # 0x7F01
        a.sw("r2", "r9", 0)
        a.sw("r3", "r9", 4)
        a.sw("r4", "r9", 8)
        a.sw("r5", "r9", 12)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_words(out, 4) == \
            [127, 128, -32513, 0x7F01]

    def test_amo_add_returns_old(self):
        image = MemoryImage()
        counter = image.alloc_words([10])
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", counter)
        a.li("r2", 5)
        a.amo_add("r3", "r1", "r2")
        a.li("r4", out)
        a.sw("r3", "r4", 0)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(out) == 10
        assert machine.memory.read_word_signed(counter) == 15

    def test_amo_atomicity_two_cores(self):
        image = MemoryImage()
        counter = image.alloc_words([0])
        n = 50

        def prog():
            a = Asm("inc")
            a.li("r1", counter)
            a.li("r2", 1)
            a.li("r3", 0)
            a.li("r4", n)
            a.label("loop")
            a.amo_add("r5", "r1", "r2")
            a.addi("r3", "r3", 1)
            a.blt("r3", "r4", "loop")
            a.halt()
            return a.assemble()

        workload = Workload("t", image,
                            [ThreadSpec(prog(), 1), ThreadSpec(prog(), 2)],
                            placement=[0, 1])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=500_000)
        assert machine.memory.read_word_signed(counter) == 2 * n

    def test_fence_waits_for_stores(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", out)
        a.li("r2", 9)
        a.sw("r2", "r1", 0)
        a.fence()
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(out) == 9


class TestControlFlow:
    def test_loop_and_branches(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", 0)
        a.li("r2", 100)
        a.li("r3", 0)
        a.label("loop")
        a.add("r3", "r3", "r1")
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        a.li("r4", out)
        a.sw("r3", "r4", 0)
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(out) == sum(range(100))

    def test_data_dependent_branches(self):
        """Unpredictable branches must still give correct results."""
        image = MemoryImage()
        values = [(i * 2654435761) % 97 - 48 for i in range(60)]
        arr = image.alloc_words(values)
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r1", arr)
        a.li("r2", 0)
        a.li("r3", len(values))
        a.li("r4", 0)
        a.label("loop")
        a.lw("r5", "r1", 0)
        skip = a.fresh_label("skip")
        a.blt("r5", "r0", skip)
        a.add("r4", "r4", "r5")   # only sum non-negatives
        a.label(skip)
        a.addi("r1", "r1", 4)
        a.addi("r2", "r2", 1)
        a.blt("r2", "r3", "loop")
        a.li("r6", out)
        a.sw("r4", "r6", 0)
        a.halt()
        machine, _ = run_program(a, image)
        expected = sum(v for v in values if v >= 0)
        assert machine.memory.read_word_signed(out) == expected
        assert machine.stats.find("cpu0").get("mispredicts") > 0

    def test_jal_jr_call_return(self):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("t")
        a.li("r10", 0)
        a.li("r11", 3)
        a.label("loop")
        a.jal("r31", "func")
        a.addi("r10", "r10", 1)
        a.blt("r10", "r11", "loop")
        a.li("r2", out)
        a.sw("r1", "r2", 0)
        a.halt()
        a.label("func")
        a.addi("r1", "r1", 7)
        a.jr("r31")
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(out) == 21

    def test_mispredict_recovery_no_sideeffects(self):
        """Wrong-path stores must never reach memory."""
        image = MemoryImage()
        guard = image.alloc_words([123])
        a = Asm("t")
        a.li("r1", guard)
        a.li("r2", 0)
        a.li("r3", 40)
        a.label("loop")
        a.addi("r2", "r2", 1)
        # taken until the very end: the final not-taken is mispredicted,
        # and the wrong-path would run into the store below.
        a.blt("r2", "r3", "loop")
        a.j("end")
        a.li("r4", 999)
        a.sw("r4", "r1", 0)
        a.label("end")
        a.halt()
        machine, _ = run_program(a, image)
        assert machine.memory.read_word_signed(guard) == 123


class TestWidths:
    def test_ooo2_faster_than_ooo1(self):
        def build():
            a = Asm("t")
            a.li("r1", 0)
            a.li("r2", 2000)
            a.li("r3", 0)
            a.li("r4", 0)
            a.label("loop")
            a.addi("r3", "r3", 1)
            a.addi("r4", "r4", 2)
            a.xor("r5", "r3", "r4")
            a.addi("r1", "r1", 1)
            a.blt("r1", "r2", "loop")
            a.halt()
            return a

        _, cycles1 = run_program(build())
        _, cycles2 = run_program(
            build(), system=SystemConfig(clusters=[ooo2_cluster()]))
        assert cycles2 < cycles1 * 0.65


class TestRobustness:
    def test_spl_op_without_port_raises(self):
        a = Asm("t")
        a.spl_init(1)
        a.halt()
        with pytest.raises(SimulationError):
            run_program(a)

    def test_deadlock_detected(self):
        a = Asm("t")
        a.li("r1", 0x8000)
        a.li("r2", 1)
        a.label("spin")          # spin on a flag nobody sets...
        a.lw("r3", "r1", 0)
        a.bne("r3", "r2", "spin")
        a.halt()
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()],
                                       deadlock_cycles=5_000))
        workload = Workload("t", MemoryImage(),
                            [ThreadSpec(a.assemble(), 1)], placement=[0])
        machine.load(workload)
        # The spinner retires instructions, so this is NOT a deadlock: it
        # must hit the cycle limit instead.
        with pytest.raises(SimulationError):
            machine.run(max_cycles=20_000)


SAFE_OPS = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLT, Op.SLTU, Op.MUL]


class TestRandomPrograms:
    @given(st.lists(
        st.tuples(st.sampled_from(SAFE_OPS), st.integers(1, 7),
                  st.integers(1, 7), st.integers(1, 7)),
        min_size=1, max_size=30),
        st.lists(st.integers(-1000, 1000), min_size=7, max_size=7))
    @settings(max_examples=20, deadline=None)
    def test_straightline_matches_interpreter(self, ops, init):
        """Random straight-line ALU programs match direct evaluation."""
        regs = {f"r{i + 1}": value for i, value in enumerate(init)}
        image = MemoryImage()
        out = image.alloc_zeroed(7)
        a = Asm("rand")
        for op, rd, rs1, rs2 in ops:
            a._op(op, f"r{rd}", f"r{rs1}", f"r{rs2}")
        a.li("r8", out)
        for i in range(7):
            a.sw(f"r{i + 1}", "r8", 4 * i)
        a.halt()
        machine, _ = run_program(a, image, regs=regs)
        model = [0] + list(init)
        for op, rd, rs1, rs2 in ops:
            model[rd] = alu(op, model[rs1], model[rs2], 0)
        assert machine.memory.read_words(out, 7) == model[1:]


class TestExecHelpers:
    @given(st.integers(-(2 ** 31), 2 ** 31 - 1),
           st.integers(-(2 ** 31), 2 ** 31 - 1))
    @settings(max_examples=50)
    def test_branch_semantics(self, a_val, b_val):
        assert branch_taken(Op.BEQ, a_val, b_val) == (a_val == b_val)
        assert branch_taken(Op.BLT, a_val, b_val) == (a_val < b_val)
        assert branch_taken(Op.BGE, a_val, b_val) == (a_val >= b_val)

    def test_unsigned_branches(self):
        assert branch_taken(Op.BLTU, -1, 1) is False  # 0xFFFFFFFF > 1
        assert branch_taken(Op.BGEU, -1, 1) is True
