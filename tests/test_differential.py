"""Differential testing: the OOO pipeline vs the golden-model interpreter.

Random programs — with branches, loops, memory traffic, and SPL traffic —
must leave identical architectural state (registers + memory) on the
cycle-level simulator and on the sequential interpreter.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import SystemConfig, ooo1_cluster, ooo2_cluster, \
    remap_system
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm, MemoryImage, Op, ThreadSpec
from repro.isa.interpreter import FunctionalSpl, Interpreter
from repro.mem.memory import MainMemory
from repro.system import Machine, Workload

_ALU_OPS = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT,
            Op.SLTU, Op.MUL, Op.DIV, Op.REM, Op.SLL, Op.SRL, Op.SRA]
_IMM_OPS = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI]


def _run_both(asm, image, regs=None, system=None):
    """Run the program on the pipeline and the interpreter; compare."""
    program = asm.assemble()
    # Pipeline run.
    workload = Workload("diff", image,
                        [ThreadSpec(program, thread_id=1,
                                    int_regs=regs or {})],
                        placement=[0])
    machine = Machine(system or SystemConfig(clusters=[ooo1_cluster()]))
    machine.load(workload)
    machine.run(max_cycles=3_000_000)
    # Golden run.
    memory = MainMemory()
    memory.load_image(image)
    interp = Interpreter(program, memory)
    for name, value in (regs or {}).items():
        from repro.isa.instruction import reg_index
        interp.int_regs[reg_index(name)] = value
    interp.run()
    # Compare registers...
    ctx = machine.contexts[0]
    assert ctx.int_regs == interp.int_regs, "register state diverged"
    # ...and all memory words either side touched.
    touched = set(machine.memory.words) | set(memory.words)
    for word_addr in touched:
        assert machine.memory.words.get(word_addr, 0) == \
            memory.words.get(word_addr, 0), \
            f"memory diverged at {word_addr * 4:#x}"
    return machine, interp


# -- random program generators ----------------------------------------------------


@st.composite
def _alu_blocks(draw):
    """Random straight-line blocks separated by data-dependent branches."""
    n_blocks = draw(st.integers(2, 5))
    blocks = []
    for _ in range(n_blocks):
        ops = draw(st.lists(
            st.tuples(st.sampled_from(_ALU_OPS + _IMM_OPS),
                      st.integers(1, 9), st.integers(1, 9),
                      st.integers(1, 9), st.integers(-64, 64)),
            min_size=1, max_size=8))
        blocks.append(ops)
    return blocks


class TestDifferentialAlu:
    @given(_alu_blocks(),
           st.lists(st.integers(-10_000, 10_000), min_size=9, max_size=9))
    @settings(max_examples=20, deadline=None)
    def test_branchy_alu_programs(self, blocks, init):
        regs = {f"r{i + 1}": v for i, v in enumerate(init)}
        image = MemoryImage()
        out = image.alloc_zeroed(9)
        a = Asm("diff")
        for index, block in enumerate(blocks):
            for op, rd, rs1, rs2, imm in block:
                if op in _IMM_OPS:
                    a._op(op, f"r{rd}", f"r{rs1}", imm)
                else:
                    a._op(op, f"r{rd}", f"r{rs1}", f"r{rs2}")
            # A data-dependent forward branch between blocks.
            label = a.fresh_label(f"blk{index}")
            a.bge(f"r{(index % 9) + 1}", "r0", label)
            a.addi(f"r{(index % 9) + 1}", f"r{(index % 9) + 1}", 13)
            a.label(label)
        a.li("r10", out)
        for i in range(9):
            a.sw(f"r{i + 1}", "r10", 4 * i)
        a.halt()
        _run_both(a, image, regs=regs)

    @given(st.lists(st.integers(-100, 100), min_size=4, max_size=24),
           st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_memory_loops(self, values, wide):
        """A read-modify-write sweep over an array, both core widths."""
        image = MemoryImage()
        arr = image.alloc_words(values)
        a = Asm("diff")
        a.li("r1", arr)
        a.li("r2", 0)
        a.li("r3", len(values))
        a.label("loop")
        a.lw("r4", "r1", 0)
        a.slli("r5", "r4", 1)
        a.add("r4", "r4", "r5")       # x3
        pos = a.fresh_label("pos")
        a.bge("r4", "r0", pos)
        a.neg("r4", "r4")
        a.label(pos)
        a.sw("r4", "r1", 0)
        a.addi("r1", "r1", 4)
        a.addi("r2", "r2", 1)
        a.blt("r2", "r3", "loop")
        a.halt()
        system = SystemConfig(clusters=[ooo2_cluster() if wide
                                        else ooo1_cluster()])
        _run_both(a, image, system=system)

    @given(st.integers(1, 30), st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_nested_loops_with_calls(self, outer, inner):
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        a = Asm("diff")
        a.li("r1", 0)           # accumulator
        a.li("r2", 0)
        a.li("r3", outer)
        a.label("outer")
        a.li("r4", 0)
        a.li("r5", inner)
        a.label("inner")
        a.jal("r31", "bump")
        a.addi("r4", "r4", 1)
        a.blt("r4", "r5", "inner")
        a.addi("r2", "r2", 1)
        a.blt("r2", "r3", "outer")
        a.li("r6", out)
        a.sw("r1", "r6", 0)
        a.halt()
        a.label("bump")
        a.addi("r1", "r1", 3)
        a.jr("r31")
        machine, interp = _run_both(a, image)
        assert machine.memory.read_word_signed(out) == 3 * outer * inner


class TestDifferentialSpl:
    def _function(self):
        g = Dfg("diff_fn")
        x = g.input("x", 0)
        y = g.input("y", 4)
        g.output("o", g.max_(g.add(x, y), g.mul(x, g.const(2))))
        return SplFunction(g)

    @given(st.lists(st.tuples(st.integers(-500, 500),
                              st.integers(-500, 500)),
                    min_size=1, max_size=20))
    @settings(max_examples=15, deadline=None)
    def test_spl_stream_matches_functional_model(self, pairs):
        image = MemoryImage()
        xs = image.alloc_words([p[0] for p in pairs])
        ys = image.alloc_words([p[1] for p in pairs])
        out = image.alloc_zeroed(len(pairs))
        a = Asm("diff_spl")
        a.li("r1", xs)
        a.li("r2", ys)
        a.li("r3", out)
        a.li("r4", 0)
        a.li("r5", len(pairs))
        a.label("loop")
        a.spl_loadm("r1", 0)
        a.spl_loadm("r2", 4)
        a.spl_init(1)
        a.spl_store("r3", 0)
        a.addi("r1", "r1", 4)
        a.addi("r2", "r2", 4)
        a.addi("r3", "r3", 4)
        a.addi("r4", "r4", 1)
        a.blt("r4", "r5", "loop")
        a.halt()
        program = a.assemble()
        function = self._function()

        # Pipeline.
        workload = Workload(
            "diff", image, [ThreadSpec(program, thread_id=1)],
            placement=[0],
            setup=lambda m: m.configure_spl(0, 1, self._function()))
        machine = Machine(remap_system())
        machine.load(workload)
        machine.run(max_cycles=3_000_000)

        # Golden.
        memory = MainMemory()
        memory.load_image(image)
        spl = FunctionalSpl()
        spl.configure(1, function)
        Interpreter(program, memory, spl=spl).run()

        got = machine.memory.read_words(out, len(pairs))
        expected = memory.read_words(out, len(pairs))
        assert got == expected


class TestInterpreterRobustness:
    def test_step_limit(self):
        a = Asm("loop")
        a.label("x")
        a.j("x")
        program = a.assemble()
        interp = Interpreter(program, MainMemory(), max_steps=100)
        with pytest.raises(Exception):
            interp.run()

    def test_spl_without_model_raises(self):
        a = Asm("t")
        a.spl_init(1)
        a.halt()
        interp = Interpreter(a.assemble(), MainMemory())
        with pytest.raises(Exception):
            interp.run()

    def test_recv_on_empty_queue_raises(self):
        spl = FunctionalSpl()
        with pytest.raises(Exception):
            spl.recv()
