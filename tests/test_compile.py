"""Tests for the expression-to-DFG compiler front end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compile import ExpressionError, compile_expression


def _eval(fn, **inputs):
    out = fn.dfg.evaluate(inputs)
    return out


class TestCompile:
    def test_arithmetic_precedence(self):
        fn = compile_expression("o = a + b * c;",
                                inputs={"a": 0, "b": 4, "c": 8})
        assert _eval(fn, a=1, b=2, c=3)["o"] == 7

    def test_parentheses(self):
        fn = compile_expression("o = (a + b) * c;",
                                inputs={"a": 0, "b": 4, "c": 8})
        assert _eval(fn, a=1, b=2, c=3)["o"] == 9

    def test_unary_minus(self):
        fn = compile_expression("o = -a + 5;", inputs={"a": 0})
        assert _eval(fn, a=3)["o"] == 2

    def test_shifts_const_and_variable(self):
        fn = compile_expression("o = a << 2; p = a >> b;",
                                inputs={"a": 0, "b": 4})
        out = _eval(fn, a=12, b=1)
        assert out["o"] == 48 and out["p"] == 6

    def test_comparisons_and_ternary(self):
        fn = compile_expression("o = a > b ? a : b;",
                                inputs={"a": 0, "b": 4})
        assert _eval(fn, a=9, b=4)["o"] == 9
        assert _eval(fn, a=1, b=4)["o"] == 4

    def test_builtins(self):
        fn = compile_expression(
            "o = clamp(max(a, b) + min(a, b), -100, 100); p = abs(a - b);",
            inputs={"a": 0, "b": 4})
        out = _eval(fn, a=70, b=60)
        assert out["o"] == 100  # clamped 130
        assert out["p"] == 10

    def test_select_builtin(self):
        fn = compile_expression("o = select(a == b, 1, 0);",
                                inputs={"a": 0, "b": 4})
        assert _eval(fn, a=5, b=5)["o"] == 1
        assert _eval(fn, a=5, b=6)["o"] == 0

    def test_intermediate_values_not_outputs(self):
        fn = compile_expression("t = a + b; o = t * t;",
                                inputs={"a": 0, "b": 4})
        assert list(fn.dfg.outputs) == ["o"]
        assert _eval(fn, a=2, b=3)["o"] == 25

    def test_explicit_outputs(self):
        fn = compile_expression("t = a + b; o = t * 2;",
                                inputs={"a": 0, "b": 4},
                                outputs=["t", "o"])
        out = _eval(fn, a=2, b=3)
        assert (out["t"], out["o"]) == (5, 10)

    def test_compiled_function_is_mapped(self):
        fn = compile_expression("o = max(a * b, c * 4);",
                                inputs={"a": 0, "b": 4, "c": 8})
        assert fn.rows >= 6  # multiply depth + max

    def test_hmmer_mc_via_compiler(self):
        """The Figure 6 computation expressed as source text."""
        source = """
            m = max(max(mpp + tpmm, ip + tpim), max(dpp + tpdm, t4));
            mc = max(m + ms, -987654321);
        """
        fn = compile_expression(source, inputs={
            "mpp": 0, "tpmm": 4, "ip": 8, "tpim": 12,
            "dpp": 16, "tpdm": 20, "t4": 24, "ms": 28})
        out = _eval(fn, mpp=10, tpmm=2, ip=5, tpim=1, dpp=0, tpdm=0,
                    t4=20, ms=-3)
        assert out["mc"] == 17

    def test_errors(self):
        with pytest.raises(ExpressionError):
            compile_expression("", inputs={"a": 0})
        with pytest.raises(ExpressionError):
            compile_expression("o = a +;", inputs={"a": 0})
        with pytest.raises(ExpressionError):
            compile_expression("o = zork;", inputs={"a": 0})
        with pytest.raises(ExpressionError):
            compile_expression("o = clamp(a, b, 3);",
                               inputs={"a": 0, "b": 4})
        with pytest.raises(ExpressionError):
            compile_expression("o = a @ 2;", inputs={"a": 0})
        with pytest.raises(ExpressionError):
            compile_expression("o = min(a);", inputs={"a": 0})

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.integers(-1000, 1000))
    @settings(max_examples=30)
    def test_random_values_match_python(self, a, b, c):
        fn = compile_expression(
            "o = max(a + b, c) * 2 - min(a, c);",
            inputs={"a": 0, "b": 4, "c": 8})
        expected = max(a + b, c) * 2 - min(a, c)
        assert _eval(fn, a=a, b=b, c=c)["o"] == expected


class TestCompiledEndToEnd:
    def test_runs_on_the_fabric(self):
        """A compiled function executes in the simulated SPL."""
        from repro.common.config import remap_system
        from repro.isa import Asm, MemoryImage, ThreadSpec
        from repro.system import Machine, Workload
        fn = compile_expression("o = abs(a - b);", inputs={"a": 0, "b": 4})
        image = MemoryImage()
        out = image.alloc_zeroed(1)
        asm = Asm("compiled")
        asm.li("r1", 30)
        asm.li("r2", 75)
        asm.spl_load("r1", 0)
        asm.spl_load("r2", 4)
        asm.spl_init(1)
        asm.spl_recv("r3")
        asm.li("r4", out)
        asm.sw("r3", "r4", 0)
        asm.halt()
        workload = Workload(
            "c", image, [ThreadSpec(asm.assemble(), thread_id=1)],
            placement=[0],
            setup=lambda m: m.configure_spl(0, 1, fn))
        machine = Machine(remap_system())
        machine.load(workload)
        machine.run(max_cycles=100_000)
        assert machine.memory.read_word_signed(out) == 45
