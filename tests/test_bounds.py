"""Static performance lower bounds (BND rules) vs. measured runs."""

import random

import pytest

from repro.analysis import compute_bounds, lint_spec, min_retired
from repro.analysis.bounds import check_measured, check_static, \
    measured_retired
from repro.analysis.cfg import Cfg
from repro.analysis.fuzz import (_scenario_compute, _scenario_ring,
                                 scenario_for_seed)
from repro.common.config import RunOptions
from repro.isa import Asm
from repro.system.machine import Machine


def _straight_line(n):
    a = Asm("straight")
    for i in range(n):
        a.li("r3", i)
    a.halt()
    return a.assemble()


def _run(spec):
    machine = Machine(spec.system)
    machine.load(spec.workload)
    cycles = machine.run(options=RunOptions(max_cycles=spec.max_cycles))
    return cycles, machine.stats.as_dict()


class TestMinRetired:
    def test_straight_line_counts_instructions(self):
        program = _straight_line(7)
        # The halt itself retires too, but the bound stays conservative:
        # it must never exceed what the pipeline reports.
        assert min_retired(program, Cfg(program)) == 7

    def test_branchy_program_takes_shortest_path(self):
        a = Asm("branchy")
        a.li("r3", 0)
        a.beqz("r3", "out")
        for _ in range(10):
            a.addi("r3", "r3", 1)
        a.label("out")
        a.halt()
        program = a.assemble()
        assert min_retired(program, Cfg(program)) == 2


class TestBoundsVsMeasured:
    @pytest.mark.parametrize("seed", range(0, 14))
    def test_fuzz_scenarios_respect_bounds(self, seed):
        scenario = scenario_for_seed(seed)
        if scenario.defect is not None:
            return
        spec = scenario.build()
        bounds = compute_bounds(spec)
        cycles, counters = _run(spec)
        assert 0 < bounds.min_cycles <= cycles
        assert bounds.min_total_retired <= measured_retired(counters)
        assert check_measured(bounds, cycles, counters=counters) == []

    def test_registry_benchmark_respects_bounds(self):
        from repro.experiments.engine import build_spec, request
        spec = build_spec(request("wc", "spl", items=32))
        bounds = compute_bounds(spec)
        cycles, counters = _run(spec)
        assert 0 < bounds.min_cycles <= cycles
        assert check_measured(bounds, cycles, counters=counters) == []

    def test_fabric_bound_tightens_compute_scenarios(self):
        scenario = _scenario_compute(5, random.Random(5))
        spec = scenario.build()
        bounds = compute_bounds(spec)
        assert any("fabric" in note for note in bounds.notes)


class TestBndRules:
    def test_bnd002_budget_below_bound(self):
        scenario = _scenario_ring(0, random.Random(0), None)
        spec = scenario.build()
        spec.max_cycles = 1
        rules = {d.rule for d in lint_spec(spec, unit="t") if d.is_error}
        assert "BND002" in rules

    def test_bnd001_measured_below_bound(self):
        scenario = _scenario_ring(0, random.Random(0), None)
        bounds = compute_bounds(scenario.build())
        diags = check_measured(bounds, bounds.min_cycles - 1)
        assert [d.rule for d in diags] == ["BND001"]
        assert check_static(bounds, bounds.min_cycles - 1,
                            "t")[0].rule == "BND002"

    def test_bnd003_retired_below_bound(self):
        scenario = _scenario_ring(0, random.Random(0), None)
        bounds = compute_bounds(scenario.build())
        counters = {"machine.cpu0.retired": 1.0}
        diags = check_measured(bounds, bounds.min_cycles, counters=counters)
        assert "BND003" in {d.rule for d in diags}
