"""Unit tests for the ISA: opcodes, assembler, programs, memory images."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import AssemblyError, MemoryFault
from repro.isa import Asm, MemoryImage, Op, info, reg_index, reg_name
from repro.isa.opcodes import FuClass


class TestRegisters:
    def test_names(self):
        assert reg_index("r0") == 0
        assert reg_index("r31") == 31
        assert reg_index("f0") == 32
        assert reg_index("f31") == 63

    def test_roundtrip(self):
        for index in range(64):
            assert reg_index(reg_name(index)) == index

    def test_bad_names(self):
        for bad in ("x1", "r32", "f32", "r-1", "rr", ""):
            with pytest.raises(AssemblyError):
                reg_index(bad)


class TestOpcodes:
    def test_serialized_ops(self):
        for op in (Op.SPL_LOAD, Op.SPL_LOADM, Op.SPL_LOADV, Op.SPL_INIT,
                   Op.SPL_RECV, Op.SPL_STORE, Op.AMO_ADD, Op.FENCE, Op.HALT):
            assert info(op).serialize, op

    def test_classes(self):
        assert info(Op.MUL).fu is FuClass.MUL
        assert info(Op.LW).is_load
        assert info(Op.SW).is_store and not info(Op.SW).writes_rd
        assert info(Op.BEQ).is_branch
        assert info(Op.AMO_ADD).is_load and info(Op.AMO_ADD).is_store

    def test_latencies(self):
        assert info(Op.ADD).latency == 1
        assert info(Op.MUL).latency == 3
        assert info(Op.DIV).latency == 12
        assert info(Op.FMUL).latency == 4


class TestAssembler:
    def test_label_resolution(self):
        a = Asm("t")
        a.label("top")
        a.addi("r1", "r1", 1)
        a.j("top")
        a.halt()
        program = a.assemble()
        assert program[1].target == 0

    def test_undefined_label(self):
        a = Asm("t")
        a.j("nowhere")
        with pytest.raises(AssemblyError):
            a.assemble()

    def test_duplicate_label(self):
        a = Asm("t")
        a.label("x")
        with pytest.raises(AssemblyError):
            a.label("x")

    def test_empty_program(self):
        with pytest.raises(AssemblyError):
            Asm("t").assemble()

    def test_unknown_mnemonic(self):
        with pytest.raises(AttributeError):
            Asm("t").frobnicate("r1")

    def test_operand_formats(self):
        a = Asm("t")
        a.add("r1", "r2", "r3")
        a.lw("r4", "r5", 8)
        a.sw("r6", "r7", -4)
        a.amo_add("r1", "r2", "r3")
        a.spl_load("r1", 4)
        a.spl_loadm("r2", 8, 12)
        a.spl_init(3)
        a.spl_recv("r9")
        a.spl_store("r2", 4)
        a.halt()
        program = a.assemble()
        load = program[1]
        assert (load.rd, load.rs1, load.imm) == (4, 5, 8)
        store = program[2]
        assert (store.rs2, store.rs1, store.imm) == (6, 7, -4)
        loadm = program[5]
        assert (loadm.imm, loadm.target) == (12, 8)

    def test_pseudo_ops(self):
        a = Asm("t")
        a.mov("r1", "r2")
        a.neg("r3", "r4")
        a.bgt("r1", "r2", "end")
        a.ble("r1", "r2", "end")
        a.beqz("r1", "end")
        a.or_("r1", "r2", "r3")
        a.and_("r1", "r2", "r3")
        a.label("end")
        a.halt()
        program = a.assemble()
        assert program[0].op is Op.ADD
        assert program[2].op is Op.BLT  # bgt swaps operands
        assert program[2].rs1 == 2 and program[2].rs2 == 1

    def test_listing_roundtrippable_text(self):
        a = Asm("t")
        a.label("go")
        a.addi("r1", "r0", 5)
        a.halt()
        listing = a.assemble().listing()
        assert "go:" in listing and "addi" in listing

    def test_fresh_labels_unique(self):
        a = Asm("t")
        assert a.fresh_label() != a.fresh_label()


class TestMemoryImage:
    def test_alloc_alignment(self):
        image = MemoryImage()
        first = image.alloc(5)
        second = image.alloc(4)
        assert first % 4 == 0 and second % 4 == 0
        assert second >= first + 5

    def test_alloc_words_and_read(self):
        image = MemoryImage()
        addr = image.alloc_words([1, -2, 3])
        assert image.read_word(addr + 4) == 0xFFFFFFFE

    def test_write_bytes_le(self):
        image = MemoryImage()
        addr = image.alloc(4)
        image.write_bytes(addr, b"\x01\x02\x03\x04")
        assert image.read_word(addr) == 0x04030201

    def test_unaligned_word_rejected(self):
        image = MemoryImage()
        with pytest.raises(MemoryFault):
            image.write_word(2, 1)

    def test_size_limit(self):
        image = MemoryImage(size_limit=0x2000)
        with pytest.raises(MemoryFault):
            image.alloc(0x10000)

    @given(st.lists(st.integers(min_value=-(2 ** 31),
                                max_value=2 ** 31 - 1),
                    min_size=1, max_size=16))
    def test_words_roundtrip(self, values):
        image = MemoryImage()
        addr = image.alloc_words(values)
        from repro.common.utils import to_signed
        got = [to_signed(image.read_word(addr + 4 * i))
               for i in range(len(values))]
        assert got == values
