"""Tests of the experiment harnesses (tables, figures, reporting)."""

import math

from repro.experiments.barriers import (figure12_series, figure13_series,
                                        figure14_series, run_barrier_sweep)
from repro.experiments.regions import (figure10_rows, figure11_rows,
                                       run_region_study, swqueue_rows)
from repro.experiments.report import format_series, format_table
from repro.experiments.tables import spl_parameters, table1, table2, table3
from repro.experiments.whole_program import (figure8_rows, figure9_rows,
                                             whole_program_study)


class TestTables:
    def test_table1(self):
        data = table1()
        assert math.isclose(data["spl"]["total_area"], 0.51)

    def test_table2_rows(self):
        rows = table2()
        widths = dict((r[0], (r[1], r[2])) for r in rows)
        assert widths["Issue/Retire Width"] == ("1", "2")
        assert widths["ROB Entries"] == ("64", "64")
        assert widths["Coherence Protocol"] == ("MESI", "MESI")

    def test_table3_fractions(self):
        rows = {name: pct for name, _, pct in table3()}
        assert rows["hmmer"] == "85%"
        assert rows["adpcm"] == "99%"
        assert rows["ll3"] == "100%"

    def test_spl_parameters(self):
        params = spl_parameters()
        assert params["rows"] == 24 and params["cells_per_row"] == 16


class TestRegionStudy:
    def test_small_study_and_rows(self):
        study = run_region_study(["wc"], include_swqueue=True,
                                 overrides={"wc": {"items": 64}})
        rows10 = figure10_rows(study)
        rows11 = figure11_rows(study)
        assert rows10[0]["bench"] == "wc"
        assert "2Th+CompComm" in rows10[0]
        assert rows11[0]["2Th+CompComm"] > 0
        sw_rows = swqueue_rows(study)
        assert sw_rows and sw_rows[0]["swqueue_slowdown_pct"] > 0


class TestWholeProgram:
    def test_composition_sane(self):
        points = whole_program_study(["g721enc"],
                                     overrides={"g721enc": {"items": 12}})
        point = points[0]
        # Whole-program gains are diluted by the non-region fraction.
        assert 1.0 < point.remap_speedup
        assert point.remap_speedup < 3.0
        assert point.remap_relative_ed > 0
        rows8 = figure8_rows(points)
        rows9 = figure9_rows(points)
        assert rows8[0]["ReMAP_improvement_pct"] > 0
        assert rows9[0]["ReMAP_relative_ED"] > 0


class TestBarrierSweep:
    def test_sweep_and_series(self):
        sweep = run_barrier_sweep("ll3", sizes=[64], thread_counts=(4,))
        s12 = figure12_series(sweep, thread_counts=(4,))
        assert "Seq" in s12 and "Barrier-p4" in s12
        assert "Barrier+Comp-p4" in s12
        s13 = figure13_series(sweep, thread_counts=(4,))
        assert "Barrier+Comp-p4" in s13
        s14 = figure14_series(sweep, thread_counts=(4,))
        assert s14["SW-p4"][0] > 0
        text = format_series(s12)
        assert "Barrier-p4" in text


class TestReport:
    def test_format_table_union_columns(self):
        rows = [{"bench": "a", "x": 1.0}, {"bench": "b", "x": 2.0,
                                           "y": 3.0}]
        text = format_table(rows)
        assert "y" in text and "a" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"
