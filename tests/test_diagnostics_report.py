"""Diagnostic JSON reporter: round-trips, stable ordering, CLI exit codes."""

import json
import random

import repro.analysis as analysis
from repro.analysis.diagnostics import (Diagnostic, Severity, render_json,
                                        render_text)
from repro.cli import main

#: One representative per rule family, covering every severity and every
#: optional-field combination.
_SAMPLES = [
    Diagnostic("REG002", Severity.WARNING, "read of never-written r9",
               unit="wc/seq", program="wc", pc=12),
    Diagnostic("CFG001", Severity.ERROR, "falls off the end",
               unit="wc/seq", program="wc"),
    Diagnostic("LBL001", Severity.NOTE, "unused label", unit="wc/seq",
               program="wc", pc=3),
    Diagnostic("SPL004", Severity.ERROR, "unbalanced arrivals",
               unit="dijkstra/remap"),
    Diagnostic("MAP001", Severity.ERROR, "too many rows",
               unit="lib/mac4", dfg="mac4", node=7),
    Diagnostic("CON004", Severity.ERROR, "static deadlock cycle",
               unit="fuzz/ring/7"),
    Diagnostic("BND002", Severity.ERROR, "budget below bound",
               unit="fuzz/ring/7"),
    Diagnostic("SPEC001", Severity.ERROR, "factory raised", unit="x/y"),
]


def test_round_trip_every_sample():
    for diag in _SAMPLES:
        assert Diagnostic.from_dict(diag.to_dict()) == diag


def test_round_trip_through_json_report():
    report = json.loads(render_json(_SAMPLES))
    assert report["schema"] == 1
    restored = [Diagnostic.from_dict(record)
                for record in report["diagnostics"]]
    assert sorted(restored, key=Diagnostic.sort_key) == \
           sorted(_SAMPLES, key=Diagnostic.sort_key)


def test_renderings_are_order_independent():
    shuffled = list(_SAMPLES)
    random.Random(3).shuffle(shuffled)
    assert render_json(shuffled) == render_json(_SAMPLES)
    assert render_text(shuffled) == render_text(_SAMPLES)


def test_json_report_sorted_errors_first():
    report = json.loads(render_json(_SAMPLES))
    severities = [record["severity"] for record in report["diagnostics"]]
    rank = {"error": 0, "warning": 1, "note": 2}
    assert severities == sorted(severities, key=rank.__getitem__)
    errors = [r for r in report["diagnostics"] if r["severity"] == "error"]
    keys = [(r["unit"], r["rule"]) for r in errors]
    assert keys == sorted(keys)


def test_counts_cover_all_severities():
    report = json.loads(render_json(_SAMPLES))
    assert report["counts"] == {"error": 6, "warning": 1, "note": 1}


class TestCliExitCodes:
    def test_lint_json_exit_zero_when_clean(self, capsys, monkeypatch):
        monkeypatch.setattr(analysis, "lint_registry",
                            lambda *a, **kw: [_SAMPLES[2]])
        assert main(["lint", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["error"] == 0

    def test_lint_json_exit_one_on_errors(self, capsys, monkeypatch):
        monkeypatch.setattr(analysis, "lint_registry",
                            lambda *a, **kw: list(_SAMPLES))
        assert main(["lint", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["error"] == 6

    def test_lint_text_exit_one_on_errors(self, capsys, monkeypatch):
        monkeypatch.setattr(analysis, "lint_registry",
                            lambda *a, **kw: list(_SAMPLES))
        assert main(["lint"]) == 1
        assert "6 errors" in capsys.readouterr().out
