"""Tests for the HTTP/SSE transport (`repro.serve.server` + client).

The server under test is the real asyncio server on a real socket
(port 0), driven by the real stdlib client — nothing is mocked, so
these tests cover the wire protocol end to end: submit/status/watch
verbs, HTTP error mapping (429 + Retry-After, 404, 400, 503), SSE
streaming to terminal states, and graceful drain.
"""

import asyncio
import json
import threading
import time

import pytest

from repro import api
from repro.experiments.engine import ExperimentEngine, request
from repro.serve.client import Client, RemoteError
from repro.serve.protocol import DONE, QUEUED

SMALL = dict(items=32)


class ServerUnderTest:
    """A JobServer running on a background thread, on a free port."""

    def __init__(self, session):
        from repro.serve.server import JobServer
        self.session = session
        self.server = JobServer(session, port=0)
        self.loop = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "server did not come up"
        self.client = Client(f"127.0.0.1:{self.server.port}")

    def _run(self):
        async def go():
            self.loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()
        asyncio.run(go())

    def shutdown(self, timeout=30):
        if self.loop is not None and self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.shutdown)
        self.thread.join(timeout)
        return not self.thread.is_alive()


@pytest.fixture
def served(tmp_path):
    engine = ExperimentEngine(cache_dir=tmp_path / "cache", progress=False)
    under_test = ServerUnderTest(api.Session(engine=engine, shards=2))
    yield under_test
    under_test.shutdown()


@pytest.fixture
def parked(tmp_path):
    """A server whose session never dispatches: jobs stay QUEUED."""
    engine = ExperimentEngine(cache_dir=tmp_path / "cache", progress=False)
    session = api.Session(engine=engine, queue_limit=2, tenant_quota=1)
    session._ensure_dispatcher = lambda: None
    under_test = ServerUnderTest(session)
    yield under_test
    for record in under_test.client.jobs():
        if record.state == QUEUED:
            under_test.client.cancel(record.job_id)
    under_test.shutdown()


class TestHappyPath:
    def test_submit_watch_status_parity(self, served):
        req = request("wc", "seq", **SMALL)
        record = served.client.submit(req)
        assert record.state in ("queued", "running")
        events = list(served.client.watch(record.job_id))
        kinds = [event for event, _ in events]
        assert kinds[-1] == "state"
        final_payload = events[-1][1]
        assert final_payload["state"] == DONE
        # parity gate over the wire: HTTP result == direct engine run
        final = served.client.status(record.job_id)
        direct = served.session.engine.run(req)
        assert json.dumps(final.result, sort_keys=True) == \
            json.dumps(direct.to_dict(), sort_keys=True)

    def test_hot_submit_is_cache_served(self, served):
        req = request("wc", "seq", **SMALL)
        cold = served.client.submit(req)
        served.client.wait(cold.job_id)
        assert served.session.pool.dispatched == 1
        hot = served.client.submit(req)
        assert hot.state == DONE
        assert hot.cached is True
        assert served.session.pool.dispatched == 1
        # watching an already-finished job replays its terminal state
        events = list(served.client.watch(hot.job_id))
        assert events[-1][0] == "state"
        assert events[-1][1]["state"] == DONE

    def test_health_and_job_listing(self, served):
        health = served.client.health()
        assert health["shards"] == 2
        assert set(health["jobs"]) == {"queued", "running", "done",
                                       "failed", "cancelled"}
        record = served.client.submit(request("wc", "seq", **SMALL),
                                      tenant="team-a")
        served.client.wait(record.job_id)
        listed = served.client.jobs(tenant="team-a")
        assert [job.job_id for job in listed] == [record.job_id]
        assert served.client.jobs(tenant="nobody") == []


class TestErrorMapping:
    def test_queue_full_maps_to_429_with_retry_after(self, parked):
        parked.client.submit(request("wc", "seq", items=201))
        parked.client.submit(request("wc", "seq", items=202),
                             tenant="other")
        with pytest.raises(RemoteError) as excinfo:
            parked.client.submit(request("wc", "seq", items=203),
                                 tenant="third")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s is not None
        assert excinfo.value.retry_after_s >= 1

    def test_quota_maps_to_429_without_retry_after(self, parked):
        parked.client.submit(request("wc", "seq", items=211))
        with pytest.raises(RemoteError) as excinfo:
            parked.client.submit(request("wc", "seq", items=212))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s is None

    def test_unknown_job_is_404(self, served):
        with pytest.raises(RemoteError) as excinfo:
            served.client.status("no-such-job")
        assert excinfo.value.status == 404
        with pytest.raises(RemoteError) as excinfo:
            list(served.client.watch("no-such-job"))
        assert excinfo.value.status == 404

    def test_malformed_body_is_400(self, served):
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", served.server.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"not json",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_route_is_404(self, served):
        import http.client
        conn = http.client.HTTPConnection("127.0.0.1", served.server.port,
                                          timeout=10)
        try:
            conn.request("GET", "/v2/whatever")
            assert conn.getresponse().status == 404
        finally:
            conn.close()

    def test_failed_job_carries_structured_errors(self, served):
        record = served.client.submit(request("no-such-bench", "seq"))
        final = served.client.wait(record.job_id)
        assert final.state == "failed"
        assert final.errors[0]["exception_type"] == "ConfigError"


class TestCancelAndDrain:
    def test_cancel_queued_job_over_http(self, parked):
        record = parked.client.submit(request("wc", "seq", items=221))
        cancelled = parked.client.cancel(record.job_id)
        assert cancelled.state == "cancelled"
        # a second cancel answers 409 and the client degrades to status
        again = parked.client.cancel(record.job_id)
        assert again.state == "cancelled"

    def test_drain_rejects_new_submissions_then_exits(self, served):
        record = served.client.submit(request("wc", "seq", **SMALL))
        served.client.wait(record.job_id)
        served.client.drain()
        deadline = time.time() + 30
        while served.thread.is_alive() and time.time() < deadline:
            time.sleep(0.05)
        assert not served.thread.is_alive(), \
            "server must exit once drained"
        # already-terminal job results were delivered before shutdown
        assert served.session.status(record.job_id).state == DONE

    def test_shutdown_mid_job_finishes_the_job(self, tmp_path):
        """Graceful drain: a SIGTERM-equivalent shutdown while a job is
        running lets the job finish and records its result."""
        engine = ExperimentEngine(cache_dir=tmp_path / "cache",
                                  progress=False)
        under_test = ServerUnderTest(api.Session(engine=engine))
        record = under_test.client.submit(
            request("wc", "seq", items=2048))
        deadline = time.time() + 30
        while time.time() < deadline:
            if under_test.session.status(record.job_id).state != "queued":
                break
            time.sleep(0.02)
        assert under_test.shutdown(timeout=120), "drain must complete"
        final = under_test.session.status(record.job_id)
        assert final.state == DONE
        assert final.result["results"]["cycles"] > 0
