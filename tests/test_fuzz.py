"""Scenario fuzzer: determinism, three-way agreement, CLI contract."""

import json

from repro.analysis.fuzz import (run_fuzz, scenario_for_seed,
                                 write_fuzz_json)
from repro.cli import main


def test_scenarios_are_deterministic():
    for seed in range(20):
        a = scenario_for_seed(seed)
        b = scenario_for_seed(seed)
        assert (a.kind, a.defect, a.expect_rules) == \
               (b.kind, b.defect, b.expect_rules)
        assert a.golden == b.golden and a.result_addrs == b.result_addrs


def test_thirty_seeds_agree():
    report = run_fuzz(range(30))
    assert report["scenarios"] == 30
    assert report["disagreements"] == []
    # Both populations are represented in any contiguous 30-seed window.
    assert report["clean"] > 0 and report["defective"] > 0
    for record in report["records"]:
        if record["defect"] is not None:
            assert record["dynamic"] != "completed"


def test_defect_records_name_the_rules():
    report = run_fuzz(range(14))
    for record in report["records"]:
        if record["defect"] is not None:
            assert record["error_rules"], record


def test_report_json_roundtrip(tmp_path):
    report = run_fuzz(range(4))
    path = tmp_path / "fuzz.json"
    write_fuzz_json(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == report["schema"]
    assert loaded["seeds"] == list(range(4))
    assert loaded["disagreements"] == []


def test_cli_fuzz(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["fuzz", "--seeds", "5", "--json", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "0 disagreements" in printed
    assert json.loads(out.read_text())["scenarios"] == 5


def test_cli_fuzz_start_offset(capsys):
    assert main(["fuzz", "--seeds", "2", "--start", "7"]) == 0
    assert "2 scenarios" in capsys.readouterr().out
