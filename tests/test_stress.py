"""Heavier integration stress: long barrier generations, 16 threads."""

from repro.experiments.runner import execute
from repro.workloads import registry
from repro.workloads.livermore import LL6_VARIANTS


def test_ll6_sixteen_threads_many_barriers():
    """LL6 at p16 crosses four clusters with two barriers per outer
    iteration — hundreds of barrier generations on the shared bus."""
    result = execute(LL6_VARIANTS["barrier"](n=24, p=16, passes=2))
    spl0 = result.stats.find("spl0")
    assert spl0.get("barrier_releases") >= 2 * 23 * 2  # gens x barriers
    assert result.cycles > 0


def test_dijkstra_hwbar_sixteen_threads():
    info = registry.REGISTRY["dijkstra"]
    result = execute(info.variants["hwbar"](n=20, p=16))
    assert result.cycles > 0


def test_barrier_generations_are_isolated():
    """Fast threads must never observe a future generation's release: the
    LL2 check would fail if any level's barrier released early."""
    from repro.workloads.livermore import LL2_VARIANTS
    execute(LL2_VARIANTS["barrier"](n=64, p=16, passes=3))


def test_mixed_cluster_population():
    """Threads on two SPL clusters with staggered placement."""
    from repro.workloads import dijkstra as dijkstra_mod
    spec = dijkstra_mod.barrier_spec(n=16, p=6)  # 4 + 2 across clusters
    result = execute(spec)
    assert result.cycles > 0
