"""Tests for the baseline systems: comm network, SW queues, SW barriers."""

import pytest

from repro.baselines.comm_network import (DedicatedCommController,
                                          attach_comm_network,
                                          attach_network)
from repro.baselines.sw_sync import SwBarrier, SwQueue
from repro.common.config import SystemConfig, ooo1_cluster, ooo2_cluster
from repro.common.errors import ConfigError, SplError
from repro.common.stats import Stats
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system import Machine, Workload


class TestDedicatedCommUnit:
    def _unit(self, n=2):
        controller = DedicatedCommController(n, Stats("net"))
        for slot in range(n):
            controller.set_thread(slot, slot + 1)
        return controller

    def test_send_and_deliver(self):
        net = self._unit()
        net.configure_send(0, 1, dest_thread=2)
        net.stage_load(0, 42, 0, 0)
        assert net.init(0, 1, 0)
        assert net.recv(1, 0) is None  # not yet delivered
        for cycle in range(10):
            net.tick(cycle)
        assert net.recv(1, 10) == 42

    def test_send_to_absent_thread_stalls(self):
        net = self._unit()
        net.configure_send(0, 1, dest_thread=9)
        net.stage_load(0, 1, 0, 0)
        assert not net.init(0, 1, 0)

    def test_barrier_release(self):
        net = self._unit()
        net.register_barrier(5, [1, 2])
        net.configure_barrier(0, 2, 5)
        net.configure_barrier(1, 2, 5)
        net.stage_load(0, 0, 0, 0)
        assert net.init(0, 2, 0)
        for cycle in range(10):
            net.tick(cycle)
        assert net.recv(0, 10) is None  # still waiting for thread 2
        net.stage_load(1, 0, 0, 10)
        assert net.init(1, 2, 10)
        for cycle in range(10, 30):
            net.tick(cycle)
        assert net.recv(0, 30) == 1
        assert net.recv(1, 30) == 1

    def test_switch_out_guard(self):
        net = self._unit()
        net.configure_send(0, 1, dest_thread=2)
        net.stage_load(0, 7, 0, 0)
        net.init(0, 1, 0)
        with pytest.raises(SplError):
            net.set_thread(1, None)

    def test_attach_to_spl_cluster_rejected(self):
        from repro.common.config import remap_system
        machine = Machine(remap_system())
        with pytest.raises(ConfigError):
            attach_comm_network(machine, 0)

    def test_attach_network_to_busy_core_rejected(self):
        machine = Machine(SystemConfig(clusters=[ooo2_cluster()]))
        attach_network(machine, [0, 1])
        with pytest.raises(ConfigError):
            attach_network(machine, [1, 2])


class TestSwSync:
    def test_barrier_orders_writes(self):
        """After the barrier, every thread sees the other's pre-barrier
        store."""
        image = MemoryImage()
        barrier = SwBarrier(image, 2)
        flags = image.alloc_zeroed(2)
        outs = image.alloc_zeroed(2)

        def prog(tid):
            a = Asm(f"t{tid}")
            a.li("r10", 1)
            a.li("r1", flags + 4 * (tid - 1))
            a.li("r2", tid)
            a.sw("r2", "r1", 0)
            a.fence()
            barrier.emit(a, "r10", "r3", "r4", "r5")
            other = flags + 4 * (2 - tid)
            a.li("r1", other)
            a.lw("r6", "r1", 0)
            a.li("r7", outs + 4 * (tid - 1))
            a.sw("r6", "r7", 0)
            a.halt()
            return a.assemble()

        workload = Workload("w", image,
                            [ThreadSpec(prog(1), 1), ThreadSpec(prog(2), 2)],
                            placement=[0, 1])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=200_000)
        assert machine.memory.read_words(outs, 2) == [2, 1]

    def test_queue_preserves_order_and_values(self):
        image = MemoryImage()
        queue = SwQueue(image, 8)
        n = 40
        out = image.alloc_zeroed(n)

        producer = Asm("prod")
        producer.li("r20", 0)
        producer.li("r1", 0)
        producer.li("r2", n)
        producer.label("loop")
        producer.mul("r3", "r1", "r1")
        queue.emit_push(producer, "r3", "r20", "r5", "r6", "r7")
        producer.addi("r1", "r1", 1)
        producer.blt("r1", "r2", "loop")
        producer.halt()

        consumer = Asm("cons")
        consumer.li("r21", 0)
        consumer.li("r1", 0)
        consumer.li("r2", n)
        consumer.li("r8", out)
        consumer.label("loop")
        queue.emit_pop(consumer, "r3", "r21", "r5", "r7")
        consumer.sw("r3", "r8", 0)
        consumer.addi("r8", "r8", 4)
        consumer.addi("r1", "r1", 1)
        consumer.blt("r1", "r2", "loop")
        consumer.halt()

        workload = Workload(
            "w", image,
            [ThreadSpec(producer.assemble(), 1),
             ThreadSpec(consumer.assemble(), 2)],
            placement=[0, 1])
        machine = Machine(SystemConfig(clusters=[ooo1_cluster()]))
        machine.load(workload)
        machine.run(max_cycles=500_000)
        assert machine.memory.read_words(out, n) == \
            [i * i for i in range(n)]

    def test_queue_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            SwQueue(MemoryImage(), 10)
