"""Tests for the static verifier (repro.analysis).

Each seeded-defect fixture must be caught *statically* — no spec here is
ever simulated — with the expected rule id.
"""

import pytest

from repro.analysis import (Cfg, Severity, has_errors, lint_dfg,
                            lint_function, lint_program, lint_spec,
                            render_json, render_text)
from repro.analysis.mapping import check_shared_state
from repro.common.errors import AssemblyError
from repro.core.dfg import Dfg
from repro.core.function import SplFunction, identity_function
from repro.isa.assembler import Asm
from repro.isa.program import MemoryImage, ThreadSpec
from repro.system.workload import Workload
from repro.workloads.base import RunSpec, remap_machine_system, seq_system
from repro.workloads.spl_lib import mac2_function


def _rules(diagnostics):
    return {diag.rule for diag in diagnostics}


def _by_rule(diagnostics, rule):
    return [diag for diag in diagnostics if diag.rule == rule]


def _program(build, name="fixture"):
    a = Asm(name)
    build(a)
    return a.assemble()


def _spl_spec(build, setup, name="fixture", n_threads=1,
              system=None):
    """A one-cluster spec whose thread programs come from ``build(a, i)``."""
    threads = []
    for thread_id in range(n_threads):
        a = Asm(f"{name}_t{thread_id}")
        build(a, thread_id)
        threads.append(ThreadSpec(a.assemble(), thread_id))
    workload = Workload(name, MemoryImage(), threads, setup=setup)
    return RunSpec(name=name, workload=workload,
                   system=system or remap_machine_system())


# -- register rules -----------------------------------------------------------


class TestRegisterRules:
    def test_use_before_def_warns(self):
        program = _program(lambda a: (a.add("r1", "r2", "r3"), a.halt()))
        diags = lint_program(program)
        assert len(_by_rule(diags, "REG001")) == 2  # r2 and r3
        assert all(diag.severity is Severity.WARNING
                   for diag in _by_rule(diags, "REG001"))

    def test_initial_registers_count_as_defined(self):
        program = _program(lambda a: (a.add("r1", "r5", "r0"), a.halt()))
        spec = ThreadSpec(program, 0, int_regs={"r5": 3})
        assert "REG001" not in _rules(lint_program(program, spec))

    def test_defined_on_only_one_path_warns(self):
        def build(a):
            skip = a.fresh_label("skip")
            a.beqz("r0", skip)
            a.li("r1", 7)
            a.label(skip)
            a.mov("r2", "r1")
            a.halt()
        diags = lint_program(_program(build))
        assert _by_rule(diags, "REG001")

    def test_write_to_r0_warns(self):
        program = _program(lambda a: (a.li("r1", 1),
                                      a.add("r0", "r1", "r1"), a.halt()))
        diags = _by_rule(lint_program(program), "REG002")
        assert diags and diags[0].severity is Severity.WARNING

    def test_clean_program_has_no_findings(self):
        def build(a):
            a.li("r1", 4)
            a.addi("r2", "r1", 1)
            a.halt()
        assert lint_program(_program(build)) == []


# -- structure rules ----------------------------------------------------------


class TestStructureRules:
    def test_missing_halt_is_an_error(self):
        diags = lint_program(_program(lambda a: a.li("r1", 1)))
        found = _by_rule(diags, "CFG002")
        assert found and found[0].severity is Severity.ERROR

    def test_unreachable_code_warns(self):
        def build(a):
            end = a.fresh_label("end")
            a.j(end)
            a.li("r1", 1)
            a.li("r2", 2)
            a.label(end)
            a.halt()
        found = _by_rule(lint_program(_program(build)), "CFG001")
        assert len(found) == 1  # contiguous run collapses to one finding
        assert "2 unreachable" in found[0].message

    def test_conditional_fallthrough_off_end(self):
        def build(a):
            done = a.fresh_label("done")
            a.beqz("r0", done)
            a.label(done)
            a.li("r1", 1)  # no halt after
        assert "CFG002" in _rules(lint_program(_program(build)))

    def test_loop_with_halt_is_clean(self):
        def build(a):
            a.li("r1", 4)
            loop = a.fresh_label("loop")
            a.label(loop)
            a.addi("r1", "r1", -1)
            a.bnez("r1", loop)
            a.halt()
        assert lint_program(_program(build)) == []


# -- label hygiene ------------------------------------------------------------


class TestLabelRules:
    def test_unreferenced_label_noted(self):
        a = Asm("labels")
        a.label("start")
        a.li("r1", 1)
        a.halt()
        program = a.assemble()
        assert ("LBL001" in {rule for rule, _ in program.label_diagnostics})
        diags = _by_rule(lint_program(program), "LBL001")
        assert diags and diags[0].severity is Severity.NOTE
        assert "start" in diags[0].message

    def test_unplaced_fresh_label_warns(self):
        a = Asm("labels")
        a.fresh_label("never")
        a.li("r1", 1)
        a.halt()
        diags = _by_rule(lint_program(a.assemble()), "LBL002")
        assert diags and diags[0].severity is Severity.WARNING

    def test_referenced_labels_are_clean(self):
        def build(a):
            loop = a.fresh_label("loop")
            a.li("r1", 2)
            a.label(loop)
            a.addi("r1", "r1", -1)
            a.bnez("r1", loop)
            a.halt()
        assert lint_program(_program(build)) == []


# -- Program._resolve bounds checking -----------------------------------------


class TestResolveBounds:
    def test_jump_past_end_raises(self):
        a = Asm("oob")
        a.j(99)
        a.halt()
        with pytest.raises(AssemblyError, match="targets pc 99"):
            a.assemble()

    def test_negative_branch_target_raises(self):
        a = Asm("oob")
        a.li("r1", 1)
        a.beq("r1", "r0", -2)
        a.halt()
        with pytest.raises(AssemblyError, match="outside the program"):
            a.assemble()

    def test_spl_staging_offsets_are_not_bounds_checked(self):
        # spl_loadm/spl_loadv reuse ``target`` for the staging-entry byte
        # offset; a 28-byte offset in a 3-instruction program must NOT be
        # mistaken for an out-of-range branch.
        a = Asm("staging")
        a.li("r1", 0x1000)
        a.spl_loadm("r1", 28, 0)
        a.halt()
        program = a.assemble()
        assert program.instructions[1].target == 28


# -- SPL protocol rules -------------------------------------------------------


def _bind_identity(machine):
    machine.configure_spl(0, 1, identity_function())


class TestSplProtocol:
    def test_unbound_config_id(self):
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_init(5)
            a.spl_recv("r1")
            a.halt()
        diags = lint_spec(_spl_spec(build, _bind_identity))
        found = _by_rule(diags, "SPL001")
        assert found and found[0].severity is Severity.ERROR
        assert "5" in found[0].message

    def test_restage_before_seal(self):
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_load("r0", 0)  # overwrites bytes 0..3 before spl_init
            a.spl_init(1)
            a.spl_recv("r1")
            a.halt()
        found = _by_rule(lint_spec(_spl_spec(build, _bind_identity)),
                         "SPL002")
        assert found and found[0].severity is Severity.ERROR
        assert found[0].pc == 1

    def test_staged_then_sealed_is_clean(self):
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_init(1)
            a.spl_recv("r1")
            a.halt()
        assert lint_spec(_spl_spec(build, _bind_identity)) == []

    def test_init_with_missing_input_bytes(self):
        def build(a, _tid):
            a.spl_load("r0", 0)  # mac2 decodes bytes 0..15; only 0..3 staged
            a.spl_init(1)
            a.spl_recv("r1")
            a.halt()
        def setup(machine):
            machine.configure_spl(0, 1, mac2_function())
        found = _by_rule(lint_spec(_spl_spec(build, setup)), "SPL003")
        assert found and found[0].severity is Severity.ERROR
        assert "4..15" in found[0].message

    def test_unbalanced_pop_count(self):
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_init(1)  # identity: one output word
            a.spl_recv("r1")
            a.spl_recv("r2")  # second pop never arrives
            a.halt()
        found = _by_rule(lint_spec(_spl_spec(build, _bind_identity)),
                         "SPL004")
        assert found and found[0].severity is Severity.ERROR
        assert "pops 2" in found[0].message and "1 are delivered" in \
            found[0].message

    def test_pop_with_nothing_incoming(self):
        def build(a, _tid):
            a.spl_recv("r1")
            a.halt()
        found = _by_rule(lint_spec(_spl_spec(build, _bind_identity)),
                         "SPL005")
        assert found and found[0].severity is Severity.ERROR

    def test_delivery_never_popped(self):
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_init(1)
            a.halt()
        found = _by_rule(lint_spec(_spl_spec(build, _bind_identity)),
                         "SPL006")
        assert found and found[0].severity is Severity.WARNING

    def test_spl_on_core_without_port(self):
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_init(1)
            a.spl_recv("r1")
            a.halt()
        spec = _spl_spec(build, None, system=seq_system())
        found = _by_rule(lint_spec(spec), "SPL007")
        assert found and found[0].severity is Severity.ERROR

    def test_pipelined_loop_is_not_flagged(self):
        # The workloads' software-pipelined shape: issue-ahead prologue,
        # then a loop popping one result and conditionally issuing the
        # next entry (stage + init together).  Loop-carried counts widen
        # to TOP, so no balance rule may fire.
        def build(a, _tid):
            a.spl_load("r0", 0)
            a.spl_init(1)
            a.li("r10", 4)
            loop = a.fresh_label("loop")
            skip = a.fresh_label("skip")
            a.label(loop)
            a.spl_recv("r1")
            a.addi("r10", "r10", -1)
            a.beqz("r10", skip)
            a.spl_load("r0", 0)
            a.spl_init(1)
            a.label(skip)
            a.bnez("r10", loop)
            a.halt()
        assert not has_errors(lint_spec(_spl_spec(build, _bind_identity)))


# -- mappability rules --------------------------------------------------------


def _stateful_function():
    g = Dfg("acc")
    x = g.input("x", 0)
    d = g.delay()
    s = g.add(x, d)
    g.set_delay_source(d, s)
    g.output("s", s)
    return SplFunction(g)


class TestMappingRules:
    def test_invalid_dfg(self):
        g = Dfg("no_outputs")
        g.input("x", 0)
        found = _by_rule(lint_dfg(g, "unit"), "MAP001")
        assert found and found[0].severity is Severity.ERROR

    def test_illegal_retimed_feedback(self):
        g = Dfg("ident")
        x = g.input("x", 0)
        g.output("x", g.add(x, g.const(0)))
        function = SplFunction(g, retimed_feedback_ii=0)
        found = _by_rule(lint_function(function, "unit"), "MAP002")
        assert found and found[0].severity is Severity.ERROR

    def test_stateful_instance_shared_across_slots(self):
        function = _stateful_function()
        found = _by_rule(check_shared_state(
            {(0, 1): function, (1, 1): function}, "unit"), "MAP003")
        assert found and found[0].severity is Severity.ERROR

    def test_stateless_instance_may_be_shared(self):
        function = identity_function()
        assert check_shared_state(
            {(0, 1): function, (1, 1): function}, "unit") == []

    def test_library_function_maps_cleanly(self):
        assert lint_function(mac2_function(), "unit") == []


# -- reporters ----------------------------------------------------------------


class TestReporters:
    def test_text_report_sorts_errors_first(self):
        def build(a):
            a.label("dead")  # LBL001 note
            a.add("r1", "r2", "r0")  # REG001 warning
            # no halt: CFG002 error
        text = render_text(lint_program(_program(build)))
        lines = text.splitlines()
        assert lines[0].startswith("error[CFG002]")
        assert lines[-1] == "1 errors, 1 warnings, 1 notes"

    def test_json_report_schema(self):
        import json
        diags = lint_program(_program(lambda a: a.li("r1", 1)))
        record = json.loads(render_json(diags))
        assert record["schema"] == 1
        assert record["counts"]["error"] == 1
        entry = record["diagnostics"][0]
        assert entry["rule"] == "CFG002"
        assert entry["severity"] == "error"
        assert entry["program"] == "fixture"

    def test_locations_are_clickable(self):
        diags = lint_program(_program(lambda a: a.li("r1", 1)),
                             unit="bench/variant")
        assert "bench/variant fixture@0" in diags[0].render()


# -- engine pre-flight --------------------------------------------------------


def broken_spec():
    """Factory used via module:function requests: program lacks a halt."""
    a = Asm("preflight_broken")
    a.li("r1", 1)
    workload = Workload("preflight_broken", MemoryImage(),
                        [ThreadSpec(a.assemble(), 0)])
    return RunSpec(name="preflight_broken", workload=workload,
                   system=seq_system())


class TestEnginePreflight:
    def test_lint_error_blocks_dispatch(self):
        from repro.experiments.engine import (ExperimentEngine, SpecError,
                                              request)
        engine = ExperimentEngine(jobs=1, use_cache=False, lint=True)
        out = engine.run_batch(
            [request("tests.test_analysis:broken_spec")], strict=False)
        assert isinstance(out[0], SpecError)
        assert out[0].exception_type == "LintError"
        assert "CFG002" in out[0].traceback_text
        assert engine.simulated == 0

    def test_no_lint_escape_hatch_reaches_simulation(self):
        from repro.experiments.engine import (ExperimentEngine, SpecError,
                                              request)
        engine = ExperimentEngine(jobs=1, use_cache=False, lint=False)
        out = engine.run_batch(
            [request("tests.test_analysis:broken_spec")], strict=False)
        assert isinstance(out[0], SpecError)
        assert out[0].exception_type != "LintError"

    def test_cli_no_lint_flag(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["run", "wc", "seq", "--no-lint"])
        assert args.no_lint
        args = build_parser().parse_args(["figure", "10"])
        assert not args.no_lint


# -- cfg internals ------------------------------------------------------------


class TestCfg:
    def test_blocks_and_reachability(self):
        def build(a):
            loop = a.fresh_label("loop")
            a.li("r1", 3)
            a.label(loop)
            a.addi("r1", "r1", -1)
            a.bnez("r1", loop)
            a.halt()
        cfg = Cfg(_program(build))
        assert len(cfg.blocks) == 3
        assert cfg.reachable == {0, 1, 2}
        assert not cfg.falls_off_end()

    def test_indirect_jump_degrades_gracefully(self):
        def build(a):
            a.li("r1", 2)
            a.jr("r1")
            a.halt()
        cfg = Cfg(_program(build))
        assert cfg.has_indirect
        # jr makes reachability under-approximate; everything is kept.
        assert cfg.reachable == set(range(len(cfg.blocks)))
