"""Registry-wide lint sweep: every benchmark x variant must verify clean.

This is the static half of the acceptance gate — it builds (but never
simulates) every spec the registry can produce and asserts the verifier
finds nothing at error or warning severity.
"""

import json

import pytest

from repro.analysis import (Severity, lint_library, lint_registry,
                            render_text)
from repro.cli import main
from repro.workloads import registry


@pytest.mark.parametrize("bench", sorted(registry.REGISTRY))
def test_benchmark_lints_clean(bench):
    diagnostics = lint_registry([bench], include_library=False)
    problems = [diag for diag in diagnostics
                if diag.severity is not Severity.NOTE]
    assert not problems, "\n" + render_text(problems)


def test_spl_library_lints_clean():
    assert lint_library() == []


def test_cli_lint_text(capsys):
    assert main(["lint", "--bench", "wc"]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out


def test_cli_lint_json(capsys):
    assert main(["lint", "--bench", "wc", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["schema"] == 1
    assert record["counts"]["error"] == 0


def test_cli_lint_rejects_unknown_benchmark():
    with pytest.raises(SystemExit, match="unknown benchmarks"):
        main(["lint", "--bench", "nope"])
