"""Tests for the dynamic fabric manager, machine reports, and ASCII plots."""

from repro.common.config import remap_system
from repro.core.compile import compile_expression
from repro.core.manager import FabricManager, attach_fabric_manager
from repro.experiments.plots import ascii_plot
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system import Machine, Workload
from repro.system.report import core_summary, fabric_summary, machine_report


def _stream_program(name, src, dst, n, config):
    a = Asm(name)
    a.li("r1", src)
    a.li("r2", dst)
    a.li("r3", 0)
    a.li("r4", n)
    a.label("loop")
    a.spl_loadm("r1", 0)
    a.spl_init(config)
    a.spl_recv("r5")
    a.sw("r5", "r2", 0)
    a.addi("r1", "r1", 4)
    a.addi("r2", "r2", 4)
    a.addi("r3", "r3", 1)
    a.blt("r3", "r4", "loop")
    a.halt()
    return a.assemble()


def _mixed_function_workload(n=96):
    """Four threads, two different fabric functions (thrash-prone)."""
    image = MemoryImage()
    fn_a = compile_expression("o = x * 3 + 1;", inputs={"x": 0}, name="fa")
    fn_b = compile_expression("o = max(x, -x) - 2;", inputs={"x": 0},
                              name="fb")
    sources, dests, expected = [], [], []
    for tid in range(4):
        values = [(tid * 11 + i * 7) % 300 - 150 for i in range(n)]
        sources.append(image.alloc_words(values))
        dests.append(image.alloc_zeroed(n))
        if tid % 2 == 0:
            expected.append([v * 3 + 1 for v in values])
        else:
            expected.append([abs(v) - 2 for v in values])

    def setup(machine):
        for core in range(4):
            machine.configure_spl(core, 1, fn_a if core % 2 == 0 else fn_b)

    threads = [ThreadSpec(_stream_program(f"t{t}", sources[t], dests[t],
                                          n, 1), thread_id=t + 1)
               for t in range(4)]
    workload = Workload("mixed", image, threads, placement=[0, 1, 2, 3],
                        setup=setup)
    return workload, dests, expected


class TestFabricManager:
    def _run(self, managed, n=96, interval=512):
        workload, dests, expected = _mixed_function_workload(n)
        machine = Machine(remap_system())
        machine.load(workload)
        if managed:
            attach_fabric_manager(machine, 0, interval=interval)
        cycles = machine.run(max_cycles=3_000_000)
        for dst, exp in zip(dests, expected):
            assert machine.memory.read_words(dst, n) == exp
        return machine, cycles

    def test_manager_repartitions_mixed_demand(self):
        machine, _ = self._run(managed=True)
        assert machine.stats.find("mgr0").get("repartitions") >= 1
        controller = machine.clusters[0].controller
        assert len(controller.partitions) >= 2

    def test_manager_reduces_reconfiguration_thrash(self):
        unmanaged, cycles_static = self._run(managed=False)
        managed, cycles_managed = self._run(managed=True)
        static_reconfigs = unmanaged.stats.find("spl0").get(
            "reconfigurations")
        managed_reconfigs = managed.stats.find("spl0").get(
            "reconfigurations")
        assert managed_reconfigs < static_reconfigs
        assert cycles_managed < cycles_static

    def test_homogeneous_demand_keeps_shared_fabric(self):
        """All four threads on one function: the manager must not split."""
        image = MemoryImage()
        fn = compile_expression("o = x + 5;", inputs={"x": 0})
        n = 64
        dests = []
        threads = []
        for tid in range(4):
            values = list(range(n))
            src = image.alloc_words(values)
            dst = image.alloc_zeroed(n)
            dests.append(dst)
            threads.append(ThreadSpec(
                _stream_program(f"t{tid}", src, dst, n, 1),
                thread_id=tid + 1))
        workload = Workload(
            "homog", image, threads, placement=[0, 1, 2, 3],
            setup=lambda m: [m.configure_spl(c, 1, fn) for c in range(4)])
        machine = Machine(remap_system())
        machine.load(workload)
        attach_fabric_manager(machine, 0, interval=256)
        machine.run(max_cycles=3_000_000)
        assert len(machine.clusters[0].controller.partitions) == 1


class TestReports:
    def _machine(self):
        workload, dests, expected = _mixed_function_workload(n=32)
        machine = Machine(remap_system())
        machine.load(workload)
        machine.run(max_cycles=3_000_000)
        return machine

    def test_core_summary(self):
        machine = self._machine()
        summary = core_summary(machine, 0)
        assert 0 < summary["ipc"] <= 2
        assert 0 <= summary["branch_accuracy"] <= 1
        assert "l1d_hit_rate" in summary

    def test_fabric_summary(self):
        machine = self._machine()
        summary = fabric_summary(machine, 0)
        assert summary["issues"] == 4 * 32
        assert 0 < summary["row_utilization"] <= 1

    def test_machine_report_text(self):
        machine = self._machine()
        text = machine_report(machine)
        assert "IPC" in text and "spl 0" in text

    def test_idle_core_skipped(self):
        machine = self._machine()
        assert core_summary(machine, 7) is None


class TestAsciiPlot:
    def test_plot_renders_all_series(self):
        series = {"sizes": [8, 16, 32],
                  "Seq": [100.0, 200.0, 400.0],
                  "Barrier-p8": [50.0, 60.0, 80.0]}
        text = ascii_plot(series)
        assert "S = Seq" in text and "w = Barrier-p8" in text
        assert "8" in text and "32" in text

    def test_log_and_linear(self):
        series = {"sizes": [1, 2], "a": [1.0, 1000.0]}
        assert ascii_plot(series, log_y=True) != \
            ascii_plot(series, log_y=False)

    def test_empty(self):
        assert "nothing" in ascii_plot({"sizes": [1], "a": [None]})
