"""Regenerate tests/golden/perfetto_shape.json from the current exporter.

Run deliberately after an intentional track-layout change::

    PYTHONPATH=src python -m tests.regen_perfetto_golden
"""

import json

from tests.test_obs_perfetto import GOLDEN, traced_run


def main() -> None:
    _machine, sink = traced_run()
    with open(GOLDEN, "w", encoding="utf-8") as handle:
        json.dump(sink.shape(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    main()
