"""Golden-model validation of the workload programs themselves.

Runs each benchmark's sequential program on the *interpreter* (no pipeline
at all) and applies the workload's own check.  This separates program bugs
from pipeline bugs: if these pass and the simulator diverges, the pipeline
is at fault, and vice versa.
"""

import pytest

from repro.isa.interpreter import Interpreter
from repro.mem.memory import MainMemory
from repro.workloads import registry

_SIZES = {
    "g721enc": {"items": 6}, "g721dec": {"items": 6},
    "mpeg2enc": {"items": 4}, "mpeg2dec": {"items": 24},
    "gsmtoast": {"items": 16}, "gsmuntoast": {"items": 12},
    "libquantum": {"items": 4, "passes": 2},
    "wc": {"items": 32}, "unepic": {"items": 32}, "cjpeg": {"items": 32},
    "adpcm": {"items": 48}, "twolf": {"items": 32},
    "hmmer": {"M": 48, "R": 2}, "astar": {"items": 24},
    "ll2": {"n": 16, "passes": 2}, "ll3": {"n": 32, "passes": 2},
    "ll6": {"n": 12, "passes": 2}, "dijkstra": {"n": 12},
}


@pytest.mark.parametrize("bench", sorted(_SIZES))
def test_seq_program_on_interpreter(bench):
    info = registry.REGISTRY[bench]
    spec = info.variants["seq"](**_SIZES[bench])
    workload = spec.workload
    memory = MainMemory()
    memory.load_image(workload.image)
    for thread in workload.threads:
        interp = Interpreter(thread.program, memory,
                             max_steps=30_000_000)
        for name, value in thread.int_regs.items():
            from repro.isa.instruction import reg_index
            interp.int_regs[reg_index(name)] = value
        steps = interp.run()
        assert steps > 0
    workload.check(memory)


def test_interpreter_instruction_counts_reasonable():
    """The interpreter's dynamic instruction count should be within the
    same order as the pipeline's retired count for the same program."""
    from repro.experiments.runner import execute
    info = registry.REGISTRY["wc"]
    spec = info.variants["seq"](items=32)
    result = execute(spec)
    retired = result.stats.find("cpu0").get("retired")

    spec2 = info.variants["seq"](items=32)
    memory = MainMemory()
    memory.load_image(spec2.workload.image)
    interp = Interpreter(spec2.workload.threads[0].program, memory)
    steps = interp.run()
    assert steps == retired  # identical architectural instruction stream
