"""Unit tests for SPL queues, tables, the barrier bus, and the controller."""

import pytest

from repro.common.config import SplConfig, spl_config
from repro.common.errors import ConfigError, SplError
from repro.common.stats import Stats
from repro.core.controller import SplClusterController
from repro.core.dfg import DfgOp
from repro.core.function import (barrier_reduce_function, identity_function)
from repro.core.queues import (BEAT_BYTES, ENTRY_BYTES, InputQueue,
                               OutputQueue, SplRequest, StagingEntry)
from repro.core.tables import (MAX_IN_FLIGHT, BarrierBus, BarrierTable,
                               ThreadToCoreTable)


class TestStaging:
    def test_write_and_seal(self):
        staging = StagingEntry()
        staging.write_word(0x11223344, 0)
        staging.write_word(-1, 4)
        assert not staging.empty
        data, valid, ready = staging.seal()
        assert data[:4] == bytes([0x44, 0x33, 0x22, 0x11])
        assert valid == 0xFF
        assert staging.empty

    def test_ready_tracking(self):
        staging = StagingEntry()
        staging.write_word(1, 0, ready=100)
        staging.write_word(2, 4, ready=50)
        _, _, ready = staging.seal()
        assert ready == 100

    def test_offset_bounds(self):
        staging = StagingEntry()
        staging.write_word(1, ENTRY_BYTES - 4)
        with pytest.raises(SplError):
            staging.write_word(1, ENTRY_BYTES - 3)

    def test_beats(self):
        assert StagingEntry.beats(0xF) == 1
        assert StagingEntry.beats(0xF << BEAT_BYTES) == 2


class TestQueues:
    def test_input_queue_fifo(self):
        queue = InputQueue(2)
        r1 = SplRequest(1, bytes(32), 0xF, 0, 0)
        r2 = SplRequest(2, bytes(32), 0xF, 0, 1)
        queue.push(r1)
        queue.push(r2)
        assert queue.full
        assert queue.head() is r1
        assert queue.pop() is r1
        assert queue.pop() is r2
        assert queue.empty

    def test_input_queue_overflow(self):
        queue = InputQueue(1)
        queue.push(SplRequest(1, bytes(32), 0xF, 0, 0))
        with pytest.raises(SplError):
            queue.push(SplRequest(1, bytes(32), 0xF, 0, 0))

    def test_output_queue(self):
        queue = OutputQueue(3)
        assert queue.pop() is None
        queue.push_words([1, 2])
        assert not queue.space_for(2)
        assert queue.space_for(1)
        assert queue.pop() == 1
        with pytest.raises(SplError):
            queue.push_words([3, 4, 5])


class TestThreadToCoreTable:
    def test_lookup(self):
        table = ThreadToCoreTable(4)
        table.set_thread(2, 55, app_id=1)
        assert table.lookup(55) == 2
        assert table.lookup(56) is None

    def test_inflight_blocks_switch_out(self):
        table = ThreadToCoreTable(4)
        table.set_thread(0, 5)
        assert table.try_reserve(0)
        assert not table.can_switch_out(0)
        with pytest.raises(SplError):
            table.set_thread(0, None)
        table.release(0)
        table.set_thread(0, None)  # now legal

    def test_inflight_cap(self):
        table = ThreadToCoreTable(4)
        for _ in range(MAX_IN_FLIGHT):
            assert table.try_reserve(1)
        assert not table.try_reserve(1)

    def test_release_underflow(self):
        table = ThreadToCoreTable(4)
        with pytest.raises(SplError):
            table.release(0)

    def test_id_range(self):
        table = ThreadToCoreTable(4, max_ids=256)
        with pytest.raises(SplError):
            table.set_thread(0, 256)


class TestBarrierBus:
    def test_generation_counting(self):
        bus = BarrierBus(bus_latency=0)
        bus.register(1, 1, (10, 11))
        table = BarrierTable(0, bus)
        table.arrive(1, 10, cycle=5)
        assert not table.ready(1, now=5)
        table.arrive(1, 11, cycle=6)
        assert table.ready(1, now=6)
        table.release(1)
        assert not table.ready(1, now=7)  # next generation needs 2 more
        table.arrive(1, 10, cycle=8)
        table.arrive(1, 11, cycle=9)
        assert table.ready(1, now=9)

    def test_cross_cluster_latency(self):
        bus = BarrierBus(bus_latency=10)
        bus.register(2, 1, (1, 2))
        local = BarrierTable(0, bus)
        local.arrive(2, 1, cycle=100)            # local: visible at once
        bus.arrive(2, 2, cluster_id=1, cycle=100)  # remote
        assert not local.ready(2, now=105)       # remote not yet visible
        assert local.ready(2, now=110)

    def test_unregistered_barrier(self):
        bus = BarrierBus(10)
        with pytest.raises(SplError):
            bus.participants(9)

    def test_wrong_thread_rejected(self):
        bus = BarrierBus(10)
        bus.register(1, 1, (5,))
        with pytest.raises(SplError):
            bus.arrive(1, 6, 0, 0)


def _controller(**kwargs) -> SplClusterController:
    config = spl_config()
    bus = BarrierBus(config.barrier_bus_latency)
    controller = SplClusterController(0, config, bus, Stats("spl"))
    for slot in range(4):
        controller.table.set_thread(slot, slot + 1, app_id=1)
    return controller


def _drain(controller, cycles=2000, start=0):
    for cycle in range(start, start + cycles):
        controller.tick(cycle)


class TestController:
    def test_roundtrip_computation(self):
        controller = _controller()
        fn = identity_function()
        controller.configure(0, 1, fn)
        port = controller.ports[0]
        assert port.stage_load(77, 0, 0)
        assert port.init(1, 0)
        _drain(controller, 100)
        assert port.recv(100) == 77

    def test_unbound_config_raises(self):
        controller = _controller()
        with pytest.raises(SplError):
            controller.ports[0].init(3, 0)

    def test_dest_absent_blocks_init(self):
        controller = _controller()
        controller.configure(0, 1, identity_function(), dest_thread=99)
        controller.ports[0].stage_load(1, 0, 0)
        assert not controller.ports[0].init(1, 0)
        assert controller.stats.get("dest_absent_stalls") == 1

    def test_routing_to_consumer(self):
        controller = _controller()
        controller.configure(0, 1, identity_function(), dest_thread=3)
        controller.ports[0].stage_load(5, 0, 0)
        assert controller.ports[0].init(1, 0)
        assert not controller.can_switch_out(2)  # in-flight to slot 2
        _drain(controller, 100)
        assert controller.ports[2].recv(100) == 5
        assert controller.can_switch_out(2)

    def test_round_robin_fairness(self):
        controller = _controller()
        fn = identity_function()
        for slot in range(4):
            controller.configure(slot, 1, fn)
            for _ in range(3):
                controller.ports[slot].stage_load(slot, 0, 0)
                controller.ports[slot].init(1, 0)
        _drain(controller, 400)
        for slot in range(4):
            for _ in range(3):
                assert controller.ports[slot].recv(400) == slot

    def test_reconfiguration_cost_counted(self):
        controller = _controller()
        fn_a = identity_function("a")
        fn_b = identity_function("b")
        controller.configure(0, 1, fn_a)
        controller.configure(0, 2, fn_b)
        port = controller.ports[0]
        port.stage_load(1, 0, 0)
        port.init(1, 0)
        port.stage_load(2, 0, 0)
        port.init(2, 0)
        _drain(controller, 400)
        assert controller.stats.get("reconfigurations") == 2
        assert port.recv(400) == 1
        assert port.recv(400) == 2

    def test_partition_validation(self):
        controller = _controller()
        with pytest.raises(ConfigError):
            controller.set_partitions([30])
        with pytest.raises(ConfigError):
            controller.set_partitions([6] * 5)
        with pytest.raises(ConfigError):
            controller.set_partitions([12, 12], [0, 0, 2, 1])

    def test_partitions_isolate_functions(self):
        controller = _controller()
        controller.set_partitions([12, 12], [0, 0, 1, 1])
        fn_a = identity_function("a")
        fn_b = identity_function("b")
        controller.configure(0, 1, fn_a)
        controller.configure(2, 1, fn_b)
        controller.ports[0].stage_load(10, 0, 0)
        controller.ports[0].init(1, 0)
        controller.ports[2].stage_load(20, 0, 0)
        controller.ports[2].init(1, 0)
        _drain(controller, 200)
        # Different partitions never reconfigure against each other.
        assert controller.stats.get("reconfigurations") == 2  # one each
        assert controller.ports[0].recv(200) == 10
        assert controller.ports[2].recv(200) == 20

    def test_barrier_reduce_all_slots(self):
        controller = _controller()
        bus = controller.barrier_bus
        bus.register(7, 1, (1, 2, 3, 4))
        fn = barrier_reduce_function(4, DfgOp.MIN)
        for slot in range(4):
            controller.configure(slot, 2, fn, barrier_id=7)
        values = [40, 10, 30, 20]
        for slot in range(3):
            controller.ports[slot].stage_load(values[slot], 0, 0)
            controller.ports[slot].init(2, 0)
        _drain(controller, 100)
        # Not released until the last participant arrives.
        assert all(controller.ports[s].recv(100) is None for s in range(4))
        controller.ports[3].stage_load(values[3], 0, 100)
        controller.ports[3].init(2, 100)
        _drain(controller, 200, start=100)
        for slot in range(4):
            assert controller.ports[slot].recv(300) == 10

    def test_barrier_executes_across_partitions(self):
        controller = _controller()
        controller.set_partitions([6, 6, 6, 6], [0, 1, 2, 3])
        bus = controller.barrier_bus
        bus.register(3, 1, (1, 2, 3, 4))
        fn = barrier_reduce_function(4, DfgOp.ADD)
        for slot in range(4):
            controller.configure(slot, 2, fn, barrier_id=3)
            controller.ports[slot].stage_load(slot + 1, 0, 0)
            controller.ports[slot].init(2, 0)
        _drain(controller, 300)
        for slot in range(4):
            assert controller.ports[slot].recv(300) == 10

    def test_stateful_sequences_through_queue(self):
        from repro.core.dfg import Dfg
        from repro.core.function import SplFunction
        g = Dfg("acc")
        x = g.input("x", 0)
        d = g.delay(init=0)
        total = g.add(d, x)
        g.set_delay_source(d, total)
        g.output("o", total)
        fn = SplFunction(g)
        controller = _controller()
        controller.configure(0, 1, fn)
        port = controller.ports[0]
        for cycle, value in ((0, 1), (4, 2), (8, 3)):
            port.stage_load(value, 0, cycle)
            port.init(1, cycle)
        _drain(controller, 300)
        assert [port.recv(300) for _ in range(3)] == [1, 3, 6]


class TestAppIdIsolation:
    def test_wrong_app_rejected(self):
        bus = BarrierBus(bus_latency=0)
        bus.register(4, 7, (1, 2))
        table = BarrierTable(0, bus)
        table.arrive(4, 1, cycle=0, app_id=7)  # correct app
        with pytest.raises(SplError):
            table.arrive(4, 2, cycle=0, app_id=8)  # wrong application

    def test_controller_passes_app_id(self):
        controller = _controller()
        controller.barrier_bus.register(6, 99, (1, 2, 3, 4))
        from repro.core.function import barrier_token_function
        fn = barrier_token_function(4)
        controller.configure(0, 2, fn, barrier_id=6)
        # The cores were registered with app_id=1; the barrier wants 99.
        controller.ports[0].stage_load(0, 0, 0)
        with pytest.raises(SplError):
            controller.ports[0].init(2, 0)
