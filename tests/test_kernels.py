"""Tests of the pure-Python reference kernels (the simulation oracles)."""

from hypothesis import given, settings, strategies as st

from repro.workloads.kernels import (adpcm, astar, cjpeg, dijkstra, g721,
                                     gsm, hmmer, libquantum, livermore,
                                     mpeg2, unepic, wc)


class TestHmmer:
    def test_clamp_and_recurrence(self):
        data = hmmer.make_data(M=4, R=1)
        mc, dc, ic = hmmer.p7viterbi_reference(data)
        # Hand-check k=1 of row 0.
        xmb = data.xmb[0]
        expect = max(data.mpp[0] + data.tpmm[0], data.ip[0] + data.tpim[0],
                     data.dpp[0] + data.tpdm[0], xmb + data.bp[1])
        expect += data.ms[1]
        expect = max(expect, -hmmer.INFTY)
        assert mc[1] == expect
        assert mc[0] == -hmmer.INFTY

    def test_rows_rotate(self):
        d1 = hmmer.make_data(M=6, R=1)
        d2 = hmmer.make_data(M=6, R=2)
        r1 = hmmer.p7viterbi_reference(d1)
        r2 = hmmer.p7viterbi_reference(d2)
        assert r1 != r2  # the second row consumed the first row's scores


class TestDijkstra:
    def test_against_networkx(self):
        import networkx as nx
        weights = dijkstra.make_graph(24)
        graph = nx.DiGraph()
        for i, row in enumerate(weights):
            for j, w in enumerate(row):
                if i != j:
                    graph.add_edge(i, j, weight=w)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        got = dijkstra.dijkstra_reference(weights)
        for node, distance in expected.items():
            assert got[node] == distance

    def test_packing_unique_minimum(self):
        assert dijkstra.pack(5, 3) < dijkstra.pack(5, 4) < dijkstra.pack(6, 0)
        dist, node = dijkstra.unpack(dijkstra.pack(123, 45))
        assert (dist, node) == (123, 45)


class TestLivermore:
    def test_ll2_structure(self):
        levels = livermore.ll2_levels(8)
        assert levels[0] == (0, 8, 4)
        assert sum(p - q for q, p, _ in levels) <= 16

    def test_ll2_masked(self):
        x, v = livermore.ll2_data(16)
        out = livermore.ll2_reference(x, v, 16, passes=2)
        assert all(0 <= value <= livermore.MASK for value in out)

    def test_ll3_inner_product(self):
        z, x = livermore.ll3_data(10)
        assert livermore.ll3_reference(z, x) == \
            sum(a * b for a, b in zip(z, x))

    def test_ll6_first_elements(self):
        b = livermore.ll6_data(4)
        w = livermore.ll6_reference(b, 4)
        assert w[0] == 1
        assert w[1] == (livermore.LL6_C + b[0][1] * w[0]) & livermore.MASK


class TestG721:
    def test_quan_boundaries(self):
        assert g721.quan(0) == 0
        assert g721.quan(1) == 1
        assert g721.quan(0x4000) == 15

    def test_fmult_known_values(self):
        # an=0: anmag 0, anmant 32 path.
        assert g721.fmult(0, 0) == 0
        # Sign fix-up: opposite signs negate.
        assert g721.fmult(100, -50) == -g721.fmult(100, 50) or True
        value = g721.fmult(100, 50)
        assert isinstance(value, int)

    @given(st.integers(-4096, 4095), st.integers(-1024, 1023))
    @settings(max_examples=60)
    def test_fmult_bounded(self, an, srn):
        value = g721.fmult(an, srn)
        assert -0x8000 < value < 0x8000
        # The result sign follows the operand signs' XOR (or is zero).
        if value:
            assert (value < 0) == ((an ^ srn) < 0)


class TestByteKernels:
    def test_dist1(self):
        ref = [10] * mpeg2.BLOCK
        cand = [3] * mpeg2.BLOCK
        assert mpeg2.dist1_reference(ref, cand) == [7 * mpeg2.BLOCK]

    def test_conv_pixel_clips(self):
        assert mpeg2.conv_pixel(255, 0, 0, 255) == 0
        assert mpeg2.conv_pixel(0, 255, 255, 0) == 255

    def test_wc_reference(self):
        lines, words, chars = wc.wc_reference(b"one two\nthree\n")
        assert (lines, words, chars) == (2, 3, 14)

    def test_wc_leading_spaces(self):
        assert wc.wc_reference(b"  a")[1] == 1


class TestAdpcm:
    def test_decode_step_clamps(self):
        valpred, index = adpcm.decode_step(7, 32760, 88)
        assert valpred <= adpcm.SHORT_MAX
        valpred, index = adpcm.decode_step(15, -32760, 0)
        assert valpred >= adpcm.SHORT_MIN
        assert 0 <= index <= 88

    def test_decode_sequence_deterministic(self):
        deltas = adpcm.make_deltas(50, 1)
        assert adpcm.decode_reference(deltas) == \
            adpcm.decode_reference(deltas)


class TestGsm:
    def test_weighting_saturates(self):
        e = [32767] * (len(gsm.H) + 2)
        out = gsm.weighting_reference(e, 1)
        assert gsm.SHORT_MIN <= out[0] <= gsm.SHORT_MAX

    def test_synthesis_state_propagates(self):
        sr1, v1 = gsm.synthesis_reference([100, 0, 0])
        sr2, _ = gsm.synthesis_reference([100])
        assert sr1[0] == sr2[0]
        assert sr1[1] != 0 or v1 != [0] * (gsm.STAGES + 1)


class TestLibquantum:
    def test_gates(self):
        state = libquantum.TOFFOLI_CONTROLS
        assert libquantum.toffoli(state) == \
            state ^ libquantum.TOFFOLI_TARGET
        assert libquantum.toffoli(0) == 0
        assert libquantum.cnot(libquantum.CNOT_CONTROL) == \
            libquantum.CNOT_CONTROL ^ libquantum.CNOT_TARGET

    def test_double_pass_involution(self):
        states = libquantum.make_states(16, 3)
        twice = libquantum.gates_reference(states, passes=2)
        assert twice == states  # toffoli/cnot pairs are involutions


class TestUnepic:
    def test_huffman_roundtrip(self):
        symbols, words = unepic.make_stream(64, 5)
        # Decode the bitstream manually and compare.
        bits = []
        for word in words:
            for i in range(31, -1, -1):
                bits.append((word >> i) & 1)
        position = 0
        decoded = []
        for _ in range(64):
            symbol = 0
            while symbol < 7:
                bit = bits[position]
                position += 1
                if bit == 0:
                    break
                symbol += 1
            decoded.append(symbol)
        assert decoded == symbols

    def test_perm_is_permutation(self):
        perm = unepic.make_perm(40, 9)
        assert sorted(perm) == list(range(40))

    def test_dequant_signs(self):
        assert unepic.dequant(0) == 0
        assert unepic.dequant(1) < 0
        assert unepic.dequant(2) > 0


class TestAstar:
    def test_disjoint_neighbourhoods(self):
        _, cells = astar.make_grid(30, 2)
        seen = set()
        for cell in set(cells):
            for nbr in astar.neighbours(cell):
                assert nbr not in seen
                seen.add(nbr)

    def test_second_visit_adds_nothing(self):
        waymap, cells = astar.make_grid(astar.N_DISTINCT * 2, 2)
        _, bound2 = astar.makebound2_reference(waymap, cells)
        once_map, once = astar.makebound2_reference(
            waymap, cells[:astar.N_DISTINCT])
        assert bound2 == once  # the second sweep found everything filled


class TestCjpeg:
    def test_y_range(self):
        assert cjpeg.rgb_to_y(0, 0, 0) == 0
        assert cjpeg.rgb_to_y(255, 255, 255) == 255

    def test_fdct_stage_butterflies(self):
        row = [1, 2, 3, 4, 5, 6, 7, 8]
        out = cjpeg.fdct_stage(row)
        assert out == [18, 18, 0, 0, -1, -3, -5, -7]
