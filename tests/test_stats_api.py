"""The redesigned Stats API: declared scopes, handles, totals, merge."""

import pytest

from repro.common.errors import StatsError
from repro.common.stats import Stats, merge_counters


class TestDeclaredScopes:
    def test_declared_keys_start_at_zero(self):
        stats = Stats("core", schema=("cycles", "retired"))
        assert stats.get("cycles") == 0
        stats.bump("cycles")
        assert stats.get("cycles") == 1

    def test_typo_raises_once_declared(self):
        stats = Stats("core", schema=("cycles",))
        with pytest.raises(StatsError):
            stats.bump("cycels")
        with pytest.raises(StatsError):
            stats.set("cycels", 3)
        with pytest.raises(StatsError):
            stats.counter("cycels")

    def test_open_scope_stays_permissive(self):
        stats = Stats("adhoc")
        stats.bump("anything")  # no declaration -> classic behavior
        assert stats.get("anything") == 1

    def test_declare_is_idempotent_union(self):
        stats = Stats("core")
        stats.declare("a")
        stats.declare("b")
        stats.bump("a")
        stats.bump("b")
        with pytest.raises(StatsError):
            stats.bump("c")

    def test_counter_handle_hot_path(self):
        stats = Stats("core", schema=("cycles",))
        handle = stats.counter("cycles")
        for _ in range(5):
            handle.add()
        handle.add(2)
        assert handle.value == 7
        assert stats.get("cycles") == 7


class TestTreeOperations:
    def _tree(self):
        root = Stats("machine")
        cpu0 = root.child("cpu0", schema=("retired",))
        cpu1 = root.child("cpu1", schema=("retired",))
        cpu0.bump("retired", 10)
        cpu1.bump("retired", 20)
        return root

    def test_totals_one_pass_matches_total(self):
        root = self._tree()
        assert root.total("retired") == 30
        assert root.totals()["retired"] == 30

    def test_walk_skips_untouched_declared_keys(self):
        root = Stats("machine")
        root.child("cpu0", schema=("retired", "flushes")).bump("retired")
        flat = root.as_dict()
        assert flat == {"machine.cpu0.retired": 1}

    def test_merge_folds_trees(self):
        a = self._tree()
        b = self._tree()
        a.merge(b)
        assert a.total("retired") == 60
        assert a.find("cpu1").get("retired") == 40

    def test_merge_adopts_new_scopes_and_keys(self):
        a = Stats("machine")
        b = Stats("machine")
        b.child("spl0", schema=("issues",)).bump("issues", 3)
        a.merge(b)
        assert a.find("spl0").get("issues") == 3

    def test_merge_counters_flat(self):
        merged = merge_counters({"m.cpu0.retired": 5},
                                {"m.cpu0.retired": 7, "m.x": 1})
        assert merged == {"m.cpu0.retired": 12, "m.x": 1}
