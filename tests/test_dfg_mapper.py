"""Unit and property tests for DFGs, the row mapper, and SPL functions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MappingError, SplError
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import (SplFunction, barrier_reduce_function,
                                 barrier_token_function, identity_function)
from repro.core.mapper import initiation_interval, map_dfg, virtual_latency
from repro.workloads.spl_lib import hmmer_mc_function


class TestDfgBuilder:
    def test_duplicate_input_rejected(self):
        g = Dfg("t")
        g.input("a", 0)
        with pytest.raises(MappingError):
            g.input("a", 4)

    def test_overlapping_inputs_rejected(self):
        g = Dfg("t")
        g.input("a", 0, width=4)
        with pytest.raises(MappingError):
            g.input("b", 2, width=4)

    def test_groups_allow_same_offset(self):
        g = Dfg("t")
        g.input("a", 0, group="s0")
        g.input("b", 0, group="s1")  # no error

    def test_out_of_range_input(self):
        g = Dfg("t")
        with pytest.raises(MappingError):
            g.input("a", 30, width=4)

    def test_no_outputs_rejected(self):
        g = Dfg("t")
        g.input("a", 0)
        with pytest.raises(MappingError):
            g.validate()

    def test_delay_without_source_rejected(self):
        g = Dfg("t")
        a = g.input("a", 0)
        d = g.delay()
        g.output("o", g.add(a, d))
        with pytest.raises(MappingError):
            g.validate()


class TestDfgEvaluation:
    def test_basic_ops(self):
        g = Dfg("t")
        a = g.input("a", 0)
        b = g.input("b", 4)
        g.output("sum", g.add(a, b))
        g.output("min", g.min_(a, b))
        g.output("max", g.max_(a, b))
        g.output("mul", g.mul(a, b))
        out = g.evaluate({"a": -3, "b": 10})
        assert out == {"sum": 7, "min": -3, "max": 10, "mul": -30}

    def test_select_and_compare(self):
        g = Dfg("t")
        a = g.input("a", 0)
        b = g.input("b", 4)
        cond = g.op(DfgOp.CMPGT, a, b)
        g.output("o", g.select(cond, a, b))
        assert g.evaluate({"a": 5, "b": 2})["o"] == 5
        assert g.evaluate({"a": 1, "b": 2})["o"] == 2

    def test_width_wrapping(self):
        g = Dfg("t")
        a = g.input("a", 0, width=1)
        g.output("o", g.op(DfgOp.ADD, a, g.const(1, 1), width=1))
        assert g.evaluate({"a": 127})["o"] == -128  # signed byte wrap

    def test_variable_shifts(self):
        g = Dfg("t")
        a = g.input("a", 0)
        amount = g.input("n", 4)
        g.output("left", g.op(DfgOp.SHLV, a, amount))
        g.output("right", g.op(DfgOp.SHRV, a, amount))
        out = g.evaluate({"a": 12, "n": 2})
        assert (out["left"], out["right"]) == (48, 3)

    def test_clamp(self):
        g = Dfg("t")
        a = g.input("a", 0)
        g.output("o", g.clamp(a, -10, 10))
        assert g.evaluate({"a": 99})["o"] == 10
        assert g.evaluate({"a": -99})["o"] == -10

    def test_delay_state_evolution(self):
        g = Dfg("acc")
        x = g.input("x", 0)
        acc = g.delay(init=0)
        total = g.add(acc, x)
        g.set_delay_source(acc, total)
        g.output("o", total)
        state = {}
        outs = [g.evaluate({"x": v}, state=state)["o"] for v in (1, 2, 3)]
        assert outs == [1, 3, 6]

    def test_delay_without_state_uses_init(self):
        g = Dfg("t")
        x = g.input("x", 0)
        d = g.delay(init=7)
        g.set_delay_source(d, x)
        g.output("o", g.add(d, x))
        assert g.evaluate({"x": 1})["o"] == 8  # init value, no state kept

    def test_missing_input_rejected(self):
        g = Dfg("t")
        a = g.input("a", 0)
        g.output("o", g.op(DfgOp.PASS, a))
        with pytest.raises(MappingError):
            g.evaluate({})

    @given(st.lists(st.integers(-(2 ** 31), 2 ** 31 - 1),
                    min_size=2, max_size=8))
    @settings(max_examples=25)
    def test_reduction_trees_match_python(self, values):
        for op, fn in ((DfgOp.MIN, min), (DfgOp.MAX, max),
                       (DfgOp.ADD, sum)):
            g = Dfg("red")
            nodes = [g.input(f"v{i}", 0, group=f"s{i}")
                     for i in range(len(values))]
            level = nodes
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level) - 1, 2):
                    nxt.append(g.op(op, level[i], level[i + 1]))
                if len(level) % 2:
                    nxt.append(level[-1])
                level = nxt
            g.output("o", level[0])
            inputs = {f"v{i}": v for i, v in enumerate(values)}
            expected = fn(values)
            from repro.common.utils import to_signed
            assert g.evaluate(inputs)["o"] == to_signed(expected)


class TestMapper:
    def test_hmmer_mc_is_ten_rows(self):
        """Figure 6: the sequential-max mc mapping occupies 10 rows."""
        assert hmmer_mc_function().rows == 10

    def test_single_add_is_one_row(self):
        g = Dfg("t")
        a = g.input("a", 0)
        b = g.input("b", 4)
        g.output("o", g.add(a, b))
        assert map_dfg(g).rows == 1

    def test_minmax_is_two_rows(self):
        g = Dfg("t")
        a = g.input("a", 0)
        b = g.input("b", 4)
        g.output("o", g.max_(a, b))
        assert map_dfg(g).rows == 2

    def test_capacity_spill(self):
        """Five parallel 32-bit adds need 20 cells: two rows."""
        g = Dfg("t")
        nodes = []
        for i in range(5):
            a = g.input(f"a{i}", 0, group=f"s{i}")
            b = g.input(f"b{i}", 4, group=f"s{i}")
            nodes.append(g.add(a, b))
        for i, node in enumerate(nodes):
            g.output(f"o{i}", node)
        assert map_dfg(g).rows == 2

    def test_cell_cost_overflow_rejected(self):
        g = Dfg("t")
        a = g.input("a", 0)
        node = g.op(DfgOp.PASS, a)
        node.width = 40  # wider than a row
        g.output("o", node)
        with pytest.raises(MappingError):
            map_dfg(g)

    def test_virtualization_math(self):
        assert virtual_latency(10, 24) == 10
        assert initiation_interval(10, 24) == 1
        assert initiation_interval(30, 24) == 2
        assert initiation_interval(30, 6) == 5
        with pytest.raises(MappingError):
            initiation_interval(10, 0)

    def test_feedback_ii(self):
        g = Dfg("t")
        x = g.input("x", 0)
        d = g.delay()
        total = g.add(d, x)          # level 1
        deep = g.mul(total, total)   # levels 2-5
        g.set_delay_source(d, deep)
        g.output("o", deep)
        mapping = map_dfg(g)
        assert mapping.feedback_ii == 5


class TestSplFunction:
    def test_identity_routes_words(self):
        fn = identity_function(n_words=2)
        data = (5).to_bytes(4, "little") + (-9).to_bytes(
            4, "little", signed=True) + bytes(24)
        assert fn.evaluate_entry(data, 0xFF) == [5, -9]

    def test_invalid_bytes_rejected(self):
        fn = identity_function()
        with pytest.raises(SplError):
            fn.evaluate_entry(bytes(32), 0x0)  # nothing valid

    def test_barrier_token(self):
        fn = barrier_token_function(4)
        assert fn.is_barrier
        entries = {slot: ((1).to_bytes(4, "little") + bytes(28), 0xF)
                   for slot in range(4)}
        assert fn.evaluate_barrier(entries) == [1]

    def test_barrier_reduce_min(self):
        fn = barrier_reduce_function(4, DfgOp.MIN)
        entries = {}
        for slot, value in enumerate([7, -2, 9, 3]):
            entries[slot] = (value.to_bytes(4, "little", signed=True)
                             + bytes(28), 0xF)
        assert fn.evaluate_barrier(entries) == [-2]

    def test_barrier_on_regular_entry_rejected(self):
        fn = barrier_reduce_function(2, DfgOp.ADD)
        with pytest.raises(SplError):
            fn.evaluate_entry(bytes(32), 0xF)

    def test_regular_on_barrier_api_rejected(self):
        fn = identity_function()
        with pytest.raises(SplError):
            fn.evaluate_barrier({0: (bytes(32), 0xF)})

    def test_stateful_flag_and_reset(self):
        g = Dfg("s")
        x = g.input("x", 0)
        d = g.delay(init=0)
        total = g.add(d, x)
        g.set_delay_source(d, total)
        g.output("o", total)
        fn = SplFunction(g)
        assert fn.is_stateful
        data = (2).to_bytes(4, "little") + bytes(28)
        assert fn.evaluate_entry(data, 0xF) == [2]
        assert fn.evaluate_entry(data, 0xF) == [4]
        fn.reset_state()
        assert fn.evaluate_entry(data, 0xF) == [2]

    def test_retimed_feedback_override(self):
        g = Dfg("s")
        x = g.input("x", 0)
        d = g.delay(init=0)
        total = g.add(d, g.mul(x, x))
        g.set_delay_source(d, total)
        g.output("o", total)
        assert SplFunction(g).feedback_ii == 5
        assert SplFunction(g, retimed_feedback_ii=2).feedback_ii == 2


class TestMappingStrategies:
    def _random_graph(self, seed, n_ops=14):
        import random
        rng = random.Random(seed)
        from repro.core.dfg import Dfg, DfgOp
        g = Dfg(f"rand{seed}")
        pool = [g.input(f"i{k}", 0, group=f"s{k}") for k in range(4)]
        ops = [DfgOp.ADD, DfgOp.SUB, DfgOp.MAX, DfgOp.MIN, DfgOp.MUL,
               DfgOp.AND, DfgOp.XOR]
        for _ in range(n_ops):
            a, b = rng.choice(pool), rng.choice(pool)
            pool.append(g.op(rng.choice(ops), a, b,
                             width=rng.choice((1, 2, 4))))
        g.output("o", pool[-1])
        # keep a couple of extra live outputs to stress capacity
        g.output("p", pool[len(pool) // 2])
        return g

    def test_both_strategies_valid_on_random_graphs(self):
        from repro.core.mapper import map_dfg, verify_mapping
        for seed in range(12):
            g = self._random_graph(seed)
            for strategy in ("asap", "priority"):
                mapping = map_dfg(g, strategy=strategy)
                verify_mapping(g, mapping)

    def test_priority_never_much_worse(self):
        from repro.core.mapper import map_dfg
        for seed in range(12):
            g = self._random_graph(seed)
            asap = map_dfg(g, strategy="asap").rows
            priority = map_dfg(g, strategy="priority").rows
            assert priority <= asap + 2

    def test_priority_packs_contended_graph(self):
        """Many wide parallel chains: priority scheduling should not be
        worse than construction order."""
        from repro.core.dfg import Dfg, DfgOp
        from repro.core.mapper import map_dfg
        g = Dfg("contended")
        outs = []
        # one long chain + several short wide ops competing for cells
        node = g.input("a", 0)
        for _ in range(5):
            node = g.op(DfgOp.MUL, node, g.const(3))
        outs.append(node)
        for k in range(6):
            x = g.input(f"b{k}", 0, group=f"g{k}")
            outs.append(g.op(DfgOp.ADD, x, g.const(k)))
        for index, out in enumerate(outs):
            g.output(f"o{index}", out)
        assert map_dfg(g, strategy="priority").rows <= \
            map_dfg(g, strategy="asap").rows

    def test_unknown_strategy_rejected(self):
        from repro.core.mapper import map_dfg
        g = self._random_graph(0)
        with pytest.raises(MappingError):
            map_dfg(g, strategy="zigzag")

    def test_verify_mapping_catches_corruption(self):
        from repro.core.mapper import map_dfg, verify_mapping
        g = Dfg("chain")
        a = g.input("a", 0)
        first = g.add(a, g.const(1))
        second = g.add(first, g.const(2))
        g.output("o", second)
        mapping = map_dfg(g)
        mapping.placement[second.index] = mapping.placement[first.index]
        with pytest.raises(MappingError):
            verify_mapping(g, mapping)

    def test_workload_functions_verify(self):
        from repro.core.mapper import verify_mapping
        from repro.workloads.spl_lib import (hmmer_mc_function,
                                             mac4_function, sad8_function)
        for fn in (hmmer_mc_function(), mac4_function(), sad8_function()):
            verify_mapping(fn.dfg, fn.mapping)


class TestDotExport:
    def test_dot_structure(self):
        dot = hmmer_mc_function().dfg.to_dot()
        assert dot.startswith('digraph "hmmer_mc"')
        assert "in mpp" in dot and "out mc" in dot and "->" in dot

    def test_delay_edges_dashed(self):
        g = Dfg("s")
        x = g.input("x", 0)
        d = g.delay()
        total = g.add(d, x)
        g.set_delay_source(d, total)
        g.output("o", total)
        dot = g.to_dot()
        assert "style=dashed" in dot
