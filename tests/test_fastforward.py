"""Cycle-exact equivalence of the quiescence-aware fast-forward scheduler.

The contract (DESIGN.md, "Scheduler contract"): for every workload the
fast-forward scheduler must produce the *same simulation* as the naive
per-cycle loop — identical final cycle, identical retired-instruction
count, identical stats down to every counter, and an identical cycle-
accounting profile.  These tests sweep the full benchmark registry plus
the paths with scheduler-visible side effects: migration, the deadlock
watchdog, and the observability sinks.
"""

import pytest

from repro.common.config import (RunOptions, SystemConfig, ooo1_cluster,
                                 remap_cluster)
from repro.common.errors import DeadlockError
from repro.experiments.runner import execute
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system import Machine, Workload
from repro.workloads import registry

#: Small spec kwargs per benchmark (mirrors tests/test_workload_variants).
_SMALL = {
    "g721enc": {"items": 10}, "g721dec": {"items": 10},
    "mpeg2enc": {"items": 6}, "mpeg2dec": {"items": 48},
    "gsmtoast": {"items": 32}, "gsmuntoast": {"items": 24},
    "libquantum": {"items": 8, "passes": 3}, "wc": {"items": 64},
    "unepic": {"items": 64}, "cjpeg": {"items": 64},
    "adpcm": {"items": 96}, "twolf": {"items": 64},
    "hmmer": {"M": 48, "R": 2}, "astar": {"items": 48},
}

_COMP_VARIANTS = ("seq", "seq_ooo2", "spl")
_COMM_VARIANTS = ("seq", "seq_ooo2", "spl", "comm", "compcomm", "ooo2comm",
                  "swqueue")

_BARRIER_CASES = [
    ("ll2", "barrier", {"n": 16, "passes": 2, "p": 4}),
    ("ll2", "hwbar", {"n": 16, "passes": 2, "p": 4}),
    ("ll3", "barrier", {"n": 64, "passes": 3, "p": 4}),
    ("ll3", "barrier_comp", {"n": 64, "passes": 3, "p": 8}),
    ("ll3", "hwbar", {"n": 64, "passes": 3, "p": 8}),
    ("ll3", "barrier", {"n": 64, "passes": 2, "p": 16}),
    ("ll6", "barrier", {"n": 16, "passes": 2, "p": 4}),
    ("dijkstra", "barrier", {"n": 20, "p": 16}),
    ("dijkstra", "barrier_comp", {"n": 16, "p": 8}),
    ("dijkstra", "hwbar", {"n": 16, "p": 4}),
]


def _registry_cases():
    cases = []
    for info in registry.computation_only():
        for variant in _COMP_VARIANTS:
            cases.append((info.name, variant, dict(_SMALL[info.name])))
    for info in registry.communicating():
        for variant in _COMM_VARIANTS:
            kwargs = dict(_SMALL[info.name])
            if info.name != "libquantum":
                kwargs.pop("passes", None)
            cases.append((info.name, variant, kwargs))
    return cases + _BARRIER_CASES


def _flat(tree, prefix="", out=None):
    if out is None:
        out = {}
    for key, value in tree.items():
        if isinstance(value, dict):
            _flat(value, prefix + key + ".", out)
        else:
            out[prefix + key] = value
    return out


def _run(bench, variant, kwargs, fast_forward, blockgen=False):
    # Workload images are consumed by execution: build a fresh spec per run.
    spec = registry.REGISTRY[bench].variants[variant](**kwargs)
    return execute(spec, options=RunOptions(fast_forward=fast_forward,
                                            blockgen=blockgen))


@pytest.mark.parametrize(
    "bench,variant,kwargs", _registry_cases(),
    ids=lambda v: v if isinstance(v, str) else "")
def test_differential_sweep(bench, variant, kwargs):
    """Every registry bench x variant: the naive per-cycle loop, the
    fast-forward scheduler, and fast-forward with trace-cache block
    compilation on top (the default configuration) are the same
    simulation — identical final cycle and identical stats tree."""
    naive = _run(bench, variant, kwargs, fast_forward=False)
    flat = _flat(naive.stats.as_dict())
    fast = _run(bench, variant, kwargs, fast_forward=True)
    assert fast.cycles == naive.cycles
    assert _flat(fast.stats.as_dict()) == flat
    fused = _run(bench, variant, kwargs, fast_forward=True, blockgen=True)
    assert fused.cycles == naive.cycles
    assert _flat(fused.stats.as_dict()) == flat


#: SPL-heavy cases for the codegen on/off leg of the sweep (compute-only,
#: communication+computation, and barrier flavours; every SPL evaluation
#: path gets covered without doubling the full-registry sweep).
_CODEGEN_CASES = [
    ("g721dec", "spl", {"items": 10}),
    ("adpcm", "compcomm", {"items": 96}),
    ("gsmtoast", "spl", {"items": 32}),
    ("hmmer", "compcomm", {"M": 48, "R": 2}),
    ("ll3", "barrier_comp", {"n": 64, "passes": 3, "p": 8}),
    ("dijkstra", "barrier", {"n": 20, "p": 16}),
]


@pytest.mark.parametrize(
    "bench,variant,kwargs", _CODEGEN_CASES,
    ids=lambda v: v if isinstance(v, str) else "")
def test_codegen_off_same_simulation(bench, variant, kwargs, monkeypatch):
    """REPRO_NO_CODEGEN=1 (interpreter fallback) is the same simulation.

    The env gate is sampled when SplFunctions are constructed, so it is
    set before the spec is built.  Compiled fast-forward (the default
    production mode) is compared against the interpreted runs under both
    schedulers: identical final cycle and identical stats tree.
    """
    compiled = _run(bench, variant, kwargs, fast_forward=True)
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    interp_naive = _run(bench, variant, kwargs, fast_forward=False)
    interp_ff = _run(bench, variant, kwargs, fast_forward=True)
    assert interp_naive.cycles == compiled.cycles
    assert interp_ff.cycles == compiled.cycles
    flat = _flat(compiled.stats.as_dict())
    assert _flat(interp_naive.stats.as_dict()) == flat
    assert _flat(interp_ff.stats.as_dict()) == flat


# ---------------------------------------------------------------- profiler


def _profiled(bench, variant, kwargs, fast_forward):
    from repro.obs.profile import ProfilerSink
    spec = registry.REGISTRY[bench].variants[variant](**kwargs)
    machine = Machine(spec.system)
    machine.load(spec.workload)
    sink = ProfilerSink()
    machine.obs.attach(sink, ProfilerSink.KINDS)
    cycles = machine.run(max_cycles=spec.max_cycles,
                         fast_forward=fast_forward)
    machine.finish_observation()
    accounting = sink.accounting()
    accounting.verify()  # spans exactly tile the ticked cycles
    return cycles, accounting.rows()


@pytest.mark.parametrize("bench,variant,kwargs", [
    ("ll3", "barrier", {"n": 64, "passes": 3, "p": 4}),
    ("dijkstra", "hwbar", {"n": 16, "p": 4}),
    ("hmmer", "compcomm", {"M": 48, "R": 2}),
    ("g721dec", "seq", {"items": 10}),
])
def test_profiler_identical_under_fast_forward(bench, variant, kwargs):
    """Cycle-accounting rows are bit-identical under both schedulers."""
    naive_cycles, naive_rows = _profiled(bench, variant, kwargs, False)
    ff_cycles, ff_rows = _profiled(bench, variant, kwargs, True)
    assert ff_cycles == naive_cycles
    assert ff_rows == naive_rows


def test_perfetto_events_identical_under_fast_forward():
    """Same Perfetto slices either way (order may differ: elided cores
    close their spans at credit time; 'X' events carry timestamps)."""
    import json

    from repro.obs.perfetto import PERFETTO_KINDS, PerfettoSink

    def trace(fast_forward):
        spec = registry.REGISTRY["ll3"].variants["barrier"](
            n=64, passes=3, p=4)
        machine = Machine(spec.system)
        machine.load(spec.workload)
        sink = PerfettoSink()
        machine.obs.attach(sink, PERFETTO_KINDS)
        machine.run(max_cycles=spec.max_cycles, fast_forward=fast_forward)
        machine.finish_observation()
        return sorted(json.dumps(event, sort_keys=True)
                      for event in sink.trace_events)

    assert trace(True) == trace(False)


# --------------------------------------------------------------- migration


def _counting_program(n, out, tid=1):
    a = Asm(f"count{tid}")
    a.li("r1", 0)
    a.li("r2", n)
    a.label("loop")
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.li("r3", out)
    a.sw("r1", "r3", 0)
    a.halt()
    return a.assemble()


def _migrating_run(fast_forward):
    from repro.common.config import ooo2_cluster
    image = MemoryImage()
    out = image.alloc_zeroed(1)
    workload = Workload("w", image,
                        [ThreadSpec(_counting_program(40_000, out), 1)],
                        placement=[0])
    machine = Machine(SystemConfig(
        clusters=[ooo1_cluster(), ooo2_cluster()]))
    machine.load(workload)
    machine.run(max_cycles=2_000, until=lambda: machine.cycle >= 1_000)
    machine.migrate(1, dest_core=4)  # drain + 500-cycle context switch
    final = machine.run(max_cycles=5_000_000, fast_forward=fast_forward)
    assert machine.memory.read_word_signed(out) == 40_000
    return final


def test_migrate_resumes_on_same_cycle_under_fast_forward():
    """After a drain + 500-cycle switch, fast-forward finishes the run on
    exactly the cycle the naive loop does."""
    assert _migrating_run(True) == _migrating_run(False)


# ---------------------------------------------------------------- watchdog


def _stalled_machine(deadlock_cycles, stall):
    image = MemoryImage()
    out = image.alloc_zeroed(1)
    workload = Workload("w", image,
                        [ThreadSpec(_counting_program(10, out), 1)],
                        placement=[0])
    machine = Machine(SystemConfig(clusters=[ooo1_cluster()],
                                   deadlock_cycles=deadlock_cycles))
    machine.load(workload)
    # Re-attach with a long legal stall (a modelled reconfiguration /
    # context-switch delay far longer than the watchdog window).
    machine.cores[0].attach(machine.cores[0].ctx, machine.cycle, stall=stall)
    return machine, out


def test_watchdog_tolerates_legal_bounded_quiesce():
    """A bounded multi-thousand-cycle quiesce is forward progress: the
    fast-forward scheduler jumps it in bounded steps and must not let the
    watchdog call it a hang."""
    machine, out = _stalled_machine(deadlock_cycles=1_000, stall=6_000)
    machine.run(max_cycles=100_000, fast_forward=True)
    assert machine.memory.read_word_signed(out) == 10


def test_watchdog_naive_loop_still_trips_on_long_quiesce():
    """The naive loop has no event horizon, so the same legal stall still
    trips its retirement-based watchdog — the documented improvement the
    fast-forward progress floor provides."""
    machine, _ = _stalled_machine(deadlock_cycles=1_000, stall=6_000)
    with pytest.raises(DeadlockError):
        machine.run(max_cycles=100_000, fast_forward=False)


def test_true_deadlock_still_raises_under_fast_forward():
    """A consumer parked forever on an empty SPL queue has no bounded
    wake-up: the fast-forward scheduler must not outrun the watchdog."""
    from repro.core.function import identity_function
    a = Asm("t")
    a.spl_recv("r1")  # nobody ever sends
    a.halt()
    machine = Machine(SystemConfig(clusters=[remap_cluster()],
                                   deadlock_cycles=3_000))
    machine.load(Workload(
        "t", MemoryImage(), [ThreadSpec(a.assemble(), 1)],
        placement=[0],
        setup=lambda m: m.configure_spl(0, 1, identity_function())))
    with pytest.raises(DeadlockError):
        machine.run(max_cycles=100_000, fast_forward=True)


# ------------------------------------------------------------ escape hatch


def test_no_fastforward_env_forces_naive_loop(monkeypatch):
    """REPRO_NO_FASTFORWARD=1 must keep the scheduler off the fast path."""
    monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")

    def boom(self, now, ceiling):
        raise AssertionError("fast-forward probe ran despite escape hatch")

    monkeypatch.setattr(Machine, "_ff_probe", boom)
    result = _run("g721dec", "seq", {"items": 4}, fast_forward=None)
    assert result.cycles > 0


def test_no_blockgen_env_forces_interpreter_loop(monkeypatch):
    """REPRO_NO_BLOCKGEN=1 must keep the run off the compiled windows."""
    monkeypatch.setenv("REPRO_NO_BLOCKGEN", "1")

    def boom(self, start, ceiling, allow_elide=False):
        raise AssertionError("block window ran despite escape hatch")

    monkeypatch.setattr(Machine, "_try_block_window", boom)
    result = _run("g721dec", "seq", {"items": 4},
                  fast_forward=None, blockgen=None)
    assert result.cycles > 0


def test_blockgen_engages_by_default(monkeypatch):
    """The compiled hot loop is on by default for compute-bound runs —
    the window probe must actually be consulted."""
    probes = [0]
    original = Machine._try_block_window

    def counting(self, start, ceiling, allow_elide=False):
        probes[0] += 1
        return original(self, start, ceiling, allow_elide)

    monkeypatch.setattr(Machine, "_try_block_window", counting)
    result = _run("g721dec", "seq", {"items": 4},
                  fast_forward=None, blockgen=None)
    assert result.cycles > 0
    assert probes[0] > 0


def test_fast_forward_skips_ticks_on_barrier_wait():
    """The point of the redesign: barrier waiters stop being ticked."""
    from repro.cpu.pipeline import OutOfOrderCore

    def count_ticks(fast_forward):
        ticks = [0]
        original = OutOfOrderCore.tick

        def counting(self, cycle):
            ticks[0] += 1
            return original(self, cycle)

        OutOfOrderCore.tick = counting
        try:
            spec = registry.REGISTRY["ll3"].variants["barrier"](
                n=64, passes=3, p=4)
            machine = Machine(spec.system)
            machine.load(spec.workload)
            cycles = machine.run(max_cycles=spec.max_cycles,
                                 fast_forward=fast_forward)
        finally:
            OutOfOrderCore.tick = original
        return cycles, ticks[0]

    naive_cycles, naive_ticks = count_ticks(False)
    ff_cycles, ff_ticks = count_ticks(True)
    assert ff_cycles == naive_cycles
    assert ff_ticks < naive_ticks * 0.8  # >20% of core ticks elided
