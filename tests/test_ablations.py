"""Sanity tests of the ablation studies (tiny sizes)."""

from repro.experiments import ablations


def test_sharing_degree_monotone():
    rows = ablations.sharing_degree(items=8)
    assert [row["sharers"] for row in rows] == [1, 2, 4]
    # Sharing costs something but not catastrophically (the paper's
    # amortization argument).
    assert rows[-1]["slowdown_vs_private"] >= rows[0]["slowdown_vs_private"]
    assert rows[-1]["slowdown_vs_private"] < 2.0


def test_fabric_size_virtualization_cost():
    rows = ablations.fabric_size(items=8)
    by_rows = {row["fabric_rows"]: row["cycles_per_item"] for row in rows}
    # Fewer rows -> deeper virtualization -> slower.
    assert by_rows[6] > by_rows[24]
    assert by_rows[48] <= by_rows[24]


def test_queue_depth_bounded_effect():
    rows = ablations.queue_depth(M=48, R=2)
    values = [row["cycles_per_item"] for row in rows]
    # Deeper queues never hurt.
    assert values[-1] <= values[0] + 1e-9


def test_barrier_bus_latency_monotone():
    rows = ablations.barrier_bus_latency(n=16, p=8)
    values = [row["cycles_per_iteration"] for row in rows]
    assert values[-1] > values[0]


def test_reconfiguration_cost_monotone():
    rows = ablations.reconfiguration_cost(n=64, p=4, passes=3)
    values = [row["cycles_per_pass"] for row in rows]
    assert values[-1] > values[0]


def test_spatial_partitioning_private_wins():
    rows = ablations.spatial_partitioning(n=128, p=4, passes=3)
    private = rows[0]["cycles_per_pass"]
    shared = rows[1]["cycles_per_pass"]
    assert private < shared
