"""Unit tests for the gshare+bimodal hybrid predictor, BTB, and RAS."""

from repro.common.config import BranchPredictorConfig
from repro.common.stats import Stats
from repro.cpu.branch import HybridPredictor, _CounterTable


def _predictor(**kwargs):
    return HybridPredictor(BranchPredictorConfig(**kwargs), Stats("bp"))


class TestCounterTable:
    def test_saturation(self):
        table = _CounterTable(4)
        for _ in range(10):
            table.update(3, True)
        assert table.counters[3] == 3
        for _ in range(10):
            table.update(3, False)
        assert table.counters[3] == 0

    def test_hysteresis(self):
        table = _CounterTable(4)
        # From the weakly-taken init (2), one not-taken flips to 1 (predict
        # not-taken); one taken brings it back.
        table.update(0, False)
        assert not table.predict(0)
        table.update(0, True)
        assert table.predict(0)


class TestDirectionPrediction:
    def test_learns_always_taken(self):
        predictor = _predictor()
        pc = 17
        for _ in range(8):
            predictor.update_direction(pc, True)
        assert predictor.predict_direction(pc)

    def test_learns_always_not_taken(self):
        predictor = _predictor()
        pc = 23
        for _ in range(8):
            predictor.update_direction(pc, False)
        assert not predictor.predict_direction(pc)

    def test_gshare_learns_alternating_pattern(self):
        """A strictly alternating branch is history-predictable: after
        training, the hybrid should track it (bimodal alone cannot)."""
        predictor = _predictor()
        pc = 9
        outcome = True
        for _ in range(400):
            predictor.update_direction(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(40):
            prediction = predictor.predict_direction(pc)
            correct += prediction == outcome
            predictor.update_direction(pc, outcome)
            outcome = not outcome
        assert correct >= 35

    def test_history_updates(self):
        predictor = _predictor()
        before = predictor.history
        predictor.update_direction(5, True)
        assert predictor.history != before or predictor.history == \
            ((before << 1) | 1) & predictor.history_mask


class TestBtbAndRas:
    def test_btb_roundtrip(self):
        predictor = _predictor()
        assert predictor.btb_lookup(40) is None
        predictor.btb_update(40, 1234)
        assert predictor.btb_lookup(40) == 1234

    def test_btb_conflict_eviction(self):
        predictor = _predictor(btb_entries=8)
        predictor.btb_update(3, 100)
        predictor.btb_update(3 + 8, 200)  # same set
        assert predictor.btb_lookup(3) is None
        assert predictor.btb_lookup(3 + 8) == 200

    def test_ras_lifo(self):
        predictor = _predictor()
        predictor.ras_push(10)
        predictor.ras_push(20)
        assert predictor.ras_pop() == 20
        assert predictor.ras_pop() == 10
        assert predictor.ras_pop() is None

    def test_ras_capacity(self):
        predictor = _predictor(ras_entries=2)
        for value in (1, 2, 3):
            predictor.ras_push(value)
        assert predictor.ras_pop() == 3
        assert predictor.ras_pop() == 2
        assert predictor.ras_pop() is None  # 1 was displaced

    def test_flush_clears_ras(self):
        predictor = _predictor()
        predictor.ras_push(7)
        predictor.flush_speculative_state()
        assert predictor.ras_pop() is None
