"""Integration: every Table III benchmark variant runs and verifies.

Each run executes the full simulator stack (OOO cores, MESI hierarchy, SPL
fabric / baseline hardware) and the workload's ``check`` compares the
simulated memory contents against the pure-Python reference kernel.
"""

import pytest

from repro.experiments.runner import execute
from repro.workloads import registry

#: (benchmark, variant, kwargs) for the computation/communication matrix.
_SMALL = {
    "g721enc": {"items": 10},
    "g721dec": {"items": 10},
    "mpeg2enc": {"items": 6},
    "mpeg2dec": {"items": 48},
    "gsmtoast": {"items": 32},
    "gsmuntoast": {"items": 24},
    "libquantum": {"items": 8, "passes": 3},
    "wc": {"items": 64},
    "unepic": {"items": 64},
    "cjpeg": {"items": 64},
    "adpcm": {"items": 96},
    "twolf": {"items": 64},
    "hmmer": {"M": 48, "R": 2},
    "astar": {"items": 48},
}

_COMP_VARIANTS = ("seq", "seq_ooo2", "spl")
_COMM_VARIANTS = ("seq", "seq_ooo2", "spl", "comm", "compcomm", "ooo2comm",
                  "swqueue")


def _cases():
    cases = []
    for info in registry.computation_only():
        for variant in _COMP_VARIANTS:
            cases.append((info.name, variant))
    for info in registry.communicating():
        variants = _COMM_VARIANTS
        if info.name == "hmmer":
            pass  # hmmer exposes the same variant names
        for variant in variants:
            cases.append((info.name, variant))
    return cases


@pytest.mark.parametrize("bench,variant", _cases())
def test_region_variant_verifies(bench, variant):
    info = registry.REGISTRY[bench]
    kwargs = dict(_SMALL[bench])
    if bench == "libquantum" and variant in ("seq", "seq_ooo2", "spl"):
        pass
    elif "passes" in kwargs and bench != "libquantum":
        kwargs.pop("passes")
    spec = info.variants[variant](**kwargs)
    result = execute(spec)  # raises on check failure
    assert result.cycles > 0
    assert result.energy_joules > 0


_BARRIER_CASES = [
    ("ll2", "seq", {"n": 16, "passes": 2}),
    ("ll2", "sw", {"n": 16, "passes": 2, "p": 4}),
    ("ll2", "barrier", {"n": 16, "passes": 2, "p": 4}),
    ("ll2", "barrier", {"n": 16, "passes": 2, "p": 8}),
    ("ll2", "hwbar", {"n": 16, "passes": 2, "p": 4}),
    ("ll3", "seq", {"n": 64, "passes": 3}),
    ("ll3", "sw", {"n": 64, "passes": 3, "p": 4}),
    ("ll3", "barrier", {"n": 64, "passes": 3, "p": 4}),
    ("ll3", "barrier_comp", {"n": 64, "passes": 3, "p": 4}),
    ("ll3", "barrier_comp", {"n": 64, "passes": 3, "p": 8}),
    ("ll3", "hwbar", {"n": 64, "passes": 3, "p": 8}),
    ("ll6", "seq", {"n": 16, "passes": 2}),
    ("ll6", "sw", {"n": 16, "passes": 2, "p": 4}),
    ("ll6", "barrier", {"n": 16, "passes": 2, "p": 4}),
    ("ll6", "hwbar", {"n": 16, "passes": 2, "p": 4}),
    ("dijkstra", "seq", {"n": 16}),
    ("dijkstra", "sw", {"n": 16, "p": 4}),
    ("dijkstra", "barrier", {"n": 16, "p": 4}),
    ("dijkstra", "barrier_comp", {"n": 16, "p": 4}),
    ("dijkstra", "barrier_comp", {"n": 16, "p": 8}),
    ("dijkstra", "hwbar", {"n": 16, "p": 4}),
]


@pytest.mark.parametrize("bench,variant,kwargs", _BARRIER_CASES)
def test_barrier_variant_verifies(bench, variant, kwargs):
    info = registry.REGISTRY[bench]
    spec = info.variants[variant](**kwargs)
    result = execute(spec)
    assert result.cycles > 0


def test_sixteen_thread_barrier_all_benchmarks():
    """p=16 spans four SPL clusters and the inter-cluster barrier bus."""
    for bench, kwargs in (("ll3", {"n": 64, "passes": 2, "p": 16}),
                          ("dijkstra", {"n": 20, "p": 16})):
        info = registry.REGISTRY[bench]
        execute(info.variants["barrier"](**kwargs))
        execute(info.variants["barrier_comp"](**kwargs))


def test_registry_table3_complete():
    rows = registry.table3_rows()
    assert len(rows) == 18
    names = {row[0] for row in rows}
    for expected in ("g721enc", "hmmer", "dijkstra", "wc", "ll3"):
        assert expected in names
    assert registry.REGISTRY["hmmer"].exec_fraction == 0.85
    assert registry.REGISTRY["wc"].exec_fraction == 1.0
