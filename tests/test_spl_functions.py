"""Property tests: every workload's SPL function matches its reference.

These verify the dataflow graphs that the fabric evaluates are bit-exact
against the pure-Python kernels on randomized inputs — the core guarantee
that lets the simulator's fabric produce checkable program output.
"""

from hypothesis import given, settings, strategies as st

from repro.workloads.adpcm import adpcm_function
from repro.workloads.astar import bound_function
from repro.workloads.cjpeg import ycc_function
from repro.workloads.g721 import fmult_function
from repro.workloads.gsm import synthesis_function, weighting_function
from repro.workloads.kernels import (adpcm as adpcm_ref, astar as astar_ref,
                                     cjpeg as cjpeg_ref, g721 as g721_ref,
                                     gsm as gsm_ref, hmmer as hmmer_ref,
                                     libquantum as lq_ref,
                                     mpeg2 as mpeg2_ref,
                                     twolf as twolf_ref,
                                     unepic as unepic_ref, wc as wc_ref)
from repro.workloads.libquantum import LANES, gates8_function
from repro.workloads.mpeg2 import conv4_function
from repro.workloads.spl_lib import (hmmer_mc_function, mac4_function,
                                     sad8_function)
from repro.workloads.twolf import dbox_function
from repro.workloads.unepic import dequant_function
from repro.workloads.wc import wc4_function

_small = st.integers(-1000, 1000)
_byte = st.integers(0, 255)


def _signed_byte(value):
    return value - 256 if value >= 128 else value


class TestHmmerMc:
    @given(st.lists(_small, min_size=8, max_size=8))
    @settings(max_examples=40)
    def test_matches_reference(self, values):
        mpp, tpmm, ip, tpim, dpp, tpdm, t4, ms = values
        fn = hmmer_mc_function()
        got = fn.dfg.evaluate(dict(mpp=mpp, tpmm=tpmm, ip=ip, tpim=tpim,
                                   dpp=dpp, tpdm=tpdm, t4=t4, ms=ms))["mc"]
        expected = max(mpp + tpmm, ip + tpim, dpp + tpdm, t4) + ms
        expected = max(expected, -hmmer_ref.INFTY)
        assert got == expected


class TestG721Fmult:
    @given(st.integers(-4096, 4095), st.integers(-1024, 1023))
    @settings(max_examples=60)
    def test_matches_reference(self, an, srn):
        fn = fmult_function()
        got = fn.dfg.evaluate({"an": an, "srn": srn})["result"]
        assert got == g721_ref.fmult(an, srn)


class TestMpeg2:
    @given(st.lists(_byte, min_size=16, max_size=16))
    @settings(max_examples=40)
    def test_sad8(self, raw):
        fn = sad8_function()
        inputs = {}
        for i in range(8):
            inputs[f"a{i}"] = _signed_byte(raw[i])
            inputs[f"b{i}"] = _signed_byte(raw[8 + i])
        got = fn.dfg.evaluate(inputs)["sad"]
        expected = sum(abs(raw[i] - raw[8 + i]) for i in range(8))
        assert got == expected

    @given(st.lists(_byte, min_size=8, max_size=8))
    @settings(max_examples=40)
    def test_conv4(self, raw):
        fn = conv4_function()
        inputs = {f"b{i}": _signed_byte(b) for i, b in enumerate(raw)}
        got = fn.dfg.evaluate(inputs)["pixels"] & 0xFFFFFFFF
        expected = 0
        for lane in range(4):
            expected |= mpeg2_ref.conv_pixel(*raw[lane:lane + 4]) \
                << (8 * lane)
        assert got == expected


class TestGsm:
    @given(st.lists(st.integers(-2000, 2000),
                    min_size=len(gsm_ref.H), max_size=len(gsm_ref.H)))
    @settings(max_examples=40)
    def test_weighting(self, window):
        fn = weighting_function()
        inputs = {f"e{i}": v for i, v in enumerate(window)}
        got = fn.dfg.evaluate(inputs)["out"]
        acc = gsm_ref.FIR_ROUND
        acc += sum(e * h for e, h in zip(window, gsm_ref.H))
        expected = max(gsm_ref.SHORT_MIN,
                       min(gsm_ref.SHORT_MAX, acc >> gsm_ref.FIR_SHIFT))
        assert got == expected

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    @settings(max_examples=25)
    def test_lattice_sequence(self, samples):
        fn = synthesis_function()
        state = {}
        got = [fn.dfg.evaluate({"wt": s}, state=state)["sr"]
               for s in samples]
        expected, _ = gsm_ref.synthesis_reference(samples)
        assert got == expected


class TestLibquantum:
    @given(st.lists(st.integers(0, 0xFFFF), min_size=LANES, max_size=LANES))
    @settings(max_examples=40)
    def test_gates8(self, states):
        fn = gates8_function()
        out = fn.dfg.evaluate({f"s{i}": s for i, s in enumerate(states)})
        expected = lq_ref.gates_reference(states)
        assert [out[f"o{i}"] for i in range(LANES)] == expected


class TestStreamFunctions:
    @given(st.lists(_byte, min_size=4, max_size=4), st.booleans())
    @settings(max_examples=40)
    def test_wc4(self, raw, prev_space):
        fn = wc4_function()
        state = {}
        # Prime the delay register through one dummy evaluation.
        primer = [wc_ref.SPACE if prev_space else ord("x")] * 4
        fn.dfg.evaluate({f"b{i}": _signed_byte(b)
                         for i, b in enumerate(primer)}, state=state)
        got = fn.dfg.evaluate({f"b{i}": _signed_byte(b)
                               for i, b in enumerate(raw)}, state=state)
        packed = got["packed"]
        newlines = packed & 0xFF
        starts = packed >> 8
        expected_nl = sum(1 for b in raw if b == wc_ref.NEWLINE)
        in_space = prev_space
        expected_starts = 0
        for b in raw:
            if wc_ref.is_space(b):
                in_space = True
            else:
                if in_space:
                    expected_starts += 1
                in_space = False
        assert (newlines, starts) == (expected_nl, expected_starts)

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
    @settings(max_examples=25)
    def test_adpcm_state_machine(self, deltas):
        fn = adpcm_function()
        state = {}
        index = 0
        got = []
        for delta in deltas:
            step = adpcm_ref.STEPSIZE_TABLE[index]
            index = max(0, min(88, index + adpcm_ref.INDEX_TABLE[delta & 7]))
            got.append(fn.dfg.evaluate({"delta": delta, "step": step},
                                       state=state)["sample"])
        assert got == adpcm_ref.decode_reference(deltas)

    @given(st.integers(0, 7))
    @settings(max_examples=8)
    def test_unepic_dequant(self, symbol):
        fn = dequant_function()
        assert fn.dfg.evaluate({"sym": symbol})["val"] == \
            unepic_ref.dequant(symbol)

    @given(st.lists(st.integers(0, 4095), min_size=4, max_size=4))
    @settings(max_examples=40)
    def test_twolf_dbox(self, values):
        fn = dbox_function()
        a, b, c, d = values
        got = fn.dfg.evaluate({"a": a, "b": b, "c": c, "d": d})["cost"]
        assert got == twolf_ref.dbox_cost(a, b, c, d)

    @given(st.lists(_byte, min_size=3, max_size=3))
    @settings(max_examples=40)
    def test_cjpeg_y(self, rgb):
        fn = ycc_function()
        r, g, b = rgb
        got = fn.dfg.evaluate({"r": _signed_byte(r), "g": _signed_byte(g),
                               "b": _signed_byte(b)})["y"]
        assert got == cjpeg_ref.rgb_to_y(r, g, b)

    @given(st.lists(st.integers(0, 9), min_size=4, max_size=4),
           st.integers(0, 1000))
    @settings(max_examples=40)
    def test_astar_bound(self, flags, cell):
        fn = bound_function()
        inputs = {f"f{i}": f for i, f in enumerate(flags)}
        inputs["cell"] = cell
        got = fn.dfg.evaluate(inputs)["packed"]
        mask = 0
        for i, flag in enumerate(flags):
            if astar_ref.expandable(flag):
                mask |= 1 << i
        assert got == (cell << 4) | mask

    @given(st.lists(st.integers(-50, 50), min_size=8, max_size=8))
    @settings(max_examples=40)
    def test_ll3_mac4(self, values):
        fn = mac4_function()
        inputs = {}
        for i in range(4):
            inputs[f"z{i}"] = values[i]
            inputs[f"x{i}"] = values[4 + i]
        got = fn.dfg.evaluate(inputs)["s"]
        assert got == sum(values[i] * values[4 + i] for i in range(4))
