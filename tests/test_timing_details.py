"""Fine-grained timing and misconfiguration tests."""

import pytest

from repro.common.config import (SystemConfig, ooo2_cluster, remap_cluster,
                                 remap_system, spl_config)
from repro.common.errors import SplError
from repro.common.stats import Stats
from repro.core.controller import SplClusterController
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction, identity_function
from repro.core.tables import BarrierBus
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system import Machine, Workload


def _controller():
    config = spl_config()
    controller = SplClusterController(
        0, config, BarrierBus(config.barrier_bus_latency), Stats("spl"))
    for slot in range(4):
        controller.table.set_thread(slot, slot + 1, app_id=1)
    return controller


def _throughput(fn, use_second_beat: bool, count: int = 12) -> int:
    """Cycles for ``count`` back-to-back issues of ``fn``."""
    controller = _controller()
    controller.configure(0, 1, fn)
    port = controller.ports[0]
    for i in range(count):
        port.stage_load(i, 0, 0)
        if use_second_beat:
            port.stage_load(i, 16, 0)
        assert port.init(1, 0)
    cycle = 0
    received = 0
    while received < count:
        controller.tick(cycle)
        if port.recv(cycle) is not None:
            received += 1
        cycle += 1
        assert cycle < 100_000
    return cycle


class TestBeatTiming:
    def test_two_beat_entries_halve_throughput(self):
        one_beat = identity_function("one", 1)
        g = Dfg("two")
        a = g.input("a", 0)
        b = g.input("b", 16)  # second beat
        g.output("o", g.add(a, b))
        two_beat = SplFunction(g)
        t1 = _throughput(one_beat, use_second_beat=False)
        t2 = _throughput(two_beat, use_second_beat=True)
        assert t2 > t1 * 1.5  # II doubles from 1 to 2 fabric cycles

    def test_stateful_feedback_limits_throughput(self):
        g = Dfg("acc")
        x = g.input("x", 0)
        d = g.delay()
        # A deep feedback path: mul chain before the state update.
        node = g.add(d, x)
        for _ in range(2):
            node = g.op(DfgOp.MUL, node, g.const(1))
        g.set_delay_source(d, node)
        g.output("o", node)
        stateful = SplFunction(g)
        assert stateful.feedback_ii > 2
        plain = identity_function("p", 1)
        assert _throughput(stateful, False) > _throughput(plain, False)


class TestOoo2Behaviour:
    def test_dual_retire(self):
        """OOO2 must retire two independent instructions per cycle."""
        image = MemoryImage()
        a = Asm("t")
        a.li("r1", 0)
        a.li("r2", 4000)
        a.label("loop")
        a.addi("r3", "r3", 1)
        a.addi("r4", "r4", 1)
        a.addi("r5", "r5", 1)
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        a.halt()
        machine = Machine(SystemConfig(clusters=[ooo2_cluster()]))
        machine.load(Workload("t", image, [ThreadSpec(a.assemble(), 1)],
                              placement=[0]))
        machine.run(max_cycles=500_000)
        stats = machine.stats.find("cpu0")
        assert stats.get("retired") / stats.get("cycles") > 1.5


class TestMisconfiguration:
    def test_unregistered_barrier_errors_at_init(self):
        from repro.core.function import barrier_token_function
        controller = _controller()
        controller.configure(0, 2, barrier_token_function(4), barrier_id=9)
        controller.ports[0].stage_load(0, 0, 0)
        with pytest.raises(SplError):
            controller.ports[0].init(2, 0)  # barrier 9 never registered

    def test_workload_level_unbound_config(self):
        """A program issuing an unbound config id dies loudly, not
        silently."""
        a = Asm("t")
        a.li("r1", 1)
        a.spl_load("r1", 0)
        a.spl_init(42)
        a.halt()
        machine = Machine(remap_system())
        machine.load(Workload("t", MemoryImage(),
                              [ThreadSpec(a.assemble(), 1)],
                              placement=[0]))
        with pytest.raises(SplError):
            machine.run(max_cycles=10_000)


class TestSplLoadVTiming:
    def test_line_crossing_vector_load_verifies(self):
        """A 16-byte beat straddling a cache line still stages correctly."""
        image = MemoryImage()
        base = image.alloc(64, align=32)
        values = [11, 22, 33, 44]
        for i, value in enumerate(values):
            image.write_word(base + 20 + 4 * i, value)  # offset 20: crosses
        out = image.alloc_zeroed(4)
        fn = identity_function("route4", 4)
        a = Asm("t")
        a.li("r1", base + 20)
        a.spl_loadv("r1", 0)
        a.spl_init(1)
        a.li("r2", out)
        for i in range(4):
            a.spl_store("r2", 4 * i)
        a.halt()
        machine = Machine(SystemConfig(clusters=[remap_cluster()]))
        machine.load(Workload(
            "t", image, [ThreadSpec(a.assemble(), 1)], placement=[0],
            setup=lambda m: m.configure_spl(0, 1, fn)))
        machine.run(max_cycles=100_000)
        assert machine.memory.read_words(out, 4) == values


class TestSubwordDifferential:
    def test_subword_and_fp_ops_match_interpreter(self):
        from repro.isa.interpreter import Interpreter
        from repro.mem.memory import MainMemory
        image = MemoryImage()
        buf = image.alloc(16)
        image.write_word(buf, 0x80FF7F01)
        out = image.alloc_zeroed(6)
        a = Asm("t")
        a.li("r1", buf)
        a.li("r9", out)
        a.lb("r2", "r1", 3)
        a.lhu("r3", "r1", 0)
        a.sb("r2", "r1", 4)
        a.sh("r3", "r1", 6)
        a.lw("r4", "r1", 4)
        a.sw("r2", "r9", 0)
        a.sw("r3", "r9", 4)
        a.sw("r4", "r9", 8)
        a.fadd("f1", "f1", "f2")
        a.fsw("f1", "r9", 12)
        a.flw("f3", "r9", 12)
        a.fmul("f3", "f3", "f3")
        a.fsw("f3", "r9", 16)
        a.halt()
        program = a.assemble()
        machine = Machine(SystemConfig(clusters=[remap_cluster()]))
        machine.load(Workload(
            "t", image,
            [ThreadSpec(program, 1, fp_regs={"f1": 1.25, "f2": 2.5})],
            placement=[0]))
        machine.run(max_cycles=100_000)
        memory = MainMemory()
        memory.load_image(image)
        interp = Interpreter(program, memory)
        interp.fp_regs[1], interp.fp_regs[2] = 1.25, 2.5
        interp.run()
        for word in set(machine.memory.words) | set(memory.words):
            assert machine.memory.words.get(word, 0) == \
                memory.words.get(word, 0)
