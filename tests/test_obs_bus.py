"""Event-bus semantics: routing, filtering, and the zero-cost guarantee."""

import pytest

from repro.obs import CallbackSink, CollectorSink, EventBus, Sink
from repro.obs import events as ev
from repro.obs.bus import EventBus as BusClass
from repro.system.machine import Machine
from repro.workloads import registry


def _small_spec():
    return registry.REGISTRY["wc"].variants["seq"](items=8)


class TestRouting:
    def test_inert_by_default(self):
        bus = EventBus()
        assert not bus.active
        assert not bus.pipeline_active
        bus.emit(0, "cpu0", ev.RETIRE, seq=1)  # swallowed, no error

    def test_attach_detach_recomputes_flags(self):
        bus = EventBus()
        sink = CollectorSink()
        bus.attach(sink)
        assert bus.active and bus.pipeline_active
        bus.detach(sink)
        assert not bus.active and not bus.pipeline_active

    def test_kind_filter(self):
        bus = EventBus()
        sink = CollectorSink()
        bus.attach(sink, kinds=frozenset((ev.RETIRE,)))
        bus.emit(1, "cpu0", ev.FETCH, seq=1)
        bus.emit(2, "cpu0", ev.RETIRE, seq=1)
        assert [e.kind for e in sink.events] == [ev.RETIRE]

    def test_source_filter(self):
        bus = EventBus()
        sink = CollectorSink()
        bus.attach(sink, sources={"cpu1"})
        bus.emit(1, "cpu0", ev.RETIRE)
        bus.emit(1, "cpu1", ev.RETIRE)
        assert [e.source for e in sink.events] == ["cpu1"]

    def test_non_pipeline_sink_keeps_pipeline_dark(self):
        """A profiler/exporter subscription must not light up the cores'
        per-instruction path."""
        bus = EventBus()
        bus.attach(CollectorSink(), kinds=frozenset((ev.CYCLE_SPAN,)))
        assert bus.active
        assert not bus.pipeline_active

    def test_callback_sink_and_finish(self):
        bus = EventBus()
        got = []
        sink = CallbackSink(got.append)
        bus.attach(sink)
        bus.emit(3, "spl0", ev.SPL_ISSUE, partition=0)
        bus.finish(99)
        assert got[0].get("partition") == 0

    def test_event_accessors(self):
        event = ev.Event(7, "cpu0", ev.RETIRE, {"seq": 4})
        assert event.get("seq") == 4
        assert event.get("missing", "x") == "x"
        assert "retire" in repr(event)

    def test_sink_base_requires_accept(self):
        with pytest.raises(NotImplementedError):
            Sink().accept(ev.Event(0, "cpu0", ev.RETIRE, {}))


class TestZeroOverhead:
    def test_simulation_never_publishes_without_sinks(self, monkeypatch):
        """With no sink attached, a full run must not reach publish() even
        once — the guard is a flag check, not a filtering no-op."""
        def boom(self, event):
            raise AssertionError(
                f"event published with no sink attached: {event!r}")
        monkeypatch.setattr(BusClass, "publish", boom)
        spec = _small_spec()
        machine = Machine(spec.system)
        machine.load(spec.workload)
        machine.run(max_cycles=spec.max_cycles)
        spec.workload.check(machine.memory)

    def test_same_result_with_and_without_observer(self):
        """Observation must not perturb timing: identical cycle counts."""
        spec = _small_spec()
        plain = Machine(spec.system)
        plain.load(spec.workload)
        base_cycles = plain.run(max_cycles=spec.max_cycles)

        spec2 = _small_spec()
        observed = Machine(spec2.system)
        sink = CollectorSink()
        observed.obs.attach(sink)
        observed.load(spec2.workload)
        cycles = observed.run(max_cycles=spec2.max_cycles)
        observed.finish_observation()
        assert cycles == base_cycles
        assert sink.events  # and the sink really saw the run
        assert sink.finished_at == cycles
