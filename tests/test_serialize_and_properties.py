"""Config serialization round-trips and extra property-based tests."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import (SplConfig, SystemConfig, ooo1_cluster,
                                 remap_system)
from repro.common.errors import ConfigError
from repro.common.serialize import (system_from_dict, system_from_json,
                                    system_to_dict, system_to_json)
from repro.common.stats import Stats
from repro.mem.cache import TagArray
from repro.common.config import CacheConfig


class TestSerialization:
    def test_roundtrip_remap_system(self):
        config = remap_system(n_spl_clusters=2, n_ooo2_clusters=1)
        rebuilt = system_from_json(system_to_json(config))
        assert rebuilt == config

    def test_roundtrip_custom_values(self):
        config = remap_system()
        config = dataclasses.replace(config, memory_latency=123,
                                     bus_occupancy=7)
        spl = dataclasses.replace(config.clusters[0].spl,
                                  input_queue_entries=5)
        cluster = dataclasses.replace(config.clusters[0], spl=spl)
        config = dataclasses.replace(config,
                                     clusters=[cluster,
                                               config.clusters[1]])
        rebuilt = system_from_dict(system_to_dict(config))
        assert rebuilt.memory_latency == 123
        assert rebuilt.clusters[0].spl.input_queue_entries == 5

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            system_from_dict({"clusters": [{"bogus": 1}]})
        with pytest.raises(ConfigError):
            system_from_dict({})

    def test_invalid_values_rejected_on_load(self):
        data = system_to_dict(SystemConfig(clusters=[ooo1_cluster()]))
        data["clusters"][0]["core"]["rob_entries"] = 0
        with pytest.raises(ConfigError):
            system_from_dict(data)


class _LruModel:
    """Reference LRU model for differential cache testing."""

    def __init__(self, assoc, sets):
        self.assoc = assoc
        self.sets = {i: [] for i in range(sets)}

    def access(self, line):
        entries = self.sets[line % len(self.sets)]
        hit = line in entries
        if hit:
            entries.remove(line)
        entries.append(line)
        victim = None
        if len(entries) > self.assoc:
            victim = entries.pop(0)
        return hit, victim


class TestCacheLruProperty:
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_tag_array_matches_reference_lru(self, lines):
        assoc, sets = 2, 4
        config = CacheConfig("t", assoc * sets * 32, assoc, 32, 1)
        tags = TagArray(config, Stats("t"))
        model = _LruModel(assoc, sets)
        for line in lines:
            hit = tags.lookup(line)
            victim = tags.insert(line) if not hit else None
            model_hit, model_victim = model.access(line)
            assert hit == model_hit
            assert victim == model_victim


class TestControllerFunctionalProperty:
    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.integers(-1000, 1000)),
                    min_size=1, max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_round_robin_preserves_per_core_fifo(self, stream):
        """Whatever the interleaving, each core receives its own results
        in issue order with correct values."""
        from repro.core.controller import SplClusterController
        from repro.core.function import identity_function
        from repro.core.tables import BarrierBus
        from repro.common.config import spl_config
        config = spl_config()
        controller = SplClusterController(0, config,
                                          BarrierBus(10), Stats("spl"))
        fn = identity_function()
        expected = {slot: [] for slot in range(4)}
        for slot in range(4):
            controller.table.set_thread(slot, slot + 1, app_id=1)
            controller.configure(slot, 1, fn)
        cycle = 0
        for slot, value in stream:
            port = controller.ports[slot]
            port.stage_load(value, 0, cycle)
            if port.init(1, cycle):
                expected[slot].append(value)
            controller.tick(cycle)
            cycle += 1
        for _ in range(3000):
            controller.tick(cycle)
            cycle += 1
        for slot in range(4):
            got = []
            while True:
                value = controller.ports[slot].recv(cycle)
                if value is None:
                    break
                got.append(value)
            assert got == expected[slot]
