"""Unit tests for configuration, statistics, and utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.config import (CacheConfig, ClusterConfig, SystemConfig,
                                 ooo1_cluster, ooo1_config, ooo2_cluster,
                                 ooo2_config, remap_cluster, remap_system,
                                 spl_config, SPL_CLOCK_RATIO)
from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.common.utils import (ceil_div, geomean, is_power_of_two,
                                sign_extend, to_signed, to_unsigned)


class TestConfig:
    def test_table2_ooo1(self):
        config = ooo1_config()
        assert (config.fetch_width, config.issue_width,
                config.retire_width) == (2, 1, 1)
        assert config.rob_entries == 64
        assert config.int_regs == config.fp_regs == 64
        assert (config.int_queue, config.fp_queue) == (32, 16)
        assert config.int_alus == 1

    def test_table2_ooo2(self):
        config = ooo2_config()
        assert (config.fetch_width, config.issue_width,
                config.retire_width) == (4, 2, 2)
        assert config.int_alus == 2
        assert config.branch_units == 2

    def test_cache_geometry(self):
        l1 = ooo1_config().l1d
        assert l1.size_bytes == 8 * 1024
        assert l1.assoc == 2
        assert l1.n_sets == 128
        assert l1.hit_latency == 2
        l2 = ooo1_config().l2
        assert l2.size_bytes == 1024 * 1024
        assert l2.hit_latency == 10

    def test_spl_parameters(self):
        spl = spl_config()
        assert spl.rows == 24
        assert spl.cells_per_row == 16
        assert spl.bits_per_cell == 8
        assert spl.row_width_bytes == 16
        assert SPL_CLOCK_RATIO == 4

    def test_spl_output_queue_words(self):
        assert spl_config().output_queue_words == 64

    def test_bad_cache_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, 3, 32, 1).validate()

    def test_bad_cluster_kind(self):
        with pytest.raises(ConfigError):
            ClusterConfig(kind="weird", core=ooo1_config()).validate()

    def test_system_core_count(self):
        system = remap_system(n_spl_clusters=2, n_ooo2_clusters=1)
        assert system.n_cores == 12
        system.validate()

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(clusters=[]).validate()

    def test_cluster_presets(self):
        assert remap_cluster().kind == "spl"
        assert ooo2_cluster().core.name == "OOO2"
        assert ooo1_cluster(6).n_cores == 6


class TestStats:
    def test_bump_and_get(self):
        stats = Stats("top")
        stats.bump("x")
        stats.bump("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing", 7) == 7

    def test_tree_total_and_find(self):
        top = Stats("top")
        a = top.child("a")
        b = top.child("b")
        a.bump("n", 2)
        b.bump("n", 3)
        top.bump("n", 1)
        assert top.total("n") == 6
        assert top.find("b") is b
        assert top.find("zzz") is None

    def test_walk_and_report(self):
        top = Stats("top")
        top.child("inner").bump("k", 1)
        flat = top.as_dict()
        assert flat["top.inner.k"] == 1
        assert "inner" in top.report()


class TestUtils:
    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_signed_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_unsigned_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_sign_extend(self):
        assert to_signed(sign_extend(0xFF, 8)) == -1
        assert to_signed(sign_extend(0x7F, 8)) == 127

    def test_geomean(self):
        assert math.isclose(geomean([2, 8]), 4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1, -1])

    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4

    def test_is_power_of_two(self):
        assert is_power_of_two(8)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)
