"""Qualitative paper results ("shapes") that the reproduction must hold.

These are the headline claims of Section V at reduced problem sizes:
who wins, and in the right direction — not absolute magnitudes.
"""

import pytest

from repro.experiments.runner import execute, relative_ed, speedup
from repro.workloads import registry
from repro.workloads.livermore import LL3_VARIANTS
from repro.workloads import dijkstra as dijkstra_mod


@pytest.fixture(scope="module")
def hmmer_runs():
    info = registry.REGISTRY["hmmer"]
    kwargs = {"M": 64, "R": 3}
    return {variant: execute(info.variants[variant](**kwargs))
            for variant in ("seq", "spl", "comm", "compcomm", "ooo2comm",
                            "swqueue")}


class TestCommunicationClaims:
    def test_compcomm_beats_communication_alone(self, hmmer_runs):
        """Section V-B: combining computation with communication is what
        makes ReMAP beat both its own comm-only mode and OOO2+Comm."""
        base = hmmer_runs["seq"]
        assert speedup(base, hmmer_runs["compcomm"]) > \
            speedup(base, hmmer_runs["comm"])
        assert speedup(base, hmmer_runs["compcomm"]) > \
            speedup(base, hmmer_runs["spl"])
        assert speedup(base, hmmer_runs["compcomm"]) > \
            speedup(base, hmmer_runs["ooo2comm"])

    def test_software_queues_degrade(self, hmmer_runs):
        """Section V-B: software queues lose to the baseline outright."""
        assert speedup(hmmer_runs["seq"], hmmer_runs["swqueue"]) < 1.0

    def test_compcomm_improves_ed(self, hmmer_runs):
        """Figure 11: 2Th+CompComm is the option with ED below baseline."""
        assert relative_ed(hmmer_runs["seq"], hmmer_runs["compcomm"]) < 1.0

    def test_all_variants_verify_output(self, hmmer_runs):
        # execute() already ran each workload's check; reaching here with
        # populated results is the assertion.
        assert len(hmmer_runs) == 6


class TestBarrierClaims:
    def test_remap_barriers_beat_software(self):
        """Section V-C: ReMAP barriers significantly outperform SW
        barriers at fine granularity."""
        info = registry.REGISTRY["dijkstra"]
        sw = execute(info.variants["sw"](n=32, p=8))
        hw = execute(info.variants["barrier"](n=32, p=8))
        assert hw.cycles < sw.cycles

    def test_barrier_comp_helps_single_cluster(self):
        """Figure 13(b): integrating the global-min computation helps."""
        info = registry.REGISTRY["dijkstra"]
        plain = execute(info.variants["barrier"](n=32, p=4))
        comp = execute(info.variants["barrier_comp"](n=32, p=4))
        assert comp.cycles < plain.cycles

    def test_ll3_comp_gain_grows_with_size(self):
        """Figure 13(a): the Barrier+Comp advantage grows with problem
        size (pipelining pays off)."""
        small_gain = (execute(LL3_VARIANTS["barrier"](n=32, p=8, passes=3))
                      .cycles
                      / execute(LL3_VARIANTS["barrier_comp"](
                          n=32, p=8, passes=3)).cycles)
        large_gain = (execute(LL3_VARIANTS["barrier"](n=512, p=8, passes=3))
                      .cycles
                      / execute(LL3_VARIANTS["barrier_comp"](
                          n=512, p=8, passes=3)).cycles)
        assert large_gain > small_gain

    def test_sw_barrier_cost_grows_with_threads(self):
        """Figure 12: software-barrier overhead rises with thread count
        faster than ReMAP's."""
        info = registry.REGISTRY["dijkstra"]
        sw4 = execute(info.variants["sw"](n=24, p=4))
        sw8 = execute(info.variants["sw"](n=24, p=8))
        hw4 = execute(info.variants["barrier"](n=24, p=4))
        hw8 = execute(info.variants["barrier"](n=24, p=8))
        sw_scaling = sw8.cycles / sw4.cycles
        hw_scaling = hw8.cycles / hw4.cycles
        assert hw_scaling < sw_scaling

    def test_remap_barrier_ed_beats_software(self):
        """Figure 14: ReMAP barriers always achieve better ED than SW."""
        info = registry.REGISTRY["dijkstra"]
        seq = execute(info.variants["seq"](n=32))
        sw = execute(info.variants["sw"](n=32, p=8))
        hw = execute(info.variants["barrier"](n=32, p=8))
        assert relative_ed(seq, hw) < relative_ed(seq, sw)


class TestComputationClaims:
    def test_fabric_accelerates_g721(self):
        info = registry.REGISTRY["g721enc"]
        base = execute(info.variants["seq"](items=16))
        spl = execute(info.variants["spl"](items=16))
        assert speedup(base, spl) > 1.5

    def test_concurrent_copies_share_fabric(self):
        """Four copies contend for the fabric but each still beats seq."""
        info = registry.REGISTRY["mpeg2enc"]
        base = execute(info.variants["seq"](items=8))
        spl = execute(info.variants["spl"](items=8))
        assert speedup(base, spl) > 1.3
