"""Tests for the ``repro.api`` facade and the job-service core.

The end-to-end parity gate lives here: results delivered through the
async job path must be byte-identical to direct engine runs, the second
submission of a spec must be answered from the cache without touching a
worker, and admission control (back-pressure, quotas, draining) must
reject loudly at submit time.
"""

import json
import time
import warnings

import pytest

from repro import api
from repro.common.errors import ConfigError
from repro.experiments.engine import (ExperimentBatchError,
                                      ExperimentEngine, SpecError, request)
from repro.serve.jobs import (DrainingError, JobTable, QueueFullError,
                              QuotaError, UnknownJobError)
from repro.serve.protocol import (CANCELLED, DONE, FAILED, QUEUED, RUNNING,
                                  JobRecord, JobRequest,
                                  job_request_from_dict,
                                  job_request_to_dict)

SMALL = dict(items=32)


def make_session(tmp_path, **kwargs):
    kwargs.setdefault("shards", 2)
    engine = ExperimentEngine(cache_dir=tmp_path / "cache", progress=False)
    return api.Session(engine=engine, **kwargs)


@pytest.fixture
def session(tmp_path):
    session = make_session(tmp_path)
    yield session
    session.close(timeout=30)


def wait_for(predicate, timeout=20.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class PoisonedPool:
    """Stands in for the worker pool in cache-fast-path tests: any
    dispatch is a test failure."""

    dispatched = 0

    def dispatch(self, *args, **kwargs):
        raise AssertionError("a cache-served job must never reach a worker")

    def cancel(self, *args, **kwargs):
        raise AssertionError("nothing should be running")

    def drain(self, timeout=None):
        return True

    def running(self):
        return 0

    shards = 0


class TestParityGate:
    def test_job_result_identical_to_direct_run(self, session):
        """The acceptance gate: async job == direct engine run, byte for
        byte, and the job's worker stores into the same cache the direct
        path reads (so the direct run afterwards is a cache hit)."""
        req = request("wc", "seq", **SMALL)
        job = session.submit(req)
        record = session.wait(job.job_id, timeout=120)
        assert record.state == DONE and not record.cached
        assert session.pool.dispatched == 1
        direct = session.engine.run(req)
        assert direct.cache_hit  # the job's worker populated the cache
        assert json.dumps(record.result, sort_keys=True) == \
            json.dumps(direct.to_dict(), sort_keys=True)
        assert record.result["results"]["cycles"] == direct.cycles

    def test_sliced_execution_matches_unsliced(self, tmp_path):
        """Worker-style sliced runs (heartbeat pauses) are cycle- and
        counter-exact against an uninterrupted execute()."""
        from repro.experiments.engine import build_spec
        from repro.experiments.runner import execute
        from repro.serve.worker import execute_sliced
        spec = build_spec(request("wc", "compcomm", items=48))
        sliced = execute_sliced(spec, heartbeat_cycles=500)
        direct = execute(build_spec(request("wc", "compcomm", items=48)))
        assert sliced.cycles == direct.cycles
        assert sliced.counters == direct.counters
        assert sliced.to_dict() == direct.to_dict()

    def test_sliced_run_emits_heartbeats(self, tmp_path):
        from repro.experiments.engine import build_spec
        from repro.serve.worker import execute_sliced
        samples = []
        result = execute_sliced(build_spec(request("wc", "seq", items=48)),
                                samples.append, heartbeat_cycles=1000)
        assert len(samples) >= 2
        cycles = [sample["cycle"] for sample in samples]
        assert cycles == sorted(cycles)
        assert samples[-1]["cycle"] == result.cycles
        assert all(sample["ipc"] > 0 for sample in samples)


class TestCacheFastPath:
    def test_second_submission_served_from_cache(self, session):
        req = request("wc", "seq", **SMALL)
        first = session.submit(req)
        assert session.wait(first.job_id, timeout=120).state == DONE
        assert session.pool.dispatched == 1
        second = session.submit(req)
        record = session.status(second.job_id)
        assert record.state == DONE
        assert record.cached is True
        assert record.result == session.status(first.job_id).result
        assert session.pool.dispatched == 1  # no second worker

    def test_cached_job_never_touches_the_pool(self, tmp_path):
        """Poisoned-pool fixture: with the result already cached, the
        whole submit/wait cycle must complete without any pool call."""
        warm = make_session(tmp_path)
        try:
            req = request("wc", "seq", **SMALL)
            job = warm.submit(req)
            assert warm.wait(job.job_id, timeout=120).state == DONE
        finally:
            warm.close(timeout=30)

        session = make_session(tmp_path)
        session.pool = PoisonedPool()
        try:
            job = session.submit(req)
            record = session.wait(job.job_id, timeout=5)
            assert record.state == DONE
            assert record.cached is True
            assert record.result["results"]["cycles"] > 0
        finally:
            session.close(timeout=5)

    def test_cached_job_is_subscribable_and_listed(self, session):
        req = request("wc", "seq", **SMALL)
        job = session.submit(req)
        session.wait(job.job_id, timeout=120)
        hot = session.submit(req)
        events = []
        hot.subscribe(lambda event, payload: events.append(event))
        # terminal replay: late subscribers get the final state at once
        assert events == ["state"]
        assert hot.job_id in {record.job_id for record in session.jobs()}


class TestAdmissionControl:
    def _parked_session(self, tmp_path, **kwargs):
        """A session whose dispatcher never starts: jobs stay QUEUED."""
        session = make_session(tmp_path, **kwargs)
        session._ensure_dispatcher = lambda: None
        return session

    def test_queue_full_back_pressure(self, tmp_path):
        session = self._parked_session(tmp_path, queue_limit=3,
                                       tenant_quota=3)
        try:
            for items in (101, 102, 103):
                session.submit(request("wc", "seq", items=items))
            with pytest.raises(QueueFullError) as excinfo:
                session.submit(request("wc", "seq", items=104))
            assert excinfo.value.retry_after_s > 0
            assert "429" not in str(excinfo.value)  # HTTP is the server's
        finally:
            session.table.drain()

    def test_tenant_quota(self, tmp_path):
        session = self._parked_session(tmp_path, queue_limit=10,
                                       tenant_quota=2)
        try:
            for items in (111, 112):
                session.submit(request("wc", "seq", items=items),
                               tenant="alice")
            with pytest.raises(QuotaError):
                session.submit(request("wc", "seq", items=113),
                               tenant="alice")
            # another tenant is unaffected
            session.submit(request("wc", "seq", items=113), tenant="bob")
        finally:
            session.table.drain()

    def test_draining_rejects_even_cache_hits(self, session):
        req = request("wc", "seq", **SMALL)
        job = session.submit(req)
        session.wait(job.job_id, timeout=120)
        session.table.drain()
        with pytest.raises(DrainingError):
            session.submit(req)  # would be a cache hit, still refused

    def test_unknown_job(self, session):
        with pytest.raises(UnknownJobError):
            session.status("nope")

    def test_priority_order(self, tmp_path):
        session = self._parked_session(tmp_path)
        try:
            low = session.submit(request("wc", "seq", items=121),
                                 priority=0)
            high = session.submit(request("wc", "seq", items=122),
                                  priority=5)
            mid = session.submit(request("wc", "seq", items=123),
                                 priority=3)
            order = [session.table.next_job(timeout=0).job_id
                     for _ in range(3)]
            assert order == [high.job_id, mid.job_id, low.job_id]
        finally:
            session.table.drain()


class TestLifecycle:
    def test_cancel_queued_job(self, tmp_path):
        session = make_session(tmp_path)
        session._ensure_dispatcher = lambda: None
        job = session.submit(request("wc", "seq", items=131))
        assert session.cancel(job.job_id) is True
        record = session.status(job.job_id)
        assert record.state == CANCELLED
        assert session.cancel(job.job_id) is False  # already terminal
        # the cancelled job's slot was released
        assert session.table.counts()[QUEUED] == 0

    def test_cancel_running_job(self, session):
        job = session.submit(request("wc", "seq", items=4096))
        assert wait_for(lambda: session.status(job.job_id).state == RUNNING)
        assert session.cancel(job.job_id, detail="operator said stop")
        record = session.wait(job.job_id, timeout=30)
        assert record.state == CANCELLED
        assert record.detail == "operator said stop"
        assert session.pool.running() == 0 or \
            wait_for(lambda: session.pool.running() == 0, 10)

    def test_job_timeout(self, session):
        job = session.submit(request("wc", "seq", items=4096),
                             timeout_s=0.2)
        record = session.wait(job.job_id, timeout=60)
        assert record.state == FAILED
        assert record.errors[0]["exception_type"] == "JobTimeout"
        assert "0.2" in record.errors[0]["message"]

    def test_worker_failure_carries_structured_errors(self, session):
        job = session.submit(request("nonexistent-bench", "seq"))
        record = session.wait(job.job_id, timeout=60)
        assert record.state == FAILED
        assert record.errors, "FAILED jobs must carry SpecError payloads"
        payload = record.errors[0]
        assert payload["exception_type"] == "ConfigError"
        assert "nonexistent-bench" in payload["message"]
        assert payload["request"]["bench"] == "nonexistent-bench"
        # payload round-trips through the structured-record constructor
        error = SpecError.from_dict(payload)
        assert error.request.bench == "nonexistent-bench"

    def test_drain_finishes_admitted_jobs(self, session):
        job = session.submit(request("wc", "seq", items=141))
        assert session.drain(timeout=120) is True
        assert session.status(job.job_id).state == DONE
        with pytest.raises(DrainingError):
            session.submit(request("wc", "seq", items=142))

    def test_heartbeats_reach_the_job_record(self, session):
        session.pool.heartbeat_cycles = 2_000
        job = session.submit(request("wc", "seq", items=2048))
        beats = []
        job.subscribe(lambda event, payload:
                      beats.append(payload) if event == "heartbeat"
                      else None)
        record = session.wait(job.job_id, timeout=120)
        assert record.state == DONE
        assert record.heartbeat is not None
        assert record.heartbeat["cycle"] > 0
        assert beats and beats[-1]["cycle"] <= \
            record.result["results"]["cycles"]


class TestProtocolRecords:
    def test_job_request_round_trip(self):
        job_request = JobRequest(request=request("wc", "seq", items=8),
                                 tenant="team-a", priority=2,
                                 timeout_s=30.0)
        data = job_request_to_dict(job_request)
        back = job_request_from_dict(json.loads(json.dumps(data)))
        assert back == job_request

    def test_job_request_validation(self):
        with pytest.raises(ConfigError):
            JobRequest(request=request("wc", "seq"), tenant="")
        with pytest.raises(ConfigError):
            JobRequest(request=request("wc", "seq"), timeout_s=-1)

    def test_job_record_round_trip(self, session):
        job = session.submit(request("wc", "seq", **SMALL))
        record = session.wait(job.job_id, timeout=120)
        data = json.loads(json.dumps(record.to_dict()))
        back = JobRecord.from_dict(data)
        assert back == record

    def test_records_use_the_codec_registry(self):
        from repro.common.serialize import registered_codecs
        codecs = registered_codecs()
        assert "job-request" in codecs and "job-record" in codecs

    def test_job_record_schema_gate(self):
        with pytest.raises(ConfigError, match="schema"):
            JobRecord.from_dict({"schema": 99, "job_id": "x"})


class TestBatchErrorPayloads:
    def test_batch_error_carries_structured_payloads(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path / "cache",
                                  progress=False)
        good = request("wc", "seq", items=24)
        bad = request("wc", "no-such-variant")
        with pytest.raises(ExperimentBatchError) as excinfo:
            engine.run_batch([good, bad])
        error = excinfo.value
        assert len(error.payloads) == 1
        payload = error.payloads[0]
        assert payload["exception_type"] == "ConfigError"
        assert payload["request"]["variant"] == "no-such-variant"
        assert payload["label"] == bad.label
        assert error.to_dict() == {"errors": error.payloads}
        # payloads survive JSON and rebuild into live SpecErrors
        rebuilt = SpecError.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.request == bad


class TestCompatShims:
    def test_execute_fast_forward_kwarg_is_gone(self):
        from repro.experiments.runner import execute
        import inspect
        assert "fast_forward" not in inspect.signature(execute).parameters

    def test_compat_execute_warns_and_works(self):
        from repro.api.compat import execute
        from repro.experiments.engine import build_spec
        spec = build_spec(request("wc", "seq", items=16))
        with pytest.warns(DeprecationWarning, match="deprecated"):
            result = execute(spec, fast_forward=False)
        assert result.cycles > 0

    def test_compat_execute_rejects_conflicting_options(self):
        from repro.api.compat import execute
        from repro.common.config import RunOptions
        from repro.experiments.engine import build_spec
        spec = build_spec(request("wc", "seq", items=16))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ConfigError):
                execute(spec, fast_forward=True,
                        options=RunOptions(fast_forward=True))

    def test_trace_module_no_longer_exports_attach_tracer(self):
        import repro.cpu.trace as trace
        assert not hasattr(trace, "attach_tracer")


class TestFacadeSurface:
    def test_module_level_verbs_exist(self):
        for verb in ("submit", "run", "sample", "lint", "status",
                     "wait", "cancel", "connect", "configure"):
            assert callable(getattr(api, verb)), verb

    def test_run_via_facade(self, session):
        result = session.run("wc", "seq", **SMALL)
        assert result.cycles > 0
        again = session.run(request("wc", "seq", **SMALL))
        assert again.cycles == result.cycles

    def test_as_request_rejects_mixed_forms(self):
        with pytest.raises(TypeError):
            api.as_request(request("wc", "seq"), "seq")

    def test_lint_via_facade(self, session):
        diagnostics = session.lint(["wc"])
        assert isinstance(diagnostics, list)

    def test_stats_census(self, session):
        job = session.submit(request("wc", "seq", **SMALL))
        session.wait(job.job_id, timeout=120)
        stats = session.stats()
        assert stats["jobs"][DONE] >= 1
        assert stats["shards"] == 2
        assert set(stats["engine"]) == {"cache_hits", "simulated",
                                        "failed"}
