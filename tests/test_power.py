"""Power/area model tests: Table I ratios and energy accounting."""

import math

from repro.common.config import CORE_CLOCK_HZ
from repro.common.stats import Stats
from repro.power.area import (area_equivalences, homogeneous_barrier_cluster_area,
                              ooo2_comm_cluster_area, spl_cluster_area,
                              table1)
from repro.power.model import EnergyBreakdown, EnergyModel, energy_delay
from repro.power.presets import DEFAULT_PARAMS


class TestTable1:
    def test_published_ratios(self):
        data = table1()
        assert math.isclose(data["spl"]["total_area"], 0.51, rel_tol=1e-6)
        assert math.isclose(data["spl"]["peak_dynamic"], 0.14, rel_tol=1e-6)
        assert math.isclose(data["spl"]["total_leakage"], 0.67, rel_tol=1e-6)
        assert data["spl"]["spl_rows"] == 24

    def test_area_equivalences(self):
        checks = area_equivalences()
        assert checks["remap_vs_ooo2comm"].comparable(0.02)
        assert checks["remap_vs_homogeneous"].comparable(0.02)
        assert spl_cluster_area() > 4.0
        assert ooo2_comm_cluster_area() > 4.0
        assert homogeneous_barrier_cluster_area() == 6.0


class TestEnergyModel:
    def _stats_with_activity(self):
        stats = Stats("machine")
        cpu = stats.child("cpu0")
        for key, value in (("fetched", 1000), ("dispatched", 900),
                           ("issued", 800), ("retired", 850),
                           ("int_ops", 600), ("branches_resolved", 100)):
            cpu.set(key, value)
        mem = stats.child("mem")
        port = mem.child("core0")
        port.set("l1d_hits", 300)
        port.set("l1d_misses", 10)
        port.set("l2_hits", 8)
        port.set("l2_misses", 2)
        port.set("memory_reads", 0)
        bus = mem.child("bus")
        bus.set("transactions", 12)
        mem.set("memory_reads", 2)
        spl = stats.child("spl0")
        spl.set("rows_evaluated", 240)
        spl.set("stage_loads", 100)
        spl.set("requests", 10)
        spl.set("deliveries", 10)
        return stats

    def test_breakdown_positive_and_additive(self):
        model = EnergyModel()
        stats = self._stats_with_activity()
        breakdown = model.configuration_energy(
            stats, cycles=10_000, ooo1_cores=(0,), spl_clusters=((0, 1.0),))
        assert breakdown.core_dynamic > 0
        assert breakdown.memory_dynamic > 0
        assert breakdown.spl_dynamic > 0
        assert breakdown.leakage > 0
        total = (breakdown.core_dynamic + breakdown.memory_dynamic
                 + breakdown.spl_dynamic + breakdown.leakage)
        assert math.isclose(breakdown.total, total)

    def test_ooo2_costs_more_than_ooo1(self):
        model = EnergyModel()
        stats = self._stats_with_activity()
        as_ooo1 = model.configuration_energy(stats, 10_000, ooo1_cores=(0,))
        as_ooo2 = model.configuration_energy(stats, 10_000, ooo2_cores=(0,))
        assert as_ooo2.total > as_ooo1.total

    def test_spl_leakage_fraction(self):
        model = EnergyModel()
        stats = self._stats_with_activity()
        full = model.configuration_energy(stats, 10_000,
                                          spl_clusters=((0, 1.0),))
        half = model.configuration_energy(stats, 10_000,
                                          spl_clusters=((0, 0.5),))
        assert half.leakage < full.leakage
        assert math.isclose(half.spl_dynamic, full.spl_dynamic)

    def test_leakage_scales_with_time(self):
        model = EnergyModel()
        stats = Stats("machine")
        short = model.configuration_energy(stats, 1_000, ooo1_cores=(0,))
        long = model.configuration_energy(stats, 2_000, ooo1_cores=(0,))
        assert math.isclose(long.leakage, 2 * short.leakage)
        expected = DEFAULT_PARAMS.ooo1_leak_w * 1_000 / CORE_CLOCK_HZ
        assert math.isclose(short.leakage, expected)

    def test_energy_delay(self):
        assert math.isclose(energy_delay(2.0, CORE_CLOCK_HZ), 2.0)

    def test_breakdown_addition(self):
        a = EnergyBreakdown(1, 2, 3, 4)
        b = EnergyBreakdown(10, 20, 30, 40)
        c = a + b
        assert (c.core_dynamic, c.memory_dynamic, c.spl_dynamic,
                c.leakage) == (11, 22, 33, 44)
