"""Perfetto export: valid trace-event JSON with the documented tracks.

The golden file pins the *shape* of the trace (which processes, tracks,
counters, and phase types exist), not exact timings, so timing tweaks in
the simulator don't churn it while track-layout regressions still fail.
Regenerate deliberately with::

    PYTHONPATH=src python -m tests.regen_perfetto_golden
"""

import json
import os

from repro.obs.perfetto import PERFETTO_KINDS, PerfettoSink
from repro.system.machine import Machine
from repro.workloads import registry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "perfetto_shape.json")

#: The run the golden file describes (see tests/regen_perfetto_golden.py).
GOLDEN_SPEC = ("dijkstra", "barrier", {"n": 12, "p": 2})


def traced_run():
    bench, variant, params = GOLDEN_SPEC
    spec = registry.REGISTRY[bench].variants[variant](**params)
    machine = Machine(spec.system)
    sink = PerfettoSink()
    machine.obs.attach(sink, kinds=PERFETTO_KINDS)
    machine.load(spec.workload)
    machine.run(max_cycles=spec.max_cycles)
    machine.finish_observation()
    return machine, sink


def test_shape_matches_golden():
    _machine, sink = traced_run()
    with open(GOLDEN, encoding="utf-8") as handle:
        golden = json.load(handle)
    assert sink.shape() == golden


def test_trace_document_is_valid_and_loadable(tmp_path):
    machine, sink = traced_run()
    path = tmp_path / "trace.json"
    sink.write(str(path))
    document = json.loads(path.read_text())
    events = document["traceEvents"]
    assert document["otherData"]["total_cycles"] == machine.cycle
    phases = {event["ph"] for event in events}
    assert {"M", "X", "C", "i"} <= phases
    for event in events:
        assert "pid" in event and "name" in event
        if event["ph"] == "X":
            assert event["dur"] >= 1
            assert 0 <= event["ts"] <= machine.cycle
    # Metadata must name every process and track referenced by events.
    named_pids = {event["pid"] for event in events
                  if event["ph"] == "M" and event["name"] == "process_name"}
    assert {event["pid"] for event in events} <= named_pids


def test_tracks_cover_cores_fabric_queues_and_mem():
    _machine, sink = traced_run()
    shape = sink.shape()
    assert "core 0" in shape["processes"]["cores"]
    assert "partition 0" in shape["processes"]["spl 0"]
    assert any(track.startswith("port") for track
               in shape["processes"]["spl 0"])
    assert "iq0 depth" in shape["counters"]["spl 0"]
    assert any(track.endswith("hierarchy") for track
               in shape["processes"]["mem"])


def test_pipeline_kinds_not_drawn():
    """The exporter subscribes only to non-pipeline kinds, so attaching it
    must keep the per-instruction fast path dark."""
    from repro.obs import events as ev
    assert not (PERFETTO_KINDS & ev.PIPELINE_KINDS)
    from repro.obs.bus import EventBus
    bus = EventBus()
    bus.attach(PerfettoSink(), kinds=PERFETTO_KINDS)
    assert bus.active and not bus.pipeline_active
