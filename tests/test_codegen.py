"""Differential equivalence: compiled DFG closures vs the interpreter.

The codegen contract (DESIGN.md "Compiled hot paths") is that for every
graph the generator accepts, the compiled closure is bit-exact with
``Dfg.evaluate`` — same outputs, same delay-register state evolution, and
same error behaviour.  This suite sweeps the entire SPL function library
(the lint library set plus every workload-module builder) on randomized
inputs, including stateful/DELAY functions over multi-step sequences and
barrier functions, and checks the fused byte-entry path against an
interpreter-only twin constructed under ``REPRO_NO_CODEGEN=1``.
"""

import random

import pytest

from repro.analysis.lint import library_functions
from repro.common.errors import MappingError, SplError
from repro.core.codegen import compile_dfg
from repro.core.dfg import Dfg, DfgOp
from repro.core.function import (SplFunction, barrier_reduce_function,
                                 barrier_token_function, identity_function)
from repro.workloads import (adpcm, astar, cjpeg, g721, gsm, libquantum,
                             mpeg2, spl_lib, twolf, unepic, wc)

#: Every SPL function builder in the tree, by name.  Builders (not
#: instances) so each test can construct fresh state and fresh instances
#: under a patched environment.
BUILDERS = {
    "hmmer_mc": spl_lib.hmmer_mc_function,
    "mac2": spl_lib.mac2_function,
    "mac4": spl_lib.mac4_function,
    "sad8": spl_lib.sad8_function,
    "mpeg2_conv420": mpeg2.conv420_function,
    "mpeg2_conv4": mpeg2.conv4_function,
    "astar_bound": astar.bound_function,
    "quantum_gates8": libquantum.gates8_function,
    "unepic_dequant": unepic.dequant_function,
    "twolf_dbox": twolf.dbox_function,
    "gsm_weight": gsm.weighting_function,
    "gsm_ltp_corr": gsm.corr8_function,
    "gsm_lattice": gsm.synthesis_function,
    "g721_fmult": g721.fmult_function,
    "wc4": wc.wc4_function,
    "adpcm_step": adpcm.adpcm_function,
    "cjpeg_ycc": cjpeg.ycc_function,
    "route": identity_function,
    "barrier_token": lambda: barrier_token_function(4),
    "reduce_min": lambda: barrier_reduce_function(4, DfgOp.MIN),
    "reduce_max": lambda: barrier_reduce_function(4, DfgOp.MAX),
    "reduce_add": lambda: barrier_reduce_function(4, DfgOp.ADD),
}

STEPS = 12  # sequence length per trial (exercises DELAY state evolution)
TRIALS = 5  # random restarts per function


def _random_inputs(dfg: Dfg, rng: random.Random) -> dict:
    # 64-bit magnitudes exercise the signed-width narrowing on every input.
    return {name: rng.randrange(-(1 << 63), 1 << 63) for name in dfg.inputs}


def _entry_shape(dfg: Dfg):
    """(byte size, all-valid mask) of the function's staged entry."""
    size = max(dfg.input_offsets[name] + node.width
               for name, node in dfg.inputs.items())
    return size, (1 << size) - 1


def _random_entry(rng: random.Random, size: int) -> bytes:
    return bytes(rng.randrange(256) for _ in range(size))


@pytest.fixture
def no_codegen(monkeypatch):
    """Functions constructed under this fixture interpret every entry."""
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")


def test_library_covers_lint_sweep():
    # The lint library set must be a subset of what this suite sweeps.
    lint_names = {function.dfg.name for _unit, function in
                  library_functions()}
    swept = {builder().dfg.name for builder in BUILDERS.values()}
    assert lint_names <= swept


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_compiled_matches_interpreter(name):
    """Generic evaluate: outputs and state agree over random sequences."""
    function = BUILDERS[name]()
    dfg = function.dfg
    compiled = compile_dfg(dfg)
    rng = random.Random(0xC0DE ^ hash(name) & 0xFFFF)
    for _trial in range(TRIALS):
        state_ref: dict = {}
        state_got: dict = {}
        stateful = dfg.is_stateful
        for _step in range(STEPS):
            inputs = _random_inputs(dfg, rng)
            reference = dfg.evaluate(dict(inputs),
                                     state=state_ref if stateful else None)
            got = compiled.evaluate(dict(inputs),
                                    state_got if stateful else None)
            assert got == reference
            assert state_got == state_ref


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_entry_path_matches_interpreted_twin(name, monkeypatch):
    """Byte-entry evaluation: codegen-on vs codegen-off instances agree."""
    fast = BUILDERS[name]()
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    slow = BUILDERS[name]()
    assert fast.compiled is not None
    assert slow.compiled is None
    rng = random.Random(0xBEEF ^ hash(name) & 0xFFFF)
    size, valid = _entry_shape(fast.dfg)
    for _step in range(STEPS):
        if fast.is_barrier:
            slots = sorted({int(n.split("_")[0][1:])
                            for n in fast.dfg.inputs})
            entries = {slot: (_random_entry(rng, size), valid)
                       for slot in slots}
            assert (fast.evaluate_barrier(entries)
                    == slow.evaluate_barrier(entries))
        else:
            data = _random_entry(rng, size)
            assert (fast.evaluate_entry(data, valid)
                    == slow.evaluate_entry(data, valid))
            assert fast.state == slow.state


@pytest.mark.parametrize("name", ["adpcm_step", "gsm_lattice", "route"])
def test_entry_error_parity(name, monkeypatch):
    """Invalid entries raise the same SplError either way."""
    fast = BUILDERS[name]()
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    slow = BUILDERS[name]()
    data = bytes(16)
    with pytest.raises(SplError) as fast_exc:
        fast.evaluate_entry(data, 0)  # no byte is valid
    with pytest.raises(SplError) as slow_exc:
        slow.evaluate_entry(data, 0)
    assert str(fast_exc.value) == str(slow_exc.value)


def test_missing_input_error_parity():
    """Generic evaluate raises the interpreter's MappingError verbatim."""
    function = BUILDERS["mac2"]()
    compiled = compile_dfg(function.dfg)
    inputs = _random_inputs(function.dfg, random.Random(7))
    dropped = sorted(inputs)[0]
    del inputs[dropped]
    with pytest.raises(MappingError) as ref_exc:
        function.dfg.evaluate(dict(inputs))
    with pytest.raises(MappingError) as got_exc:
        compiled.evaluate(dict(inputs))
    assert str(got_exc.value) == str(ref_exc.value)


def test_no_codegen_disables_compilation(no_codegen):
    function = spl_lib.mac2_function()
    assert function.compiled is None
    # ...and the entry path still works, interpreted.
    dfg = function.dfg
    values = {name: 1 for name in dfg.inputs}
    assert function.dfg.evaluate(values) is not None


def test_compiled_source_is_inspectable():
    """The generated source is kept on the object for debugging."""
    compiled = compile_dfg(spl_lib.mac2_function().dfg)
    assert "def evaluate(" in compiled.source
    assert compiled.name == "ll3_mac2"


def test_barrier_entry_closure_absent():
    """Barrier graphs have no fused entry closure (slot-renamed inputs)."""
    function = barrier_token_function(4)
    compiled = compile_dfg(function.dfg)
    assert compiled.evaluate_entry is None


class _StatefulBuilder:
    """A tiny stateful graph exercising DELAY init-consts and updates."""

    @staticmethod
    def build() -> SplFunction:
        dfg = Dfg("delay_probe")
        x = dfg.input("x", 0)
        prev = dfg.delay(init=5)
        dfg.output("y", dfg.add(x, prev))
        dfg.set_delay_source(prev, x)
        return SplFunction(dfg)


def test_delay_state_matches_across_restart():
    """State read-before-update and init-const semantics are preserved."""
    function = _StatefulBuilder.build()
    compiled = compile_dfg(function.dfg)
    rng = random.Random(99)
    state_ref: dict = {}
    state_got: dict = {}
    for step in range(8):
        inputs = {"x": rng.randrange(-(1 << 40), 1 << 40)}
        reference = function.dfg.evaluate(dict(inputs), state=state_ref)
        got = compiled.evaluate(dict(inputs), state_got)
        assert got == reference
        assert state_got == state_ref
        if step == 0:
            # The flip-flop captured the first input.
            assert state_got
