"""Coverage for thread contexts, program containers, and workload misc."""

import pytest

from repro.common.errors import AssemblyError
from repro.cpu.context import ThreadContext
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.isa.instruction import reg_index
from repro.system.workload import Workload


def _program():
    a = Asm("p")
    a.label("entry")
    a.li("r1", 3)
    a.j("entry")
    a.halt()
    return a.assemble()


class TestThreadContext:
    def test_initial_registers(self):
        spec = ThreadSpec(_program(), thread_id=3,
                          int_regs={"r5": -7}, fp_regs={"f2": 1.5})
        ctx = ThreadContext(spec)
        assert ctx.read(reg_index("r5")) == -7
        assert ctx.read(reg_index("f2")) == 1.5
        assert ctx.thread_id == 3

    def test_r0_write_ignored(self):
        ctx = ThreadContext(ThreadSpec(_program(), 1))
        ctx.write(0, 99)
        assert ctx.read(0) == 0

    def test_fp_and_int_separate(self):
        ctx = ThreadContext(ThreadSpec(_program(), 1))
        ctx.write(reg_index("r4"), 10)
        ctx.write(reg_index("f4"), 2.5)
        assert ctx.read(reg_index("r4")) == 10
        assert ctx.read(reg_index("f4")) == 2.5

    def test_wrong_register_class_rejected(self):
        with pytest.raises(ValueError):
            ThreadContext(ThreadSpec(_program(), 1, int_regs={"f1": 1}))
        with pytest.raises(ValueError):
            ThreadContext(ThreadSpec(_program(), 1, fp_regs={"r1": 1.0}))


class TestProgram:
    def test_listing_shows_labels_and_targets(self):
        listing = _program().listing()
        assert "entry:" in listing
        assert "li" in listing and "j" in listing

    def test_indices_assigned(self):
        program = _program()
        for index, inst in enumerate(program.instructions):
            assert inst.index == index

    def test_jump_target_resolved_to_index(self):
        program = _program()
        assert program[1].target == 0

    def test_unresolvable_program(self):
        a = Asm("bad")
        a.beq("r1", "r2", "missing")
        with pytest.raises(AssemblyError):
            a.assemble()


class TestWorkloadContainer:
    def test_repr(self):
        workload = Workload("x", MemoryImage(),
                            [ThreadSpec(_program(), 1)], placement=[2])
        text = repr(workload)
        assert "x" in text and "[2]" in text

    def test_default_placement(self):
        workload = Workload("x", MemoryImage(),
                            [ThreadSpec(_program(), 1),
                             ThreadSpec(_program(), 2)])
        assert workload.placement == [0, 1]

    def test_metadata_copied(self):
        meta = {"k": 1}
        workload = Workload("x", MemoryImage(),
                            [ThreadSpec(_program(), 1)], metadata=meta)
        meta["k"] = 2
        assert workload.metadata["k"] == 1
