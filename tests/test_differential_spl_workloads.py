"""Golden-model validation of the fabric-accelerated workload programs.

Each computation-only benchmark's ``spl`` variant is executed on the
sequential interpreter with a functional (zero-latency) SPL model, using
exactly the bindings the workload's setup would install on a machine.
The workload's own check then verifies the interpreter's memory — proving
the *programs and fabric functions* are correct independent of the
timing simulator.
"""

import pytest

from repro.isa.interpreter import FunctionalSpl, Interpreter
from repro.mem.memory import MainMemory
from repro.workloads import registry


class _RecordingMachine:
    """Stands in for Machine during workload setup; records bindings."""

    def __init__(self, n_cores: int = 16) -> None:
        self.bindings = {}      # core -> {config_id: (function, dest)}
        self.partitions = None
        self.barriers = {}

    def configure_spl(self, core, config_id, function, dest_thread=None,
                      barrier_id=None):
        self.bindings.setdefault(core, {})[config_id] = \
            (function, dest_thread, barrier_id)

    def set_partitions(self, core, rows, assignment=None):
        self.partitions = (rows, assignment)

    def register_barrier(self, barrier_id, app_id, thread_ids):
        self.barriers[barrier_id] = tuple(thread_ids)


_SIZES = {
    "g721enc": {"items": 6},
    "g721dec": {"items": 6},
    "mpeg2enc": {"items": 4},
    "mpeg2dec": {"items": 24},
    "gsmtoast": {"items": 16},
    "gsmuntoast": {"items": 12},
    "libquantum": {"items": 4, "passes": 2},
}


@pytest.mark.parametrize("bench", sorted(_SIZES))
def test_spl_variant_on_interpreter(bench):
    info = registry.REGISTRY[bench]
    spec = info.variants["spl"](**_SIZES[bench])
    workload = spec.workload
    recorder = _RecordingMachine()
    workload.setup(recorder)

    memory = MainMemory()
    memory.load_image(workload.image)
    for core_index, thread in enumerate(workload.threads):
        spl = FunctionalSpl()
        for config_id, (function, dest, barrier) in \
                recorder.bindings.get(core_index, {}).items():
            assert barrier is None  # comp-only variants have no barriers
            assert dest is None     # results return to the issuing core
            spl.configure(config_id, function)
        interp = Interpreter(thread.program, memory, spl=spl,
                             max_steps=30_000_000)
        interp.run()
    workload.check(memory)


def test_recording_machine_captures_partitions():
    info = registry.REGISTRY["gsmuntoast"]
    spec = info.variants["spl"](items=8)
    recorder = _RecordingMachine()
    spec.workload.setup(recorder)
    # The stateful lattice demands private partitions and one function
    # instance per core.
    assert recorder.partitions is not None
    functions = {id(recorder.bindings[core][1][0])
                 for core in recorder.bindings}
    assert len(functions) == len(recorder.bindings)
