"""Unit and property tests for memory, caches, coherence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, SystemConfig, ooo1_cluster
from repro.common.errors import MemoryFault
from repro.common.stats import Stats
from repro.mem.bus import SnoopBus
from repro.mem.cache import TagArray
from repro.mem.hierarchy import (EXCLUSIVE, MODIFIED, SHARED,
                                 CoherentMemorySystem)
from repro.mem.memory import MainMemory


class TestMainMemory:
    def test_word_rw(self):
        memory = MainMemory()
        memory.write_word(0x100, 0xDEADBEEF)
        assert memory.read_word(0x100) == 0xDEADBEEF
        assert memory.read_word_signed(0x100) == -559038737

    def test_byte_and_half(self):
        memory = MainMemory()
        memory.write_word(0x10, 0x11223344)
        assert memory.read_byte(0x10) == 0x44
        assert memory.read_byte(0x13) == 0x11
        memory.write_byte(0x11, 0xAA)
        assert memory.read_word(0x10) == 0x1122AA44
        memory.write_half(0x12, 0xBBCC)
        assert memory.read_half(0x12) == 0xBBCC

    def test_unaligned_rejected(self):
        memory = MainMemory()
        with pytest.raises(MemoryFault):
            memory.read_word(2)
        with pytest.raises(MemoryFault):
            memory.read_half(1)

    def test_float_roundtrip(self):
        memory = MainMemory()
        memory.write_float(0x20, 1.5)
        assert memory.read_float(0x20) == 1.5

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                    min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_byte_writes_match_model(self, writes):
        memory = MainMemory()
        model = {}
        for addr, value in writes:
            memory.write_byte(addr, value)
            model[addr] = value
        for addr, value in model.items():
            assert memory.read_byte(addr) == value


class TestTagArray:
    def _array(self, assoc=2, sets=4):
        config = CacheConfig("t", assoc * sets * 32, assoc, 32, 1)
        return TagArray(config, Stats("t"))

    def test_insert_and_lookup(self):
        tags = self._array()
        assert not tags.lookup(5)
        assert tags.insert(5) is None
        assert tags.lookup(5)

    def test_lru_eviction(self):
        tags = self._array(assoc=2, sets=1)
        tags.insert(0)
        tags.insert(1)
        tags.lookup(0)          # 0 is now most recent
        victim = tags.insert(2)
        assert victim == 1

    def test_remove(self):
        tags = self._array()
        tags.insert(9)
        assert tags.remove(9)
        assert not tags.remove(9)

    def test_occupancy(self):
        tags = self._array()
        for line in range(6):
            tags.insert(line)
        assert tags.occupancy() == 6


class TestSnoopBus:
    def test_serialization(self):
        bus = SnoopBus(4, Stats("bus"))
        assert bus.transact(0) == 0
        assert bus.transact(1) == 4   # must wait for occupancy
        assert bus.transact(100) == 100


def _make_system(n_cores=2):
    cluster = ooo1_cluster(n_cores)
    system = SystemConfig(clusters=[cluster])
    configs = [(cluster.core.l1i, cluster.core.l1d, cluster.core.l2)
               for _ in range(n_cores)]
    return CoherentMemorySystem(configs, system, Stats("mem"))


class TestCoherence:
    def test_read_miss_then_hit(self):
        mem = _make_system()
        t1 = mem.data_access(0, 0x1000, False, 0)
        assert t1 > 100  # main memory
        t2 = mem.data_access(0, 0x1000, False, t1)
        assert t2 - t1 == 2  # L1 hit
        assert mem.line_state(0, 0x1000) == EXCLUSIVE

    def test_write_sets_modified(self):
        mem = _make_system()
        mem.data_access(0, 0x1000, True, 0)
        assert mem.line_state(0, 0x1000) == MODIFIED

    def test_read_shared_between_cores(self):
        mem = _make_system()
        mem.data_access(0, 0x2000, False, 0)
        mem.data_access(1, 0x2000, False, 500)
        assert mem.line_state(0, 0x2000) == SHARED
        assert mem.line_state(1, 0x2000) == SHARED

    def test_write_invalidates_sharer(self):
        mem = _make_system()
        mem.data_access(0, 0x3000, False, 0)
        mem.data_access(1, 0x3000, True, 500)
        assert mem.line_state(0, 0x3000) == 0  # invalid
        assert mem.line_state(1, 0x3000) == MODIFIED

    def test_upgrade_on_shared_write(self):
        mem = _make_system()
        mem.data_access(0, 0x4000, False, 0)
        mem.data_access(1, 0x4000, False, 500)
        mem.data_access(0, 0x4000, True, 1000)
        assert mem.line_state(0, 0x4000) == MODIFIED
        assert mem.line_state(1, 0x4000) == 0

    def test_modified_supplier_downgrades(self):
        mem = _make_system()
        mem.data_access(0, 0x5000, True, 0)
        mem.data_access(1, 0x5000, False, 500)
        assert mem.line_state(0, 0x5000) == SHARED
        assert mem.line_state(1, 0x5000) == SHARED

    def test_invalidation_listener_fires(self):
        mem = _make_system()
        seen = []
        mem.invalidation_listeners.append(
            lambda core, line: seen.append((core, line)))
        mem.data_access(0, 0x6000, False, 0)
        mem.data_access(1, 0x6000, True, 500)
        assert seen and seen[0][0] == 0

    def test_inst_fetch_hits_after_miss(self):
        mem = _make_system()
        t1 = mem.inst_fetch(0, 0, 0)
        assert t1 > 100
        t2 = mem.inst_fetch(0, 1, t1)
        assert t2 - t1 == 2

    @given(st.lists(st.tuples(st.integers(0, 1),
                              st.sampled_from([0x100, 0x200, 0x300, 0x400]),
                              st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_mesi_invariants_random(self, ops):
        mem = _make_system()
        cycle = 0
        for core, addr, is_write in ops:
            cycle = mem.data_access(core, addr, is_write, cycle)
            mem.check_invariants()
