"""The simulator's bottlenecks must respond believably to parameters."""

from repro.experiments.sensitivity import (l1d_size, memory_latency,
                                           physical_registers, rob_size)


def _values(rows, key="cycles_per_item"):
    return [row[key] for row in rows]


def test_rob_size_monotone():
    rows = rob_size(values=(16, 64))
    assert rows[0]["cycles_per_item"] > rows[1]["cycles_per_item"]


def test_physical_registers_monotone():
    rows = physical_registers(values=(40, 96))
    assert rows[0]["cycles_per_item"] > rows[1]["cycles_per_item"]


def test_l1d_capacity_helps():
    rows = l1d_size(values=(2, 32))
    assert rows[0]["cycles_per_item"] > rows[1]["cycles_per_item"]


def test_memory_latency_hurts():
    rows = memory_latency(values=(50, 800))
    assert rows[0]["cycles_per_item"] < rows[1]["cycles_per_item"]
