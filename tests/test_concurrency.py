"""Whole-machine concurrency verifier (CON rules) with dynamic agreement.

Each seeded-defect fixture is checked twice: the static verifier must
flag it with the expected CON rule, and the simulator must actually
misbehave (deadlock or SPL fault) when the same spec runs — the
contract the scenario fuzzer enforces at scale.
"""

import random

import pytest

from repro.analysis import Severity, lint_spec
from repro.analysis.fuzz import (_scenario_barrier, _scenario_comm_pair,
                                 _scenario_fabric_pair, _scenario_ring,
                                 _scenario_selfloop)
from repro.common.config import RunOptions
from repro.common.errors import DeadlockError, SplError
from repro.core.function import identity_function
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system.machine import Machine
from repro.system.workload import Workload
from repro.workloads.base import RunSpec, remap_machine_system


def _build(generator, defect, seed=0):
    scenario = generator(seed, random.Random(seed), defect)
    return scenario.build()


def _error_rules(spec):
    return {d.rule for d in lint_spec(spec, unit="test") if d.is_error}


def _run(spec):
    machine = Machine(spec.system)
    machine.load(spec.workload)
    machine.run(options=RunOptions(max_cycles=spec.max_cycles))
    return machine


class TestStaticFlagging:
    def test_con001_unmatched_endpoint(self):
        spec = _build(_scenario_fabric_pair, "dest_absent")
        assert "CON001" in _error_rules(spec)

    def test_con001_comm_unmatched_endpoint(self):
        spec = _build(_scenario_comm_pair, "comm_dest_absent")
        rules = _error_rules(spec)
        assert "CON001" in rules and "SPL005" in rules

    def test_con003_unregistered_barrier(self):
        spec = _build(_scenario_barrier, "barrier_unregistered")
        assert "CON003" in _error_rules(spec)

    def test_con003_phantom_participant(self):
        spec = _build(_scenario_barrier, "barrier_phantom")
        assert "CON003" in _error_rules(spec)

    def test_con004_ring_deadlock(self):
        spec = _build(_scenario_ring, "ring_deadlock")
        assert "CON004" in _error_rules(spec)

    def test_con005_capacity_overfill(self):
        spec = _build(_scenario_selfloop, "selfloop_overfill")
        assert "CON005" in _error_rules(spec)

    def test_clean_fixtures_have_no_errors(self):
        for generator in (_scenario_ring, _scenario_fabric_pair,
                          _scenario_comm_pair, _scenario_barrier,
                          _scenario_selfloop):
            assert _error_rules(_build(generator, None)) == set()

    def test_con002_multiple_producers_is_a_note(self):
        route = identity_function("fanin")
        producers = []
        for i in range(2):
            a = Asm(f"producer{i}")
            a.li("r4", 10 + i)
            a.spl_load("r4", 0)
            a.spl_init(1)
            a.halt()
            producers.append(a.assemble())
        a = Asm("consumer")
        a.spl_recv("r3")
        a.spl_recv("r4")
        a.halt()
        consumer = a.assemble()

        def setup(machine):
            machine.configure_spl(0, 1, route, dest_thread=3)
            machine.configure_spl(1, 1, route, dest_thread=3)

        workload = Workload(
            "fanin", MemoryImage(),
            [ThreadSpec(producers[0], thread_id=1),
             ThreadSpec(producers[1], thread_id=2),
             ThreadSpec(consumer, thread_id=3)],
            placement=[0, 1, 2], setup=setup)
        spec = RunSpec("test/fanin", workload, remap_machine_system(1))
        diagnostics = lint_spec(spec, unit="test")
        assert not [d for d in diagnostics if d.is_error]
        notes = [d for d in diagnostics if d.rule == "CON002"]
        assert notes and all(d.severity is Severity.NOTE for d in notes)


class TestDynamicAgreement:
    def test_ring_deadlock_actually_deadlocks(self):
        spec = _build(_scenario_ring, "ring_deadlock")
        with pytest.raises(DeadlockError) as excinfo:
            _run(spec)
        assert excinfo.value.wait_states
        assert any("spl" in line for line in excinfo.value.wait_states)

    def test_dest_absent_actually_deadlocks(self):
        spec = _build(_scenario_fabric_pair, "dest_absent")
        with pytest.raises(DeadlockError):
            _run(spec)

    def test_unregistered_barrier_faults(self):
        spec = _build(_scenario_barrier, "barrier_unregistered")
        with pytest.raises(SplError):
            _run(spec)

    def test_phantom_participant_deadlocks_with_barrier_report(self):
        spec = _build(_scenario_barrier, "barrier_phantom")
        with pytest.raises(DeadlockError) as excinfo:
            _run(spec)
        assert any("barrier" in line for line in excinfo.value.wait_states)

    def test_overfill_deadlocks(self):
        spec = _build(_scenario_selfloop, "selfloop_overfill")
        with pytest.raises(DeadlockError):
            _run(spec)

    def test_clean_ring_runs(self):
        spec = _build(_scenario_ring, None)
        machine = _run(spec)
        assert all(core.halted or core.ctx is None
                   for core in machine.cores)

    def test_wait_reports_cover_occupied_cores(self):
        spec = _build(_scenario_ring, None)
        machine = Machine(spec.system)
        machine.load(spec.workload)
        reports = machine.wait_reports()
        assert len(reports) == len(spec.workload.threads)
        assert all(report.startswith("core") for report in reports)
