"""Trace-cache block compilation (repro.cpu.blockgen).

Three properties are enforced:

1. **Template fidelity.**  The source templates the block compiler folds
   into generated closures (``ALU_EXPR``/``FP_EXPR``/``BRANCH_EXPR``) are
   swept against the authoritative evaluators (``ALU_TABLE``,
   :func:`repro.cpu.exec.fp`, :func:`repro.cpu.exec.branch_taken`) on
   randomized operands — any divergence is a silent wrong-result bug in
   the fused loop.
2. **Cache keying.**  Compiled blocks are memoized per program keyed by
   (BLOCKGEN_VERSION, core config, instruction fingerprint): same inputs
   hit, a different config or a mutated program must miss.  The same
   invalidation contract holds one layer down for DFG codegen.
3. **Gating and integration.**  The ``REPRO_NO_BLOCKGEN`` /
   ``REPRO_NO_CODEGEN`` escape hatches and mid-run snapshots preserve the
   simulation exactly; the generated source stays inspectable.
"""

import math
import random

import pytest

from repro.common.config import RunOptions, SystemConfig, ooo1_cluster, \
    ooo2_cluster
from repro.common.utils import to_unsigned
from repro.cpu import exec as exec_mod
from repro.cpu.blockgen import compiled_blocks
from repro.isa.opcodes import Op
from repro.system import Machine
from repro.workloads import registry

_EXPR_NAMESPACE = {
    "_w": exec_mod._wrap,
    "_u": to_unsigned,
    "_div": exec_mod._div,
    "_rem": exec_mod._rem,
    "_inf": float("inf"),
    "_ninf": float("-inf"),
    "_nan": float("nan"),
}


def _fold(template, imm):
    """Fold an immediate into a template like the block compiler does."""
    return template.format(imm=f"({imm})", imm5=repr(imm & 31),
                           imm_wrapped=f"({exec_mod._wrap(imm)})")


def test_alu_expr_covers_alu_table():
    assert set(exec_mod.ALU_EXPR) == set(exec_mod.ALU_TABLE)


@pytest.mark.parametrize("op", sorted(exec_mod.ALU_EXPR,
                                      key=lambda op: op.name))
def test_alu_expr_matches_table(op):
    rng = random.Random(f"alu-{op.name}")
    edge = [0, 1, -1, 31, 32, 2**31 - 1, -2**31, -2048, 2047]
    for trial in range(200):
        if trial < len(edge) ** 2:
            a = edge[trial % len(edge)]
            b = edge[trial // len(edge) % len(edge)]
        else:
            a = rng.randint(-2**31, 2**31 - 1)
            b = rng.randint(-2**31, 2**31 - 1)
        imm = rng.randint(-2048, 2047)
        got = eval(_fold(exec_mod.ALU_EXPR[op], imm),
                   dict(_EXPR_NAMESPACE), {"a": a, "b": b})
        assert got == exec_mod.ALU_TABLE[op](a, b, imm), \
            f"{op.name}(a={a}, b={b}, imm={imm})"


@pytest.mark.parametrize("op", sorted(exec_mod.FP_EXPR,
                                      key=lambda op: op.name))
def test_fp_expr_matches_fp(op):
    rng = random.Random(f"fp-{op.name}")
    values = [0.0, -0.0, 1.0, -1.0, 0.5, 1e30, -1e30]
    for trial in range(200):
        if trial < len(values) ** 2:
            a = values[trial % len(values)]
            b = values[trial // len(values) % len(values)]
        else:
            a = rng.uniform(-1e6, 1e6)
            b = rng.uniform(-1e6, 1e6)
        got = eval(exec_mod.FP_EXPR[op], dict(_EXPR_NAMESPACE),
                   {"a": a, "b": b})
        want = exec_mod.fp(op, a, b)
        if isinstance(want, float) and math.isnan(want):
            assert isinstance(got, float) and math.isnan(got)
        else:
            assert got == want, f"{op.name}(a={a}, b={b})"


@pytest.mark.parametrize("op", sorted(exec_mod.BRANCH_EXPR,
                                      key=lambda op: op.name))
def test_branch_expr_matches_branch_taken(op):
    rng = random.Random(f"br-{op.name}")
    edge = [0, 1, -1, 2**31 - 1, -2**31]
    for trial in range(200):
        if trial < len(edge) ** 2:
            a = edge[trial % len(edge)]
            b = edge[trial // len(edge) % len(edge)]
        else:
            a = rng.randint(-2**31, 2**31 - 1)
            b = rng.randint(-2**31, 2**31 - 1)
        got = bool(eval(exec_mod.BRANCH_EXPR[op], dict(_EXPR_NAMESPACE),
                        {"a": a, "b": b}))
        assert got == exec_mod.branch_taken(op, a, b), \
            f"{op.name}(a={a}, b={b})"


# ------------------------------------------------------------- cache keying


def _program():
    from repro.isa import Asm
    a = Asm("loop")
    a.li("r1", 0)
    a.li("r2", 10)
    a.label("loop")
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.halt()
    return a.assemble()


def _core_configs():
    machine = Machine(SystemConfig(clusters=[ooo1_cluster(n_cores=1),
                                             ooo2_cluster(n_cores=1)]))
    return machine.cores[0].config, machine.cores[-1].config


def test_compiled_blocks_memoized_per_program_and_config():
    prog = _program()
    cfg1, cfg2 = _core_configs()
    assert cfg1 != cfg2
    bp = compiled_blocks(prog, cfg1)
    assert compiled_blocks(prog, cfg1) is bp
    assert compiled_blocks(prog, cfg2) is not bp


def test_compiled_blocks_miss_on_program_mutation():
    prog = _program()
    cfg, _ = _core_configs()
    bp = compiled_blocks(prog, cfg)
    prog.instructions[0].imm = 7  # li r1, 0 -> li r1, 7
    assert compiled_blocks(prog, cfg) is not bp


def test_dfg_mutation_invalidates_compiled_closures():
    """Mutating a Dfg after first evaluation recompiles its closures."""
    from repro.core.dfg import Dfg, DfgOp
    from repro.core.function import SplFunction
    dfg = Dfg("f")
    x = dfg.input("x", offset=0, width=4)
    dfg.output("y", dfg.op(DfgOp.ADD, x, x))
    fn = SplFunction(dfg)
    first = fn.compiled
    if first is None:
        pytest.skip("codegen disabled in this environment")
    assert fn.compiled is first  # unchanged graph: cached
    dfg.output("z", dfg.op(DfgOp.ADD, x, x))
    second = fn.compiled
    assert second is not first
    assert second.evaluate({"x": 3}) == {"y": 6, "z": 6}


# --------------------------------------------------------- gating, snapshot


def _run_small(options=None):
    spec = registry.REGISTRY["g721dec"].variants["seq"](items=4)
    machine = Machine(spec.system)
    machine.load(spec.workload)
    cycles = machine.run(options=options or
                         RunOptions(max_cycles=spec.max_cycles))
    return cycles, machine.total_retired(), machine


def test_blockgen_run_matches_interpreter_exactly():
    spec = registry.REGISTRY["g721dec"].variants["seq"](items=4)
    base_cycles, base_retired, base = _run_small(
        RunOptions(max_cycles=spec.max_cycles, fast_forward=False,
                   blockgen=False))
    fused_cycles, fused_retired, fused = _run_small(
        RunOptions(max_cycles=spec.max_cycles, fast_forward=True,
                   blockgen=True))
    assert (fused_cycles, fused_retired) == (base_cycles, base_retired)
    assert fused.stats.as_dict() == base.stats.as_dict()


@pytest.mark.parametrize("env", ["REPRO_NO_BLOCKGEN", "REPRO_NO_CODEGEN"])
def test_env_gates_preserve_simulation(env, monkeypatch):
    """Each escape hatch alone must not change the simulated results."""
    reference = _run_small()[:2]
    monkeypatch.setenv(env, "1")
    assert _run_small()[:2] == reference


def test_snapshot_roundtrip_with_blockgen(tmp_path):
    """Pausing a blockgen run mid-flight, snapshotting to disk, and
    resuming reproduces the uninterrupted run exactly (the _bg_* machine
    fields are performance hints and deliberately not snapshotted)."""
    from repro.experiments.engine import request
    from repro.system.snapshot import (read_snapshot, restore_machine,
                                       write_snapshot)
    total, retired, _ = _run_small()

    spec = registry.REGISTRY["g721dec"].variants["seq"](items=4)
    paused = Machine(spec.system)
    paused.load(spec.workload)
    paused.run(options=RunOptions(max_cycles=spec.max_cycles,
                                  pause_at=total // 2))
    path = str(tmp_path / "snap.json")
    write_snapshot(path, paused, request("g721dec", "seq", items=4))
    restored, rebuilt = restore_machine(read_snapshot(path))
    cycles = restored.run(options=RunOptions(max_cycles=rebuilt.max_cycles))
    assert (cycles, restored.total_retired()) == (total, retired)


def test_generated_source_is_inspectable():
    """A compute-bound run leaves fused windows and readable source."""
    _, _, machine = _run_small()
    runners = list(machine._bg_runners.values())
    assert runners, "blockgen never engaged on a compute-bound run"
    assert sum(r.windows for r in runners) > 0
    assert sum(r.fused_cycles for r in runners) > 0
    dump = runners[0].bp.source_dump()
    assert "def _pc" in dump
    assert runners[0].bp.hit_rate() > 0.5


# ------------------------------------------------------- multi-core windows


def _three_legs(spec_or_workload, system=None, max_cycles=2_000_000):
    """Run naive / fast-forward / fast-forward+blockgen; return
    [(cycles, stats, machine)] in that order."""
    legs = []
    for ff, bg in ((False, False), (True, False), (True, True)):
        if system is None:
            machine = Machine(spec_or_workload.system)
            machine.load(spec_or_workload.workload)
            limit = spec_or_workload.max_cycles
        else:
            machine = Machine(system)
            machine.load(spec_or_workload)
            limit = max_cycles
        cycles = machine.run(options=RunOptions(
            max_cycles=limit, fast_forward=ff, blockgen=bg))
        legs.append((cycles, machine.stats.as_dict(), machine))
    return legs


def test_multi_core_windows_engage_and_match():
    """Barrier phases with all cores busy run fused multi-core windows,
    cycle- and stats-exact against the interpreter."""
    spec = registry.REGISTRY["ll2"].variants["barrier"](n=32, p=8)
    naive, ff, fused = _three_legs(spec)
    assert fused[0] == ff[0] == naive[0]
    assert fused[1] == naive[1]
    machine = fused[2]
    assert machine._bg_multi.windows > 0
    assert machine._bg_multi.fused_cycles > 0


def _invalidation_workload():
    """Two cores ping-pong one cache line: core 1 stores a counter into
    the line core 0 spin-reads, with a 12-cycle divide pinning core 0's
    ROB head so completed loads sit un-retired when the snoop
    invalidation lands — every hit must replay the load (and poke the
    core out of any fused window)."""
    from repro.isa import Asm
    from repro.isa.program import MemoryImage, ThreadSpec
    from repro.system.workload import Workload

    image = MemoryImage()
    flag = image.alloc_words([0])
    done = 200
    reader = Asm("inval_reader")
    reader.li("r3", flag)
    reader.li("r4", done)
    reader.li("r6", 7)
    reader.li("r9", 3)
    reader.li("r7", 0)
    reader.label("spin")
    reader.div("r8", "r6", "r9")
    reader.lw("r5", "r3", 0)
    reader.add("r7", "r7", "r5")
    reader.bne("r5", "r4", "spin")
    reader.halt()
    writer = Asm("inval_writer")
    writer.li("r3", flag)
    writer.li("r4", done)
    writer.li("r5", 0)
    writer.label("loop")
    writer.addi("r5", "r5", 1)
    writer.sw("r5", "r3", 0)
    writer.blt("r5", "r4", "loop")
    writer.halt()
    return Workload("inval_replay", image,
                    [ThreadSpec(reader.assemble(), 0),
                     ThreadSpec(writer.assemble(), 1)])


def test_invalidation_replay_inside_multi_core_window():
    """Cache-invalidation load replays landing inside a fused multi-core
    window stay exact: the replay flushes from outside tick(), and the
    window must resume the victim at the same cycle the interpreter
    would."""
    system = SystemConfig(clusters=[ooo1_cluster(4)])
    naive, ff, fused = _three_legs(_invalidation_workload(), system=system)

    def replays(stats):
        return sum(v for k, v in stats.items()
                   if k.endswith("load_replays"))

    assert replays(naive[1]) > 0, "workload failed to trigger replays"
    assert fused[0] == ff[0] == naive[0]
    assert fused[1] == naive[1]
    assert fused[2]._bg_multi.windows > 0


def test_barrier_arrival_at_window_ceiling(monkeypatch):
    """Shrinking the watchdog stride forces window ceilings onto
    arbitrary cycles — including barrier arrivals landing exactly at the
    ceiling — without changing the simulation."""
    from repro.system import machine as machine_mod
    spec = registry.REGISTRY["ll3"].variants["barrier"](
        n=24, passes=2, p=4)
    reference = _three_legs(spec)[0]
    monkeypatch.setattr(machine_mod, "_WATCHDOG_STRIDE", 7)
    naive, ff, fused = _three_legs(spec)
    assert (naive[0], ff[0], fused[0]) == (reference[0],) * 3
    assert fused[1] == reference[1]


def test_hot_report_identical_across_legs():
    """`profile --hot` per-PC retire tallies must not depend on which
    execution mode ran the cycles (interpreter, single-core blockgen, or
    the multi-core window path)."""
    spec = registry.REGISTRY["ll3"].variants["barrier"](
        n=24, passes=2, p=4)
    reports = []
    for ff, bg in ((False, False), (True, False), (True, True)):
        machine = Machine(spec.system)
        machine.load(spec.workload)
        for core in machine.cores:
            core._retire_pcs = {}
        machine.run(options=RunOptions(max_cycles=spec.max_cycles,
                                       fast_forward=ff, blockgen=bg))
        reports.append({core.index: dict(core._retire_pcs)
                        for core in machine.cores})
    assert reports[0] == reports[1] == reports[2]
    assert any(reports[0].values()), "hot report came back empty"
