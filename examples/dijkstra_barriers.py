#!/usr/bin/env python
"""Fine-grained barrier synchronization on parallel Dijkstra (Figure 7).

Compares, at several graph sizes:
  * software barriers (Figure 7(a)) — atomic counter + sense flag over the
    coherent memory system,
  * ReMAP synchronization-only barriers (Figure 7(b)),
  * ReMAP barriers with the global minimum computed *inside* the fabric at
    the synchronization point (Figure 7(c)), which also eliminates one of
    the two barriers per iteration.

Every run's final distance vector is checked against a reference Dijkstra.

Run:  python examples/dijkstra_barriers.py
"""

from repro.experiments.runner import execute
from repro.workloads import dijkstra

THREADS = 8
SIZES = (20, 40, 80)


def main() -> None:
    print(f"Parallel Dijkstra with {THREADS} threads "
          f"(two SPL clusters, inter-cluster barrier bus)\n")
    header = f"{'nodes':>6s} {'seq':>9s} {'SW barrier':>11s} " \
             f"{'ReMAP barrier':>14s} {'+Comp':>9s}"
    print(header)
    print("-" * len(header))
    for n in SIZES:
        seq = execute(dijkstra.VARIANTS["seq"](n=n))
        sw = execute(dijkstra.VARIANTS["sw"](n=n, p=THREADS))
        bar = execute(dijkstra.VARIANTS["barrier"](n=n, p=THREADS))
        comp = execute(dijkstra.VARIANTS["barrier_comp"](n=n, p=THREADS))
        print(f"{n:6d} {seq.cycles_per_item:9.0f} "
              f"{sw.cycles_per_item:11.0f} "
              f"{bar.cycles_per_item:14.0f} "
              f"{comp.cycles_per_item:9.0f}   cycles/iteration")
    print("\nReMAP barriers beat software barriers at every size; the "
          "advantage is\nlargest at small graphs, where synchronization "
          "dominates (Section V-C).")


if __name__ == "__main__":
    main()
