#!/usr/bin/env python
"""The heterogeneous CMP usage model of Section V-A, live.

The paper's whole-program scheduling: a thread runs its sequential phases
on a wide OOO2 core and migrates to an SPL-cluster OOO1 core for its
fabric-accelerated region, paying the 500-cycle context switch each way.
This example executes that literally — one g721 thread, three phases, two
migrations — and shows the context-switch and drain costs in the cycle
counts.

Run:  python examples/heterogeneous_migration.py
"""

from repro import Machine, MemoryImage, ThreadSpec, Workload
from repro.common.config import (SystemConfig, ooo2_cluster, remap_cluster)
from repro.isa import Asm
from repro.system.report import machine_report
from repro.workloads.g721 import G721Layout, fmult_function
from repro.workloads.kernels.g721 import TAPS

ITEMS = 16
COMPUTE_CONFIG = 1


def build_program(lay: G721Layout, marker_addr: int):
    """Three phases: sequential prologue, fabric region, sequential epilogue.

    Phase boundaries spin on a marker word the host flips after migrating
    the thread — standing in for the scheduler's phase detection.
    """
    a = Asm("phased")
    # Phase 1 (on OOO2): a sequential warm-up over the input data.
    a.li("r20", lay.an_addr)
    a.li("r21", 0)
    a.li("r22", ITEMS * TAPS)
    a.li("r23", 0)
    a.label("warm")
    a.lw("r24", "r20", 0)
    a.add("r23", "r23", "r24")
    a.addi("r20", "r20", 4)
    a.addi("r21", "r21", 1)
    a.blt("r21", "r22", "warm")
    # Wait for the scheduler to move us onto the SPL cluster.
    a.li("r25", marker_addr)
    a.label("wait1")
    a.lw("r26", "r25", 0)
    a.li("r27", 1)
    a.bne("r26", "r27", "wait1")
    # Phase 2 (on the SPL cluster): the fmult region in the fabric.
    a.li("r3", lay.an_addr)
    a.li("r4", lay.srn_addr)
    a.li("r6", lay.out)
    a.li("r1", 0)
    a.li("r2", lay.items)
    a.label("region")
    a.li("r5", 0)
    for _ in range(TAPS):
        a.spl_loadm("r3", 0)
        a.spl_loadm("r4", 4)
        a.spl_init(COMPUTE_CONFIG)
        a.addi("r3", "r3", 4)
        a.addi("r4", "r4", 4)
    for _ in range(TAPS):
        a.spl_recv("r9")
        a.add("r5", "r5", "r9")
    a.sw("r5", "r6", 0)
    a.addi("r6", "r6", 4)
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "region")
    # Wait to be moved back, then a sequential epilogue.
    a.label("wait2")
    a.lw("r26", "r25", 0)
    a.li("r27", 2)
    a.bne("r26", "r27", "wait2")
    a.li("r21", 0)
    a.label("cool")
    a.addi("r23", "r23", 1)
    a.addi("r21", "r21", 1)
    a.blt("r21", "r22", "cool")
    a.halt()
    return a.assemble()


def main() -> None:
    image = MemoryImage()
    lay = G721Layout(image, ITEMS, seed=42)
    marker = image.alloc_zeroed(1)
    program = build_program(lay, marker)

    system = SystemConfig(clusters=[remap_cluster(), ooo2_cluster()])
    machine = Machine(system)
    # Start the thread on the OOO2 cluster (core 4).
    workload = Workload(
        "phased", image, [ThreadSpec(program, thread_id=1)], placement=[4],
        setup=lambda m: m.configure_spl(0, COMPUTE_CONFIG,
                                        fmult_function()))
    machine.load(workload)

    # Phase 1 runs on OOO2 until it reaches the first wait loop.
    machine.run(max_cycles=300_000,
                until=lambda: machine.cores[4].ctx is not None
                and machine.cores[4].ctx.retired_instructions > 500)
    t0 = machine.cycle
    print(f"phase 1 (OOO2 core 4):        cycle {t0}")

    # Scheduler: migrate to the SPL cluster and release phase 2.
    machine.migrate(1, dest_core=0)
    machine.memory.write_word(marker, 1)
    t1 = machine.cycle
    print(f"migrated to SPL core 0:       cycle {t1} "
          f"(+{t1 - t0} drain + 500 switch)")

    machine.run(max_cycles=2_000_000,
                until=lambda: machine.memory.read_word(lay.out
                                                       + 4 * (ITEMS - 1))
                != 0)
    t2 = machine.cycle
    print(f"fabric region done:           cycle {t2} (+{t2 - t1})")

    # Scheduler: migrate back for the sequential epilogue.
    machine.migrate(1, dest_core=4)
    machine.memory.write_word(marker, 2)
    machine.run(max_cycles=2_000_000)
    t3 = machine.cycle
    print(f"phase 3 (back on OOO2):       cycle {t3} (+{t3 - t2})")

    lay.check(machine.memory)
    print("\nregion output verified against the fmult reference ✓\n")
    print(machine_report(machine))


if __name__ == "__main__":
    main()
