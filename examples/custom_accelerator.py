#!/usr/bin/env python
"""Building your own SPL accelerator: mapping, virtualization, partitioning.

Shows the mechanics a ReMAP "compiler" would exercise:
  1. describe a function as a dataflow graph (an 8-tap dot product),
  2. inspect its row mapping at full fabric size,
  3. spatially partition the fabric into four 6-row private partitions and
     watch the same function get *virtualized* (initiation interval rises,
     but all four threads now run without contention),
  4. run four threads concurrently, one per partition, and verify.

Run:  python examples/custom_accelerator.py
"""

from repro import (Asm, Dfg, DfgOp, Machine, MemoryImage, SplFunction,
                   ThreadSpec, Workload, remap_system)
from repro.core.mapper import initiation_interval

TAPS = [3, -1, 4, 1, -5, 9, 2, -6]
N = 48


def dot8_function() -> SplFunction:
    """out = sum(x[i] * TAPS[i]) over one staged 32-byte entry."""
    g = Dfg("dot8")
    acc = None
    for i, coefficient in enumerate(TAPS):
        x = g.input(f"x{i}", 4 * i)
        term = g.op(DfgOp.MUL, x, g.const(coefficient))
        acc = term if acc is None else g.add(acc, term)
    g.output("dot", acc)
    return SplFunction(g)


def build_thread(tid, src, dst):
    a = Asm(f"dot8_t{tid}")
    a.li("r1", src)
    a.li("r2", dst)
    a.li("r3", 0)
    a.li("r4", N)
    a.label("loop")
    a.spl_loadv("r1", 0)        # x[0..3]: one row-wide beat
    a.spl_loadv("r1", 16, 16)   # x[4..7]: the second beat
    a.spl_init(1)
    a.spl_recv("r5")
    a.sw("r5", "r2", 0)
    a.addi("r1", "r1", 32)
    a.addi("r2", "r2", 4)
    a.addi("r3", "r3", 1)
    a.blt("r3", "r4", "loop")
    a.halt()
    return a.assemble()


def main() -> None:
    function = dot8_function()
    print(f"dot8 maps to {function.rows} rows")
    print(f"  II on 24 rows (full fabric): "
          f"{initiation_interval(function.rows, 24)} fabric cycle(s)")
    print(f"  II on  6 rows (1/4 partition, virtualized): "
          f"{initiation_interval(function.rows, 6)} fabric cycle(s)")
    print(function.mapping.describe())

    image = MemoryImage()
    sources, dests, expected = [], [], []
    for tid in range(4):
        values = [(tid * 1000 + i * 13) % 200 - 100 for i in range(N * 8)]
        sources.append(image.alloc_words(values))
        dests.append(image.alloc_zeroed(N))
        expected.append([
            sum(values[8 * j + i] * TAPS[i] for i in range(8))
            for j in range(N)])

    def setup(machine) -> None:
        # Four private 6-row partitions: no inter-thread contention, at
        # the cost of virtualizing the 8-tap function in each.
        machine.set_partitions(0, [6, 6, 6, 6], [0, 1, 2, 3])
        for core in range(4):
            machine.configure_spl(core, 1, function)

    workload = Workload(
        "dot8x4", image,
        [ThreadSpec(build_thread(t, sources[t], dests[t]), thread_id=t + 1)
         for t in range(4)],
        placement=[0, 1, 2, 3], setup=setup)

    machine = Machine(remap_system())
    machine.load(workload)
    cycles = machine.run()
    for tid in range(4):
        got = machine.memory.read_words(dests[tid], N)
        assert got == expected[tid], f"thread {tid} mismatch"
    spl = machine.stats.find("spl0")
    print(f"\n4 threads x {N} dot products in {cycles} cycles "
          f"({cycles / (4 * N):.1f} cycles/result aggregate)")
    print(f"Fabric issues: {spl.get('issues'):.0f}, reconfigurations: "
          f"{spl.get('reconfigurations'):.0f} (one per partition)")
    print("All four threads verified. ✓")


if __name__ == "__main__":
    main()
