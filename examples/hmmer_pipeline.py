#!/usr/bin/env python
"""The paper's Figure 5 walkthrough: four ways to run hmmer's P7Viterbi.

Runs the SPEC 456.hmmer inner loop as:
  (a) the original sequential code,
  (b) 1Th+Comp — the fabric computes ``mc`` for a single thread,
  (c) 2Th+Comm — a producer/consumer pair streaming ``mc`` through the
      fabric with no computation,
  (d) 2Th+CompComm — the fabric computes ``mc`` *while* communicating it,
plus the OOO2+Comm baseline, and prints the resulting speedups and
energy x delay — a miniature of Figures 10 and 11.

Run:  python examples/hmmer_pipeline.py
"""

from repro.experiments.runner import execute, relative_ed, speedup
from repro.workloads import hmmer

LABELS = {
    "seq": "(a) sequential, one OOO1 core",
    "spl": "(b) 1Th+Comp: mc in the fabric",
    "comm": "(c) 2Th+Comm: fabric as a queue",
    "compcomm": "(d) 2Th+CompComm: compute in flight",
    "ooo2comm": "OOO2+Comm baseline (2 wide cores + ideal network)",
}


def main() -> None:
    size = {"M": 96, "R": 4}
    print(f"Simulating P7Viterbi with M={size['M']} match states, "
          f"{size['R']} rows...\n")
    results = {}
    for variant in ("seq", "spl", "comm", "compcomm", "ooo2comm"):
        spec = hmmer.VARIANTS[variant](**size)
        results[variant] = execute(spec)  # verifies against the reference
        print(f"  {LABELS[variant]:52s} "
              f"{results[variant].cycles_per_item:7.1f} cycles/cell")
    base = results["seq"]
    print("\nRelative to (a):")
    print(f"  {'variant':52s} {'speedup':>8s} {'rel. ED':>8s}")
    for variant in ("spl", "comm", "compcomm", "ooo2comm"):
        print(f"  {LABELS[variant]:52s} "
              f"{speedup(base, results[variant]):8.2f} "
              f"{relative_ed(base, results[variant]):8.2f}")
    print("\nThe paper's claim (Section V-B): only the *combination* of "
          "computation and\ncommunication (d) beats the area-equivalent "
          "OOO2+Comm configuration —")
    winner = speedup(base, results["compcomm"]) > \
        speedup(base, results["ooo2comm"])
    print(f"here 2Th+CompComm {'does' if winner else 'does NOT'} "
          f"outperform OOO2+Comm.")


if __name__ == "__main__":
    main()
