#!/usr/bin/env python
"""Quickstart: run a custom function in the SPL fabric.

Builds a ReMAP machine (one SPL cluster + one conventional cluster),
defines a small dataflow function — saturating add-and-scale — maps it
onto fabric rows, and runs an assembly program that streams an array
through it.  This is the Figure 1(a) "individual computation" mode.

Run:  python examples/quickstart.py
"""

from repro import (Asm, Dfg, DfgOp, Machine, MemoryImage, SplFunction,
                   ThreadSpec, Workload, remap_system)


def make_function() -> SplFunction:
    """out = clamp((a + b) * 3, 0, 10000)"""
    g = Dfg("scaled_add")
    a = g.input("a", 0)
    b = g.input("b", 4)
    total = g.add(a, b)
    scaled = g.op(DfgOp.MUL, total, g.const(3))
    g.output("out", g.clamp(scaled, 0, 10_000))
    return SplFunction(g)


def main() -> None:
    function = make_function()
    print(f"Mapped '{function.name}' onto {function.rows} fabric rows:")
    print(function.mapping.describe())

    # Data: two input arrays, one output array.
    image = MemoryImage()
    n = 64
    a_values = [i * 37 % 2000 - 700 for i in range(n)]
    b_values = [i * 91 % 1500 - 400 for i in range(n)]
    a_addr = image.alloc_words(a_values)
    b_addr = image.alloc_words(b_values)
    out_addr = image.alloc_zeroed(n)

    # The program: stage both operands from memory, issue, receive, store.
    asm = Asm("quickstart")
    asm.li("r1", a_addr)
    asm.li("r2", b_addr)
    asm.li("r3", out_addr)
    asm.li("r4", 0)
    asm.li("r5", n)
    asm.label("loop")
    asm.spl_loadm("r1", 0)    # a[i] -> staging byte 0
    asm.spl_loadm("r2", 4)    # b[i] -> staging byte 4
    asm.spl_init(1)           # issue configuration #1
    asm.spl_recv("r6")        # wait for the fabric result
    asm.sw("r6", "r3", 0)
    asm.addi("r1", "r1", 4)
    asm.addi("r2", "r2", 4)
    asm.addi("r3", "r3", 4)
    asm.addi("r4", "r4", 1)
    asm.blt("r4", "r5", "loop")
    asm.halt()

    workload = Workload(
        "quickstart", image, [ThreadSpec(asm.assemble(), thread_id=1)],
        placement=[0],
        setup=lambda m: m.configure_spl(0, 1, function))

    machine = Machine(remap_system())
    machine.load(workload)
    cycles = machine.run()

    got = machine.memory.read_words(out_addr, n)
    expected = [max(0, min(10_000, (a + b) * 3))
                for a, b in zip(a_values, b_values)]
    assert got == expected, "fabric output mismatch!"

    from repro.system.report import machine_report
    print(f"\nRan {n} items in {cycles} cycles "
          f"({cycles / n:.1f} cycles/item)")
    print(machine_report(machine))
    print("All results verified against the Python reference. ✓")


if __name__ == "__main__":
    main()
