"""Figure 10: optimized-region % improvement per variant."""

from conftest import ENGINE, REGION_OVERRIDES, get_or_run

from repro.experiments.regions import figure10_rows, run_region_study
from repro.experiments.report import format_table


def _study():
    return run_region_study(include_swqueue=True,
                            overrides=REGION_OVERRIDES, engine=ENGINE)


def bench_figure10(benchmark):
    study = benchmark.pedantic(
        lambda: get_or_run("regions", _study), rounds=1, iterations=1)
    print("\n=== Figure 10: region % improvement vs 1-thread OOO1 ===")
    print(format_table(figure10_rows(study), floatfmt="{:.1f}"))
