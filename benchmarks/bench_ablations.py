"""Ablations of the design choices DESIGN.md calls out (not in the paper;
they quantify the mechanisms the paper argues for qualitatively)."""

from conftest import ENGINE

from repro.experiments import ablations
from repro.experiments.report import format_table


def bench_ablation_sharing_degree(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.sharing_degree(items=16, engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: fabric sharing degree (g721 fmult) ===")
    print(format_table(rows))


def bench_ablation_fabric_size(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.fabric_size(items=16, engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: fabric rows / virtualization (g721 fmult) ===")
    print(format_table(rows))


def bench_ablation_partitioning(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.spatial_partitioning(n=256, p=4, passes=4,
                                               engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: spatial partitioning (LL3 MAC streams) ===")
    print(format_table(rows, floatfmt="{:.1f}"))


def bench_ablation_queue_depth(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.queue_depth(M=64, R=3, engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: SPL queue depth (hmmer 2Th+CompComm) ===")
    print(format_table(rows))


def bench_ablation_barrier_bus(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.barrier_bus_latency(n=40, p=8, engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: inter-cluster barrier bus latency (dijkstra) ===")
    print(format_table(rows))


def bench_ablation_reconfig_cost(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.reconfiguration_cost(n=128, p=4, passes=4,
                                               engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: reconfiguration cost (LL3 barrier+comp) ===")
    print(format_table(rows))


def bench_ablation_fabric_manager(benchmark):
    """Dynamic partitioning (core/manager.py) vs static temporal sharing
    on a mixed-function four-thread stream."""
    rows = benchmark.pedantic(
        lambda: ablations.dynamic_management(n=128, engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Ablation: dynamic fabric management ===")
    print(format_table(rows))
