"""Shared infrastructure for the figure/table benchmarks.

Figures that share underlying simulations (8/9, 10/11, 12/13/14) cache
the study in a session-wide store so each simulation runs once per
benchmark session regardless of file ordering.  Every study runs through
a shared :class:`ExperimentEngine`, so individual simulations fan out
over ``REPRO_JOBS`` worker processes and persist in the on-disk result
cache — a repeated benchmark session replays entirely from cache.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.experiments.engine import ExperimentEngine

#: Session-wide engine (jobs/cache from REPRO_JOBS / REPRO_CACHE_DIR /
#: REPRO_NO_CACHE); every bench file routes its study through it.
ENGINE = ExperimentEngine(progress=True)

_STORE: Dict[str, object] = {}


def get_or_run(key: str, compute: Callable):
    """Session-wide memoization of expensive studies.

    In-memory within one session; across sessions the engine's
    content-addressed cache makes ``compute`` replay without simulating.
    """
    if key not in _STORE:
        _STORE[key] = compute()
    return _STORE[key]


@pytest.fixture
def study_cache():
    return get_or_run


#: Scaled-down sweep parameters used by every figure benchmark (the paper
#: ran 250M-instruction SimPoints; see EXPERIMENTS.md for the scaling).
REGION_OVERRIDES = {
    "hmmer": {"M": 64, "R": 3},
    "g721enc": {"items": 24},
    "g721dec": {"items": 24},
    "mpeg2enc": {"items": 12},
    "mpeg2dec": {"items": 96},
    "gsmtoast": {"items": 64},
    "gsmuntoast": {"items": 48},
    "libquantum": {"items": 24},
    "wc": {"items": 160},
    "unepic": {"items": 128},
    "cjpeg": {"items": 128},
    "adpcm": {"items": 192},
    "twolf": {"items": 128},
    "astar": {"items": 128},
}

BARRIER_SIZES = {
    "ll2": (16, 64, 256),
    "ll6": (8, 16, 48),
    "ll3": (32, 128, 512),
    "dijkstra": (20, 40, 80),
}
