"""Section V-C2: ReMAP barrier+comp vs the homogeneous barrier cluster."""

from conftest import ENGINE

from repro.experiments.barriers import homogeneous_comparison
from repro.experiments.report import format_table


def bench_homogeneous_dijkstra(benchmark):
    rows = benchmark.pedantic(
        lambda: homogeneous_comparison("dijkstra", sizes=[40, 80],
                                       thread_counts=(4, 8),
                                       engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Section V-C2 (dijkstra): ED vs homogeneous cluster ===")
    print(format_table(rows, floatfmt="{:.3f}"))


def bench_homogeneous_ll3(benchmark):
    rows = benchmark.pedantic(
        lambda: homogeneous_comparison("ll3", sizes=[128, 512],
                                       thread_counts=(4, 8),
                                       engine=ENGINE),
        rounds=1, iterations=1)
    print("\n=== Section V-C2 (LL3): ED vs homogeneous cluster ===")
    print(format_table(rows, floatfmt="{:.3f}"))
