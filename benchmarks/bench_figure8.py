"""Figure 8: whole-program performance relative to the OOO1 baseline."""

from conftest import ENGINE, REGION_OVERRIDES, get_or_run

from repro.experiments.report import format_table, geomean_row
from repro.experiments.whole_program import figure8_rows, whole_program_study


def _study():
    return whole_program_study(overrides=REGION_OVERRIDES, engine=ENGINE)


def bench_figure8(benchmark):
    points = benchmark.pedantic(
        lambda: get_or_run("whole_program", _study), rounds=1, iterations=1)
    rows = figure8_rows(points)
    rows.append(geomean_row(rows))
    print("\n=== Figure 8: whole-program % improvement vs 1-thread OOO1 ===")
    print(format_table(rows, floatfmt="{:.1f}"))
