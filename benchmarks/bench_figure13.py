"""Figure 13: Barrier+Comp improvement over Barrier alone (LL3, dijkstra)."""

from bench_figure12 import _sweep
from conftest import get_or_run

from repro.experiments.barriers import figure13_series
from repro.experiments.report import format_series


def _bench(benchmark, name):
    sweep = benchmark.pedantic(
        lambda: get_or_run(f"sweep_{name}", lambda: _sweep(name)),
        rounds=1, iterations=1)
    print(f"\n=== Figure 13 ({name}): Barrier+Comp % improvement ===")
    print(format_series(figure13_series(sweep), value_fmt="{:.1f}"))


def bench_figure13_ll3(benchmark):
    _bench(benchmark, "ll3")


def bench_figure13_dijkstra(benchmark):
    _bench(benchmark, "dijkstra")
