"""Figure 14: energy x delay of the barrier workloads vs sequential."""

from bench_figure12 import _sweep
from conftest import get_or_run

from repro.experiments.barriers import figure14_series
from repro.experiments.report import format_series


def _bench(benchmark, name):
    sweep = benchmark.pedantic(
        lambda: get_or_run(f"sweep_{name}", lambda: _sweep(name)),
        rounds=1, iterations=1)
    print(f"\n=== Figure 14 ({name}): relative energy x delay ===")
    print(format_series(figure14_series(sweep), value_fmt="{:.3f}"))


def bench_figure14_ll2(benchmark):
    _bench(benchmark, "ll2")


def bench_figure14_ll6(benchmark):
    _bench(benchmark, "ll6")


def bench_figure14_ll3(benchmark):
    _bench(benchmark, "ll3")


def bench_figure14_dijkstra(benchmark):
    _bench(benchmark, "dijkstra")
