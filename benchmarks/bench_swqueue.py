"""Section V-B: software-queue degradation vs the OOO1 baseline."""

from conftest import ENGINE, REGION_OVERRIDES, get_or_run

from repro.experiments.regions import run_region_study, swqueue_rows
from repro.experiments.report import format_table


def bench_swqueue(benchmark):
    study = benchmark.pedantic(
        lambda: get_or_run(
            "regions",
            lambda: run_region_study(include_swqueue=True,
                                     overrides=REGION_OVERRIDES,
                                     engine=ENGINE)),
        rounds=1, iterations=1)
    print("\n=== Section V-B: software-queue slowdown (%) ===")
    print(format_table(swqueue_rows(study), floatfmt="{:.1f}"))
