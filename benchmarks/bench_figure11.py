"""Figure 11: optimized-region energy x delay per variant."""

from conftest import ENGINE, REGION_OVERRIDES, get_or_run

from repro.experiments.regions import figure11_rows, run_region_study
from repro.experiments.report import format_table


def bench_figure11(benchmark):
    study = benchmark.pedantic(
        lambda: get_or_run(
            "regions",
            lambda: run_region_study(include_swqueue=True,
                                     overrides=REGION_OVERRIDES,
                                     engine=ENGINE)),
        rounds=1, iterations=1)
    print("\n=== Figure 11: region relative energy x delay ===")
    print(format_table(figure11_rows(study), floatfmt="{:.2f}"))
