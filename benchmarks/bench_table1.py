"""Table I: relative area and power of four OOO1 cores vs the shared SPL."""

from repro.experiments.tables import table1, table2, table3
from repro.experiments.report import format_table


def bench_table1(benchmark):
    data = benchmark.pedantic(table1, rounds=1, iterations=1)
    rows = [dict(component=name, **values) for name, values in data.items()]
    print("\n=== Table I: relative area and power ===")
    print(format_table(rows))


def bench_table2(benchmark):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    print("\n=== Table II: architecture parameters ===")
    print(format_table([{"parameter": p, "OOO1": a, "OOO2": b}
                        for p, a, b in rows]))


def bench_table3(benchmark):
    rows = benchmark.pedantic(table3, rounds=1, iterations=1)
    print("\n=== Table III: benchmark details ===")
    print(format_table([{"benchmark": n, "functions": f, "% exec": p}
                        for n, f, p in rows]))
