"""Microarchitectural sensitivity sweeps (simulator-credibility checks)."""

from conftest import ENGINE

from repro.experiments.report import format_table
from repro.experiments.sensitivity import ALL_SENSITIVITIES


def bench_sensitivity_rob(benchmark):
    rows = benchmark.pedantic(
        lambda: ALL_SENSITIVITIES["rob"](engine=ENGINE),
                              rounds=1,
                              iterations=1)
    print("\n=== Sensitivity: ROB entries (hmmer seq) ===")
    print(format_table(rows))


def bench_sensitivity_registers(benchmark):
    rows = benchmark.pedantic(
        lambda: ALL_SENSITIVITIES["registers"](engine=ENGINE),
                              rounds=1,
                              iterations=1)
    print("\n=== Sensitivity: physical registers (hmmer seq) ===")
    print(format_table(rows))


def bench_sensitivity_l1d(benchmark):
    rows = benchmark.pedantic(
        lambda: ALL_SENSITIVITIES["l1d"](engine=ENGINE),
                              rounds=1,
                              iterations=1)
    print("\n=== Sensitivity: L1D capacity (hmmer seq) ===")
    print(format_table(rows))


def bench_sensitivity_memory(benchmark):
    rows = benchmark.pedantic(
        lambda: ALL_SENSITIVITIES["memory"](engine=ENGINE),
                              rounds=1,
                              iterations=1)
    print("\n=== Sensitivity: memory latency (hmmer seq) ===")
    print(format_table(rows))
