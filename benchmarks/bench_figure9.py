"""Figure 9: whole-program energy x delay relative to the OOO1 baseline."""

from conftest import ENGINE, REGION_OVERRIDES, get_or_run

from repro.experiments.report import format_table
from repro.experiments.whole_program import figure9_rows, whole_program_study


def bench_figure9(benchmark):
    points = benchmark.pedantic(
        lambda: get_or_run("whole_program",
                           lambda: whole_program_study(
                               overrides=REGION_OVERRIDES,
                               engine=ENGINE)),
        rounds=1, iterations=1)
    print("\n=== Figure 9: whole-program relative energy x delay ===")
    print(format_table(figure9_rows(points), floatfmt="{:.2f}"))
