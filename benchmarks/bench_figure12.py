"""Figure 12: per-iteration execution time for the barrier workloads."""

from conftest import BARRIER_SIZES, ENGINE, get_or_run

from repro.experiments.barriers import figure12_series, run_barrier_sweep
from repro.experiments.report import format_series


def _sweep(bench):
    return run_barrier_sweep(bench, sizes=BARRIER_SIZES[bench],
                             thread_counts=(2, 4, 8, 16), engine=ENGINE)


def _bench(benchmark, name):
    sweep = benchmark.pedantic(
        lambda: get_or_run(f"sweep_{name}", lambda: _sweep(name)),
        rounds=1, iterations=1)
    print(f"\n=== Figure 12 ({name}): cycles per iteration ===")
    print(format_series(figure12_series(sweep, thread_counts=(8, 16))))


def bench_figure12_ll2(benchmark):
    _bench(benchmark, "ll2")


def bench_figure12_ll6(benchmark):
    _bench(benchmark, "ll6")


def bench_figure12_ll3(benchmark):
    _bench(benchmark, "ll3")


def bench_figure12_dijkstra(benchmark):
    _bench(benchmark, "dijkstra")
