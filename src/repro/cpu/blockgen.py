"""Trace-cache block compilation of the OOO core hot loop (DESIGN.md §10).

The cycle-level interpreter in :mod:`repro.cpu.pipeline` pays per-cycle
Python dispatch for every stage of every instruction.  On compute-bound
runs (no SPL traffic, caches warm) almost all of that work is decided by
the static program text: which ALU expression runs, which registers
rename, which resources an instruction holds.  This module folds those
decisions out of the loop:

* The program is partitioned into **basic blocks** (leaders: entry 0,
  branch targets, and the successor of every branch or serialized op).
  On first fetch of a block's entry PC, one Python function per
  value-producing instruction is code-generated from the source templates
  in :mod:`repro.cpu.exec` (``ALU_EXPR``/``FP_EXPR``/``BRANCH_EXPR``)
  with immediates and branch targets folded in as literals.
* :class:`BlockRunner.run_window` is a specialized re-implementation of
  ``OutOfOrderCore.tick`` for the single-active-core, no-observer case:
  all mutable scalars live in locals, per-PC metadata lives in dense
  tables, and hot counters accumulate locally and flush once per window.
  It executes cycles ``[start, limit)`` and returns the first un-ticked
  cycle.  **Every architectural effect is cycle- and stats-exact against
  the interpreter** — tests/test_fastforward.py sweeps the two against
  each other, and ``repro bench --check`` gates on identical cycles.
* **Deoptimization**: whenever a serialized op (SPL/comm port, atomic,
  FENCE, HALT) comes within retire reach of the ROB head, the window
  ends *before* ticking that cycle and the interpreter takes over.
  Branch mispredicts, icache misses, and structural stalls are handled
  inline through the interpreter's own machinery (``_flush_from_seq``,
  stall counters), not by deopt — they are exactly replicable.
* **Multi-core windows**: :class:`MultiBlockRunner` generalizes the
  fused loop to N active cores.  Each cycle it walks the cores in index
  order — the naive loop's order, which fixes the shared-memory /
  snoop-invalidation interleaving — and advances each one either by a
  resident :meth:`BlockRunner.drive` generator (hoisted once per
  residency, one compiled tick-equivalent cycle per send; a sibling's
  snoop invalidation is *deferred* while the generator holds the
  core's scalars and replayed, bit-exact, at the victim's next cycle
  slot after a writeback sync) or, when a serialized op is within
  retire reach, by an interpreted ``core.tick`` — per-core deopt, the
  window continues for the rest.  Controllers stay un-ticked (the §6 event-horizon bound
  taken at window start) until the first interpreted tick, which may
  touch an SPL/comm port; from then on they tick every cycle.
  Quiescent interpreted cores are handed to the fast-forward elision
  machinery *inside* the window (``ff_elide``/``credit_fast_forward``
  — the same plans the machine loop resumes), and a stretch where only
  one compiled core remains live delegates to the single-core
  ``run_window`` with a poke escape so snoop wakes of elided siblings
  still land on their exact cycle.

Compiled blocks are memoized on the ``Program`` object, keyed by
``BLOCKGEN_VERSION``, the core config, and a content fingerprint of the
instruction stream, so mutating a program or changing the config misses
the cache.  The whole mechanism is gated by ``RunOptions.blockgen`` /
``REPRO_NO_BLOCKGEN`` (see repro.common.config) and engaged by
``Machine.run`` under the same conditions as fast-forward elision.

Purity constraint: generated closures bind **no machine state** — only
the pure helpers in ``_NAMESPACE`` — because the compiled artifact is
shared across machines via the per-Program memo.  Anything touching
memory (load reads, store writes) lives in per-:class:`BlockRunner`
tables built in plain Python against the owning machine's memory.
"""

from __future__ import annotations

from heapq import heappop, heappush
from operator import attrgetter
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.cpu.exec import (ALU_EXPR, BRANCH_EXPR, FP_EXPR, _div, _rem,
                            _wrap)
from repro.common.utils import to_unsigned
from repro.cpu.pipeline import (FRONTEND_DELAY, _LOAD_OPS, _STORE_OPS,
                                HOLD_FP_IQ, HOLD_INT_IQ, HOLD_LQ,
                                HOLD_REN_FP, HOLD_REN_INT, HOLD_SQ,
                                OutOfOrderCore, RobEntry)
from repro.isa.opcodes import FuClass, Op

#: Bump on any change to the generated code or table layout; part of the
#: per-Program memo key so stale caches from another version never hit.
BLOCKGEN_VERSION = 1

_BY_SEQ = attrgetter("seq")

#: Pure helper bindings available to generated block source.  Builtins
#: are withheld: the templates compile to closed expressions over these
#: names and the ``a``/``b`` source-value parameters only.
_NAMESPACE = {
    "_w": _wrap,
    "_u": to_unsigned,
    "_div": _div,
    "_rem": _rem,
    "_inf": float("inf"),
    "_ninf": float("-inf"),
    "_nan": float("nan"),
    "__builtins__": {},
}

_POOL_IDS = {"int": 0, "fp": 1, "branch": 2, "mem": 3}

#: Serialized ops the multi-core drive loop executes *compiled*, by
#: calling the interpreter's own ``_exec_serialize`` at the retire
#: stage's exact point in the cycle.  They only touch shared structures
#: (port/controller, memory, pending_stores, the ready heap via
#: ``_finish_serialize``) plus ``sb_next_free``, which the call site
#: syncs around the call.  Everything else serialized — HALT (retire-
#: side halt handling), FENCE (store-buffer purge per retry), atomics
#: (complete through the writeback queue) — deopts to the interpreter.
_EXEC_SER_OPS = frozenset((Op.SPL_LOAD, Op.SPL_LOADM, Op.SPL_LOADV,
                           Op.SPL_INIT, Op.SPL_RECV, Op.SPL_STORE))


def _conv_lb(raw):
    value = raw & 0xFF
    return value - 256 if value >= 128 else value


def _conv_lbu(raw):
    return raw & 0xFF


def _conv_lh(raw):
    value = raw & 0xFFFF
    return value - 65536 if value >= 32768 else value


def _conv_lhu(raw):
    return raw & 0xFFFF


#: Store-to-load forwarding conversion per load op, mirroring
#: ``OutOfOrderCore._convert_load`` (None: the raw word passes through).
_CONV = {Op.LW: None, Op.FLW: None, Op.LB: _conv_lb, Op.LBU: _conv_lbu,
         Op.LH: _conv_lh, Op.LHU: _conv_lhu}


class Block:
    """One basic block: a leader PC and the straight-line PCs behind it.

    ``fns`` is None until the block is first entered (the compile is the
    trace-cache "miss"); afterwards it maps each value-producing PC to
    its generated closure and ``source`` keeps the generated text for
    inspection (tests, the CI artifact).
    """

    __slots__ = ("bid", "entry", "pcs", "source", "fns", "hits")

    def __init__(self, bid: int, entry: int, pcs: range) -> None:
        self.bid = bid
        self.entry = entry
        self.pcs = pcs
        self.source: Optional[str] = None
        self.fns: Optional[Dict[int, object]] = None
        self.hits = 0


class BlockProgram:
    """The block partition of one program plus its compiled closures."""

    def __init__(self, instructions) -> None:
        self._instructions = instructions
        n = len(instructions)
        leaders = {0} if n else set()
        for pc, inst in enumerate(instructions):
            info = inst.info
            if info.is_branch or info.serialize:
                if pc + 1 < n:
                    leaders.add(pc + 1)
                # Only branch targets are PCs; e.g. SPL_LOADM reuses
                # ``target`` as a staging byte offset.
                if info.is_branch:
                    target = inst.target
                    if isinstance(target, int) and 0 <= target < n:
                        leaders.add(target)
        order = sorted(leaders)
        self.blocks: List[Block] = []
        self.block_of: List[Optional[Block]] = [None] * n
        for bid, start in enumerate(order):
            end = order[bid + 1] if bid + 1 < len(order) else n
            block = Block(bid, start, range(start, end))
            self.blocks.append(block)
            for pc in block.pcs:
                self.block_of[pc] = block
        self.compiles = 0

    # -- code generation ----------------------------------------------------

    def _expr_for(self, pc: int, inst) -> Optional[str]:
        """The generated expression over ``(a, b)`` for ``inst``, or None
        when the instruction has no pure evaluator (memory/serialized)."""
        info = inst.info
        op = inst.op
        if info.serialize or info.is_load or info.is_store:
            return None
        if info.is_branch:
            if op is Op.JR:
                return "a"
            if op is Op.J or op is Op.JAL:
                return repr(inst.target)
            cond = BRANCH_EXPR.get(op)
            if cond is None:
                return None
            return f"({inst.target}) if {cond} else ({pc + 1})"
        if info.fu is FuClass.FP:
            return FP_EXPR.get(op)
        template = ALU_EXPR.get(op)
        if template is None:
            return None
        return template.format(imm=f"({inst.imm})",
                               imm5=repr(inst.imm & 31),
                               imm_wrapped=f"({_wrap(inst.imm)})")

    def generate_source(self, block: Block) -> str:
        lines = [f"# block {block.bid} @ pc {block.entry} "
                 f"({len(block.pcs)} instructions)"]
        for pc in block.pcs:
            inst = self._instructions[pc]
            expr = self._expr_for(pc, inst)
            if expr is None:
                lines.append(f"# {pc}: {inst!r}  (interpreted)")
                continue
            lines.append(f"def _pc{pc}(a, b):  # {pc}: {inst!r}")
            lines.append(f"    return {expr}")
        lines.append("")
        return "\n".join(lines)

    def compile_block(self, block: Block) -> None:
        if block.fns is not None:
            return
        source = self.generate_source(block)
        block.source = source
        namespace = dict(_NAMESPACE)
        code = compile(source, f"<blockgen:block{block.bid}"
                               f"@{block.entry}>", "exec")
        exec(code, namespace)
        block.fns = {pc: namespace[f"_pc{pc}"] for pc in block.pcs
                     if f"_pc{pc}" in namespace}
        self.compiles += 1

    # -- reporting ------------------------------------------------------------

    @property
    def entries(self) -> int:
        """Total block-entry fetches across all runners of this memo."""
        return sum(block.hits for block in self.blocks)

    def hit_rate(self) -> float:
        entries = self.entries
        if not entries:
            return 0.0
        return 1.0 - self.compiles / entries

    def source_dump(self) -> str:
        """Generated source of every block (compiling any not yet hot)."""
        for block in self.blocks:
            self.compile_block(block)
        return "\n".join(block.source for block in self.blocks)


def compiled_blocks(program, config) -> BlockProgram:
    """The memoized :class:`BlockProgram` for ``(program, config)``.

    The key carries the generator version, the core config, and a
    content fingerprint of the instruction stream, so a mutated program
    or a different configuration misses and recompiles.
    """
    cache = getattr(program, "_blockgen_cache", None)
    if cache is None:
        cache = program._blockgen_cache = {}
    key = (BLOCKGEN_VERSION, config, _fingerprint(program.instructions))
    block_program = cache.get(key)
    if block_program is None:
        block_program = cache[key] = BlockProgram(program.instructions)
    return block_program


def _fingerprint(instructions) -> tuple:
    return tuple((inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm,
                  inst.target) for inst in instructions)


class BlockRunner:
    """Per-(machine core, context) specialized executor.

    Holds the dense per-PC tables (fetch, dispatch, execute, retire) and
    the machine-bound memory accessors that the memoized pure closures
    must not capture.  Rebuilt by the machine whenever the core's
    context changes.
    """

    def __init__(self, core: OutOfOrderCore) -> None:
        self.core = core
        self.ctx = core.ctx
        program = core.ctx.program
        self.bp = compiled_blocks(program, core.config)
        memory = core.memory

        def _read_lb(addr, _rb=memory.read_byte):
            value = _rb(addr)
            return value - 256 if value >= 128 else value

        def _read_lh(addr, _rh=memory.read_half):
            value = _rh(addr)
            return value - 65536 if value >= 32768 else value

        read_map = {Op.LW: memory.read_word_signed, Op.LB: _read_lb,
                    Op.LBU: memory.read_byte, Op.LH: _read_lh,
                    Op.LHU: memory.read_half, Op.FLW: memory.read_float}
        write_map = {
            Op.SW: lambda addr, v, _w=memory.write_word:
                _w(addr, v & 0xFFFFFFFF),
            Op.SB: lambda addr, v, _w=memory.write_byte: _w(addr, v & 0xFF),
            Op.SH: lambda addr, v, _w=memory.write_half:
                _w(addr, v & 0xFFFF),
            Op.FSW: memory.write_float,
        }

        instructions = program.instructions
        n = len(instructions)
        block_of = self.bp.block_of
        # fetch_tab[pc] = (inst, fetch_kind, target, block-if-leader)
        self.fetch_tab = []
        # disp_tab[pc] = (needs_fp_iq, needs_int_iq, uses_lq, uses_sq,
        #                 dest, dest_fp, held_mask, rs1, rs2) with the
        # source registers normalized to None when absent or r0.
        self.disp_tab = []
        # exec_meta[pc]: None for serialized ops;
        #   [0, fn, latency]               int ALU (fn lazily installed)
        #   [1, fn, latency]               FP
        #   [2, fn, link_value]            branch (fn -> actual_next)
        #   (3, None, size, imm)           store
        #   (4, read_fn, size, imm, conv)  load
        # List rows are patched in place when their block compiles.
        self.exec_meta = []
        self.ser_tab = []      # info.serialize per pc
        self.park_tab = []     # 1=spl_recv, 2=spl_store: head park compiles
        self.hard_tab = []     # serialized op the compiled loop deopts for
        self.st_tab = []       # retire-time write closure, or None
        self.dest_tab = []     # inst._dest per pc
        self.br_tab = []       # (mode 1=cond/2=JR/0=direct, target) or None
        self.pool_tab = []     # (fu pool id, per-cycle unit limit)
        for pc in range(n):
            inst = instructions[pc]
            info = inst.info
            block = block_of[pc]
            self.fetch_tab.append(
                (inst, inst.fetch_kind, inst.target,
                 block if block is not None and block.entry == pc else None))
            rs1 = inst.rs1 if inst.rs1 else None
            rs2 = inst.rs2 if inst.rs2 else None
            self.disp_tab.append(
                (inst.needs_fp_iq, inst.needs_int_iq, inst.uses_lq,
                 inst.uses_sq, inst._dest, inst.dest_fp, inst.held_mask,
                 rs1, rs2))
            self.ser_tab.append(info.serialize)
            op = inst.op
            self.park_tab.append(
                1 if op is Op.SPL_RECV else (2 if op is Op.SPL_STORE else 0))
            self.hard_tab.append(
                info.serialize and op not in _EXEC_SER_OPS)
            if info.serialize:
                meta = None
            elif info.is_load:
                size, _signed = _LOAD_OPS[inst.op]
                meta = (4, read_map[inst.op], size, inst.imm,
                        _CONV[inst.op])
            elif info.is_store:
                meta = (3, None, _STORE_OPS[inst.op], inst.imm)
            elif info.is_branch:
                link = pc + 1 if inst.op is Op.JAL else None
                meta = [2, None, link]
            elif info.fu is FuClass.FP:
                meta = [1, None, info.latency]
            else:
                meta = [0, None, info.latency]
            self.exec_meta.append(meta)
            self.st_tab.append(
                write_map[inst.op]
                if info.is_store and not info.serialize else None)
            self.dest_tab.append(inst._dest)
            if not info.is_branch:
                self.br_tab.append(None)
            elif inst.op is Op.JR:
                self.br_tab.append((2, None))
            elif inst.op in (Op.J, Op.JAL):
                self.br_tab.append((0, inst.target))
            else:
                self.br_tab.append((1, inst.target))
            pool_name, limit = core._fu_pool[info.fu]
            self.pool_tab.append((_POOL_IDS[pool_name], limit))
        self.installed = bytearray(len(self.bp.blocks))
        self.windows = 0
        self.fused_cycles = 0
        self.deopts = 0

    def _install(self, block: Block) -> None:
        """Compile ``block`` if needed and patch its closures into this
        runner's exec table (idempotent)."""
        self.bp.compile_block(block)
        fns = block.fns
        exec_meta = self.exec_meta
        for pc in block.pcs:
            meta = exec_meta[pc]
            if meta is not None and meta.__class__ is list \
                    and meta[1] is None:
                fn = fns.get(pc)
                if fn is None:
                    raise SimulationError(
                        f"blockgen: no evaluator generated for pc {pc}")
                meta[1] = fn
        self.installed[block.bid] = 1

    # ------------------------------------------------------------------ run

    def run_window(self, start: int, limit: int, poke_watch=()) -> int:
        """Tick the core for cycles ``[start, limit)``; return the first
        cycle not ticked (== ``limit`` unless a serialized op deopts).

        A faithful transliteration of ``OutOfOrderCore.tick`` and the
        stage methods it calls, specialized for: exactly this core
        active, no observability sinks, no fast-forward elision in
        progress.  Any edit to the pipeline stages must be mirrored
        here — the differential sweep in tests/test_fastforward.py and
        the fuzzer's agreement contract exist to catch drift.

        ``poke_watch`` is the multi-core delegation escape: sibling
        cores whose elision plans this window must not run past.  This
        core's stores can snoop-invalidate a watched sibling's line,
        which sets its ``ff_poke`` ("must tick next cycle"); the window
        exits *before* ticking any cycle at which a watched poke is
        pending, so the caller can resume the sibling on its exact
        cycle.  The default () keeps the single-core path unchanged.
        """
        core = self.core
        ctx = core.ctx
        if ctx is None or core.halted or start < core.stall_until:
            return start
        core._obs_pipe = False

        fetch_tab = self.fetch_tab
        disp_tab = self.disp_tab
        exec_meta = self.exec_meta
        ser_tab = self.ser_tab
        st_tab = self.st_tab
        dest_tab = self.dest_tab
        br_tab = self.br_tab
        pool_tab = self.pool_tab
        installed = self.installed
        block_of = self.bp.block_of

        rob = core.rob
        ready = core.ready
        fetch_queue = core.fetch_queue
        completing = core.completing
        store_entries = core.store_entries
        blocked_loads = core.blocked_loads
        rat = core.rat
        pending_stores = core.pending_stores
        predictor = core.predictor
        predict_direction = predictor.predict_direction
        update_direction = predictor.update_direction
        btb_update = predictor.btb_update
        btb_lookup = predictor.btb_lookup
        ras_push = predictor.ras_push
        ras_pop = predictor.ras_pop
        data_access = core.mem_system.data_access
        inst_fetch = core.mem_system.inst_fetch
        index = core.index
        stats_bump = core.stats.bump
        ctx_read = ctx.read
        ctx_write = ctx.write
        rp = core._retire_pcs

        # Mutable scalars: locals for the window, written back at exit.
        seq = core.seq
        fetch_pc = core.fetch_pc
        fetch_resume = core.fetch_resume
        last_fetch_line = core.last_fetch_line
        sb_next_free = core.sb_next_free
        last_retire_cycle = core.last_retire_cycle
        int_iq_used = core.int_iq_used
        fp_iq_used = core.fp_iq_used
        lq_used = core.lq_used
        sq_used = core.sq_used
        rename_int_used = core.rename_int_used
        rename_fp_used = core.rename_fp_used

        rob_entries = core._rob_entries
        fp_queue = core._fp_queue
        int_queue = core._int_queue
        load_queue = core._load_queue
        store_queue = core._store_queue
        decode_width = core._decode_width
        retire_width = core._retire_width
        issue_width = core._issue_width
        fetch_width = core._fetch_width
        queue_cap = core._fetch_queue_cap
        l1i_hit = core._l1i_hit
        l1d_hit = core.config.l1d.hit_latency
        rename_limit_int = core._rename_limit_int
        rename_limit_fp = core._rename_limit_fp
        program_end = core._program_end
        frontend_delay = FRONTEND_DELAY
        h_int, h_fp = HOLD_INT_IQ, HOLD_FP_IQ
        h_lq, h_sq = HOLD_LQ, HOLD_SQ
        h_ri, h_rf = HOLD_REN_INT, HOLD_REN_FP

        # Deferred hot counters (flushed once at window exit; every key
        # is pre-declared so the adds are equivalent to stats.bump).
        n_cycles = n_fetched = n_dispatched = n_issued = n_retired = 0
        n_int = n_fp = n_loads = n_stores = n_branches = 0

        cycle = start
        deopt = False
        # Sibling pokes can only originate from this core's own stores
        # (the one poke source live inside compiled code is the snoop
        # invalidation a retired store sends through the hierarchy), so
        # the escape check only needs to run on cycles following a store.
        poke_stores = 0
        while cycle < limit:
            if poke_watch and n_stores != poke_stores:
                poke_stores = n_stores
                poked = False
                for other in poke_watch:
                    if other.ff_poke:
                        poked = True
                        break
                if poked:
                    break
            # Deopt guard: a serialized op within retire reach of the
            # ROB head would execute via _exec_serialize this cycle (at
            # most retire_width entries pop per cycle, so deeper ones
            # cannot become head).  Hand the cycle to the interpreter.
            if rob:
                k = retire_width
                for entry in rob:
                    if ser_tab[entry.pc]:
                        deopt = True
                        break
                    k -= 1
                    if not k:
                        break
                if deopt:
                    break
            n_cycles += 1

            # ------------------------------------------------ writeback
            if completing:
                entries = completing.pop(cycle, None)
                if entries:
                    entries.sort(key=_BY_SEQ)
                    for entry in entries:
                        if entry.flushed or entry.state == 2:
                            continue
                        entry.state = 2
                        value = entry.value
                        for consumer, slot in entry.consumers:
                            if consumer.flushed:
                                continue
                            consumer.srcs[slot] = value
                            consumer.remaining -= 1
                            if consumer.remaining == 0 and \
                                    consumer.state == 0 and \
                                    not ser_tab[consumer.pc]:
                                heappush(ready,
                                         (consumer.seq, consumer))
                        entry.consumers = []
                        branch = br_tab[entry.pc]
                        if branch is not None:
                            mode, target = branch
                            actual = entry.actual_next
                            if mode == 1:
                                update_direction(entry.pc,
                                                 actual == target)
                            elif mode == 2:
                                btb_update(entry.pc, actual)
                            n_branches += 1
                            if actual != entry.pred_next:
                                # Mispredict: flush through the
                                # interpreter's machinery.  _release
                                # reads the occupancy counters, so sync
                                # them first, then re-hoist everything
                                # the flush rebinds.
                                core.int_iq_used = int_iq_used
                                core.fp_iq_used = fp_iq_used
                                core.lq_used = lq_used
                                core.sq_used = sq_used
                                core.rename_int_used = rename_int_used
                                core.rename_fp_used = rename_fp_used
                                stats_bump("mispredicts")
                                core._flush_from_seq(entry.seq + 1,
                                                     cycle, actual)
                                rob = core.rob
                                rat = core.rat
                                store_entries = core.store_entries
                                blocked_loads = core.blocked_loads
                                int_iq_used = core.int_iq_used
                                fp_iq_used = core.fp_iq_used
                                lq_used = core.lq_used
                                sq_used = core.sq_used
                                rename_int_used = core.rename_int_used
                                rename_fp_used = core.rename_fp_used
                                fetch_pc = core.fetch_pc
                                fetch_resume = core.fetch_resume
                                last_fetch_line = core.last_fetch_line

            # --------------------------------------------------- retire
            if rob or pending_stores:
                while pending_stores and pending_stores[0] <= cycle:
                    pending_stores.popleft()
                retired = 0
                last_next = 0
                while rob and retired < retire_width:
                    head = rob[0]
                    if head.state != 2:
                        break
                    pc = head.pc
                    write_fn = st_tab[pc]
                    if write_fn is not None:
                        if len(pending_stores) >= store_queue:
                            stats_bump("store_buffer_stalls")
                            break
                        addr = head.addr
                        write_fn(addr, head.store_value)
                        begin = sb_next_free
                        if begin < cycle:
                            begin = cycle
                        done = data_access(index, addr, True, begin)
                        sb_next_free = done
                        pending_stores.append(done)
                        n_stores += 1
                    dest = dest_tab[pc]
                    if dest is not None:
                        ctx_write(dest, head.value)
                        if rat.get(dest) is head:
                            del rat[dest]
                    rob.popleft()
                    if write_fn is not None:
                        if head in store_entries:
                            store_entries.remove(head)
                        if blocked_loads:
                            for load in blocked_loads:
                                if not load.flushed:
                                    heappush(ready, (load.seq, load))
                            blocked_loads.clear()
                    held = head.held
                    if held:
                        if held & h_int:
                            int_iq_used -= 1
                        elif held & h_fp:
                            fp_iq_used -= 1
                        if held & h_lq:
                            lq_used -= 1
                        if held & h_sq:
                            sq_used -= 1
                        if held & h_ri:
                            rename_int_used -= 1
                        elif held & h_rf:
                            rename_fp_used -= 1
                        head.held = 0
                    if rp is not None:
                        rp[pc] = rp.get(pc, 0) + 1
                    last_next = head.actual_next
                    retired += 1
                if retired:
                    ctx.pc = last_next
                    ctx.retired_instructions += retired
                    last_retire_cycle = cycle
                    n_retired += retired

            # ---------------------------------------------------- issue
            if ready:
                budget = issue_width
                fu_used = [0, 0, 0, 0]
                put_back = None
                issued = 0
                int_iq_freed = 0
                fp_iq_freed = 0
                while budget > 0 and ready:
                    entry = heappop(ready)[1]
                    if entry.flushed or entry.state != 0:
                        continue
                    pc = entry.pc
                    pool, pool_limit = pool_tab[pc]
                    if fu_used[pool] >= pool_limit:
                        if put_back is None:
                            put_back = [entry]
                        else:
                            put_back.append(entry)
                        continue
                    meta = exec_meta[pc]
                    kind = meta[0]
                    srcs = entry.srcs
                    if kind == 0:
                        fn = meta[1]
                        if fn is None:
                            self._install(block_of[pc])
                            fn = meta[1]
                        entry.value = fn(srcs[0], srcs[1])
                        entry.state = 1
                        done = cycle + meta[2]
                        n_int += 1
                    elif kind == 4:
                        addr = srcs[0] + meta[3]
                        size = meta[2]
                        forward = None
                        blocked = False
                        for store in reversed(store_entries):
                            if store.seq > entry.seq or store.flushed:
                                continue
                            store_addr = store.addr
                            if store_addr is None:
                                blocked = True
                                break
                            if store_addr == addr and \
                                    store.size == size:
                                forward = store
                                break
                            if store_addr < addr + size and \
                                    addr < store_addr + store.size:
                                blocked = True
                                break
                        if blocked:
                            blocked_loads.append(entry)
                            continue
                        entry.addr = addr
                        entry.size = size
                        entry.state = 1
                        if forward is not None:
                            conv = meta[4]
                            raw = forward.store_value
                            entry.value = raw if conv is None \
                                else conv(raw)
                            done = cycle + l1d_hit
                            stats_bump("load_forwards")
                        else:
                            entry.value = meta[1](addr)
                            done = data_access(index, addr, False,
                                               cycle)
                        n_loads += 1
                    elif kind == 2:
                        fn = meta[1]
                        if fn is None:
                            self._install(block_of[pc])
                            fn = meta[1]
                        entry.actual_next = fn(srcs[0], srcs[1])
                        link = meta[2]
                        if link is not None:
                            entry.value = link
                        entry.state = 1
                        done = cycle + 1
                    elif kind == 3:
                        entry.addr = srcs[0] + meta[3]
                        entry.size = meta[2]
                        entry.store_value = srcs[1]
                        entry.state = 1
                        done = cycle + 1
                        if blocked_loads:
                            for load in blocked_loads:
                                if not load.flushed:
                                    heappush(ready, (load.seq, load))
                            blocked_loads.clear()
                    else:  # kind == 1: FP
                        fn = meta[1]
                        if fn is None:
                            self._install(block_of[pc])
                            fn = meta[1]
                        entry.value = fn(srcs[0], srcs[1])
                        entry.state = 1
                        done = cycle + meta[2]
                        n_fp += 1
                    entry.completion = done
                    bucket = completing.get(done)
                    if bucket is None:
                        completing[done] = [entry]
                    else:
                        bucket.append(entry)
                    fu_used[pool] += 1
                    budget -= 1
                    held = entry.held
                    if held & h_int:
                        int_iq_freed += 1
                        entry.held = held & ~h_int
                    elif held & h_fp:
                        fp_iq_freed += 1
                        entry.held = held & ~h_fp
                    issued += 1
                if issued:
                    n_issued += issued
                    int_iq_used -= int_iq_freed
                    fp_iq_used -= fp_iq_freed
                if put_back is not None:
                    for entry in put_back:
                        heappush(ready, (entry.seq, entry))

            # ------------------------------------------------- dispatch
            if fetch_queue:
                dispatched = 0
                while fetch_queue and dispatched < decode_width:
                    inst, pc, pred_next, fetched_at = fetch_queue[0]
                    if cycle < fetched_at + frontend_delay:
                        break
                    if len(rob) >= rob_entries:
                        stats_bump("rob_full_stalls")
                        break
                    (needs_fp_iq, needs_int_iq, uses_lq, uses_sq, dest,
                     dest_fp, held, rs1, rs2) = disp_tab[pc]
                    if needs_fp_iq and fp_iq_used >= fp_queue:
                        stats_bump("iq_full_stalls")
                        break
                    if needs_int_iq and int_iq_used >= int_queue:
                        stats_bump("iq_full_stalls")
                        break
                    if uses_lq and lq_used >= load_queue:
                        stats_bump("lsq_full_stalls")
                        break
                    if uses_sq and sq_used >= store_queue:
                        stats_bump("lsq_full_stalls")
                        break
                    if dest is not None:
                        if dest_fp:
                            if rename_fp_used >= rename_limit_fp:
                                stats_bump("rename_stalls")
                                break
                        elif rename_int_used >= rename_limit_int:
                            stats_bump("rename_stalls")
                            break
                    fetch_queue.popleft()
                    entry = RobEntry(seq, inst, pc, pred_next)
                    seq += 1
                    srcs = entry.srcs
                    if rs1 is not None:
                        producer = rat.get(rs1)
                        if producer is None:
                            srcs[0] = ctx_read(rs1)
                        elif producer.state == 2:
                            srcs[0] = producer.value
                        else:
                            producer.consumers.append((entry, 0))
                            entry.remaining += 1
                            srcs[0] = None
                    if rs2 is not None:
                        producer = rat.get(rs2)
                        if producer is None:
                            srcs[1] = ctx_read(rs2)
                        elif producer.state == 2:
                            srcs[1] = producer.value
                        else:
                            producer.consumers.append((entry, 1))
                            entry.remaining += 1
                            srcs[1] = None
                    entry.held = held
                    if needs_fp_iq:
                        fp_iq_used += 1
                    if needs_int_iq:
                        int_iq_used += 1
                    if uses_lq:
                        lq_used += 1
                    if uses_sq:
                        sq_used += 1
                        store_entries.append(entry)
                    if dest is not None:
                        if dest_fp:
                            rename_fp_used += 1
                        else:
                            rename_int_used += 1
                        rat[dest] = entry
                    rob.append(entry)
                    if entry.remaining == 0 and \
                            (needs_fp_iq or needs_int_iq):
                        heappush(ready, (entry.seq, entry))
                    dispatched += 1
                if dispatched:
                    n_dispatched += dispatched

            # ---------------------------------------------------- fetch
            # stop_fetch is provably constant within a window (the
            # machine only engages un-drained cores and HALT deopts
            # before retiring), so the guard reduces to the two locals.
            if cycle >= fetch_resume and fetch_pc >= 0:
                fetched = 0
                while fetched < fetch_width and \
                        len(fetch_queue) < queue_cap:
                    pc = fetch_pc
                    if pc < 0 or pc >= program_end:
                        break
                    line = pc >> 3
                    if line != last_fetch_line:
                        done = inst_fetch(index, pc, cycle)
                        last_fetch_line = line
                        if done > cycle + l1i_hit:
                            fetch_resume = done
                            stats_bump("icache_stall_cycles",
                                       done - cycle)
                            break
                    fetch_meta = fetch_tab[pc]
                    kind = fetch_meta[1]
                    if kind == 0:
                        pred_next = pc + 1
                    elif kind == 1:
                        pred_next = fetch_meta[2] \
                            if predict_direction(pc) else pc + 1
                    elif kind == 5:  # HALT: fetch stops dead
                        fetch_queue.append(
                            (fetch_meta[0], pc, pc + 1, cycle))
                        fetched += 1
                        fetch_pc = -1
                        break
                    elif kind == 2:
                        pred_next = fetch_meta[2]
                    elif kind == 3:
                        ras_push(pc + 1)
                        pred_next = fetch_meta[2]
                    else:  # kind == 4: JR
                        target = ras_pop()
                        if target is None:
                            target = btb_lookup(pc)
                        pred_next = -1 if target is None else target
                    block = fetch_meta[3]
                    if block is not None:
                        block.hits += 1
                        if not installed[block.bid]:
                            self._install(block)
                    fetch_queue.append(
                        (fetch_meta[0], pc, pred_next, cycle))
                    fetched += 1
                    fetch_pc = pred_next
                    if pred_next != pc + 1:
                        break
                if fetched:
                    n_fetched += fetched

            cycle += 1

        # Window exit: write the hoisted scalars and deferred counters
        # back to the core.
        core.seq = seq
        core.fetch_pc = fetch_pc
        core.fetch_resume = fetch_resume
        core.last_fetch_line = last_fetch_line
        core.sb_next_free = sb_next_free
        core.last_retire_cycle = last_retire_cycle
        core.int_iq_used = int_iq_used
        core.fp_iq_used = fp_iq_used
        core.lq_used = lq_used
        core.sq_used = sq_used
        core.rename_int_used = rename_int_used
        core.rename_fp_used = rename_fp_used
        cnt = core._cnt
        if n_cycles:
            cnt["cycles"] += n_cycles
        if n_fetched:
            cnt["fetched"] += n_fetched
        if n_dispatched:
            cnt["dispatched"] += n_dispatched
        if n_issued:
            cnt["issued"] += n_issued
        if n_retired:
            cnt["retired"] += n_retired
        if n_int:
            cnt["int_ops"] += n_int
        if n_fp:
            cnt["fp_ops"] += n_fp
        if n_loads:
            cnt["loads"] += n_loads
        if n_stores:
            cnt["stores"] += n_stores
        if n_branches:
            cnt["branches_resolved"] += n_branches
        self.windows += 1
        self.fused_cycles += n_cycles
        if deopt:
            self.deopts += 1
        return cycle

    # ---------------------------------------------------------------- drive

    def declines(self) -> bool:
        """True when :meth:`drive` would deopt on its first cycle: a
        *hard* serialized op (HALT / FENCE / atomic) within retire
        reach of the ROB head.  The multi-core walk checks this before
        building a generator, so sustained interpreted stretches never
        pay the hoist just to decline.  SPL ops do not decline — the
        drive loop parks or executes them compiled."""
        rob = self.core.rob
        if rob:
            hard_tab = self.hard_tab
            k = self.core._retire_width
            for entry in rob:
                if hard_tab[entry.pc]:
                    return True
                k -= 1
                if not k:
                    break
        return False

    def drive(self, pend: list):
        """Generator: compiled cycles for one core of a fused multi-core
        window, hoisting once per *residency* instead of once per cycle.

        Protocol (driven by :class:`MultiBlockRunner`):

        * prime with ``send(None)`` — runs the hoist up to the first
          yield and marks the core *resident* (``core._bg_resident``),
          which makes sibling snoop invalidations defer themselves (see
          ``OutOfOrderCore._on_invalidation``) instead of reading the
          core's now-stale scalar attributes;
        * ``send(cycle)`` runs exactly one compiled cycle and yields
          True — or 2 when the cycle ran as a parked ``spl_recv`` /
          ``spl_store`` retry (head waiting on the output queue), a
          hint that the core may be quiescent and worth an elide
          probe.  Cycles need not be consecutive (the walk skips a
          core's stall window), only monotone;
        * a serialized op entering retire reach *deopts*: every hoisted
          scalar is written back and the generator returns, surfacing
          as StopIteration from the send — the caller interprets that
          cycle instead;
        * ``send(-1)`` is the sync sentinel: write back and return.

        While resident, the core's deque/dict structures stay shared in
        place (flush paths rebind them, and the body re-fetches before
        the next yield), but the eleven hoisted scalars are stale on
        the core object — the walk must sync this generator before
        probing ``next_event_cycle``, eliding, delegating to the
        single-core window, or replaying a deferred invalidation.
        Deferred hot counters accumulate into ``pend`` (one slot per
        ``_CNT_KEYS`` entry), flushed once per multi-core window.

        The caller guarantees: ctx is bound, core not halted, not
        elided, and not stalled on the cycles it sends, observers off.
        """
        core = self.core
        n_cycles = 0
        n_spl_stalls = 0
        n_fetched = 0
        n_dispatched = 0
        n_issued = 0
        n_retired = 0
        n_int = 0
        n_fp = 0
        n_loads = 0
        n_stores = 0
        n_br = 0
        retire_width = core._retire_width
        ser_tab = self.ser_tab
        park_tab = self.park_tab
        hard_tab = self.hard_tab
        exec_serialize = core._exec_serialize
        spl_port = core.spl_port
        output_pending = None if spl_port is None \
            else spl_port.output_pending
        rob = core.rob
        ctx = core.ctx
        fetch_tab = self.fetch_tab
        disp_tab = self.disp_tab
        exec_meta = self.exec_meta
        st_tab = self.st_tab
        dest_tab = self.dest_tab
        br_tab = self.br_tab
        pool_tab = self.pool_tab
        installed = self.installed
        block_of = self.bp.block_of

        ready = core.ready
        fetch_queue = core.fetch_queue
        completing = core.completing
        store_entries = core.store_entries
        blocked_loads = core.blocked_loads
        rat = core.rat
        pending_stores = core.pending_stores
        predictor = core.predictor
        predict_direction = predictor.predict_direction
        update_direction = predictor.update_direction
        btb_update = predictor.btb_update
        btb_lookup = predictor.btb_lookup
        ras_push = predictor.ras_push
        ras_pop = predictor.ras_pop
        data_access = core.mem_system.data_access
        inst_fetch = core.mem_system.inst_fetch
        index = core.index
        stats_bump = core.stats.bump
        ctx_read = ctx.read
        ctx_write = ctx.write
        rp = core._retire_pcs

        seq = core.seq
        fetch_pc = core.fetch_pc
        fetch_resume = core.fetch_resume
        last_fetch_line = core.last_fetch_line
        sb_next_free = core.sb_next_free
        int_iq_used = core.int_iq_used
        fp_iq_used = core.fp_iq_used
        lq_used = core.lq_used
        sq_used = core.sq_used
        rename_int_used = core.rename_int_used
        rename_fp_used = core.rename_fp_used

        rob_entries = core._rob_entries
        fp_queue = core._fp_queue
        int_queue = core._int_queue
        load_queue = core._load_queue
        store_queue = core._store_queue
        decode_width = core._decode_width
        issue_width = core._issue_width
        fetch_width = core._fetch_width
        queue_cap = core._fetch_queue_cap
        l1i_hit = core._l1i_hit
        l1d_hit = core.config.l1d.hit_latency
        rename_limit_int = core._rename_limit_int
        rename_limit_fp = core._rename_limit_fp
        program_end = core._program_end
        frontend_delay = FRONTEND_DELAY
        h_int, h_fp = HOLD_INT_IQ, HOLD_FP_IQ
        h_lq, h_sq = HOLD_LQ, HOLD_SQ
        h_ri, h_rf = HOLD_REN_INT, HOLD_REN_FP

        core._bg_resident = True
        deopt = False
        try:
            cycle = yield
            while cycle >= 0:
                parked = 0
                ser_ran = False
                if rob:
                    head0 = rob[0]
                    pc0 = head0.pc
                    if ser_tab[pc0] and not hard_tab[pc0]:
                        # SPL op already at the head.  The *park* —
                        # operands ready, output queue empty (or store
                        # queue full) — replays exactly as the
                        # interpreter's failed retry: nothing retires
                        # and at most the spl_recv_stalls counter
                        # bumps, so the cycle runs compiled and yields
                        # a park hint the walk can turn into an elide
                        # probe.  The queue is only filled by
                        # controller ticks (end of the walk cycle), so
                        # this pre-writeback check sees the state the
                        # retire stage would.  When not parked — queue
                        # pending, or an operand still in flight that
                        # this cycle's writeback could complete — the
                        # retire stage below executes the op via the
                        # interpreter's own ``_exec_serialize``.
                        kind = park_tab[pc0]
                        if kind and head0.remaining == 0 \
                                and head0.state == 0 \
                                and output_pending is not None:
                            if kind == 2:
                                while pending_stores and \
                                        pending_stores[0] <= cycle:
                                    pending_stores.popleft()
                                if len(pending_stores) >= store_queue:
                                    parked = 1
                                elif not output_pending():
                                    parked = 2
                            elif not output_pending():
                                parked = 2
                        if parked == 2:
                            n_spl_stalls += 1
                        if parked:
                            # Hint the walk only when this parked cycle
                            # is also *quiet* (no frontend/issue
                            # progress): during the post-arrival
                            # frontend fill the probe would fail anyway
                            # and its backoff would delay the real
                            # elide by as much as it grew.
                            q0 = n_fetched + n_dispatched + n_issued
                    if not parked:
                        # A hard serialized op (HALT / FENCE / atomic)
                        # within retire reach deopts: the interpreter
                        # runs the whole cycle.  (A parked head retires
                        # nothing, so nothing deeper can reach it.)
                        k = retire_width
                        for entry in rob:
                            if hard_tab[entry.pc]:
                                deopt = True
                                break
                            k -= 1
                            if not k:
                                break
                        if deopt:
                            break
                n_cycles += 1

                # ---------------------------------------------------- writeback
                if completing:
                    entries = completing.pop(cycle, None)
                    if entries:
                        entries.sort(key=_BY_SEQ)
                        for entry in entries:
                            if entry.flushed or entry.state == 2:
                                continue
                            entry.state = 2
                            value = entry.value
                            for consumer, slot in entry.consumers:
                                if consumer.flushed:
                                    continue
                                consumer.srcs[slot] = value
                                consumer.remaining -= 1
                                if consumer.remaining == 0 and \
                                        consumer.state == 0 and \
                                        not ser_tab[consumer.pc]:
                                    heappush(ready, (consumer.seq, consumer))
                            entry.consumers = []
                            branch = br_tab[entry.pc]
                            if branch is not None:
                                mode, target = branch
                                actual = entry.actual_next
                                if mode == 1:
                                    update_direction(entry.pc, actual == target)
                                elif mode == 2:
                                    btb_update(entry.pc, actual)
                                n_br += 1
                                if actual != entry.pred_next:
                                    core.int_iq_used = int_iq_used
                                    core.fp_iq_used = fp_iq_used
                                    core.lq_used = lq_used
                                    core.sq_used = sq_used
                                    core.rename_int_used = rename_int_used
                                    core.rename_fp_used = rename_fp_used
                                    stats_bump("mispredicts")
                                    core._flush_from_seq(entry.seq + 1,
                                                         cycle, actual)
                                    rob = core.rob
                                    rat = core.rat
                                    store_entries = core.store_entries
                                    blocked_loads = core.blocked_loads
                                    int_iq_used = core.int_iq_used
                                    fp_iq_used = core.fp_iq_used
                                    lq_used = core.lq_used
                                    sq_used = core.sq_used
                                    rename_int_used = core.rename_int_used
                                    rename_fp_used = core.rename_fp_used
                                    fetch_pc = core.fetch_pc
                                    fetch_resume = core.fetch_resume
                                    last_fetch_line = core.last_fetch_line

                # ------------------------------------------------------- retire
                if rob or pending_stores:
                    while pending_stores and pending_stores[0] <= cycle:
                        pending_stores.popleft()
                    retired = 0
                    last_next = 0
                    while rob and retired < retire_width:
                        head = rob[0]
                        if head.state != 2:
                            if parked or head.remaining != 0 \
                                    or head.state != 0 \
                                    or not ser_tab[head.pc]:
                                break
                            # An SPL op reached the head with operands
                            # ready (hard ops deopted at the cycle top,
                            # a parked head broke above): run the
                            # interpreter's own executor at its exact
                            # point in the cycle.  It reads and writes
                            # ``sb_next_free`` on the core, so sync the
                            # hoisted copy around the call, and flag
                            # the cycle so the walk keeps the
                            # controllers ticking.
                            core.sb_next_free = sb_next_free
                            ok = exec_serialize(head, cycle)
                            sb_next_free = core.sb_next_free
                            ser_ran = True
                            if not ok or head.state != 2:
                                break
                        pc = head.pc
                        write_fn = st_tab[pc]
                        if write_fn is not None:
                            if len(pending_stores) >= store_queue:
                                stats_bump("store_buffer_stalls")
                                break
                            addr = head.addr
                            write_fn(addr, head.store_value)
                            begin = sb_next_free
                            if begin < cycle:
                                begin = cycle
                            done = data_access(index, addr, True, begin)
                            sb_next_free = done
                            pending_stores.append(done)
                            n_stores += 1
                        dest = dest_tab[pc]
                        if dest is not None:
                            ctx_write(dest, head.value)
                            if rat.get(dest) is head:
                                del rat[dest]
                        rob.popleft()
                        if write_fn is not None:
                            if head in store_entries:
                                store_entries.remove(head)
                            if blocked_loads:
                                for load in blocked_loads:
                                    if not load.flushed:
                                        heappush(ready, (load.seq, load))
                                blocked_loads.clear()
                        held = head.held
                        if held:
                            if held & h_int:
                                int_iq_used -= 1
                            elif held & h_fp:
                                fp_iq_used -= 1
                            if held & h_lq:
                                lq_used -= 1
                            if held & h_sq:
                                sq_used -= 1
                            if held & h_ri:
                                rename_int_used -= 1
                            elif held & h_rf:
                                rename_fp_used -= 1
                            head.held = 0
                        if rp is not None:
                            rp[pc] = rp.get(pc, 0) + 1
                        last_next = head.actual_next
                        retired += 1
                    if retired:
                        ctx.pc = last_next
                        ctx.retired_instructions += retired
                        core.last_retire_cycle = cycle
                        n_retired += retired

                # -------------------------------------------------------- issue
                if ready:
                    budget = issue_width
                    fu_used = [0, 0, 0, 0]
                    put_back = None
                    issued = 0
                    int_iq_freed = 0
                    fp_iq_freed = 0
                    while budget > 0 and ready:
                        entry = heappop(ready)[1]
                        if entry.flushed or entry.state != 0:
                            continue
                        pc = entry.pc
                        pool, pool_limit = pool_tab[pc]
                        if fu_used[pool] >= pool_limit:
                            if put_back is None:
                                put_back = [entry]
                            else:
                                put_back.append(entry)
                            continue
                        meta = exec_meta[pc]
                        kind = meta[0]
                        srcs = entry.srcs
                        if kind == 0:
                            fn = meta[1]
                            if fn is None:
                                self._install(block_of[pc])
                                fn = meta[1]
                            entry.value = fn(srcs[0], srcs[1])
                            entry.state = 1
                            done = cycle + meta[2]
                            n_int += 1
                        elif kind == 4:
                            addr = srcs[0] + meta[3]
                            size = meta[2]
                            forward = None
                            blocked = False
                            for store in reversed(store_entries):
                                if store.seq > entry.seq or store.flushed:
                                    continue
                                store_addr = store.addr
                                if store_addr is None:
                                    blocked = True
                                    break
                                if store_addr == addr and \
                                        store.size == size:
                                    forward = store
                                    break
                                if store_addr < addr + size and \
                                        addr < store_addr + store.size:
                                    blocked = True
                                    break
                            if blocked:
                                blocked_loads.append(entry)
                                continue
                            entry.addr = addr
                            entry.size = size
                            entry.state = 1
                            if forward is not None:
                                conv = meta[4]
                                raw = forward.store_value
                                entry.value = raw if conv is None \
                                    else conv(raw)
                                done = cycle + l1d_hit
                                stats_bump("load_forwards")
                            else:
                                entry.value = meta[1](addr)
                                done = data_access(index, addr, False, cycle)
                            n_loads += 1
                        elif kind == 2:
                            fn = meta[1]
                            if fn is None:
                                self._install(block_of[pc])
                                fn = meta[1]
                            entry.actual_next = fn(srcs[0], srcs[1])
                            link = meta[2]
                            if link is not None:
                                entry.value = link
                            entry.state = 1
                            done = cycle + 1
                        elif kind == 3:
                            entry.addr = srcs[0] + meta[3]
                            entry.size = meta[2]
                            entry.store_value = srcs[1]
                            entry.state = 1
                            done = cycle + 1
                            if blocked_loads:
                                for load in blocked_loads:
                                    if not load.flushed:
                                        heappush(ready, (load.seq, load))
                                blocked_loads.clear()
                        else:  # kind == 1: FP
                            fn = meta[1]
                            if fn is None:
                                self._install(block_of[pc])
                                fn = meta[1]
                            entry.value = fn(srcs[0], srcs[1])
                            entry.state = 1
                            done = cycle + meta[2]
                            n_fp += 1
                        entry.completion = done
                        bucket = completing.get(done)
                        if bucket is None:
                            completing[done] = [entry]
                        else:
                            bucket.append(entry)
                        fu_used[pool] += 1
                        budget -= 1
                        held = entry.held
                        if held & h_int:
                            int_iq_freed += 1
                            entry.held = held & ~h_int
                        elif held & h_fp:
                            fp_iq_freed += 1
                            entry.held = held & ~h_fp
                        issued += 1
                    if issued:
                        n_issued += issued
                        int_iq_used -= int_iq_freed
                        fp_iq_used -= fp_iq_freed
                    if put_back is not None:
                        for entry in put_back:
                            heappush(ready, (entry.seq, entry))

                # ----------------------------------------------------- dispatch
                if fetch_queue:
                    dispatched = 0
                    while fetch_queue and dispatched < decode_width:
                        inst, pc, pred_next, fetched_at = fetch_queue[0]
                        if cycle < fetched_at + frontend_delay:
                            break
                        if len(rob) >= rob_entries:
                            stats_bump("rob_full_stalls")
                            break
                        (needs_fp_iq, needs_int_iq, uses_lq, uses_sq, dest,
                         dest_fp, held, rs1, rs2) = disp_tab[pc]
                        if needs_fp_iq and fp_iq_used >= fp_queue:
                            stats_bump("iq_full_stalls")
                            break
                        if needs_int_iq and int_iq_used >= int_queue:
                            stats_bump("iq_full_stalls")
                            break
                        if uses_lq and lq_used >= load_queue:
                            stats_bump("lsq_full_stalls")
                            break
                        if uses_sq and sq_used >= store_queue:
                            stats_bump("lsq_full_stalls")
                            break
                        if dest is not None:
                            if dest_fp:
                                if rename_fp_used >= rename_limit_fp:
                                    stats_bump("rename_stalls")
                                    break
                            elif rename_int_used >= rename_limit_int:
                                stats_bump("rename_stalls")
                                break
                        fetch_queue.popleft()
                        entry = RobEntry(seq, inst, pc, pred_next)
                        seq += 1
                        srcs = entry.srcs
                        if rs1 is not None:
                            producer = rat.get(rs1)
                            if producer is None:
                                srcs[0] = ctx_read(rs1)
                            elif producer.state == 2:
                                srcs[0] = producer.value
                            else:
                                producer.consumers.append((entry, 0))
                                entry.remaining += 1
                                srcs[0] = None
                        if rs2 is not None:
                            producer = rat.get(rs2)
                            if producer is None:
                                srcs[1] = ctx_read(rs2)
                            elif producer.state == 2:
                                srcs[1] = producer.value
                            else:
                                producer.consumers.append((entry, 1))
                                entry.remaining += 1
                                srcs[1] = None
                        entry.held = held
                        if needs_fp_iq:
                            fp_iq_used += 1
                        if needs_int_iq:
                            int_iq_used += 1
                        if uses_lq:
                            lq_used += 1
                        if uses_sq:
                            sq_used += 1
                            store_entries.append(entry)
                        if dest is not None:
                            if dest_fp:
                                rename_fp_used += 1
                            else:
                                rename_int_used += 1
                            rat[dest] = entry
                        rob.append(entry)
                        if entry.remaining == 0 and \
                                (needs_fp_iq or needs_int_iq):
                            heappush(ready, (entry.seq, entry))
                        dispatched += 1
                    if dispatched:
                        n_dispatched += dispatched

                # -------------------------------------------------------- fetch
                if not core.stop_fetch and cycle >= fetch_resume \
                        and fetch_pc >= 0:
                    fetched = 0
                    while fetched < fetch_width and \
                            len(fetch_queue) < queue_cap:
                        pc = fetch_pc
                        if pc < 0 or pc >= program_end:
                            break
                        line = pc >> 3
                        if line != last_fetch_line:
                            done = inst_fetch(index, pc, cycle)
                            last_fetch_line = line
                            if done > cycle + l1i_hit:
                                fetch_resume = done
                                stats_bump("icache_stall_cycles",
                                           done - cycle)
                                break
                        fetch_meta = fetch_tab[pc]
                        kind = fetch_meta[1]
                        if kind == 0:
                            pred_next = pc + 1
                        elif kind == 1:
                            pred_next = fetch_meta[2] \
                                if predict_direction(pc) else pc + 1
                        elif kind == 5:  # HALT: fetch stops dead
                            fetch_queue.append(
                                (fetch_meta[0], pc, pc + 1, cycle))
                            fetched += 1
                            fetch_pc = -1
                            break
                        elif kind == 2:
                            pred_next = fetch_meta[2]
                        elif kind == 3:
                            ras_push(pc + 1)
                            pred_next = fetch_meta[2]
                        else:  # kind == 4: JR
                            target = ras_pop()
                            if target is None:
                                target = btb_lookup(pc)
                            pred_next = -1 if target is None else target
                        block = fetch_meta[3]
                        if block is not None:
                            block.hits += 1
                            if not installed[block.bid]:
                                self._install(block)
                        fetch_queue.append(
                            (fetch_meta[0], pc, pred_next, cycle))
                        fetched += 1
                        fetch_pc = pred_next
                        if pred_next != pc + 1:
                            break
                    if fetched:
                        n_fetched += fetched

                if ser_ran:
                    # A serialized SPL op executed this cycle: it may
                    # have started a fabric job or freed queue space,
                    # so the walk must keep the controllers ticking.
                    cycle = yield 3
                elif parked and q0 == n_fetched + n_dispatched + n_issued:
                    cycle = yield 2
                else:
                    cycle = yield True
        finally:
            core._bg_resident = False
            if n_spl_stalls:
                stats_bump("spl_recv_stalls", n_spl_stalls)
            if n_cycles:
                pend[0] += n_cycles
                pend[1] += n_fetched
                pend[2] += n_dispatched
                pend[3] += n_issued
                pend[4] += n_retired
                pend[5] += n_int
                pend[6] += n_fp
                pend[7] += n_loads
                pend[8] += n_stores
                pend[9] += n_br
            core.seq = seq
            core.fetch_pc = fetch_pc
            core.fetch_resume = fetch_resume
            core.last_fetch_line = last_fetch_line
            core.sb_next_free = sb_next_free
            core.int_iq_used = int_iq_used
            core.fp_iq_used = fp_iq_used
            core.lq_used = lq_used
            core.sq_used = sq_used
            core.rename_int_used = rename_int_used
            core.rename_fp_used = rename_fp_used


#: Deferred counter layout shared by :meth:`BlockRunner.drive` (``pend``
#: slots) and the per-window flush in :class:`MultiBlockRunner`.
_CNT_KEYS = ("cycles", "fetched", "dispatched", "issued", "retired",
             "int_ops", "fp_ops", "loads", "stores", "branches_resolved")

#: Mirrors ``repro.system.machine._FF_NEVER``: the ``ff_wake`` sentinel
#: for an elided core that only an event poke can resume.
_BG_NEVER = 1 << 62

#: In-window elide-probe backoff ceiling, mirroring the machine's
#: ``_FF_BACKOFF_CAP`` rationale: probing a busy core's quiescence every
#: cycle costs more than the elision saves.
_BG_PROBE_CAP = 256


class MultiBlockRunner:
    """Fused multi-core windows: N cores per cycle, one Python loop.

    Generalizes :meth:`BlockRunner.run_window` to any number of running
    cores.  Exactness rests on three invariants, mirrored from the naive
    ``Machine.run`` loop:

    * **Core order.**  Cores advance in index order within each cycle —
      the interleaving that fixes shared-memory and snoop-invalidation
      semantics.  Compiled cores run as *resident*
      :meth:`BlockRunner.drive` generators (hoisted once per residency,
      not per cycle), so a sibling's store cannot snoop-flush them
      directly: ``_on_invalidation`` defers the line while a core is
      resident, and the walk replays it — after syncing the generator's
      state back — at the victim's next cycle slot.  The victim does
      not run between the snoop and its slot in either index order, so
      the deferred replay observes exactly the state the synchronous
      interpreter walk would have.
    * **Controller gating.**  The engagement bound (min over
      controllers' ``next_event_cycle`` at window start) proves skipped
      controller ticks are no-ops until that bound, so the walk skips
      them — *until* the bound arrives or a core tick interprets (it
      may execute a serialized op against an SPL/comm port).  From that
      cycle on, ``controllers_live`` sticks and every remaining window
      cycle ticks the controllers after the cores, in loop order, until
      a quiet cycle re-proves a bound.  A streaming controller (bound
      at or before window start) therefore runs live from the first
      cycle instead of blocking engagement.
    * **Poke/elide contract.**  Quiescent cores are elided with the
      standard ``ff_elide`` plan and resumed exactly like the machine
      loop (poke consumed, skipped span bulk-credited); a delivery or
      invalidation poke lands before the affected cycle because pokes
      are only raised by controller ticks and sibling steps, both of
      which run inside the same per-cycle walk.

    Per-core deopt: a core whose ROB head nears a serialized op falls
    back to ``core.tick`` for that cycle only; the window continues for
    the rest.  A stretch where exactly one compiled core remains live
    (and controllers are still provably quiet) delegates to the
    single-core ``run_window`` with the elided siblings as its poke
    escape — full single-core speed for the common barrier-tail and
    producer/consumer phases.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.windows = 0
        self.fused_cycles = 0

    def run_window(self, start: int, end: int, cores, runners,
                   allow_elide: bool, ctl_resume: int = _BG_NEVER):
        """Advance ``cores`` (index order) through ``[start, end)``.

        ``runners[i]`` is the installed :class:`BlockRunner` for
        ``cores[i]`` or None (backed off / draining: interpret only).
        ``allow_elide`` gates in-window ``ff_elide`` plans (False when
        the run disabled fast-forward: then quiescent cores tick
        naively, still exact).  ``ctl_resume`` is the controllers'
        event bound at engagement (min ``next_event_cycle`` observed at
        ``start - 1``): the first cycle a controller must tick.  The
        walk goes controller-live at that cycle — a streaming
        controller (``ctl_resume <= start``) keeps the window open with
        controllers ticking every cycle, rather than declining
        engagement.  Returns ``(done, stepped, delegated, attempted,
        elided)`` — the first un-executed cycle plus per-core
        compiled-cycle/engagement telemetry for the machine's per-core
        backoff.  The caller guarantees: every core has a bound context,
        at least one is neither halted nor elided, no elided core has a
        pending poke, observers off, and ``end`` respects the
        watchdog/pause ceiling.
        """
        controllers = self.machine._controllers
        n = len(cores)
        pends = [[0] * 10 for _ in range(n)]
        stepped = [0] * n
        delegated = [0] * n
        attempted = [False] * n
        was_compiled = [False] * n
        deopts = [0] * n
        probe_at = [start] * n
        probe_backoff = [1] * n
        park_on = [False] * n
        # states[i]: 0 = live, 1 = elided, 2 = halted.  Mirrors
        # ``core.halted`` and the in-window elide plan so the per-cycle
        # scan reads one list slot instead of three core attributes;
        # ``wake_at[i]`` mirrors ``core.ff_wake`` while elided.
        states = [0] * n
        wake_at = [0] * n
        # gens[i] is core i's resident ``drive`` generator, or None when
        # the core is interpreting / elided / declined.  A live entry
        # means the core's hoisted scalars live in the generator frame:
        # it must be synced (send(-1)) before anything outside the
        # generator reads or writes them — elide probes, delegation,
        # deferred-invalidation replay, and window exit.
        gens = [None] * n
        live = 0
        for i, core in enumerate(cores):
            core._obs_pipe = False
            if core.ff_skip_from >= 0:
                states[i] = 1
                wake_at[i] = core.ff_wake
            elif core.halted:
                states[i] = 2
            else:
                live += 1
        # Controller gating: while live, controllers tick every cycle;
        # after an interp-free cycle they may re-quiesce by proving a
        # bound (next_event_cycle, the same contract the machine's
        # engagement predicate uses) — ``controllers_resume`` is then the
        # cycle they must come back at, _BG_NEVER when only core
        # activity (an interpreted tick) can wake them.
        controllers_live = False
        controllers_resume = ctl_resume
        ctl_probe_at = start
        ctl_backoff = 1
        enum_cores = list(enumerate(cores))
        cycle = start
        while cycle < end:
            if live == 0:
                # Everyone is waiting on an external event: hand back to
                # the machine loop, whose fast-forward probe can *jump*
                # (and bound the watchdog floor) instead of iterating.
                break
            if live == 1 and not controllers_live:
                # Single-live stretch: delegate to the single-core fused
                # loop, bounded by the earliest elided wake and the
                # controllers' comeback cycle, escaping the moment a
                # store pokes an elided sibling.
                target = -1
                escapes = []
                sub_end = end if controllers_resume >= end \
                    else controllers_resume
                poked = False
                for i, core in enum_cores:
                    st = states[i]
                    if st == 2:
                        continue
                    if st:
                        if core.ff_poke:
                            # A lower-indexed sibling was poked late last
                            # cycle: the per-core walk must resume it on
                            # *this* cycle before anything else runs.
                            poked = True
                            break
                        escapes.append(core)
                        wake = wake_at[i]
                        if wake < sub_end:
                            sub_end = wake
                    else:
                        target = i
                if not poked and target >= 0 \
                        and runners[target] is not None \
                        and not cores[target]._bg_pending_inval \
                        and cycle < sub_end:
                    gen = gens[target]
                    if gen is not None:
                        # run_window re-hoists from the core attributes:
                        # retire the residency first.
                        gens[target] = None
                        try:
                            gen.send(-1)
                        except StopIteration:
                            pass
                    attempted[target] = True
                    done = runners[target].run_window(
                        cycle, sub_end, tuple(escapes))
                    if done > cycle:
                        delegated[target] += done - cycle
                        was_compiled[target] = True
                        # Poke fix-up: a store in the window's *last*
                        # cycle may have snoop-flushed elided siblings.
                        # In core order, a sibling *after* the target
                        # ticks on that same cycle (its slot had not
                        # passed yet); one *before* it resumes next
                        # cycle through the normal walk.  The fix-up
                        # tick is interpreted and may touch an SPL/comm
                        # port, so controllers go live at that cycle.
                        fixup_ran = False
                        last = done - 1
                        for i, core in enum_cores:
                            if i <= target or states[i] != 1 \
                                    or not core.ff_poke:
                                continue
                            core.ff_poke = False
                            core.credit_fast_forward(
                                core.ff_skip_from, last - 1)
                            core.ff_skip_from = -1
                            states[i] = 0
                            live += 1
                            probe_at[i] = done
                            probe_backoff[i] = 1
                            core.tick(last)
                            fixup_ran = True
                            if core.halted:
                                states[i] = 2
                                live -= 1
                        if fixup_ran:
                            controllers_live = True
                            for controller in controllers:
                                controller.tick(last)
                        cycle = done
                        continue
                # Declined or immediate deopt: fall through and run this
                # cycle through the per-core path.
            interp_ran = False
            ser_exec_ran = False
            for i, core in enum_cores:
                st = states[i]
                if st:
                    if st == 2:
                        continue
                    if cycle < wake_at[i] and not core.ff_poke:
                        continue
                    core.ff_poke = False
                    core.credit_fast_forward(core.ff_skip_from, cycle - 1)
                    core.ff_skip_from = -1
                    states[i] = 0
                    live += 1
                    probe_at[i] = cycle
                    probe_backoff[i] = 1
                if core._bg_pending_inval:
                    # A sibling's store (or a controller write) snooped
                    # this core while its generator held the hoisted
                    # scalars: sync the residency and replay the
                    # deferred invalidations now, at this core's cycle
                    # slot — it has not run since the snoop, so the
                    # replay sees exactly the state the synchronous
                    # listener would have.
                    gen = gens[i]
                    if gen is not None:
                        gens[i] = None
                        try:
                            gen.send(-1)
                        except StopIteration:
                            pass
                    pending = core._bg_pending_inval
                    on_inv = core._on_invalidation
                    idx = core.index
                    for line in pending:
                        on_inv(idx, line)
                    del pending[:]
                deopted_now = False
                if cycle < core.stall_until:
                    # tick() would return before counting; the elide
                    # probe below may still skip the stall window.  The
                    # stall's controller effects predate the window (or
                    # set controllers_live when its op interpreted).
                    pass
                else:
                    runner = runners[i]
                    stepped_now = False
                    if runner is not None:
                        attempted[i] = True
                        gen = gens[i]
                        if gen is None and not runner.declines():
                            gen = runner.drive(pends[i])
                            gen.send(None)
                            gens[i] = gen
                        if gen is not None:
                            res = None
                            try:
                                res = gen.send(cycle)
                            except StopIteration:
                                gens[i] = None
                            if res is not None:
                                stepped[i] += 1
                                was_compiled[i] = True
                                if res is True:
                                    park_on[i] = False
                                    continue
                                if res == 3:
                                    # A serialized SPL op executed
                                    # compiled: controllers must tick
                                    # this cycle (fabric job started /
                                    # queue space freed), exactly as
                                    # if the core had interpreted.
                                    park_on[i] = False
                                    ser_exec_ran = True
                                    continue
                                # Park hint: the head is an spl_recv /
                                # spl_store waiting on the fabric, and
                                # the cycle ran compiled as a no-op
                                # retry.  On the first parked cycle of
                                # an episode probe eagerly (the episode
                                # usually ends in a long idle wait);
                                # afterwards on the normal backoff.
                                if not park_on[i]:
                                    park_on[i] = True
                                    probe_at[i] = cycle
                                    probe_backoff[i] = 1
                                if not allow_elide \
                                        or cycle < probe_at[i]:
                                    continue
                                # Sync the residency so the elide probe
                                # below reads authoritative scalars; a
                                # failed probe re-hoists next cycle
                                # (declines() accepts a parked head).
                                gens[i] = None
                                try:
                                    gen.send(-1)
                                except StopIteration:
                                    pass
                                stepped_now = True
                        if not stepped_now:
                            park_on[i] = False
                            deopted_now = True
                            if was_compiled[i]:
                                was_compiled[i] = False
                                deopts[i] += 1
                                # A fresh deopt usually means the core
                                # just parked on a serialized op
                                # (barrier / SPL recv): probe for
                                # elision right after this tick instead
                                # of waiting out the backoff.
                                probe_at[i] = cycle
                                probe_backoff[i] = 1
                    if not stepped_now:
                        core.tick(cycle)
                        interp_ran = True
                        if core.halted:
                            states[i] = 2
                            live -= 1
                            continue
                if allow_elide and cycle >= probe_at[i]:
                    if core.ff_poke:
                        core.ff_poke = False
                    else:
                        t = core.next_event_cycle(cycle)
                        if t is None:
                            core.ff_elide(cycle + 1, _BG_NEVER)
                            states[i] = 1
                            wake_at[i] = _BG_NEVER
                            live -= 1
                            continue
                        if t > cycle + 1:
                            core.ff_elide(cycle + 1, t)
                            states[i] = 1
                            wake_at[i] = t
                            live -= 1
                            continue
                    if deopted_now:
                        # Deopted cores are interpreting anyway (a
                        # serialized op is draining toward the ROB head);
                        # the moment that settles, next_event_cycle goes
                        # unbounded — keep probing every cycle so the
                        # park is elided as soon as it begins.
                        probe_at[i] = cycle + 1
                    else:
                        backoff = probe_backoff[i]
                        if backoff < _BG_PROBE_CAP:
                            probe_backoff[i] = backoff * 2
                        probe_at[i] = cycle + backoff
            if interp_ran or ser_exec_ran or cycle >= controllers_resume:
                controllers_live = True
                ctl_probe_at = cycle
                ctl_backoff = 1
            if controllers_live:
                for controller in controllers:
                    controller.tick(cycle)
                if not interp_ran and not ser_exec_ran \
                        and cycle >= ctl_probe_at:
                    # Quiet cycle: try to prove the controllers dormant
                    # again so delegation can re-arm and the remaining
                    # window skips their no-op ticks.
                    bound = _BG_NEVER
                    for controller in controllers:
                        t = controller.next_event_cycle(cycle)
                        if t is not None and t < bound:
                            bound = t
                    if bound > cycle + 1:
                        controllers_live = False
                        controllers_resume = bound
                    else:
                        if ctl_backoff < 64:
                            ctl_backoff *= 2
                        ctl_probe_at = cycle + ctl_backoff
            cycle += 1

        # Retire every residency: write the hoisted scalars back, then
        # replay invalidations deferred during the final cycle (the
        # victim has not run since the snoop, so the replay is the state
        # the machine loop must see when it resumes at ``cycle``).
        for i, core in enum_cores:
            gen = gens[i]
            if gen is not None:
                gens[i] = None
                try:
                    gen.send(-1)
                except StopIteration:
                    pass
            pending = core._bg_pending_inval
            if pending:
                on_inv = core._on_invalidation
                idx = core.index
                for line in pending:
                    on_inv(idx, line)
                del pending[:]

        fused = 0
        for i, core in enum_cores:
            pend = pends[i]
            if pend[0]:
                cnt = core._cnt
                for j, key in enumerate(_CNT_KEYS):
                    value = pend[j]
                    if value:
                        cnt[key] += value
            runner = runners[i]
            if runner is not None:
                if stepped[i]:
                    runner.windows += 1
                    runner.fused_cycles += stepped[i]
                runner.deopts += deopts[i]
            fused += stepped[i] + delegated[i]
        self.windows += 1
        self.fused_cycles += fused
        return (cycle, stepped, delegated, attempted,
                [st == 1 for st in states])
