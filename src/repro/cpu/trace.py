"""Pipeline tracing: a pipe-trace sink over the observability bus.

:class:`PipelineTracer` subscribes to a core's per-instruction events
(fetch / dispatch / issue / complete / retire / flush) on the machine's
:class:`~repro.obs.bus.EventBus` and records them (optionally bounded).
The textual rendering is a classic pipe-trace::

    cycle    12 retire   seq=007 pc=004  addi r1, r1, 1
    cycle    13 flush    seq=009 pc=006  blt r1, r2, ...  (redirect -> 2)

Tracing is opt-in and costs nothing when no sink is attached: cores only
construct trace payloads while the bus reports a pipeline-kind listener.

Attach through the bus::

    tracer = PipelineTracer(stages=["retire"])
    machine.obs.attach(tracer, kinds=tracer.kinds,
                       sources={f"cpu{core.index}"})

(The historical one-call ``attach_tracer`` form now lives only as a
deprecated stub in :mod:`repro.api.compat`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs import events as ev
from repro.obs.bus import Sink
from repro.obs.events import Event


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    stage: str
    seq: int
    pc: int
    text: str

    def render(self) -> str:
        return (f"cycle {self.cycle:6d} {self.stage:<8s} "
                f"seq={self.seq:04d} pc={self.pc:04d}  {self.text}")


class PipelineTracer(Sink):
    """Bounded in-memory pipe-trace recorder (an event-bus sink)."""

    def __init__(self, limit: int = 100_000,
                 stages: Optional[List[str]] = None) -> None:
        self.limit = limit
        self.stages = set(stages) if stages else None
        self.events: List[TraceEvent] = []
        self.dropped = 0

    @property
    def kinds(self) -> frozenset:
        """The event kinds this tracer wants (for ``EventBus.attach``)."""
        if self.stages is None:
            return ev.PIPELINE_KINDS
        return ev.PIPELINE_KINDS & frozenset(self.stages)

    def accept(self, event: Event) -> None:
        if event.kind not in ev.PIPELINE_KINDS:
            return
        self.record(event.cycle, event.kind, event.get("seq", 0),
                    event.get("pc", 0), event.get("text", ""))

    def record(self, cycle: int, stage: str, seq: int, pc: int,
               text: str) -> None:
        if self.stages is not None and stage not in self.stages:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, stage, seq, pc, text))

    def render(self, last: Optional[int] = None) -> str:
        events = self.events if last is None else self.events[-last:]
        lines = [event.render() for event in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (limit "
                         f"{self.limit})")
        return "\n".join(lines)

    def of_stage(self, stage: str) -> List[TraceEvent]:
        return [event for event in self.events if event.stage == stage]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
