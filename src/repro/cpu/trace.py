"""Pipeline tracing: a per-cycle event log for debugging programs.

Attach a :class:`PipelineTracer` to a core and every fetch / dispatch /
issue / complete / retire / flush event is recorded (optionally bounded).
The textual rendering is a classic pipe-trace::

    cycle    12 retire   seq=007 pc=004  addi r1, r1, 1
    cycle    13 flush    seq=009 pc=006  blt r1, r2, ...  (redirect -> 2)

Tracing is opt-in and costs nothing when no tracer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    stage: str
    seq: int
    pc: int
    text: str

    def render(self) -> str:
        return (f"cycle {self.cycle:6d} {self.stage:<8s} "
                f"seq={self.seq:04d} pc={self.pc:04d}  {self.text}")


class PipelineTracer:
    """Bounded in-memory event recorder for one core."""

    def __init__(self, limit: int = 100_000,
                 stages: Optional[List[str]] = None) -> None:
        self.limit = limit
        self.stages = set(stages) if stages else None
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, cycle: int, stage: str, seq: int, pc: int,
               text: str) -> None:
        if self.stages is not None and stage not in self.stages:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, stage, seq, pc, text))

    def render(self, last: Optional[int] = None) -> str:
        events = self.events if last is None else self.events[-last:]
        lines = [event.render() for event in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (limit "
                         f"{self.limit})")
        return "\n".join(lines)

    def of_stage(self, stage: str) -> List[TraceEvent]:
        return [event for event in self.events if event.stage == stage]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


def attach_tracer(core, limit: int = 100_000,
                  stages: Optional[List[str]] = None) -> PipelineTracer:
    """Create a tracer and attach it to an OutOfOrderCore."""
    tracer = PipelineTracer(limit=limit, stages=stages)
    core.tracer = tracer
    return tracer
