"""Cycle-level out-of-order core model.

Implements the Table II microarchitecture: parameterized fetch/decode/issue/
retire widths, a gshare+bimodal hybrid predictor with BTB and RAS, register
renaming bounded by the physical register files, separate int/FP issue
queues, a 64-entry ROB, load/store queues with store-to-load forwarding,
and in-order retirement.

Modelling choices (see DESIGN.md):

* Branches resolve at execute; a mispredict flushes younger instructions and
  redirects fetch the following cycle, so the penalty emerges from pipeline
  refill rather than a fixed constant.
* ``spl_*``, atomic, and fence instructions execute non-speculatively when
  they reach the ROB head, which keeps SPL queue state off the wrong path.
* Loads read functional memory at issue.  To keep multithreaded programs
  correct under this speculation, the core registers an invalidation
  listener with the coherent memory system: if another core invalidates a
  line that an in-flight issued load has read, the load and everything
  younger are squashed and refetched (snoop-triggered load replay, as in
  real TSO designs).
* Stores perform their functional write at retirement, in program order,
  draining through a store buffer whose timing comes from the cache
  hierarchy.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from operator import attrgetter
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.config import CoreConfig
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.cpu.branch import HybridPredictor
from repro.cpu.context import ThreadContext
from repro.cpu.exec import ALU_TABLE, branch_taken, fp
from repro.cpu.ports import SplPort
from repro.isa.instruction import (HOLD_FP_IQ, HOLD_INT_IQ, HOLD_LQ,
                                   HOLD_REN_FP, HOLD_REN_INT, HOLD_SQ,
                                   Instruction)
from repro.isa.opcodes import FuClass, Op
from repro.mem.hierarchy import CoherentMemorySystem
from repro.mem.memory import MainMemory
from repro.obs import events as ev
from repro.obs.bus import EventBus

DISP, ISSUED, DONE = 0, 1, 2

#: Cycles between fetch and earliest rename (decode depth).
FRONTEND_DELAY = 2

_BY_SEQ = attrgetter("seq")

_LOAD_OPS = {Op.LW: (4, True), Op.LB: (1, True), Op.LBU: (1, False),
             Op.LH: (2, True), Op.LHU: (2, False), Op.FLW: (4, True)}
_STORE_OPS = {Op.SW: 4, Op.SB: 1, Op.SH: 2, Op.FSW: 4}

#: Serialized ops at the ROB head whose wake-up is bounded by *another*
#: tickable's event rather than by this core: SPL_RECV/SPL_STORE wait on a
#: delivery from the cluster controller (which reports ``now + 1`` whenever
#: an output queue holds words), and FENCE waits on this core's own store
#: buffer, already covered by the ``pending_stores`` candidate.  Every other
#: serialized op (SPL_INIT, SPL_LOAD, AMO start, HALT, ...) must be retried
#: on the very next cycle — both to make progress and because retries bump
#: stall counters that a skip would miss.
_EXT_WAKE_OPS = frozenset((Op.SPL_RECV, Op.SPL_STORE, Op.FENCE))


class RobEntry:
    """One in-flight instruction."""

    __slots__ = ("seq", "inst", "pc", "pred_next", "state", "value",
                 "completion", "remaining", "consumers", "srcs", "addr",
                 "size", "store_value", "flushed", "started", "actual_next",
                 "held")

    def __init__(self, seq: int, inst: Instruction, pc: int,
                 pred_next: int) -> None:
        self.seq = seq
        self.inst = inst
        self.pc = pc
        self.pred_next = pred_next
        self.state = DISP
        self.value = 0
        self.completion = -1
        self.remaining = 0
        self.consumers: List[Tuple["RobEntry", int]] = []
        self.srcs = [0, 0]
        self.addr: Optional[int] = None
        self.size = 0
        self.store_value = 0
        self.flushed = False
        self.started = False
        self.actual_next = pc + 1
        #: HOLD_* bitmask of back-end resources this entry occupies
        #: (copied from the instruction's dispatch template at dispatch).
        self.held = 0


class OutOfOrderCore:
    """One out-of-order core attached to the coherent memory system."""

    #: Every counter this core's stats scope may touch (typo guard).
    STAT_KEYS = (
        "cycles", "fetched", "dispatched", "issued", "retired",
        "branches_resolved", "mispredicts", "flushes", "load_replays",
        "loads", "stores", "load_forwards", "atomics", "int_ops",
        "fp_ops", "rob_full_stalls", "iq_full_stalls", "lsq_full_stalls",
        "rename_stalls", "store_buffer_stalls", "icache_stall_cycles",
        "spl_loads", "spl_load_stalls", "spl_inits", "spl_init_stalls",
        "spl_recvs", "spl_recv_stalls", "spl_stores")

    def __init__(self, index: int, config: CoreConfig,
                 mem_system: CoherentMemorySystem, memory: MainMemory,
                 stats: Stats, obs: Optional[EventBus] = None) -> None:
        self.index = index
        self.config = config
        self.mem_system = mem_system
        self.memory = memory
        self.stats = stats
        stats.declare(*self.STAT_KEYS)
        self._c_cycles = stats.counter("cycles")
        # Bound view of the scope's counter dict for the per-instruction
        # hot counters: every key is declared (zero-initialized) above, so
        # ``self._cnt[key] += 1`` is exactly ``stats.bump(key)`` minus the
        # method call.  Cold/rare paths keep the checked ``bump``.
        self._cnt = stats.counters
        self.predictor = HybridPredictor(config.predictor,
                                         stats.child("predictor"))
        self.spl_port: Optional[SplPort] = None
        self.ctx: Optional[ThreadContext] = None
        self.halted = True
        self.stop_fetch = True
        self.stall_until = 0  # migration / startup stall
        # Fast-forward elision state (owned by Machine.run, see DESIGN.md):
        # while ``ff_skip_from >= 0`` the machine has stopped ticking this
        # core; it resumes at ``ff_wake`` (or earlier if ``ff_poke`` is set
        # by an external event: an SPL/comm delivery, a barrier release or
        # input-queue pop that re-classifies the wait, or a snoop
        # invalidation replay) and lazily replays the skipped window
        # through ``credit_fast_forward`` using the classification plan
        # snapshotted by ``ff_elide``.
        self.ff_wake = 0
        self.ff_skip_from = -1
        self.ff_poke = False
        self._ff_plan: Optional[Tuple] = None
        # Blockgen residency (owned by MultiBlockRunner): while True, a
        # compiled generator holds this core's scalar pipeline state in
        # locals, so a snoop invalidation must be deferred — recorded
        # here and replayed by the window walk after the generator has
        # written its state back.  The core's own state is frozen from
        # the snoop to the replay, so the deferred apply is bit-exact.
        self._bg_resident = False
        self._bg_pending_inval: List[int] = []
        self._rename_limit_int = config.int_regs - 32
        self._rename_limit_fp = config.fp_regs - 32
        # Structure limits copied off the config object: the dispatch /
        # retire / fetch loops read them every cycle and a slot attribute
        # is one lookup where ``self.config.x`` is two.
        self._rob_entries = config.rob_entries
        self._fp_queue = config.fp_queue
        self._int_queue = config.int_queue
        self._load_queue = config.load_queue
        self._store_queue = config.store_queue
        self._decode_width = config.decode_width
        self._retire_width = config.retire_width
        self._issue_width = config.issue_width
        self._fetch_width = config.fetch_width
        self._fetch_queue_cap = config.fetch_queue
        #: FuClass -> (pool name, per-cycle limit), built once; replaces
        #: the per-issue ``_fu_limit`` branch cascade.
        self._l1i_hit = config.l1i.hit_latency
        self._fu_pool: Dict[FuClass, Tuple[str, int]] = {}
        for fu in FuClass:
            if fu in (FuClass.INT, FuClass.MUL, FuClass.DIV):
                self._fu_pool[fu] = ("int", config.int_alus)
            elif fu is FuClass.FP:
                self._fu_pool[fu] = ("fp", config.fp_alus)
            elif fu is FuClass.BRANCH:
                self._fu_pool[fu] = ("branch", config.branch_units)
            else:
                self._fu_pool[fu] = ("mem", config.ldst_units)
        #: Observability bus; inert (``active`` False) unless the owning
        #: machine attaches a sink, in which case emissions light up.
        self.obs = obs if obs is not None else EventBus()
        self._src = f"cpu{index}"
        # Per-tick cache of ``obs.pipeline_active`` so the per-instruction
        # emission guards are a single attribute read.
        self._obs_pipe = False
        #: When set to a dict (``repro profile --hot``), retirement
        #: tallies per-PC counts into it — in both this interpreter and
        #: the blockgen fused loop.  None keeps the hot path untouched.
        self._retire_pcs: Optional[Dict[int, int]] = None
        # Run-length state for cycle-accounting spans (only advanced while
        # a sink is attached; survives migrations so spans stay honest).
        self._span_class: Optional[str] = None
        self._span_start = 0
        self._last_tick = -1
        self._reset_pipeline()
        mem_system.invalidation_listeners.append(self._on_invalidation)

    # ------------------------------------------------------------------ state

    def _reset_pipeline(self) -> None:
        # The ROB and fetch queue are deques: both retire (``popleft``)
        # from the front every cycle, which is O(n) on a list.
        self.rob: Deque[RobEntry] = deque()
        self.ready: List[Tuple[int, RobEntry]] = []
        self.fetch_queue: Deque[Tuple[Instruction, int, int, int]] = deque()
        self.completing: Dict[int, List[RobEntry]] = {}
        self.store_entries: List[RobEntry] = []
        self.blocked_loads: List[RobEntry] = []
        self.rat: Dict[int, RobEntry] = {}
        self.seq = 0
        self.fetch_pc = -1
        self.fetch_resume = 0
        self.last_fetch_line = -1
        self.int_iq_used = 0
        self.fp_iq_used = 0
        self.lq_used = 0
        self.sq_used = 0
        self.rename_int_used = 0
        self.rename_fp_used = 0
        self.sb_next_free = 0
        # Fetch-side view of the attached program (set by ``attach``):
        # dodges two attribute hops per fetch group.
        self._instructions: List[Instruction] = []
        self._program_end = 0
        # Store-buffer drain times, ordered: every push goes through
        # ``sb_next_free`` (monotonically non-decreasing, since
        # ``data_access(start) >= start``), so the front is always the
        # minimum and purging is a prefix pop instead of a list rebuild.
        self.pending_stores: Deque[int] = deque()
        self.last_retire_cycle = 0

    # -------------------------------------------------------------- scheduling

    def attach(self, ctx: ThreadContext, cycle: int, stall: int = 0) -> None:
        """Begin executing ``ctx`` on this core at ``cycle + stall``."""
        self._reset_pipeline()
        self.ctx = ctx
        self.halted = False
        self.stop_fetch = False
        self.stall_until = cycle + stall
        self.ff_wake = 0
        self.ff_skip_from = -1
        self.ff_poke = False
        self._ff_plan = None
        self.fetch_pc = ctx.pc
        self._instructions = ctx.program.instructions
        self._program_end = len(self._instructions)
        self.fetch_resume = cycle + stall
        self.last_retire_cycle = cycle
        if self.spl_port is not None:
            self.spl_port.on_context_change(ctx.thread_id, ctx.app_id)

    def detach(self) -> ThreadContext:
        """Remove the (drained) context from this core."""
        if not self.is_drained():
            raise SimulationError("detach before drain completed")
        ctx = self.ctx
        self.ctx = None
        self.halted = True
        self.stop_fetch = True
        if self.spl_port is not None:
            self.spl_port.on_context_change(None, 0)
        return ctx

    def begin_drain(self) -> None:
        self.stop_fetch = True
        self.fetch_queue.clear()

    def is_drained(self) -> bool:
        port_ok = self.spl_port is None or self.spl_port.can_switch_out()
        return not self.rob and not self.pending_stores and port_ok

    @property
    def active(self) -> bool:
        return self.ctx is not None and not self.halted

    def wait_state(self) -> str:
        """One-line description of what this core is blocked on.

        Composed into :exc:`~repro.common.errors.DeadlockError` wait-state
        reports by the machine watchdog; best-effort prose, not a stable
        format.
        """
        if self.ctx is None:
            return f"core{self.index}: idle (no context)"
        prefix = f"core{self.index} thread {self.ctx.thread_id}"
        if self.halted:
            return f"{prefix}: halted"
        if not self.rob:
            return f"{prefix}: fetching at pc={self.ctx.pc}"
        head = self.rob[0]
        what = f"{head.inst.info.name} at pc={head.pc}"
        if head.inst.info.serialize and head.state == DISP:
            port = self.spl_port
            if port is not None:
                detail = port.wait_detail()
                kind = port.stall_kind()
                where = f" ({detail})" if detail else ""
                return (f"{prefix}: blocked in {what} on "
                        f"{kind}{where}")
            return f"{prefix}: blocked in serialized {what}"
        if head.state == DONE:
            return f"{prefix}: retire-blocked behind {what}"
        return f"{prefix}: executing {what}"

    # ------------------------------------- snapshot contract (DESIGN.md §8)

    def _entry_universe(self) -> List[RobEntry]:
        """Every RobEntry reachable from the pipeline structures.

        Flushed entries leave the ROB but can remain referenced from an
        older producer's ``consumers`` list, so the universe is the
        transitive closure over consumer edges, keyed by ``seq`` (unique
        for the lifetime of an attach: flushes never reset ``self.seq``).
        """
        seen: Dict[int, RobEntry] = {}
        stack: List[RobEntry] = list(self.rob)
        for bucket in self.completing.values():
            stack.extend(bucket)
        stack.extend(self.store_entries)
        stack.extend(self.blocked_loads)
        stack.extend(entry for _seq, entry in self.ready)
        stack.extend(self.rat.values())
        while stack:
            entry = stack.pop()
            if entry.seq in seen:
                continue
            seen[entry.seq] = entry
            stack.extend(consumer for consumer, _slot in entry.consumers)
        return [seen[seq] for seq in sorted(seen)]

    def snapshot_state(self) -> dict:
        """Mutable pipeline state only; the instruction stream and wiring
        (ports, listeners, config) are reconstructed from the workload."""
        entries = self._entry_universe()
        return {
            "entries": [{
                "seq": e.seq, "pc": e.pc, "pred_next": e.pred_next,
                "state": e.state, "value": e.value,
                "completion": e.completion, "remaining": e.remaining,
                "consumers": [[c.seq, slot] for c, slot in e.consumers],
                "srcs": list(e.srcs), "addr": e.addr, "size": e.size,
                "store_value": e.store_value, "flushed": e.flushed,
                "started": e.started, "actual_next": e.actual_next,
                "held": e.held,
            } for e in entries],
            "rob": [e.seq for e in self.rob],
            # A seq-sorted list is a valid binary heap and heappop order
            # is identical, so the heap round-trips as sorted seqs.
            "ready": sorted(seq for seq, _e in self.ready),
            "fetch_queue": [[pc, pred_next, fetched]
                            for _inst, pc, pred_next, fetched
                            in self.fetch_queue],
            "completing": [[cycle, [e.seq for e in bucket]]
                           for cycle, bucket
                           in sorted(self.completing.items())],
            "store_entries": [e.seq for e in self.store_entries],
            "blocked_loads": [e.seq for e in self.blocked_loads],
            "rat": [[reg, e.seq] for reg, e in sorted(self.rat.items())],
            "predictor": self.predictor.snapshot_state(),
            "halted": self.halted,
            "stop_fetch": self.stop_fetch,
            "stall_until": self.stall_until,
            "seq": self.seq,
            "fetch_pc": self.fetch_pc,
            "fetch_resume": self.fetch_resume,
            "last_fetch_line": self.last_fetch_line,
            "int_iq_used": self.int_iq_used,
            "fp_iq_used": self.fp_iq_used,
            "lq_used": self.lq_used,
            "sq_used": self.sq_used,
            "rename_int_used": self.rename_int_used,
            "rename_fp_used": self.rename_fp_used,
            "sb_next_free": self.sb_next_free,
            "pending_stores": list(self.pending_stores),
            "last_retire_cycle": self.last_retire_cycle,
            "ff_wake": self.ff_wake,
            "ff_skip_from": self.ff_skip_from,
            "ff_poke": self.ff_poke,
            "ff_plan": list(self._ff_plan)
            if self._ff_plan is not None else None,
            "span_class": self._span_class,
            "span_start": self._span_start,
            "last_tick": self._last_tick,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the pipeline from ``state``.

        Precondition: ``self.ctx`` has already been re-pointed at the
        restored context by the machine (bypassing :meth:`attach`, which
        would reset the very state being restored).
        """
        # A detached core (post-migration) has no context but still holds
        # state worth restoring (predictor history, span bookkeeping); its
        # pipeline structures are empty, so no instruction lookups happen.
        insts = self.ctx.program.instructions if self.ctx is not None else []
        by_seq: Dict[int, RobEntry] = {}
        for rec in state["entries"]:
            entry = RobEntry(rec["seq"], insts[rec["pc"]], rec["pc"],
                             rec["pred_next"])
            entry.state = rec["state"]
            entry.value = rec["value"]
            entry.completion = rec["completion"]
            entry.remaining = rec["remaining"]
            entry.srcs = list(rec["srcs"])
            entry.addr = rec["addr"]
            entry.size = rec["size"]
            entry.store_value = rec["store_value"]
            entry.flushed = rec["flushed"]
            entry.started = rec["started"]
            entry.actual_next = rec["actual_next"]
            entry.held = rec["held"]
            by_seq[entry.seq] = entry
        for rec in state["entries"]:
            by_seq[rec["seq"]].consumers = [
                (by_seq[seq], slot) for seq, slot in rec["consumers"]]
        self.rob = deque(by_seq[seq] for seq in state["rob"])
        self.ready = [(seq, by_seq[seq]) for seq in state["ready"]]
        self.fetch_queue = deque(
            (insts[pc], pc, pred_next, fetched)
            for pc, pred_next, fetched in state["fetch_queue"])
        self.completing = {cycle: [by_seq[seq] for seq in seqs]
                           for cycle, seqs in state["completing"]}
        self.store_entries = [by_seq[seq]
                              for seq in state["store_entries"]]
        self.blocked_loads = [by_seq[seq] for seq in state["blocked_loads"]]
        self.rat = {reg: by_seq[seq] for reg, seq in state["rat"]}
        self.predictor.restore_state(state["predictor"])
        self.halted = state["halted"]
        self.stop_fetch = state["stop_fetch"]
        self.stall_until = state["stall_until"]
        self.seq = state["seq"]
        self.fetch_pc = state["fetch_pc"]
        self.fetch_resume = state["fetch_resume"]
        self.last_fetch_line = state["last_fetch_line"]
        self.int_iq_used = state["int_iq_used"]
        self.fp_iq_used = state["fp_iq_used"]
        self.lq_used = state["lq_used"]
        self.sq_used = state["sq_used"]
        self.rename_int_used = state["rename_int_used"]
        self.rename_fp_used = state["rename_fp_used"]
        self.sb_next_free = state["sb_next_free"]
        self.pending_stores = deque(state["pending_stores"])
        self.last_retire_cycle = state["last_retire_cycle"]
        self.ff_wake = state["ff_wake"]
        self.ff_skip_from = state["ff_skip_from"]
        self.ff_poke = state["ff_poke"]
        self._ff_plan = tuple(state["ff_plan"]) \
            if state["ff_plan"] is not None else None
        self._span_class = state["span_class"]
        self._span_start = state["span_start"]
        self._last_tick = state["last_tick"]
        self._instructions = insts
        self._program_end = len(insts)

    # ------------------------------------------------------------------- tick

    def tick(self, cycle: int) -> None:
        if self.ctx is None or self.halted or cycle < self.stall_until:
            return
        self._cnt["cycles"] += 1
        observed = self.obs.active
        if observed:
            self._obs_pipe = self.obs.pipeline_active
        elif self._obs_pipe:
            self._obs_pipe = False
        # Stage guards: each skipped call is provably a no-op (writeback
        # pops ``completing[cycle]``; retire only purges/pops when the ROB
        # or store buffer holds entries; issue drains ``ready``; dispatch
        # drains ``fetch_queue``; fetch repeats its own first-line test).
        if self.completing:
            self._writeback(cycle)
        if self.rob or self.pending_stores:
            self._retire(cycle)
        if self.ready:
            self._issue(cycle)
        if self.fetch_queue:
            self._dispatch(cycle)
        if not self.stop_fetch and cycle >= self.fetch_resume \
                and self.fetch_pc >= 0:
            self._fetch(cycle)
        if observed:
            self._observe_cycle(cycle)

    # ----------------------------------------------------------- fast-forward

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle > ``now`` at which ticking this core can change
        its state or its counters.

        Scheduler contract (see DESIGN.md): a return of ``now + 1`` means
        "cannot bound my wake-up / must tick next cycle"; ``None`` means
        the core is fully event-driven — only another tickable (SPL or
        comm controller delivery) can wake it.  Any larger value is a
        promise that every cycle in between is a no-op apart from the
        counters replayed by :meth:`credit_fast_forward`.
        """
        if now + 1 < self.stall_until:
            return self.stall_until  # migration / startup stall window
        if self.ready or self.blocked_loads:
            return now + 1
        candidates = []
        if self.completing:
            candidates.append(min(self.completing))
        if self.pending_stores:
            candidates.append(self.pending_stores[0])  # ordered, see above
        if self.rob:
            head = self.rob[0]
            info = head.inst.info
            if info.serialize:
                if head.state == DISP and head.remaining == 0:
                    if head.inst.op not in _EXT_WAKE_OPS:
                        return now + 1
                    if (head.inst.op is not Op.FENCE
                            and self.spl_port is not None
                            and self.spl_port.output_pending()):
                        return now + 1  # delivered words await this recv
                # in-flight AMO wakes via ``completing``; ext-wake ops
                # (SPL_RECV/SPL_STORE/FENCE) via controller/pending_stores
                # and the delivery poke (ff_poke)
            elif head.state == DONE:
                if not (info.is_store and
                        len(self.pending_stores) >= self.config.store_queue):
                    return now + 1  # head can retire
                # blocked store: wakes when min(pending_stores) drains
        if self.fetch_queue:
            if self._dispatch_stall_key() is None:
                t0 = self.fetch_queue[0][3] + FRONTEND_DELAY
                if t0 <= now:
                    return now + 1  # decode-eligible and unblocked
                candidates.append(t0)
            # resource-blocked: the freeing event is one of the candidates
            # above (or an external delivery), and the per-cycle stall
            # counter is replayed by credit_fast_forward.
        if (not self.stop_fetch and 0 <= self.fetch_pc < len(self.ctx.program)
                and len(self.fetch_queue) < self.config.fetch_queue):
            if self.fetch_resume <= now:
                return now + 1  # fetch would make progress
            candidates.append(self.fetch_resume)
        if not candidates:
            return None
        return min(candidates)

    def _dispatch_stall_key(self) -> Optional[str]:
        """The counter ``_dispatch`` charges for its head-of-queue stall in
        the current state, or None when the head can dispatch.  Mirrors the
        resource cascade in :meth:`_dispatch` exactly, in the same order.
        """
        inst = self.fetch_queue[0][0]
        if len(self.rob) >= self._rob_entries:
            return "rob_full_stalls"
        if inst.needs_fp_iq and self.fp_iq_used >= self._fp_queue:
            return "iq_full_stalls"
        if inst.needs_int_iq and self.int_iq_used >= self._int_queue:
            return "iq_full_stalls"
        if inst.uses_lq and self.lq_used >= self._load_queue:
            return "lsq_full_stalls"
        if inst.uses_sq and self.sq_used >= self._store_queue:
            return "lsq_full_stalls"
        if inst._dest is not None:
            if inst.dest_fp:
                if self.rename_fp_used >= self._rename_limit_fp:
                    return "rename_stalls"
            elif self.rename_int_used >= self._rename_limit_int:
                return "rename_stalls"
        return None

    def ff_elide(self, start: int, wake: int) -> None:
        """Stop-ticking handshake from the fast-forward scheduler.

        Marks the core elided from cycle ``start`` until ``wake`` (or an
        event poke) and snapshots the per-cycle counter/classification
        plan while the pipeline state is still provably frozen: each
        skipped tick adds one to ``cycles``, the stall counter named by
        the ROB head or dispatch cascade, and one accounting class.
        ``credit_fast_forward`` replays from this snapshot, never from
        live state: an external event (an invalidation replay, a barrier
        release) may mutate the pipeline or its wait classification after
        elision, but its poke ends the window on exactly the cycle live
        state starts to differ, so the naive loop counted every credited
        cycle against the frozen pre-event state.
        """
        recv_key = None
        cls_head = None
        if self.rob:
            head = self.rob[0]
            info = head.inst.info
            if info.serialize:
                if head.state == DISP and head.remaining == 0:
                    op = head.inst.op
                    # _exec_serialize bumps spl_recv_stalls on every failed
                    # retry of SPL_RECV, and of SPL_STORE once the store
                    # queue has space (queue-full retries bump nothing).
                    if op is Op.SPL_RECV or (
                            op is Op.SPL_STORE and len(self.pending_stores)
                            < self.config.store_queue):
                        recv_key = "spl_recv_stalls"
            elif head.state == DONE and info.is_store and \
                    len(self.pending_stores) >= self.config.store_queue:
                recv_key = "store_buffer_stalls"
            cls_head = self._classify_cycle(start)
        t0 = None
        dkey = None
        if self.fetch_queue:
            t0 = self.fetch_queue[0][3] + FRONTEND_DELAY
            dkey = self._dispatch_stall_key()
        self._ff_plan = (recv_key, t0, dkey, cls_head, self.fetch_resume)
        self.ff_skip_from = start
        self.ff_wake = wake

    def credit_fast_forward(self, start: int, end: int) -> None:
        """Replay the counter effects of ticking every cycle in
        ``[start, end]`` while quiescent, per the ``ff_elide`` snapshot.

        With an empty ROB the accounting class flips from mem (icache
        refill) to compute the cycle ``fetch_resume`` lands; every other
        classification input is covered by one class for the window (see
        ``ff_elide`` for why the snapshot stays valid to ``end``).
        """
        recv_key, t0, dkey, cls_head, fetch_resume = self._ff_plan
        if start < self.stall_until:
            start = self.stall_until  # stalled ticks return before counting
        if start > end:
            return
        n = end - start + 1
        self._c_cycles.add(n)
        if recv_key is not None:
            self.stats.bump(recv_key, n)
        if dkey is not None and t0 <= end:
            self.stats.bump(dkey, end - max(start, t0) + 1)
        if self.obs.active:
            if cls_head is None and start < fetch_resume <= end:
                self._credit_span(ev.CLS_MEM, start, fetch_resume - 1)
                self._credit_span(ev.CLS_COMPUTE, fetch_resume, end)
            else:
                cls = cls_head
                if cls is None:
                    cls = ev.CLS_MEM if fetch_resume > start \
                        else ev.CLS_COMPUTE
                self._credit_span(cls, start, end)

    def _credit_span(self, cls: str, start: int, end: int) -> None:
        if cls != self._span_class or start != self._last_tick + 1:
            self._close_span()
            self._span_class = cls
            self._span_start = start
        self._last_tick = end

    # ------------------------------------------------------- observability

    def _observe_cycle(self, cycle: int) -> None:
        """Extend or start the run-length cycle-classification span."""
        cls = self._classify_cycle(cycle)
        if cls != self._span_class or cycle != self._last_tick + 1:
            self._close_span()
            self._span_class = cls
            self._span_start = cycle
        self._last_tick = cycle

    def _close_span(self) -> None:
        if self._span_class is not None:
            self.obs.emit(self._span_start, self._src, ev.CYCLE_SPAN,
                          cls=self._span_class,
                          dur=self._last_tick - self._span_start + 1)
            self._span_class = None

    def flush_observation(self) -> None:
        """Emit the open span (end of run / before detaching sinks)."""
        if self.obs.active:
            self._close_span()

    def _classify_cycle(self, cycle: int) -> str:
        """Attribute this ticked cycle to one accounting class.

        The head of the ROB (the oldest instruction) determines what the
        core is waiting for — the standard top-down attribution: a cycle
        that retires work is compute; otherwise the oldest unfinished
        instruction names the bottleneck.
        """
        if self.last_retire_cycle == cycle:
            return ev.CLS_COMPUTE
        if not self.rob:
            # Empty window: front-end refill. An icache miss parks
            # fetch_resume in the future; otherwise it is decode/refill
            # latency, charged to compute.
            if self.fetch_resume > cycle:
                return ev.CLS_MEM
            return ev.CLS_COMPUTE
        head = self.rob[0]
        info = head.inst.info
        if info.serialize:
            op = head.inst.op
            if op in (Op.SPL_RECV, Op.SPL_STORE, Op.SPL_INIT):
                port = self.spl_port
                if port is not None and port.stall_kind() == "barrier":
                    return ev.CLS_BARRIER
                return ev.CLS_SPL_QUEUE
            if op in (Op.SPL_LOAD, Op.SPL_LOADM, Op.SPL_LOADV):
                return ev.CLS_SPL_QUEUE
            if op in (Op.AMO_ADD, Op.AMO_SWAP, Op.FENCE):
                return ev.CLS_MEM
            return ev.CLS_COMPUTE
        if head.state == DONE:
            return ev.CLS_MEM  # retirement blocked on the store buffer
        if head.state == ISSUED and (info.is_load or info.is_store):
            return ev.CLS_MEM
        return ev.CLS_COMPUTE

    # -------------------------------------------------------------- writeback

    def _writeback(self, cycle: int) -> None:
        entries = self.completing.pop(cycle, None)
        if not entries:
            return
        entries.sort(key=_BY_SEQ)
        obs_pipe = self._obs_pipe
        ready = self.ready
        for entry in entries:
            if entry.flushed or entry.state == DONE:
                continue
            # _complete(entry, cycle), inlined into the per-cycle bucket
            # walk (hot: once per completing instruction).
            entry.state = DONE
            if obs_pipe:
                self.obs.emit(cycle, self._src, ev.COMPLETE, seq=entry.seq,
                              pc=entry.pc, text=repr(entry.inst))
            for consumer, slot in entry.consumers:
                if consumer.flushed:
                    continue
                consumer.srcs[slot] = entry.value
                consumer.remaining -= 1
                if consumer.remaining == 0 and consumer.state == DISP and \
                        not consumer.inst.info.serialize:
                    heappush(ready, (consumer.seq, consumer))
            entry.consumers = []
            if entry.inst.info.is_branch:
                self._resolve_branch(entry, cycle)

    def _resolve_branch(self, entry: RobEntry, cycle: int) -> None:
        op = entry.inst.op
        if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
            self.predictor.update_direction(entry.pc,
                                            entry.actual_next == entry.inst.target)
        elif op is Op.JR:
            self.predictor.btb_update(entry.pc, entry.actual_next)
        self._cnt["branches_resolved"] += 1
        if entry.actual_next != entry.pred_next:
            self.stats.bump("mispredicts")
            self._flush_after(entry, cycle, entry.actual_next)

    # ----------------------------------------------------------------- flush

    def _flush_after(self, entry: RobEntry, cycle: int, new_pc: int) -> None:
        """Flush everything younger than ``entry`` and redirect fetch."""
        self._flush_from_seq(entry.seq + 1, cycle, new_pc)

    def _flush_from_seq(self, first_seq: int, cycle: int, new_pc: int) -> None:
        self.stats.bump("flushes")
        if self._obs_pipe:
            self.obs.emit(cycle, self._src, ev.FLUSH, seq=first_seq,
                          pc=new_pc, text=f"redirect -> {new_pc}")
        keep: List[RobEntry] = []
        for candidate in self.rob:
            if candidate.seq >= first_seq:
                candidate.flushed = True
                self._release(candidate)
            else:
                keep.append(candidate)
        self.rob = deque(keep)
        self.store_entries = [s for s in self.store_entries if not s.flushed]
        self.blocked_loads = [b for b in self.blocked_loads if not b.flushed]
        self._unblock_loads()
        self.rat = {}
        for candidate in self.rob:
            dest = candidate.inst.dest()
            if dest is not None:
                self.rat[dest] = candidate
        self.fetch_queue.clear()
        if not self.stop_fetch:
            self.fetch_pc = new_pc
            self.fetch_resume = cycle + 1
            self.last_fetch_line = -1
        self.predictor.flush_speculative_state()

    def _release(self, entry: RobEntry) -> None:
        held = entry.held
        if held:
            if held & HOLD_INT_IQ:
                self.int_iq_used -= 1
            elif held & HOLD_FP_IQ:
                self.fp_iq_used -= 1
            if held & HOLD_LQ:
                self.lq_used -= 1
            if held & HOLD_SQ:
                self.sq_used -= 1
            if held & HOLD_REN_INT:
                self.rename_int_used -= 1
            elif held & HOLD_REN_FP:
                self.rename_fp_used -= 1
            entry.held = 0

    def _on_invalidation(self, target_core: int, line: int) -> None:
        """Snoop-invalidation hook: replay in-flight loads of that line."""
        if target_core != self.index or not self.rob:
            return
        if self._bg_resident:
            # A compiled generator holds this core's scalar state in
            # locals (``rob`` contents are shared in place, so the empty
            # check above is sound).  Record the line and poke; the
            # multi-core window walk syncs the generator and replays the
            # invalidation before this core's next cycle slot — at which
            # point the state it sees is identical to what the in-order
            # interpreter walk would have shown, because the core does
            # not run between the snoop and its slot.
            self.ff_poke = True
            self._bg_pending_inval.append(line)
            return
        for entry in self.rob:
            # Serialized ops (atomics) execute non-speculatively at the ROB
            # head with side effects; they are never replayed.
            if (entry.inst.info.is_load and not entry.inst.info.serialize
                    and entry.state != DISP
                    and not entry.flushed and entry.addr is not None
                    and (entry.addr >> 5) == line):
                self.stats.bump("load_replays")
                # Squash the load and everything younger; refetch the load.
                # The replay mutates pipeline state from outside tick(), so
                # wake the core if the fast-forward scheduler elided it.
                self.ff_poke = True
                self._flush_from_seq(entry.seq, self.last_retire_cycle + 1,
                                     entry.pc)
                return

    # ----------------------------------------------------------------- retire

    def _retire(self, cycle: int) -> None:
        pending = self.pending_stores
        while pending and pending[0] <= cycle:
            pending.popleft()
        retired = 0
        rob = self.rob
        ctx = self.ctx
        rat = self.rat
        obs_pipe = self._obs_pipe
        retire_width = self._retire_width
        retire_pcs = self._retire_pcs
        last_next = 0
        while rob and retired < retire_width:
            head = rob[0]
            inst = head.inst
            info = inst.info
            if head.state != DONE:
                if (info.serialize and head.remaining == 0
                        and head.state == DISP):
                    if not self._exec_serialize(head, cycle):
                        break
                    if head.state != DONE:
                        break  # multi-cycle serialize op in flight
                else:
                    break
            if info.is_store and not info.serialize:
                if not self._retire_store(head, cycle):
                    self.stats.bump("store_buffer_stalls")
                    break
            dest = inst._dest
            if dest is not None:
                ctx.write(dest, head.value)
                if rat.get(dest) is head:
                    del rat[dest]
            rob.popleft()
            if obs_pipe:
                self.obs.emit(cycle, self._src, ev.RETIRE, seq=head.seq,
                              pc=head.pc, text=repr(inst))
            if info.is_store:
                if head in self.store_entries:
                    self.store_entries.remove(head)
                self._unblock_loads()
            # _release(head), inlined: this runs once per retired
            # instruction and the method call dominated its body.
            held = head.held
            if held:
                if held & HOLD_INT_IQ:
                    self.int_iq_used -= 1
                elif held & HOLD_FP_IQ:
                    self.fp_iq_used -= 1
                if held & HOLD_LQ:
                    self.lq_used -= 1
                if held & HOLD_SQ:
                    self.sq_used -= 1
                if held & HOLD_REN_INT:
                    self.rename_int_used -= 1
                elif held & HOLD_REN_FP:
                    self.rename_fp_used -= 1
                head.held = 0
            if retire_pcs is not None:
                retire_pcs[head.pc] = retire_pcs.get(head.pc, 0) + 1
            last_next = head.actual_next
            retired += 1
            if inst.op is Op.HALT:
                self.halted = True
                ctx.finished = True
                self.stop_fetch = True
                break
        if retired:
            # Architectural PC / progress bookkeeping only needs the final
            # values; nothing inside the loop reads them through ``self``
            # or ``ctx`` (``_classify_cycle`` runs after the stages).
            ctx.pc = last_next
            ctx.retired_instructions += retired
            self.last_retire_cycle = cycle
            self._cnt["retired"] += retired

    def _purge_store_buffer(self, cycle: int) -> None:
        # ``pending_stores`` is ordered (see _reset_pipeline): drained
        # entries form a prefix, so purging never rebuilds the container.
        pending = self.pending_stores
        while pending and pending[0] <= cycle:
            pending.popleft()

    def _retire_store(self, entry: RobEntry, cycle: int) -> bool:
        if len(self.pending_stores) >= self._store_queue:
            return False
        self._write_memory(entry.addr, entry.store_value, entry.inst.op)
        start = max(self.sb_next_free, cycle)
        done = self.mem_system.data_access(self.index, entry.addr, True, start)
        self.sb_next_free = done
        self.pending_stores.append(done)
        self._cnt["stores"] += 1
        return True

    def _write_memory(self, addr: int, value, op: Op) -> None:
        if op in (Op.SW, Op.AMO_ADD, Op.AMO_SWAP):
            self.memory.write_word(addr, value & 0xFFFFFFFF)
        elif op is Op.SB:
            self.memory.write_byte(addr, value & 0xFF)
        elif op is Op.SH:
            self.memory.write_half(addr, value & 0xFFFF)
        elif op is Op.FSW:
            self.memory.write_float(addr, value)
        else:  # pragma: no cover
            raise SimulationError(f"not a store op: {op}")

    # ------------------------------------------------------- serialized ops

    def _exec_serialize(self, entry: RobEntry, cycle: int) -> bool:
        """Execute a non-speculative op at the ROB head.

        Returns False when the op must retry next cycle.  On success the
        entry either becomes DONE immediately or is scheduled into the
        writeback queue (multi-cycle ops).
        """
        op = entry.inst.op
        if op is Op.HALT:
            self._finish_serialize(entry, cycle)
            return True
        if op is Op.FENCE:
            self._purge_store_buffer(cycle)
            if self.pending_stores:
                return False
            self._finish_serialize(entry, cycle)
            return True
        if op in (Op.AMO_ADD, Op.AMO_SWAP):
            if not entry.started:
                entry.started = True
                addr = entry.srcs[0]
                old = self.memory.read_word_signed(addr)
                operand = entry.srcs[1]
                new = old + operand if op is Op.AMO_ADD else operand
                self.memory.write_word(addr, new & 0xFFFFFFFF)
                entry.value = old
                entry.addr = addr
                done = self.mem_system.data_access(self.index, addr, True,
                                                   cycle)
                entry.state = ISSUED
                entry.completion = done
                self.completing.setdefault(done, []).append(entry)
                self.stats.bump("atomics")
            return False  # completes through the writeback path
        port = self.spl_port
        if port is None:
            raise SimulationError(
                f"core {self.index} has no SPL/communication unit but "
                f"executed {op.value}")
        if op is Op.SPL_LOAD:
            if port.stage_load(entry.srcs[0], entry.inst.imm, cycle):
                self.stats.bump("spl_loads")
                self._finish_serialize(entry, cycle)
                return True
            self.stats.bump("spl_load_stalls")
            return False
        if op in (Op.SPL_LOADM, Op.SPL_LOADV):
            addr = entry.srcs[0] + entry.inst.imm
            words = 4 if op is Op.SPL_LOADV else 1
            ready = self.mem_system.data_access(self.index, addr, False,
                                                cycle)
            if words == 4 and (addr & 31) > 16:
                # The 16-byte beat straddles a cache line: second access.
                ready = max(ready, self.mem_system.data_access(
                    self.index, addr + 12, False, cycle))
            # inst.target carries the staging byte offset (imm is the
            # address offset) — see the assembler's spl_loadm signature.
            offset = entry.inst.target
            for i in range(words):
                value = self.memory.read_word_signed(addr + 4 * i)
                if not port.stage_load(value, offset + 4 * i, cycle,
                                       ready=ready):
                    self.stats.bump("spl_load_stalls")
                    return False
            self.stats.bump("spl_loads")
            self._finish_serialize(entry, cycle)
            return True
        if op is Op.SPL_INIT:
            if port.init(entry.inst.imm, cycle):
                self.stats.bump("spl_inits")
                self._finish_serialize(entry, cycle)
                return True
            self.stats.bump("spl_init_stalls")
            return False
        if op is Op.SPL_RECV:
            value = port.recv(cycle)
            if value is None:
                self.stats.bump("spl_recv_stalls")
                return False
            entry.value = value
            self.stats.bump("spl_recvs")
            self._finish_serialize(entry, cycle)
            return True
        if op is Op.SPL_STORE:
            if len(self.pending_stores) >= self.config.store_queue:
                return False
            value = port.recv(cycle)
            if value is None:
                self.stats.bump("spl_recv_stalls")
                return False
            addr = entry.srcs[0] + entry.inst.imm
            self.memory.write_word(addr, value & 0xFFFFFFFF)
            start = max(self.sb_next_free, cycle)
            done = self.mem_system.data_access(self.index, addr, True, start)
            self.sb_next_free = done
            self.pending_stores.append(done)
            self.stats.bump("spl_stores")
            self._finish_serialize(entry, cycle)
            return True
        raise SimulationError(f"unhandled serialized op {op}")

    def _finish_serialize(self, entry: RobEntry, cycle: int) -> None:
        entry.state = DONE
        for consumer, slot in entry.consumers:
            if consumer.flushed:
                continue
            consumer.srcs[slot] = entry.value
            consumer.remaining -= 1
            if consumer.remaining == 0 and consumer.state == DISP and \
                    not consumer.inst.info.serialize:
                heappush(self.ready, (consumer.seq, consumer))
        entry.consumers = []

    # ------------------------------------------------------------------ issue

    def _fu_limit(self, fu: FuClass) -> Tuple[str, int]:
        return self._fu_pool[fu]

    def _issue(self, cycle: int) -> None:
        budget = self._issue_width
        fu_used: Dict[str, int] = {}
        put_back: List[RobEntry] = []
        ready = self.ready
        fu_pool = self._fu_pool
        cnt = self._cnt
        obs_pipe = self._obs_pipe
        issued = 0
        # Queue-occupancy deltas accumulate in locals (written back once
        # below); nothing called inside the loop reads the counters.
        int_iq_freed = 0
        fp_iq_freed = 0
        while budget > 0 and ready:
            _, entry = heappop(ready)
            if entry.flushed or entry.state != DISP:
                continue
            info = entry.inst.info
            pool, limit = fu_pool[info.fu]
            if fu_used.get(pool, 0) >= limit:
                put_back.append(entry)
                continue
            if info.is_load:
                verdict = self._try_issue_load(entry, cycle)
                if verdict == "blocked":
                    self.blocked_loads.append(entry)
                    continue
            else:
                self._execute(entry, cycle)
            fu_used[pool] = fu_used.get(pool, 0) + 1
            budget -= 1
            if obs_pipe:
                self.obs.emit(cycle, self._src, ev.ISSUE, seq=entry.seq,
                              pc=entry.pc, text=repr(entry.inst))
            held = entry.held
            if held & HOLD_INT_IQ:
                int_iq_freed += 1
                entry.held = held & ~HOLD_INT_IQ
            elif held & HOLD_FP_IQ:
                fp_iq_freed += 1
                entry.held = held & ~HOLD_FP_IQ
            issued += 1
        if issued:
            cnt["issued"] += issued
            self.int_iq_used -= int_iq_freed
            self.fp_iq_used -= fp_iq_freed
        for entry in put_back:
            heappush(ready, (entry.seq, entry))

    def _try_issue_load(self, entry: RobEntry, cycle: int) -> str:
        addr = entry.srcs[0] + entry.inst.imm
        size, _ = _LOAD_OPS[entry.inst.op]
        forward = None
        for store in reversed(self.store_entries):
            if store.seq > entry.seq or store.flushed:
                continue
            if store.addr is None:
                return "blocked"
            if store.addr == addr and store.size == size:
                forward = store
                break
            if (store.addr < addr + size and addr < store.addr + store.size):
                return "blocked"  # partial overlap: wait for the store
        entry.addr = addr
        entry.size = size
        entry.state = ISSUED
        if forward is not None:
            entry.value = self._convert_load(entry.inst.op,
                                             forward.store_value, addr,
                                             forwarded=True)
            done = cycle + self.config.l1d.hit_latency
            self.stats.bump("load_forwards")
        else:
            entry.value = self._read_memory(entry.inst.op, addr)
            done = self.mem_system.data_access(self.index, addr, False, cycle)
        entry.completion = done
        completing = self.completing
        bucket = completing.get(done)
        if bucket is None:
            completing[done] = [entry]
        else:
            bucket.append(entry)
        self._cnt["loads"] += 1
        return "issued"

    def _read_memory(self, op: Op, addr: int):
        if op is Op.LW:
            return self.memory.read_word_signed(addr)
        if op is Op.LB:
            value = self.memory.read_byte(addr)
            return value - 256 if value >= 128 else value
        if op is Op.LBU:
            return self.memory.read_byte(addr)
        if op is Op.LH:
            value = self.memory.read_half(addr)
            return value - 65536 if value >= 32768 else value
        if op is Op.LHU:
            return self.memory.read_half(addr)
        if op is Op.FLW:
            return self.memory.read_float(addr)
        raise SimulationError(f"not a load op: {op}")  # pragma: no cover

    @staticmethod
    def _convert_load(op: Op, raw, addr: int, forwarded: bool):
        """Interpret a forwarded store value through the load's width."""
        if op in (Op.LW, Op.FLW):
            return raw
        if op is Op.LBU:
            return raw & 0xFF
        if op is Op.LB:
            value = raw & 0xFF
            return value - 256 if value >= 128 else value
        if op is Op.LHU:
            return raw & 0xFFFF
        value = raw & 0xFFFF
        return value - 65536 if value >= 32768 else value

    def _execute(self, entry: RobEntry, cycle: int) -> None:
        inst = entry.inst
        op = inst.op
        info = inst.info
        entry.state = ISSUED
        if info.is_store:
            entry.addr = entry.srcs[0] + inst.imm
            entry.size = _STORE_OPS[op]
            entry.store_value = entry.srcs[1]
            done = cycle + 1
            self._unblock_loads()
        elif info.is_branch:
            entry.actual_next = self._branch_target(entry)
            done = cycle + 1
            if op is Op.JAL:
                entry.value = entry.pc + 1
        elif info.fu is FuClass.FP:
            entry.value = fp(op, entry.srcs[0], entry.srcs[1])
            done = cycle + info.latency
            self._cnt["fp_ops"] += 1
        else:
            fn = ALU_TABLE.get(op)
            if fn is None:
                raise SimulationError(f"alu cannot evaluate {op}")
            entry.value = fn(entry.srcs[0], entry.srcs[1], inst.imm)
            done = cycle + info.latency
            self._cnt["int_ops"] += 1
        entry.completion = done
        completing = self.completing
        bucket = completing.get(done)
        if bucket is None:
            completing[done] = [entry]
        else:
            bucket.append(entry)

    def _branch_target(self, entry: RobEntry) -> int:
        op = entry.inst.op
        if op in (Op.J, Op.JAL):
            return entry.inst.target
        if op is Op.JR:
            return entry.srcs[0]
        taken = branch_taken(op, entry.srcs[0], entry.srcs[1])
        return entry.inst.target if taken else entry.pc + 1

    def _unblock_loads(self) -> None:
        if self.blocked_loads:
            for load in self.blocked_loads:
                if not load.flushed:
                    heappush(self.ready, (load.seq, load))
            self.blocked_loads.clear()

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, cycle: int) -> None:
        # The resource cascade below reads the per-instruction dispatch
        # template resolved at Instruction construction; any change here
        # must be mirrored in _dispatch_stall_key (the fast-forward
        # scheduler's snapshot depends on the two agreeing exactly).
        dispatched = 0
        fetch_queue = self.fetch_queue
        rob = self.rob
        rat = self.rat
        obs_pipe = self._obs_pipe
        decode_width = self._decode_width
        rob_entries = self._rob_entries
        ready = self.ready
        store_entries = self.store_entries
        ctx_read = self.ctx.read
        # The occupancy counters and ``seq`` live in locals for the loop
        # and are written back once below; nothing called inside the loop
        # reads them through ``self`` (obs sinks only record events).
        seq = self.seq
        fp_iq_used = self.fp_iq_used
        int_iq_used = self.int_iq_used
        lq_used = self.lq_used
        sq_used = self.sq_used
        rename_fp_used = self.rename_fp_used
        rename_int_used = self.rename_int_used
        fp_queue = self._fp_queue
        int_queue = self._int_queue
        load_queue = self._load_queue
        store_queue = self._store_queue
        rename_limit_fp = self._rename_limit_fp
        rename_limit_int = self._rename_limit_int
        while fetch_queue and dispatched < decode_width:
            inst, pc, pred_next, fetched = fetch_queue[0]
            if cycle < fetched + FRONTEND_DELAY:
                break
            if len(rob) >= rob_entries:
                self.stats.bump("rob_full_stalls")
                break
            needs_fp_iq = inst.needs_fp_iq
            needs_int_iq = inst.needs_int_iq
            if needs_fp_iq and fp_iq_used >= fp_queue:
                self.stats.bump("iq_full_stalls")
                break
            if needs_int_iq and int_iq_used >= int_queue:
                self.stats.bump("iq_full_stalls")
                break
            if inst.uses_lq and lq_used >= load_queue:
                self.stats.bump("lsq_full_stalls")
                break
            if inst.uses_sq and sq_used >= store_queue:
                self.stats.bump("lsq_full_stalls")
                break
            dest = inst._dest
            dest_fp = inst.dest_fp
            if dest is not None:
                if dest_fp and rename_fp_used >= rename_limit_fp:
                    self.stats.bump("rename_stalls")
                    break
                if not dest_fp and rename_int_used >= rename_limit_int:
                    self.stats.bump("rename_stalls")
                    break
            fetch_queue.popleft()
            entry = RobEntry(seq, inst, pc, pred_next)
            seq += 1
            # Source renaming, unrolled over the two slots (hot: once per
            # dispatched instruction).
            srcs = entry.srcs
            reg = inst.rs1
            if reg is None or reg == 0:
                srcs[0] = 0
            else:
                producer = rat.get(reg)
                if producer is None:
                    srcs[0] = ctx_read(reg)
                elif producer.state == DONE:
                    srcs[0] = producer.value
                else:
                    producer.consumers.append((entry, 0))
                    entry.remaining += 1
                    srcs[0] = None
            reg = inst.rs2
            if reg is None or reg == 0:
                srcs[1] = 0
            else:
                producer = rat.get(reg)
                if producer is None:
                    srcs[1] = ctx_read(reg)
                elif producer.state == DONE:
                    srcs[1] = producer.value
                else:
                    producer.consumers.append((entry, 1))
                    entry.remaining += 1
                    srcs[1] = None
            entry.held = inst.held_mask
            if needs_fp_iq:
                fp_iq_used += 1
            if needs_int_iq:
                int_iq_used += 1
            if inst.uses_lq:
                lq_used += 1
            if inst.uses_sq:
                sq_used += 1
                store_entries.append(entry)
            if dest is not None:
                if dest_fp:
                    rename_fp_used += 1
                else:
                    rename_int_used += 1
                rat[dest] = entry
            rob.append(entry)
            if obs_pipe:
                self.obs.emit(cycle, self._src, ev.DISPATCH, seq=entry.seq,
                              pc=entry.pc, text=repr(inst))
            # Serialized ops set neither queue flag, so (needs_fp_iq or
            # needs_int_iq) is exactly ``not info.serialize``.
            if entry.remaining == 0 and (needs_fp_iq or needs_int_iq):
                heappush(ready, (entry.seq, entry))
            dispatched += 1
        if dispatched:
            self._cnt["dispatched"] += dispatched
            self.seq = seq
            self.fp_iq_used = fp_iq_used
            self.int_iq_used = int_iq_used
            self.lq_used = lq_used
            self.sq_used = sq_used
            self.rename_fp_used = rename_fp_used
            self.rename_int_used = rename_int_used

    # ------------------------------------------------------------------ fetch

    def _fetch(self, cycle: int) -> None:
        if self.stop_fetch or cycle < self.fetch_resume or self.fetch_pc < 0:
            return
        instructions = self._instructions
        end = self._program_end
        fetch_queue = self.fetch_queue
        cnt = self._cnt
        obs_pipe = self._obs_pipe
        fetch_width = self._fetch_width
        queue_cap = self._fetch_queue_cap
        fetched = 0
        # ``fetch_pc``/``last_fetch_line`` track in locals for the loop
        # and are written back once below; nothing called inside the loop
        # reads them through ``self``.
        fetch_pc = self.fetch_pc
        last_line = self.last_fetch_line
        while fetched < fetch_width and len(fetch_queue) < queue_cap:
            pc = fetch_pc
            if pc < 0 or pc >= end:
                break  # wrong-path or past-end: wait for redirect
            line = pc >> 3  # 32 B line / 4 B per instruction
            if line != last_line:
                done = self.mem_system.inst_fetch(self.index, pc, cycle)
                last_line = line
                if done > cycle + self._l1i_hit:
                    self.fetch_resume = done
                    self.stats.bump("icache_stall_cycles", done - cycle)
                    break
            inst = instructions[pc]
            # Only branch-class ops consult the predictor/RAS/BTB; the
            # straight-line fast path is a plain increment.
            pred_next = self._predict_next(inst, pc) \
                if inst.info.is_branch else pc + 1
            fetch_queue.append((inst, pc, pred_next, cycle))
            if obs_pipe:
                self.obs.emit(cycle, self._src, ev.FETCH, seq=self.seq,
                              pc=pc, text=repr(inst))
            fetched += 1
            if inst.op is Op.HALT:
                fetch_pc = -1
                break
            fetch_pc = pred_next
            if pred_next != pc + 1:
                break  # taken-predicted branch ends the fetch group
        if fetched:
            cnt["fetched"] += fetched
        self.fetch_pc = fetch_pc
        self.last_fetch_line = last_line

    def _predict_next(self, inst: Instruction, pc: int) -> int:
        op = inst.op
        if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
            if self.predictor.predict_direction(pc):
                return inst.target
            return pc + 1
        if op is Op.J:
            return inst.target
        if op is Op.JAL:
            self.predictor.ras_push(pc + 1)
            return inst.target
        if op is Op.JR:
            target = self.predictor.ras_pop()
            if target is None:
                target = self.predictor.btb_lookup(pc)
            if target is None:
                return -1  # stall fetch until the JR resolves
            return target
        return pc + 1
