"""Architectural thread context.

Holds everything that migrates with a thread between cores: program,
program counter, architectural register files, and identifiers used by the
SPL tables (thread id, application id).
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import FP_BASE, N_FP_REGS, N_INT_REGS, reg_index
from repro.isa.program import Program, ThreadSpec


class ThreadContext:
    """One software thread's architectural state."""

    __slots__ = ("program", "pc", "int_regs", "fp_regs", "thread_id",
                 "app_id", "finished", "retired_instructions")

    def __init__(self, spec: ThreadSpec) -> None:
        self.program: Program = spec.program
        self.pc = 0
        self.int_regs = [0] * N_INT_REGS
        self.fp_regs = [0.0] * N_FP_REGS
        self.thread_id = spec.thread_id
        self.app_id = spec.app_id
        self.finished = False
        self.retired_instructions = 0
        for name, value in spec.int_regs.items():
            index = reg_index(name)
            if index >= FP_BASE:
                raise ValueError(f"{name} is not an integer register")
            self.int_regs[index] = value
        for name, value in spec.fp_regs.items():
            index = reg_index(name)
            if index < FP_BASE:
                raise ValueError(f"{name} is not a floating-point register")
            self.fp_regs[index - FP_BASE] = float(value)

    def snapshot_state(self) -> dict:
        """Mutable architectural state (the program is rebuilt, not saved)."""
        return {
            "thread_id": self.thread_id,
            "app_id": self.app_id,
            "pc": self.pc,
            "int_regs": list(self.int_regs),
            "fp_regs": list(self.fp_regs),
            "finished": self.finished,
            "retired_instructions": self.retired_instructions,
        }

    def restore_state(self, state: dict) -> None:
        self.pc = state["pc"]
        self.int_regs = list(state["int_regs"])
        self.fp_regs = [float(v) for v in state["fp_regs"]]
        self.finished = state["finished"]
        self.retired_instructions = state["retired_instructions"]

    def read(self, flat_reg: int):
        """Read a register by flat index (int or fp)."""
        if flat_reg < FP_BASE:
            return self.int_regs[flat_reg]
        return self.fp_regs[flat_reg - FP_BASE]

    def write(self, flat_reg: int, value) -> None:
        if flat_reg == 0:
            return
        if flat_reg < FP_BASE:
            self.int_regs[flat_reg] = value
        else:
            self.fp_regs[flat_reg - FP_BASE] = value
