"""Functional semantics of ALU, branch, and FP operations.

Integer registers hold signed 32-bit Python ints; all results are wrapped
back into that range.  Floating-point registers hold Python floats (the ISA
treats them as IEEE single precision only when stored to memory).
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.common.utils import to_signed, to_unsigned
from repro.isa.opcodes import Op


def _wrap(value: int) -> int:
    # to_signed(to_unsigned(value)) with the calls flattened out: this
    # runs once per ALU operation.
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > 0x7FFFFFFF else value


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1  # MIPS-style: division by zero yields all ones
    return _wrap(int(a / b))  # truncate toward zero


def _rem(a: int, b: int) -> int:
    if b == 0:
        return _wrap(a)
    return _wrap(a - int(a / b) * b)


#: Per-op evaluators: one dict probe replaces the former if-chain, whose
#: average depth dominated the issue stage on ALU-heavy workloads.  The
#: pipeline's execute stage indexes this table directly; :func:`alu` is
#: the checked wrapper for everything else.
ALU_TABLE = {
    Op.ADD: lambda a, b, imm: _wrap(a + b),
    Op.SUB: lambda a, b, imm: _wrap(a - b),
    Op.AND: lambda a, b, imm: _wrap(a & b),
    Op.OR: lambda a, b, imm: _wrap(a | b),
    Op.XOR: lambda a, b, imm: _wrap(a ^ b),
    Op.NOR: lambda a, b, imm: _wrap(~(a | b)),
    Op.SLL: lambda a, b, imm: _wrap(a << (b & 31)),
    Op.SRL: lambda a, b, imm: _wrap(to_unsigned(a) >> (b & 31)),
    Op.SRA: lambda a, b, imm: _wrap(a >> (b & 31)),
    Op.SLT: lambda a, b, imm: 1 if a < b else 0,
    Op.SLTU: lambda a, b, imm: 1 if to_unsigned(a) < to_unsigned(b) else 0,
    Op.ADDI: lambda a, b, imm: _wrap(a + imm),
    Op.ANDI: lambda a, b, imm: _wrap(a & imm),
    Op.ORI: lambda a, b, imm: _wrap(a | imm),
    Op.XORI: lambda a, b, imm: _wrap(a ^ imm),
    Op.SLLI: lambda a, b, imm: _wrap(a << (imm & 31)),
    Op.SRLI: lambda a, b, imm: _wrap(to_unsigned(a) >> (imm & 31)),
    Op.SRAI: lambda a, b, imm: _wrap(a >> (imm & 31)),
    Op.SLTI: lambda a, b, imm: 1 if a < imm else 0,
    Op.LI: lambda a, b, imm: _wrap(imm),
    Op.MUL: lambda a, b, imm: _wrap(a * b),
    Op.DIV: lambda a, b, imm: _div(a, b),
    Op.REM: lambda a, b, imm: _rem(a, b),
    Op.NOP: lambda a, b, imm: 0,
}


#: Source templates mirroring ``ALU_TABLE`` for the trace-cache block
#: compiler (repro.cpu.blockgen): each entry is a Python expression over
#: the source values ``a``/``b`` with ``{imm}`` folded in as a literal at
#: generation time.  The helper names (``_w``/``_u``/``_div``/``_rem``)
#: are bound into the generated module's namespace to this module's
#: ``_wrap``/``to_unsigned``/``_div``/``_rem``, so every template is
#: definitionally equivalent to the lambda above it.  Any change to
#: ``ALU_TABLE`` must be mirrored here (tests/test_blockgen.py sweeps the
#: two tables against each other on randomized operands).
ALU_EXPR = {
    Op.ADD: "_w(a + b)",
    Op.SUB: "_w(a - b)",
    Op.AND: "_w(a & b)",
    Op.OR: "_w(a | b)",
    Op.XOR: "_w(a ^ b)",
    Op.NOR: "_w(~(a | b))",
    Op.SLL: "_w(a << (b & 31))",
    Op.SRL: "_w(_u(a) >> (b & 31))",
    Op.SRA: "_w(a >> (b & 31))",
    Op.SLT: "1 if a < b else 0",
    Op.SLTU: "1 if _u(a) < _u(b) else 0",
    Op.ADDI: "_w(a + {imm})",
    Op.ANDI: "_w(a & {imm})",
    Op.ORI: "_w(a | {imm})",
    Op.XORI: "_w(a ^ {imm})",
    Op.SLLI: "_w(a << {imm5})",
    Op.SRLI: "_w(_u(a) >> {imm5})",
    Op.SRAI: "_w(a >> {imm5})",
    Op.SLTI: "1 if a < {imm} else 0",
    Op.LI: "{imm_wrapped}",
    Op.MUL: "_w(a * b)",
    Op.DIV: "_div(a, b)",
    Op.REM: "_rem(a, b)",
    Op.NOP: "0",
}

#: Same idea for :func:`fp`: per-op expressions over ``a``/``b`` with the
#: non-finite division results bound as ``_inf``/``_ninf``/``_nan``.
FP_EXPR = {
    Op.FADD: "a + b",
    Op.FSUB: "a - b",
    Op.FMUL: "a * b",
    Op.FDIV: "(_inf if a > 0 else _ninf if a < 0 else _nan) "
             "if b == 0.0 else a / b",
    Op.FSLT: "1 if a < b else 0",
}

#: Conditional-branch direction expressions mirroring :func:`branch_taken`
#: (the block compiler folds the taken/fall-through targets around them).
BRANCH_EXPR = {
    Op.BEQ: "a == b",
    Op.BNE: "a != b",
    Op.BLT: "a < b",
    Op.BGE: "a >= b",
    Op.BLTU: "_u(a) < _u(b)",
    Op.BGEU: "_u(a) >= _u(b)",
}


def alu(op: Op, a: int, b: int, imm: int) -> int:
    """Evaluate an integer ALU/MUL/DIV operation.

    ``a`` and ``b`` are the (signed) source register values; immediate
    forms pass the immediate through ``imm``.
    """
    fn = ALU_TABLE.get(op)
    if fn is None:
        raise SimulationError(f"alu cannot evaluate {op}")
    return fn(a, b, imm)


def fp(op: Op, a: float, b: float):
    """Evaluate a floating-point operation."""
    if op is Op.FADD:
        return a + b
    if op is Op.FSUB:
        return a - b
    if op is Op.FMUL:
        return a * b
    if op is Op.FDIV:
        if b == 0.0:
            return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
        return a / b
    if op is Op.FSLT:
        return 1 if a < b else 0
    raise SimulationError(f"fp cannot evaluate {op}")


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Resolve a conditional branch direction."""
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return a < b
    if op is Op.BGE:
        return a >= b
    if op is Op.BLTU:
        return to_unsigned(a) < to_unsigned(b)
    if op is Op.BGEU:
        return to_unsigned(a) >= to_unsigned(b)
    raise SimulationError(f"{op} is not a conditional branch")
