"""Functional semantics of ALU, branch, and FP operations.

Integer registers hold signed 32-bit Python ints; all results are wrapped
back into that range.  Floating-point registers hold Python floats (the ISA
treats them as IEEE single precision only when stored to memory).
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.common.utils import to_signed, to_unsigned
from repro.isa.opcodes import Op


def _wrap(value: int) -> int:
    return to_signed(to_unsigned(value))


def alu(op: Op, a: int, b: int, imm: int) -> int:
    """Evaluate an integer ALU/MUL/DIV operation.

    ``a`` and ``b`` are the (signed) source register values; immediate
    forms pass the immediate through ``imm``.
    """
    if op is Op.ADD:
        return _wrap(a + b)
    if op is Op.SUB:
        return _wrap(a - b)
    if op is Op.AND:
        return _wrap(a & b)
    if op is Op.OR:
        return _wrap(a | b)
    if op is Op.XOR:
        return _wrap(a ^ b)
    if op is Op.NOR:
        return _wrap(~(a | b))
    if op is Op.SLL:
        return _wrap(a << (b & 31))
    if op is Op.SRL:
        return _wrap(to_unsigned(a) >> (b & 31))
    if op is Op.SRA:
        return _wrap(a >> (b & 31))
    if op is Op.SLT:
        return 1 if a < b else 0
    if op is Op.SLTU:
        return 1 if to_unsigned(a) < to_unsigned(b) else 0
    if op is Op.ADDI:
        return _wrap(a + imm)
    if op is Op.ANDI:
        return _wrap(a & imm)
    if op is Op.ORI:
        return _wrap(a | imm)
    if op is Op.XORI:
        return _wrap(a ^ imm)
    if op is Op.SLLI:
        return _wrap(a << (imm & 31))
    if op is Op.SRLI:
        return _wrap(to_unsigned(a) >> (imm & 31))
    if op is Op.SRAI:
        return _wrap(a >> (imm & 31))
    if op is Op.SLTI:
        return 1 if a < imm else 0
    if op is Op.LI:
        return _wrap(imm)
    if op is Op.MUL:
        return _wrap(a * b)
    if op is Op.DIV:
        if b == 0:
            return -1  # MIPS-style: division by zero yields all ones
        return _wrap(int(a / b))  # truncate toward zero
    if op is Op.REM:
        if b == 0:
            return _wrap(a)
        return _wrap(a - int(a / b) * b)
    if op is Op.NOP:
        return 0
    raise SimulationError(f"alu cannot evaluate {op}")


def fp(op: Op, a: float, b: float):
    """Evaluate a floating-point operation."""
    if op is Op.FADD:
        return a + b
    if op is Op.FSUB:
        return a - b
    if op is Op.FMUL:
        return a * b
    if op is Op.FDIV:
        if b == 0.0:
            return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
        return a / b
    if op is Op.FSLT:
        return 1 if a < b else 0
    raise SimulationError(f"fp cannot evaluate {op}")


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Resolve a conditional branch direction."""
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return a < b
    if op is Op.BGE:
        return a >= b
    if op is Op.BLTU:
        return to_unsigned(a) < to_unsigned(b)
    if op is Op.BGEU:
        return to_unsigned(a) >= to_unsigned(b)
    raise SimulationError(f"{op} is not a conditional branch")
