"""Interface between a core and its SPL (or substitute) communication unit.

The pipeline executes ``spl_*`` instructions non-speculatively at the ROB
head through this port.  The real SPL implementation lives in
:mod:`repro.core.controller`; the OOO2+Comm baseline provides an idealized
hardware-queue implementation in :mod:`repro.baselines.comm_network`.
All methods are non-blocking: a ``False``/``None`` return means "retry next
cycle" (queue full, destination not resident, output empty...).

Fast-forward note (see the scheduler contract in DESIGN.md): a core
blocked in ``recv`` is *externally driven* — it cannot bound its own
wake-up.  Two hooks keep the fast-forward scheduler exact anyway:
:meth:`SplPort.output_pending` lets the core's ``next_event_cycle`` report
"must tick next cycle" while delivered words already sit in its output
queue, and the controller behind the port sets the core's ``ff_poke`` flag
whenever it delivers new words, waking a core the machine had stopped
ticking.
"""

from __future__ import annotations

from typing import Optional


class SplPort:
    """Abstract core-side port; concrete units override all four methods."""

    def stage_load(self, value: int, offset: int, cycle: int,
                   ready: int = 0) -> bool:
        """``spl_load``/``spl_loadm``: place a word into the staging entry.

        ``ready`` is the cycle the value actually arrives (cache latency for
        ``spl_loadm``); the fabric will not consume the sealed entry before
        then, but the instruction itself completes immediately.
        """
        raise NotImplementedError

    def init(self, config_id: int, cycle: int) -> bool:
        """``spl_init``: seal staging and issue it with ``config_id``."""
        raise NotImplementedError

    def recv(self, cycle: int) -> Optional[int]:
        """``spl_recv``/``spl_store``: pop a word from the output queue."""
        raise NotImplementedError

    def output_pending(self) -> bool:
        """True when :meth:`recv` could return a word right now.

        Only consulted by the fast-forward scheduler.  The default is the
        safe over-approximation: a unit that cannot answer reports True,
        which keeps a core blocked in ``recv`` ticking every cycle (naive
        behaviour) instead of being skipped past a delivery.
        """
        return True

    def can_switch_out(self) -> bool:
        """True when no in-flight fabric results still target this core."""
        return True

    def stall_kind(self) -> str:
        """Why a blocked ``spl_*`` op at the ROB head is waiting.

        ``"barrier"`` when the unit is gathering a barrier (the thread
        arrived and awaits the release), ``"queue"`` for ordinary
        queue/fabric occupancy.  Used by the cycle-accounting profiler to
        split barrier-wait from SPL-queue-stall cycles.
        """
        return "queue"

    def wait_detail(self) -> str:
        """Queue/barrier occupancy behind a blocked ``spl_*`` op.

        Free-form text folded into deadlock wait-state reports (see
        :meth:`repro.system.machine.Machine.wait_reports`); units that
        cannot introspect return the empty string.
        """
        return ""

    def on_context_change(self, thread_id: Optional[int], app_id: int) -> None:
        """Notify the unit that the core now runs a different thread."""
