"""Branch prediction: gshare + bimodal hybrid, BTB, and return address stack.

Table II specifies a "gshare + bimodal" predictor with 32 RAS entries and a
512 B BTB.  The hybrid uses a chooser table of two-bit counters that learns,
per branch, which component predicts better (a McFarling-style combining
predictor).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import BranchPredictorConfig
from repro.common.stats import Stats


class _CounterTable:
    """Table of two-bit saturating counters, initialized weakly taken."""

    __slots__ = ("mask", "counters")

    def __init__(self, index_bits: int) -> None:
        self.mask = (1 << index_bits) - 1
        self.counters: List[int] = [2] * (1 << index_bits)

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        slot = index & self.mask
        value = self.counters[slot]
        if taken:
            if value < 3:
                self.counters[slot] = value + 1
        elif value > 0:
            self.counters[slot] = value - 1


class HybridPredictor:
    """gshare + bimodal with a chooser, plus BTB and RAS."""

    def __init__(self, config: BranchPredictorConfig, stats: Stats) -> None:
        self.config = config
        self.stats = stats
        stats.declare("branches", "btb_hits", "btb_misses")
        self.bimodal = _CounterTable(config.bimodal_bits)
        self.gshare = _CounterTable(config.gshare_bits)
        self.chooser = _CounterTable(config.chooser_bits)
        self.history = 0
        self.history_mask = (1 << config.gshare_bits) - 1
        self.btb: List[Optional[tuple]] = [None] * config.btb_entries
        self.ras: List[int] = []

    # -- direction -----------------------------------------------------------

    def predict_direction(self, pc: int) -> bool:
        """Predict taken/not-taken for the conditional branch at ``pc``."""
        gshare_index = (pc ^ self.history) & self.history_mask
        use_gshare = self.chooser.predict(pc)
        if use_gshare:
            return self.gshare.predict(gshare_index)
        return self.bimodal.predict(pc)

    def update_direction(self, pc: int, taken: bool) -> None:
        gshare_index = (pc ^ self.history) & self.history_mask
        g_pred = self.gshare.predict(gshare_index)
        b_pred = self.bimodal.predict(pc)
        if g_pred != b_pred:
            self.chooser.update(pc, g_pred == taken)
        self.gshare.update(gshare_index, taken)
        self.bimodal.update(pc, taken)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask
        self.stats.bump("branches")
        # Direction accuracy is recorded by the pipeline, which knows the
        # prediction actually acted upon.

    # -- targets ---------------------------------------------------------------

    def btb_lookup(self, pc: int) -> Optional[int]:
        entry = self.btb[pc % len(self.btb)]
        if entry is not None and entry[0] == pc:
            self.stats.bump("btb_hits")
            return entry[1]
        self.stats.bump("btb_misses")
        return None

    def btb_update(self, pc: int, target: int) -> None:
        self.btb[pc % len(self.btb)] = (pc, target)

    # -- return address stack ------------------------------------------------------

    def ras_push(self, return_pc: int) -> None:
        if len(self.ras) >= self.config.ras_entries:
            self.ras.pop(0)
        self.ras.append(return_pc)

    def ras_pop(self) -> Optional[int]:
        if self.ras:
            return self.ras.pop()
        return None

    # -- snapshot contract (DESIGN.md §8) --------------------------------------

    def snapshot_state(self) -> dict:
        """All learned state: counter tables, history, BTB, RAS."""
        return {
            "bimodal": list(self.bimodal.counters),
            "gshare": list(self.gshare.counters),
            "chooser": list(self.chooser.counters),
            "history": self.history,
            # JSON turns tuples into lists; keep entries as [pc, target].
            "btb": [list(entry) if entry is not None else None
                    for entry in self.btb],
            "ras": list(self.ras),
        }

    def restore_state(self, state: dict) -> None:
        self.bimodal.counters = list(state["bimodal"])
        self.gshare.counters = list(state["gshare"])
        self.chooser.counters = list(state["chooser"])
        self.history = state["history"]
        self.btb = [tuple(entry) if entry is not None else None
                    for entry in state["btb"]]
        self.ras = list(state["ras"])

    def flush_speculative_state(self) -> None:
        """Called on a pipeline flush.

        Global history and the RAS are speculatively updated at fetch, so a
        real design checkpoints them.  We approximate by leaving history as
        is (it re-trains quickly) and clearing the RAS, which is the
        conservative choice.
        """
        self.ras.clear()
