"""Out-of-order core models (Table II) and thread contexts."""

from repro.cpu.branch import HybridPredictor
from repro.cpu.context import ThreadContext
from repro.cpu.pipeline import OutOfOrderCore
from repro.cpu.ports import SplPort

__all__ = ["HybridPredictor", "ThreadContext", "OutOfOrderCore", "SplPort"]
