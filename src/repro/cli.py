"""Command-line interface: regenerate any table, figure, or ablation.

Usage::

    python -m repro list
    python -m repro table 1
    python -m repro figure 10 --quick --jobs 4
    python -m repro figure 12 --bench dijkstra
    python -m repro ablation sharing --no-cache
    python -m repro run hmmer compcomm --items M=64 R=3
    python -m repro trace dijkstra --out run.json
    python -m repro profile dijkstra
    python -m repro sample mpeg2enc seq --warmup 20000 --sample 50000
    python -m repro resume out/snap_mpeg2enc_seq.json
    python -m repro serve --port 8321
    python -m repro submit hmmer compcomm --items M=64 --watch
    python -m repro status --url 127.0.0.1:8321
    python -m repro watch a1b2c3d4e5f6

Simulation commands accept ``--jobs N`` (fan out over N worker
processes; also ``REPRO_JOBS``), ``--no-cache`` (ignore the persistent
result cache; also ``REPRO_NO_CACHE``), ``--cache-dir PATH``
(default ``~/.cache/repro``; also ``REPRO_CACHE_DIR``), and
``--no-lint`` (skip the static pre-flight verification of specs; also
``REPRO_NO_LINT``).  ``python -m repro lint`` runs the static verifier
over the whole registry and the SPL function library without
simulating anything; it exits non-zero when any error-severity
diagnostic is found.

Every ``cmd_*`` handler returns an integer exit code (the table is in
``python -m repro --help``): 0 success, 1 for failed checks or failed
jobs, 2 for usage errors (argparse's convention).  Simulation verbs
route through :mod:`repro.api`, the supported programmatic facade; the
service commands (``serve`` / ``submit`` / ``status`` / ``watch``)
speak to the job server from :mod:`repro.serve`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import ablations
from repro.experiments.barriers import (PAPER_SIZES, QUICK_SIZES,
                                        figure12_series, figure13_series,
                                        figure14_series, run_barrier_sweep)
from repro.experiments.engine import ExperimentEngine, request
from repro.experiments.regions import (figure10_rows, figure11_rows,
                                       run_region_study, swqueue_rows)
from repro.experiments.report import format_series, format_table
from repro.experiments.tables import table1, table2, table3
from repro.experiments.whole_program import (figure8_rows, figure9_rows,
                                             whole_program_study)
from repro.workloads import registry

#: The CLI-wide exit-code convention (every ``cmd_*`` returns one).
EXIT_OK = 0        # the command did what was asked
EXIT_FAIL = 1      # ran, but a check/lint/job/baseline gate failed
EXIT_USAGE = 2     # bad arguments (argparse and SystemExit paths)

EXIT_CODE_TABLE = """\
exit codes:
  0  success
  1  a gate failed: lint errors, bound violations, baseline check
     mismatches, fuzz disagreements, or a submitted job that did not
     complete (failed / cancelled / timed out)
  2  usage error (unknown command, malformed arguments)
"""

_ABLATIONS = {
    "sharing": ablations.sharing_degree,
    "fabric-size": ablations.fabric_size,
    "partitioning": ablations.spatial_partitioning,
    "queue-depth": ablations.queue_depth,
    "barrier-bus": ablations.barrier_bus_latency,
    "reconfig": ablations.reconfiguration_cost,
    "manager": ablations.dynamic_management,
}


def _coerce(value: str):
    """int, float, bool, or str — whichever the text reads as."""
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    for parse in (int, float):
        try:
            return parse(value)
        except ValueError:
            pass
    return value


def _parse_kwargs(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"bad parameter {pair!r}: expected name=value, e.g. M=64, "
                f"scale=0.5, wide_core=true, bench=g721dec")
        key, value = pair.split("=", 1)
        out[key] = _coerce(value)
    return out


def _engine_from_args(args) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        lint=False if args.no_lint else None,
        progress=True)


def _session_from_args(args):
    """An :mod:`repro.api` session over the flag-configured engine."""
    from repro import api
    return api.Session(engine=_engine_from_args(args))


def cmd_list(_args) -> int:
    print("Benchmarks (Table III):")
    for info in registry.REGISTRY.values():
        variants = ", ".join(sorted(info.variants))
        print(f"  {info.name:12s} [{info.category}] variants: {variants}")
    print("\nTables: 1 2 3;  Figures: 8 9 10 11 12 13 14")
    print("Ablations:", ", ".join(_ABLATIONS))
    return EXIT_OK


def cmd_table(args) -> int:
    if args.number == 1:
        rows = [dict(component=k, **v) for k, v in table1().items()]
        print(format_table(rows))
    elif args.number == 2:
        print(format_table([{"parameter": p, "OOO1": a, "OOO2": b}
                            for p, a, b in table2()]))
    elif args.number == 3:
        print(format_table([{"benchmark": n, "functions": f, "% exec": p}
                            for n, f, p in table3()]))
    else:
        raise SystemExit("tables are 1, 2, or 3")
    return EXIT_OK


def cmd_figure(args) -> int:
    number = args.number
    engine = _engine_from_args(args)
    if number in (8, 9):
        points = whole_program_study(args.benchmarks or None, engine=engine)
        rows = figure8_rows(points) if number == 8 else figure9_rows(points)
        print(format_table(rows))
    elif number in (10, 11):
        study = run_region_study(args.benchmarks or None,
                                 include_swqueue=True, engine=engine)
        rows = figure10_rows(study) if number == 10 \
            else figure11_rows(study)
        print(format_table(rows))
        if number == 10:
            print("\nSoftware queues (Section V-B):")
            print(format_table(swqueue_rows(study)))
    elif number in (12, 13, 14):
        benches = args.benchmarks or (["ll3", "dijkstra"] if number == 13
                                      else ["ll2", "ll6", "ll3", "dijkstra"])
        for bench in benches:
            sizes = (QUICK_SIZES if args.quick else PAPER_SIZES)[bench]
            threads = (2, 4, 8, 16) if number == 13 else (8, 16)
            sweep = run_barrier_sweep(bench, sizes=list(sizes),
                                      thread_counts=threads, engine=engine)
            series = {12: figure12_series, 13: figure13_series,
                      14: figure14_series}[number](sweep,
                                                   thread_counts=threads)
            print(f"--- {bench} ---")
            print(format_series(series))
    else:
        raise SystemExit("figures are 8-14")
    return EXIT_OK


def cmd_ablation(args) -> int:
    if args.name not in _ABLATIONS:
        raise SystemExit(f"ablations: {', '.join(_ABLATIONS)}")
    print(format_table(_ABLATIONS[args.name](
        engine=_engine_from_args(args))))
    return EXIT_OK


def cmd_run(args) -> int:
    info = registry.REGISTRY.get(args.benchmark)
    if info is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    if args.variant not in info.variants:
        raise SystemExit(f"{args.benchmark} variants: "
                         f"{', '.join(sorted(info.variants))}")
    result = _session_from_args(args).run(
        request(args.benchmark, args.variant,
                **_parse_kwargs(args.params)))
    if args.json:
        import json
        print(json.dumps(result.to_dict(), indent=2))
        return EXIT_OK
    print(f"{result.name}: {result.cycles} cycles "
          f"({result.cycles_per_item:.2f} per item), "
          f"energy {result.energy_joules * 1e6:.2f} uJ, "
          f"ED {result.energy_delay:.3e} J*s")
    if result.cache_hit:
        print("result served from the cache (simulated and verified "
              "in an earlier run)")
    else:
        print("output verified against the reference kernel")
    return EXIT_OK


_VARIANT_PREFERENCE = ("spl", "compcomm", "barrier", "comm", "sw")


def _resolve_observed_spec(args):
    """RunSpec for the trace/profile commands (default variant if blank)."""
    from repro.experiments.engine import build_spec
    bench = args.benchmark_opt or args.benchmark
    if not bench:
        raise SystemExit("name a benchmark (positional or --bench)")
    variant = args.variant
    if args.benchmark_opt and args.benchmark and not variant:
        # "trace --bench hmmer compcomm": the positional is the variant.
        variant = args.benchmark
    info = registry.REGISTRY.get(bench)
    if info is None:
        raise SystemExit(f"unknown benchmark {bench!r}")
    if not variant:
        for candidate in _VARIANT_PREFERENCE:
            if candidate in info.variants:
                variant = candidate
                break
        else:
            variant = sorted(info.variants)[0]
    if variant not in info.variants:
        raise SystemExit(f"{bench} variants: "
                         f"{', '.join(sorted(info.variants))}")
    return build_spec(request(bench, variant, **_parse_kwargs(args.params)))


def _run_observed(spec, *sinks):
    """Simulate ``spec`` with sinks attached to the machine's event bus."""
    from repro.common.config import RunOptions
    from repro.system.machine import Machine
    machine = Machine(spec.system)
    for sink, kinds in sinks:
        machine.obs.attach(sink, kinds=kinds)
    machine.load(spec.workload)
    machine.run(options=RunOptions(max_cycles=spec.max_cycles))
    machine.finish_observation()
    return machine


def cmd_trace(args) -> int:
    import os
    from repro.obs.perfetto import PERFETTO_KINDS, PerfettoSink
    spec = _resolve_observed_spec(args)
    sink = PerfettoSink()
    machine = _run_observed(spec, (sink, PERFETTO_KINDS))
    # Default under the gitignored out/ directory so traces (easily
    # hundreds of thousands of lines) never end up committed.
    out = args.out or os.path.join("out", "trace.json")
    parent = os.path.dirname(out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    sink.write(out)
    print(f"{spec.name}: {machine.cycle} cycles, "
          f"{len(sink.trace_events)} trace events -> {out}")
    print("open in https://ui.perfetto.dev or chrome://tracing "
          "(1 us shown = 1 core cycle)")
    return EXIT_OK


def _cmd_profile_hot(args) -> int:
    """Hot-path report: per-PC retire counts plus block-cache statistics.

    Runs WITHOUT observation sinks: an active event bus disables the
    compiled hot loop (DESIGN.md section 10), and the point of ``--hot``
    is to profile the run exactly as the default configuration executes
    it — fused windows, trace-cache hits and all.
    """
    import json
    import os
    from repro.common.config import RunOptions
    from repro.system.machine import Machine
    spec = _resolve_observed_spec(args)
    machine = Machine(spec.system)
    machine.load(spec.workload)
    programs = {}
    for core in machine.cores:
        core._retire_pcs = {}
        if core.ctx is not None:
            programs[core.index] = core.ctx.program.instructions
    cycles = machine.run(options=RunOptions(max_cycles=spec.max_cycles))
    runners = list(machine._bg_runners.values())
    windows = sum(r.windows for r in runners)
    fused = sum(r.fused_cycles for r in runners)
    deopts = sum(r.deopts for r in runners)
    compiles = sum(r.bp.compiles for r in runners)
    entries = sum(r.bp.entries for r in runners)
    hit_rate = (1.0 - compiles / entries) if entries else 0.0
    rows = []
    for core in machine.cores:
        insts = programs.get(core.index, [])
        for pc, count in (core._retire_pcs or {}).items():
            text = repr(insts[pc]) if pc < len(insts) else "?"
            rows.append({"core": core.index, "pc": pc,
                         "retired": count, "instruction": text})
    rows.sort(key=lambda row: -row["retired"])
    top = rows[:args.top]
    if args.dump_blocks:
        parent = os.path.dirname(args.dump_blocks)
        if parent:
            os.makedirs(parent, exist_ok=True)
        chunks = []
        for index in sorted(machine._bg_runners):
            runner = machine._bg_runners[index]
            chunks.append(f"# core {index}\n{runner.bp.source_dump()}")
        with open(args.dump_blocks, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(chunks) + "\n")
    if args.json:
        print(json.dumps({
            "name": spec.name,
            "total_cycles": cycles,
            "blockgen": {"windows": windows, "fused_cycles": fused,
                         "deopts": deopts, "block_compiles": compiles,
                         "block_entries": entries, "hit_rate": hit_rate,
                         "multi_windows": machine._bg_multi.windows,
                         "multi_fused_cycles": machine._bg_multi.fused_cycles},
            "hot_pcs": top,
        }, indent=2))
        return EXIT_OK
    print(f"{spec.name}: {cycles} cycles")
    print(f"blockgen: {windows} windows, {fused} fused cycles "
          f"({fused / cycles:.1%} of total), {deopts} deopts")
    print(f"multi-core: {machine._bg_multi.windows} fused windows, "
          f"{machine._bg_multi.fused_cycles} core-cycles stepped")
    print(f"block cache: {compiles} compiles, {entries} entries, "
          f"hit rate {hit_rate:.1%}")
    print(f"hot PCs (top {len(top)} by retire count):")
    for row in top:
        print(f"  core {row['core']:>2d}  pc {row['pc']:>5d}  "
              f"{row['retired']:>9d}  {row['instruction']}")
    if args.dump_blocks:
        print(f"generated block source -> {args.dump_blocks}")
    return EXIT_OK


def cmd_profile(args) -> int:
    from repro.analysis.bounds import check_measured, compute_bounds
    from repro.obs.profile import ProfilerSink
    from repro.obs.render import render_profile
    if args.hot:
        return _cmd_profile_hot(args)
    spec = _resolve_observed_spec(args)
    sink = ProfilerSink()
    _run_observed(spec, (sink, ProfilerSink.KINDS))
    accounting = sink.accounting()
    bounds = compute_bounds(spec)
    bound_diags = check_measured(bounds, accounting.total_cycles,
                                 unit=spec.name)
    if args.json:
        import json
        print(json.dumps({"name": spec.name,
                          "total_cycles": accounting.total_cycles,
                          "min_cycles_bound": bounds.min_cycles,
                          "bound_violations": [d.render()
                                               for d in bound_diags],
                          "cores": accounting.rows()}, indent=2))
        return EXIT_FAIL if bound_diags else EXIT_OK
    print(f"{spec.name}:")
    print(render_profile(accounting))
    print(f"static lower bound: {bounds.min_cycles} cycles "
          f"({accounting.total_cycles} measured)")
    for diag in bound_diags:
        print(diag.render())
    return EXIT_FAIL if bound_diags else EXIT_OK


def cmd_sample(args) -> int:
    import json
    import os

    from repro.experiments.sample import format_report
    info = registry.REGISTRY.get(args.benchmark)
    if info is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    if args.variant not in info.variants:
        raise SystemExit(f"{args.benchmark} variants: "
                         f"{', '.join(sorted(info.variants))}")
    snapshot_path = args.snapshot
    if snapshot_path is None:
        snapshot_path = os.path.join(
            "out", f"snap_{args.benchmark}_{args.variant}.json")
    parent = os.path.dirname(snapshot_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    from repro import api
    report = api.sample(
        request(args.benchmark, args.variant, **_parse_kwargs(args.params)),
        warmup=args.warmup, sample=args.sample,
        snapshot_path=snapshot_path, compare_full=args.compare_full)
    if args.json:
        print(json.dumps(report, indent=2))
        return EXIT_OK
    print(format_report(report))
    return EXIT_OK


def cmd_resume(args) -> int:
    from repro.system.snapshot import resume_from_file
    machine, cycles = resume_from_file(args.snapshot,
                                       check=not args.no_check)
    print(f"resumed {args.snapshot}: completed at cycle {cycles}, "
          f"{machine.total_retired()} instructions retired")
    if not args.no_check:
        print("output verified against the reference kernel")
    return EXIT_OK


def cmd_bench(args) -> int:
    import json

    from repro.experiments.bench import (DEFAULT_OUT, SNAPSHOT_OUT,
                                         check_report, format_report,
                                         run_bench, run_snapshot_roundtrip,
                                         write_report)
    cases = list(args.cases or [])
    for group in args.case_list or []:
        cases.extend(name for name in group.split(",") if name)
    if args.snapshot_roundtrip:
        report = run_snapshot_roundtrip(cases or None,
                                        snapshot_dir=args.snapshot_dir)
        out = args.out or SNAPSHOT_OUT
    else:
        report = run_bench(cases or None)
        out = args.out or DEFAULT_OUT
    write_report(report, out)
    print(format_report(report))
    print(f"report -> {out}")
    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_report(report, baseline)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL {failure}")
            return EXIT_FAIL
        print(f"check OK against {args.check}")
    return EXIT_OK


def cmd_lint(args) -> int:
    from repro import api
    from repro.analysis import has_errors, render_json, render_text
    benchmarks = args.benchmarks or None
    if benchmarks:
        unknown = [b for b in benchmarks if b not in registry.REGISTRY]
        if unknown:
            raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    diagnostics = api.lint(benchmarks)
    if args.json:
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return EXIT_FAIL if has_errors(diagnostics) else EXIT_OK


def cmd_fuzz(args) -> int:
    from repro.analysis.fuzz import (render_fuzz_text, run_fuzz,
                                     write_fuzz_json)
    seeds = range(args.start, args.start + args.seeds)
    report = run_fuzz(seeds)
    print(render_fuzz_text(report))
    if args.json_out:
        import os
        parent = os.path.dirname(args.json_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        write_fuzz_json(report, args.json_out)
        print(f"report -> {args.json_out}")
    return EXIT_FAIL if report["disagreements"] else EXIT_OK


# -- job-service commands ------------------------------------------------------


def cmd_serve(args) -> int:
    """Run the async job server until drained (SIGTERM/Ctrl-C/drain)."""
    from repro import api
    from repro.serve import server
    session = api.Session(
        engine=_engine_from_args(args), shards=args.shards,
        queue_limit=args.queue_limit, tenant_quota=args.tenant_quota,
        default_timeout_s=args.timeout)

    def announce(port: int) -> None:
        print(f"repro job server listening on http://{args.host}:{port} "
              f"({args.shards} shards, queue limit {args.queue_limit}, "
              f"{args.tenant_quota} jobs/tenant)", flush=True)

    return server.main(session, host=args.host, port=args.port,
                       on_ready=announce)


def _client_from_args(args):
    from repro.serve.client import Client
    return Client(args.url)


def _print_record(record, as_json: bool) -> None:
    import json
    if as_json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return
    line = f"{record.job_id}  {record.state:9s} {record.label}"
    if record.cached:
        line += "  [cached]"
    if record.heartbeat:
        line += (f"  cycle {record.heartbeat['cycle']} "
                 f"ipc {record.heartbeat['ipc']:.2f}")
    if record.detail:
        line += f"  ({record.detail})"
    print(line)


def _job_exit(record) -> int:
    return EXIT_OK if record.state == "done" else EXIT_FAIL


def cmd_submit(args) -> int:
    info = registry.REGISTRY.get(args.benchmark)
    if info is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    if args.variant not in info.variants:
        raise SystemExit(f"{args.benchmark} variants: "
                         f"{', '.join(sorted(info.variants))}")
    client = _client_from_args(args)
    record = client.submit(
        request(args.benchmark, args.variant, **_parse_kwargs(args.params)),
        tenant=args.tenant, priority=args.priority,
        timeout_s=args.timeout)
    _print_record(record, args.json)
    if args.watch and record.state not in ("done", "failed", "cancelled"):
        return _watch(client, record.job_id, args.json)
    if args.watch or record.cached:
        return _job_exit(record)
    return EXIT_OK


def cmd_status(args) -> int:
    client = _client_from_args(args)
    if args.job_id:
        _print_record(client.status(args.job_id), args.json)
        return EXIT_OK
    health = client.health()
    records = client.jobs(args.tenant)
    if args.json:
        import json
        print(json.dumps({"health": health,
                          "jobs": [r.to_dict() for r in records]},
                         indent=2, sort_keys=True))
        return EXIT_OK
    census = " ".join(f"{state}={count}"
                      for state, count in sorted(health["jobs"].items()))
    print(f"server: {census}  workers {health['running_workers']}"
          f"/{health['shards']}"
          + ("  [draining]" if health.get("draining") else ""))
    for record in records:
        _print_record(record, False)
    return EXIT_OK


def _watch(client, job_id: str, as_json: bool) -> int:
    from repro.serve.protocol import JobRecord
    final = None
    for event, payload in client.watch(job_id):
        if event == "heartbeat":
            if as_json:
                import json
                print(json.dumps({"heartbeat": payload}, sort_keys=True))
            else:
                print(f"  cycle {payload['cycle']:>10}  "
                      f"retired {payload['retired']:>10}  "
                      f"ipc {payload['ipc']:.3f}")
        elif event == "state":
            final = JobRecord.from_dict(payload)
            _print_record(final, as_json)
    if final is None:
        final = client.status(job_id)
    return _job_exit(final)


def cmd_watch(args) -> int:
    return _watch(_client_from_args(args), args.job_id, args.json)


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache location "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the static pre-flight verification "
                             "of specs before simulating")


def _add_client_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="127.0.0.1:8321",
                        help="job server address "
                             "(default 127.0.0.1:8321)")
    parser.add_argument("--json", action="store_true",
                        help="emit job records as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReMAP (MICRO 2010) reproduction driver",
        epilog=EXIT_CODE_TABLE,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and experiments") \
        .set_defaults(func=cmd_list)

    p_table = sub.add_parser("table", help="print Table 1/2/3")
    p_table.add_argument("number", type=int)
    _add_engine_flags(p_table)
    p_table.set_defaults(func=cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate Figure 8-14")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--quick", action="store_true",
                       help="use reduced sweep sizes")
    p_fig.add_argument("--bench", dest="benchmarks", action="append",
                       help="restrict to specific benchmarks")
    _add_engine_flags(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_abl = sub.add_parser("ablation", help="run one ablation study")
    p_abl.add_argument("name")
    _add_engine_flags(p_abl)
    p_abl.set_defaults(func=cmd_ablation)

    p_run = sub.add_parser("run", help="run one benchmark variant")
    p_run.add_argument("benchmark")
    p_run.add_argument("variant")
    p_run.add_argument("--items", dest="params", nargs="*", default=[],
                       help="spec parameters, e.g. M=64 R=3 or items=128")
    p_run.add_argument("--json", action="store_true",
                       help="emit a JSON record of the run")
    _add_engine_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="export a Perfetto/Chrome trace of one run")
    p_trace.add_argument("benchmark", nargs="?", default="")
    p_trace.add_argument("variant", nargs="?", default="",
                         help="variant (default: the SPL variant)")
    p_trace.add_argument("--bench", dest="benchmark_opt", default=None,
                         help="benchmark (alternative to the positional)")
    p_trace.add_argument("--out", default=None,
                         help="output path (default out/trace.json)")
    p_trace.add_argument("--items", dest="params", nargs="*", default=[],
                         help="spec parameters, e.g. n=64 p=4")
    p_trace.set_defaults(func=cmd_trace)

    p_prof = sub.add_parser(
        "profile", help="cycle-accounting breakdown of one run")
    p_prof.add_argument("benchmark", nargs="?", default="")
    p_prof.add_argument("variant", nargs="?", default="",
                        help="variant (default: the SPL variant)")
    p_prof.add_argument("--bench", dest="benchmark_opt", default=None,
                        help="benchmark (alternative to the positional)")
    p_prof.add_argument("--items", dest="params", nargs="*", default=[],
                        help="spec parameters, e.g. n=64 p=4")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the breakdown as JSON")
    p_prof.add_argument("--hot", action="store_true",
                        help="per-PC retire counts and trace-cache block "
                             "statistics instead of cycle accounting "
                             "(runs unobserved so blockgen engages)")
    p_prof.add_argument("--top", type=int, default=20,
                        help="rows in the --hot per-PC table (default 20)")
    p_prof.add_argument("--dump-blocks", default=None,
                        help="with --hot: write the generated block "
                             "source to this file")
    p_prof.set_defaults(func=cmd_profile)

    p_sample = sub.add_parser(
        "sample", help="SimPoint-style sampled run: warmup, snapshot, "
                       "measure a bounded window")
    p_sample.add_argument("benchmark")
    p_sample.add_argument("variant")
    p_sample.add_argument("--warmup", type=int, default=20_000,
                          help="detailed warmup cycles before the "
                               "snapshot/measurement boundary")
    p_sample.add_argument("--sample", type=int, default=50_000,
                          help="measured window length in cycles")
    p_sample.add_argument("--snapshot", default=None,
                          help="snapshot path written at the warmup "
                               "boundary (default out/snap_<bench>_"
                               "<variant>.json)")
    p_sample.add_argument("--compare-full", action="store_true",
                          help="also run uninterrupted and report the "
                               "sampled-vs-full IPC error and wall-clock "
                               "ratio")
    p_sample.add_argument("--items", dest="params", nargs="*", default=[],
                          help="spec parameters, e.g. M=64 R=3 or items=128")
    p_sample.add_argument("--json", action="store_true",
                          help="emit the report as JSON")
    p_sample.set_defaults(func=cmd_sample)

    p_resume = sub.add_parser(
        "resume", help="continue a snapshotted run to completion")
    p_resume.add_argument("snapshot", help="snapshot file written by "
                                           "'repro sample' --snapshot")
    p_resume.add_argument("--no-check", action="store_true",
                          help="skip the workload's reference-output check")
    p_resume.set_defaults(func=cmd_resume)

    p_bench = sub.add_parser(
        "bench", help="time the simulation loop (naive vs fast-forward)")
    p_bench.add_argument("--case", dest="cases", action="append",
                         help="case to run (seq, barrier, compcomm, adpcm, "
                              "livermore); repeatable, default all")
    p_bench.add_argument("--cases", dest="case_list", action="append",
                         help="comma-separated case selection, e.g. "
                              "--cases seq,adpcm")
    p_bench.add_argument("--out", default=None,
                         help="report path (default BENCH_simloop.json)")
    p_bench.add_argument("--check", default=None, metavar="PATH",
                         help="compare simulated results (cycles, retired) "
                              "against a committed baseline report; exact "
                              "match required, wall clock informational")
    p_bench.add_argument("--snapshot-roundtrip", action="store_true",
                         help="instead of timing, pause each case mid-run, "
                              "snapshot to disk, restore and continue; "
                              "--check then gates the round-tripped results "
                              "against the same baseline")
    p_bench.add_argument("--snapshot-dir", default=None,
                         help="where round-trip snapshot files are written "
                              "(default: a temporary directory)")
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="statically verify benchmarks and SPL functions")
    p_lint.add_argument("--bench", dest="benchmarks", action="append",
                        help="restrict to specific benchmarks (also skips "
                             "the function library)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the diagnostic report as JSON")
    p_lint.set_defaults(func=cmd_lint)

    p_fuzz = sub.add_parser(
        "fuzz", help="cross-check static verdicts against simulation on "
                     "randomized scenarios")
    p_fuzz.add_argument("--seeds", type=int, default=100,
                        help="number of seeds to fuzz (default 100)")
    p_fuzz.add_argument("--start", type=int, default=0,
                        help="first seed (default 0)")
    p_fuzz.add_argument("--json", dest="json_out", default=None,
                        help="also write the full report to this path")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_serve = sub.add_parser(
        "serve", help="run the async HTTP job server over the engine")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (0 picks a free one; "
                              "default 8321)")
    p_serve.add_argument("--shards", type=int, default=2,
                         help="concurrent worker processes (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="max live jobs before 429 back-pressure "
                              "(default 64)")
    p_serve.add_argument("--tenant-quota", type=int, default=16,
                         help="max live jobs per tenant (default 16)")
    p_serve.add_argument("--timeout", type=float, default=300.0,
                         help="default per-job wall-clock budget in "
                              "seconds (default 300)")
    _add_engine_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one benchmark variant to a job server")
    p_submit.add_argument("benchmark")
    p_submit.add_argument("variant")
    p_submit.add_argument("--items", dest="params", nargs="*", default=[],
                          help="spec parameters, e.g. M=64 R=3 or "
                               "items=128")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    p_submit.add_argument("--timeout", type=float, default=None,
                          help="per-job wall-clock budget in seconds")
    p_submit.add_argument("--watch", action="store_true",
                          help="stream the job's progress to completion "
                               "and exit by its final state")
    _add_client_flags(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="show a job's record, or the whole server")
    p_status.add_argument("job_id", nargs="?", default=None)
    p_status.add_argument("--tenant", default=None,
                          help="filter the job list to one tenant")
    _add_client_flags(p_status)
    p_status.set_defaults(func=cmd_status)

    p_watch = sub.add_parser(
        "watch", help="stream one job's SSE feed until it finishes")
    p_watch.add_argument("job_id")
    _add_client_flags(p_watch)
    p_watch.set_defaults(func=cmd_watch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
