"""Command-line interface: regenerate any table, figure, or ablation.

Usage::

    python -m repro list
    python -m repro table 1
    python -m repro figure 10 --quick --jobs 4
    python -m repro figure 12 --bench dijkstra
    python -m repro ablation sharing --no-cache
    python -m repro run hmmer compcomm --items M=64 R=3
    python -m repro trace dijkstra --out run.json
    python -m repro profile dijkstra
    python -m repro sample mpeg2enc seq --warmup 20000 --sample 50000
    python -m repro resume out/snap_mpeg2enc_seq.json

Simulation commands accept ``--jobs N`` (fan out over N worker
processes; also ``REPRO_JOBS``), ``--no-cache`` (ignore the persistent
result cache; also ``REPRO_NO_CACHE``), ``--cache-dir PATH``
(default ``~/.cache/repro``; also ``REPRO_CACHE_DIR``), and
``--no-lint`` (skip the static pre-flight verification of specs; also
``REPRO_NO_LINT``).  ``python -m repro lint`` runs the static verifier
over the whole registry and the SPL function library without
simulating anything; it exits non-zero when any error-severity
diagnostic is found.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import ablations
from repro.experiments.barriers import (PAPER_SIZES, QUICK_SIZES,
                                        figure12_series, figure13_series,
                                        figure14_series, run_barrier_sweep)
from repro.experiments.engine import ExperimentEngine, request
from repro.experiments.regions import (figure10_rows, figure11_rows,
                                       run_region_study, swqueue_rows)
from repro.experiments.report import format_series, format_table
from repro.experiments.tables import table1, table2, table3
from repro.experiments.whole_program import (figure8_rows, figure9_rows,
                                             whole_program_study)
from repro.workloads import registry

_ABLATIONS = {
    "sharing": ablations.sharing_degree,
    "fabric-size": ablations.fabric_size,
    "partitioning": ablations.spatial_partitioning,
    "queue-depth": ablations.queue_depth,
    "barrier-bus": ablations.barrier_bus_latency,
    "reconfig": ablations.reconfiguration_cost,
    "manager": ablations.dynamic_management,
}


def _coerce(value: str):
    """int, float, bool, or str — whichever the text reads as."""
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    for parse in (int, float):
        try:
            return parse(value)
        except ValueError:
            pass
    return value


def _parse_kwargs(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"bad parameter {pair!r}: expected name=value, e.g. M=64, "
                f"scale=0.5, wide_core=true, bench=g721dec")
        key, value = pair.split("=", 1)
        out[key] = _coerce(value)
    return out


def _engine_from_args(args) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        lint=False if args.no_lint else None,
        progress=True)


def cmd_list(_args) -> None:
    print("Benchmarks (Table III):")
    for info in registry.REGISTRY.values():
        variants = ", ".join(sorted(info.variants))
        print(f"  {info.name:12s} [{info.category}] variants: {variants}")
    print("\nTables: 1 2 3;  Figures: 8 9 10 11 12 13 14")
    print("Ablations:", ", ".join(_ABLATIONS))


def cmd_table(args) -> None:
    if args.number == 1:
        rows = [dict(component=k, **v) for k, v in table1().items()]
        print(format_table(rows))
    elif args.number == 2:
        print(format_table([{"parameter": p, "OOO1": a, "OOO2": b}
                            for p, a, b in table2()]))
    elif args.number == 3:
        print(format_table([{"benchmark": n, "functions": f, "% exec": p}
                            for n, f, p in table3()]))
    else:
        raise SystemExit("tables are 1, 2, or 3")


def cmd_figure(args) -> None:
    number = args.number
    engine = _engine_from_args(args)
    if number in (8, 9):
        points = whole_program_study(args.benchmarks or None, engine=engine)
        rows = figure8_rows(points) if number == 8 else figure9_rows(points)
        print(format_table(rows))
    elif number in (10, 11):
        study = run_region_study(args.benchmarks or None,
                                 include_swqueue=True, engine=engine)
        rows = figure10_rows(study) if number == 10 \
            else figure11_rows(study)
        print(format_table(rows))
        if number == 10:
            print("\nSoftware queues (Section V-B):")
            print(format_table(swqueue_rows(study)))
    elif number in (12, 13, 14):
        benches = args.benchmarks or (["ll3", "dijkstra"] if number == 13
                                      else ["ll2", "ll6", "ll3", "dijkstra"])
        for bench in benches:
            sizes = (QUICK_SIZES if args.quick else PAPER_SIZES)[bench]
            threads = (2, 4, 8, 16) if number == 13 else (8, 16)
            sweep = run_barrier_sweep(bench, sizes=list(sizes),
                                      thread_counts=threads, engine=engine)
            series = {12: figure12_series, 13: figure13_series,
                      14: figure14_series}[number](sweep,
                                                   thread_counts=threads)
            print(f"--- {bench} ---")
            print(format_series(series))
    else:
        raise SystemExit("figures are 8-14")


def cmd_ablation(args) -> None:
    if args.name not in _ABLATIONS:
        raise SystemExit(f"ablations: {', '.join(_ABLATIONS)}")
    print(format_table(_ABLATIONS[args.name](
        engine=_engine_from_args(args))))


def cmd_run(args) -> None:
    info = registry.REGISTRY.get(args.benchmark)
    if info is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    if args.variant not in info.variants:
        raise SystemExit(f"{args.benchmark} variants: "
                         f"{', '.join(sorted(info.variants))}")
    engine = _engine_from_args(args)
    result = engine.run(request(args.benchmark, args.variant,
                                **_parse_kwargs(args.params)))
    if args.json:
        import json
        print(json.dumps(result.to_dict(), indent=2))
        return
    print(f"{result.name}: {result.cycles} cycles "
          f"({result.cycles_per_item:.2f} per item), "
          f"energy {result.energy_joules * 1e6:.2f} uJ, "
          f"ED {result.energy_delay:.3e} J*s")
    if result.cache_hit:
        print("result served from the cache (simulated and verified "
              "in an earlier run)")
    else:
        print("output verified against the reference kernel")


_VARIANT_PREFERENCE = ("spl", "compcomm", "barrier", "comm", "sw")


def _resolve_observed_spec(args):
    """RunSpec for the trace/profile commands (default variant if blank)."""
    from repro.experiments.engine import build_spec
    bench = args.benchmark_opt or args.benchmark
    if not bench:
        raise SystemExit("name a benchmark (positional or --bench)")
    variant = args.variant
    if args.benchmark_opt and args.benchmark and not variant:
        # "trace --bench hmmer compcomm": the positional is the variant.
        variant = args.benchmark
    info = registry.REGISTRY.get(bench)
    if info is None:
        raise SystemExit(f"unknown benchmark {bench!r}")
    if not variant:
        for candidate in _VARIANT_PREFERENCE:
            if candidate in info.variants:
                variant = candidate
                break
        else:
            variant = sorted(info.variants)[0]
    if variant not in info.variants:
        raise SystemExit(f"{bench} variants: "
                         f"{', '.join(sorted(info.variants))}")
    return build_spec(request(bench, variant, **_parse_kwargs(args.params)))


def _run_observed(spec, *sinks):
    """Simulate ``spec`` with sinks attached to the machine's event bus."""
    from repro.common.config import RunOptions
    from repro.system.machine import Machine
    machine = Machine(spec.system)
    for sink, kinds in sinks:
        machine.obs.attach(sink, kinds=kinds)
    machine.load(spec.workload)
    machine.run(options=RunOptions(max_cycles=spec.max_cycles))
    machine.finish_observation()
    return machine


def cmd_trace(args) -> None:
    import os
    from repro.obs.perfetto import PERFETTO_KINDS, PerfettoSink
    spec = _resolve_observed_spec(args)
    sink = PerfettoSink()
    machine = _run_observed(spec, (sink, PERFETTO_KINDS))
    # Default under the gitignored out/ directory so traces (easily
    # hundreds of thousands of lines) never end up committed.
    out = args.out or os.path.join("out", "trace.json")
    parent = os.path.dirname(out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    sink.write(out)
    print(f"{spec.name}: {machine.cycle} cycles, "
          f"{len(sink.trace_events)} trace events -> {out}")
    print("open in https://ui.perfetto.dev or chrome://tracing "
          "(1 us shown = 1 core cycle)")


def cmd_profile(args) -> int:
    from repro.analysis.bounds import check_measured, compute_bounds
    from repro.obs.profile import ProfilerSink
    from repro.obs.render import render_profile
    spec = _resolve_observed_spec(args)
    sink = ProfilerSink()
    _run_observed(spec, (sink, ProfilerSink.KINDS))
    accounting = sink.accounting()
    bounds = compute_bounds(spec)
    bound_diags = check_measured(bounds, accounting.total_cycles,
                                 unit=spec.name)
    if args.json:
        import json
        print(json.dumps({"name": spec.name,
                          "total_cycles": accounting.total_cycles,
                          "min_cycles_bound": bounds.min_cycles,
                          "bound_violations": [d.render()
                                               for d in bound_diags],
                          "cores": accounting.rows()}, indent=2))
        return 1 if bound_diags else 0
    print(f"{spec.name}:")
    print(render_profile(accounting))
    print(f"static lower bound: {bounds.min_cycles} cycles "
          f"({accounting.total_cycles} measured)")
    for diag in bound_diags:
        print(diag.render())
    return 1 if bound_diags else 0


def cmd_sample(args) -> None:
    import json
    import os

    from repro.experiments.sample import format_report, sampled_run
    info = registry.REGISTRY.get(args.benchmark)
    if info is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    if args.variant not in info.variants:
        raise SystemExit(f"{args.benchmark} variants: "
                         f"{', '.join(sorted(info.variants))}")
    snapshot_path = args.snapshot
    if snapshot_path is None:
        snapshot_path = os.path.join(
            "out", f"snap_{args.benchmark}_{args.variant}.json")
    parent = os.path.dirname(snapshot_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    report = sampled_run(
        request(args.benchmark, args.variant, **_parse_kwargs(args.params)),
        warmup=args.warmup, sample=args.sample,
        snapshot_path=snapshot_path, compare_full=args.compare_full)
    if args.json:
        print(json.dumps(report, indent=2))
        return
    print(format_report(report))


def cmd_resume(args) -> None:
    from repro.system.snapshot import resume_from_file
    machine, cycles = resume_from_file(args.snapshot,
                                       check=not args.no_check)
    print(f"resumed {args.snapshot}: completed at cycle {cycles}, "
          f"{machine.total_retired()} instructions retired")
    if not args.no_check:
        print("output verified against the reference kernel")


def cmd_bench(args) -> int:
    import json

    from repro.experiments.bench import (DEFAULT_OUT, SNAPSHOT_OUT,
                                         check_report, format_report,
                                         run_bench, run_snapshot_roundtrip,
                                         write_report)
    cases = list(args.cases or [])
    for group in args.case_list or []:
        cases.extend(name for name in group.split(",") if name)
    if args.snapshot_roundtrip:
        report = run_snapshot_roundtrip(cases or None,
                                        snapshot_dir=args.snapshot_dir)
        out = args.out or SNAPSHOT_OUT
    else:
        report = run_bench(cases or None)
        out = args.out or DEFAULT_OUT
    write_report(report, out)
    print(format_report(report))
    print(f"report -> {out}")
    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_report(report, baseline)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL {failure}")
            return 1
        print(f"check OK against {args.check}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (has_errors, lint_registry, render_json,
                                render_text)
    benchmarks = args.benchmarks or None
    if benchmarks:
        unknown = [b for b in benchmarks if b not in registry.REGISTRY]
        if unknown:
            raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    diagnostics = lint_registry(benchmarks,
                                include_library=not benchmarks)
    if args.json:
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if has_errors(diagnostics) else 0


def cmd_fuzz(args) -> int:
    from repro.analysis.fuzz import (render_fuzz_text, run_fuzz,
                                     write_fuzz_json)
    seeds = range(args.start, args.start + args.seeds)
    report = run_fuzz(seeds)
    print(render_fuzz_text(report))
    if args.json_out:
        import os
        parent = os.path.dirname(args.json_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        write_fuzz_json(report, args.json_out)
        print(f"report -> {args.json_out}")
    return 1 if report["disagreements"] else 0


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache location "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the static pre-flight verification "
                             "of specs before simulating")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReMAP (MICRO 2010) reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and experiments") \
        .set_defaults(func=cmd_list)

    p_table = sub.add_parser("table", help="print Table 1/2/3")
    p_table.add_argument("number", type=int)
    _add_engine_flags(p_table)
    p_table.set_defaults(func=cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate Figure 8-14")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--quick", action="store_true",
                       help="use reduced sweep sizes")
    p_fig.add_argument("--bench", dest="benchmarks", action="append",
                       help="restrict to specific benchmarks")
    _add_engine_flags(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_abl = sub.add_parser("ablation", help="run one ablation study")
    p_abl.add_argument("name")
    _add_engine_flags(p_abl)
    p_abl.set_defaults(func=cmd_ablation)

    p_run = sub.add_parser("run", help="run one benchmark variant")
    p_run.add_argument("benchmark")
    p_run.add_argument("variant")
    p_run.add_argument("--items", dest="params", nargs="*", default=[],
                       help="spec parameters, e.g. M=64 R=3 or items=128")
    p_run.add_argument("--json", action="store_true",
                       help="emit a JSON record of the run")
    _add_engine_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="export a Perfetto/Chrome trace of one run")
    p_trace.add_argument("benchmark", nargs="?", default="")
    p_trace.add_argument("variant", nargs="?", default="",
                         help="variant (default: the SPL variant)")
    p_trace.add_argument("--bench", dest="benchmark_opt", default=None,
                         help="benchmark (alternative to the positional)")
    p_trace.add_argument("--out", default=None,
                         help="output path (default out/trace.json)")
    p_trace.add_argument("--items", dest="params", nargs="*", default=[],
                         help="spec parameters, e.g. n=64 p=4")
    p_trace.set_defaults(func=cmd_trace)

    p_prof = sub.add_parser(
        "profile", help="cycle-accounting breakdown of one run")
    p_prof.add_argument("benchmark", nargs="?", default="")
    p_prof.add_argument("variant", nargs="?", default="",
                        help="variant (default: the SPL variant)")
    p_prof.add_argument("--bench", dest="benchmark_opt", default=None,
                        help="benchmark (alternative to the positional)")
    p_prof.add_argument("--items", dest="params", nargs="*", default=[],
                        help="spec parameters, e.g. n=64 p=4")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the breakdown as JSON")
    p_prof.set_defaults(func=cmd_profile)

    p_sample = sub.add_parser(
        "sample", help="SimPoint-style sampled run: warmup, snapshot, "
                       "measure a bounded window")
    p_sample.add_argument("benchmark")
    p_sample.add_argument("variant")
    p_sample.add_argument("--warmup", type=int, default=20_000,
                          help="detailed warmup cycles before the "
                               "snapshot/measurement boundary")
    p_sample.add_argument("--sample", type=int, default=50_000,
                          help="measured window length in cycles")
    p_sample.add_argument("--snapshot", default=None,
                          help="snapshot path written at the warmup "
                               "boundary (default out/snap_<bench>_"
                               "<variant>.json)")
    p_sample.add_argument("--compare-full", action="store_true",
                          help="also run uninterrupted and report the "
                               "sampled-vs-full IPC error and wall-clock "
                               "ratio")
    p_sample.add_argument("--items", dest="params", nargs="*", default=[],
                          help="spec parameters, e.g. M=64 R=3 or items=128")
    p_sample.add_argument("--json", action="store_true",
                          help="emit the report as JSON")
    p_sample.set_defaults(func=cmd_sample)

    p_resume = sub.add_parser(
        "resume", help="continue a snapshotted run to completion")
    p_resume.add_argument("snapshot", help="snapshot file written by "
                                           "'repro sample' --snapshot")
    p_resume.add_argument("--no-check", action="store_true",
                          help="skip the workload's reference-output check")
    p_resume.set_defaults(func=cmd_resume)

    p_bench = sub.add_parser(
        "bench", help="time the simulation loop (naive vs fast-forward)")
    p_bench.add_argument("--case", dest="cases", action="append",
                         help="case to run (seq, barrier, compcomm, adpcm, "
                              "livermore); repeatable, default all")
    p_bench.add_argument("--cases", dest="case_list", action="append",
                         help="comma-separated case selection, e.g. "
                              "--cases seq,adpcm")
    p_bench.add_argument("--out", default=None,
                         help="report path (default BENCH_simloop.json)")
    p_bench.add_argument("--check", default=None, metavar="PATH",
                         help="compare simulated results (cycles, retired) "
                              "against a committed baseline report; exact "
                              "match required, wall clock informational")
    p_bench.add_argument("--snapshot-roundtrip", action="store_true",
                         help="instead of timing, pause each case mid-run, "
                              "snapshot to disk, restore and continue; "
                              "--check then gates the round-tripped results "
                              "against the same baseline")
    p_bench.add_argument("--snapshot-dir", default=None,
                         help="where round-trip snapshot files are written "
                              "(default: a temporary directory)")
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="statically verify benchmarks and SPL functions")
    p_lint.add_argument("--bench", dest="benchmarks", action="append",
                        help="restrict to specific benchmarks (also skips "
                             "the function library)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the diagnostic report as JSON")
    p_lint.set_defaults(func=cmd_lint)

    p_fuzz = sub.add_parser(
        "fuzz", help="cross-check static verdicts against simulation on "
                     "randomized scenarios")
    p_fuzz.add_argument("--seeds", type=int, default=100,
                        help="number of seeds to fuzz (default 100)")
    p_fuzz.add_argument("--start", type=int, default=0,
                        help="first seed (default 0)")
    p_fuzz.add_argument("--json", dest="json_out", default=None,
                        help="also write the full report to this path")
    p_fuzz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
