"""Lightweight statistics collection.

Every simulated structure owns a :class:`Stats` scope.  Scopes form a tree so
that a whole-chip report can be produced with :meth:`Stats.report`.  Counters
are plain attributes in a dict for speed: the simulator bumps them millions
of times per run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Stats:
    """A named scope of integer/float counters with child scopes."""

    __slots__ = ("name", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, float] = {}
        self.children: List["Stats"] = []

    def child(self, name: str) -> "Stats":
        scope = Stats(name)
        self.children.append(scope)
        return scope

    def bump(self, key: str, amount: float = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def set(self, key: str, value: float) -> None:
        self.counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        return self.counters.get(key, default)

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, str, float]]:
        """Yield (scope_path, counter, value) for this scope and children."""
        path = f"{prefix}{self.name}"
        for key in sorted(self.counters):
            yield path, key, self.counters[key]
        for child in self.children:
            yield from child.walk(prefix=f"{path}.")

    def total(self, key: str) -> float:
        """Sum of ``key`` over this scope and all descendants."""
        value = self.counters.get(key, 0)
        for child in self.children:
            value += child.total(key)
        return value

    def find(self, name: str) -> Optional["Stats"]:
        """Depth-first search for a child scope by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def report(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.name}:"]
        for key in sorted(self.counters):
            value = self.counters[key]
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            lines.append(f"{'  ' * (indent + 1)}{key} = {text}")
        for child in self.children:
            lines.append(child.report(indent + 1))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to {"scope.path.counter": value}."""
        return {f"{path}.{key}": value for path, key, value in self.walk()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats({self.name!r}, {len(self.counters)} counters)"
