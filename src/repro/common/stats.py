"""Statistics collection: declared, mergeable counter scopes.

Every simulated structure owns a :class:`Stats` scope.  Scopes form a tree
so that a whole-chip report can be produced with :meth:`Stats.report`.
Counters are plain dict entries for speed: the simulator bumps them
millions of times per run.

Two usage styles coexist:

* **Declared scopes** (the simulator's own structures): the component
  declares every counter it will ever touch up front with
  :meth:`Stats.declare` (or the ``schema`` constructor argument).  A
  typo'd key then raises :class:`~repro.common.errors.StatsError` at the
  first use instead of silently creating a new counter, and hot call
  sites can bind a :class:`CounterHandle` once at construction.
* **Open scopes** (tests, ad-hoc instrumentation): without a declaration,
  :meth:`bump`/:meth:`set` create counters on first write, exactly as the
  original API did — existing call sites keep working unchanged.

For engine-side aggregation, :meth:`Stats.merge` folds another scope tree
into this one, and :func:`merge_counters` sums already-flattened
``{"scope.path.counter": value}`` mappings (the form :class:`RunResult`
serializes).
"""

from __future__ import annotations

from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Tuple)

from repro.common.errors import StatsError


class CounterHandle:
    """A pre-validated, bound reference to one counter of one scope.

    Constructing the handle validates the key against the scope's
    declaration (catching typos at component construction); ``add`` is
    then a plain dict update with no key checking on the hot path.
    """

    __slots__ = ("_counters", "key")

    def __init__(self, counters: Dict[str, float], key: str) -> None:
        self._counters = counters
        self.key = key

    def add(self, amount: float = 1) -> None:
        self._counters[self.key] += amount

    @property
    def value(self) -> float:
        return self._counters[self.key]


class Stats:
    """A named scope of integer/float counters with child scopes."""

    __slots__ = ("name", "counters", "children", "declared")

    def __init__(self, name: str,
                 schema: Optional[Iterable[str]] = None) -> None:
        self.name = name
        self.counters: Dict[str, float] = {}
        self.children: List["Stats"] = []
        self.declared: Optional[frozenset] = None
        if schema is not None:
            self.declare(*schema)

    # -- declaration -------------------------------------------------------

    def declare(self, *keys: str) -> None:
        """Declare the counters this scope may use (idempotent union).

        Declared counters are zero-initialized; once a scope has any
        declaration, writes to undeclared keys raise :class:`StatsError`.
        """
        for key in keys:
            self.counters.setdefault(key, 0)
        known = self.declared or frozenset()
        self.declared = known | frozenset(keys)

    def counter(self, key: str) -> CounterHandle:
        """A bound handle for a hot counter; validates ``key`` now."""
        if self.declared is not None and key not in self.declared:
            raise StatsError(
                f"scope {self.name!r} never declared counter {key!r}")
        self.counters.setdefault(key, 0)
        return CounterHandle(self.counters, key)

    # -- tree construction -------------------------------------------------

    def child(self, name: str,
              schema: Optional[Iterable[str]] = None) -> "Stats":
        scope = Stats(name, schema=schema)
        self.children.append(scope)
        return scope

    # -- counter access ----------------------------------------------------

    def bump(self, key: str, amount: float = 1) -> None:
        try:
            self.counters[key] += amount
        except KeyError:
            if self.declared is not None:
                raise StatsError(
                    f"scope {self.name!r} never declared counter "
                    f"{key!r}") from None
            self.counters[key] = amount

    def set(self, key: str, value: float) -> None:
        if self.declared is not None and key not in self.declared:
            raise StatsError(
                f"scope {self.name!r} never declared counter {key!r}")
        self.counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        return self.counters.get(key, default)

    # -- traversal ---------------------------------------------------------

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, str, float]]:
        """Yield (scope_path, counter, value) for this scope and children.

        Declared-but-never-touched counters (still zero) are skipped so
        that flattened output stays as compact as the pre-declaration
        format.
        """
        path = f"{prefix}{self.name}"
        for key in sorted(self.counters):
            value = self.counters[key]
            if value:
                yield path, key, value
        for child in self.children:
            yield from child.walk(prefix=f"{path}.")

    def total(self, key: str) -> float:
        """Sum of ``key`` over this scope and all descendants.

        For many keys at once use :meth:`totals`, which visits the
        subtree a single time instead of once per key.
        """
        value = self.counters.get(key, 0)
        for child in self.children:
            value += child.total(key)
        return value

    def totals(self) -> Dict[str, float]:
        """Every counter summed over the whole subtree, in one pass.

        Reports that need several subtree totals were accidentally
        quadratic when they called :meth:`total` once per counter; this
        walks the tree exactly once.
        """
        out: Dict[str, float] = {}
        stack: List[Stats] = [self]
        while stack:
            scope = stack.pop()
            for key, value in scope.counters.items():
                if value:
                    out[key] = out.get(key, 0) + value
            stack.extend(scope.children)
        return out

    def find(self, name: str) -> Optional["Stats"]:
        """Depth-first search for a child scope by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "Stats") -> None:
        """Fold ``other``'s counters (and children, by name) into this tree.

        Used by engine-side aggregation when several runs of the same
        machine shape are combined; unknown counters and child scopes are
        adopted wholesale (declarations are not enforced across merges —
        the other tree already validated its own writes).
        """
        for key, value in other.counters.items():
            if value:
                self.counters[key] = self.counters.get(key, 0) + value
                if self.declared is not None and key not in self.declared:
                    self.declared = self.declared | frozenset((key,))
        mine = {child.name: child for child in self.children}
        for child in other.children:
            target = mine.get(child.name)
            if target is None:
                target = self.child(child.name)
                mine[child.name] = target
            target.merge(child)

    # -- snapshot contract (DESIGN.md §8) ----------------------------------

    def snapshot_state(self) -> dict:
        """Full counter tree, including zero-valued declared counters.

        Declarations themselves are construction-time wiring and are not
        captured: restore targets a freshly rebuilt tree whose scopes have
        already declared their schemas.
        """
        return {
            "name": self.name,
            "counters": [[key, self.counters[key]]
                         for key in sorted(self.counters)],
            "children": [child.snapshot_state() for child in self.children],
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this tree's counters from ``state``.

        The rebuilt tree must have the same shape (scope names and child
        order) as the snapshotted one; any divergence means the machine
        was reconstructed from a different configuration.
        """
        if state["name"] != self.name:
            raise StatsError(
                f"snapshot scope {state['name']!r} does not match "
                f"rebuilt scope {self.name!r}")
        if len(state["children"]) != len(self.children):
            raise StatsError(
                f"scope {self.name!r}: snapshot has "
                f"{len(state['children'])} child scopes, rebuilt tree "
                f"has {len(self.children)}")
        # Mutate in place: CounterHandle instances bound at construction
        # hold a reference to this exact dict.
        self.counters.clear()
        self.counters.update((key, value) for key, value in state["counters"])
        for child, child_state in zip(self.children, state["children"]):
            child.restore_state(child_state)

    # -- rendering ---------------------------------------------------------

    def report(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.name}:"]
        for key in sorted(self.counters):
            value = self.counters[key]
            if not value:
                continue
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            lines.append(f"{'  ' * (indent + 1)}{key} = {text}")
        for child in self.children:
            lines.append(child.report(indent + 1))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to {"scope.path.counter": value}."""
        return {f"{path}.{key}": value for path, key, value in self.walk()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats({self.name!r}, {len(self.counters)} counters)"


def merge_counters(*flats: Mapping[str, float]) -> Dict[str, float]:
    """Sum flattened counter mappings (``RunResult.counters`` form)."""
    out: Dict[str, float] = {}
    for flat in flats:
        for key, value in flat.items():
            out[key] = out.get(key, 0) + value
    return out
