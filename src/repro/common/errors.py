"""Exception hierarchy for the ReMAP reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or out of range."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad label, operand, or opcode)."""


class SimulationError(ReproError):
    """The simulator reached an illegal state (bad PC, deadlock, trap)."""


class DeadlockError(SimulationError):
    """No core made forward progress for the configured watchdog window."""


class MemoryFault(SimulationError):
    """A simulated access touched an unmapped or misaligned address."""


class SplError(ReproError):
    """Illegal use of the SPL fabric (bad config id, queue misuse...)."""


class MappingError(SplError):
    """A dataflow graph could not be mapped onto SPL rows."""


class CodegenError(SplError):
    """A dataflow graph could not be compiled to a Python closure."""


class WorkloadError(ReproError):
    """A workload builder was given unusable parameters."""


class StatsError(ReproError):
    """A counter key was used that its declared scope never declared."""


class LintError(ReproError):
    """Static analysis found error-severity diagnostics (pre-flight)."""
