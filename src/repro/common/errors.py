"""Exception hierarchy for the ReMAP reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or out of range."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad label, operand, or opcode)."""


class SimulationError(ReproError):
    """The simulator reached an illegal state (bad PC, deadlock, trap)."""


class DeadlockError(SimulationError):
    """No core made forward progress for the configured watchdog window.

    ``wait_states`` carries one line per stalled core describing what it
    is blocked on (queue, barrier, port occupancy), composed by the
    machine watchdog at raise time; the lines are also appended to the
    message so an uncaught deadlock is diagnosable from the traceback.
    """

    def __init__(self, message, wait_states=None):
        self.wait_states = list(wait_states or [])
        if self.wait_states:
            message = "\n".join([message] + ["  " + line
                                             for line in self.wait_states])
        super().__init__(message)


class MemoryFault(SimulationError):
    """A simulated access touched an unmapped or misaligned address."""


class SplError(ReproError):
    """Illegal use of the SPL fabric (bad config id, queue misuse...)."""


class MappingError(SplError):
    """A dataflow graph could not be mapped onto SPL rows."""


class CodegenError(SplError):
    """A dataflow graph could not be compiled to a Python closure."""


class WorkloadError(ReproError):
    """A workload builder was given unusable parameters."""


class StatsError(ReproError):
    """A counter key was used that its declared scope never declared."""


class LintError(ReproError):
    """Static analysis found error-severity diagnostics (pre-flight)."""
