"""Shared infrastructure: configuration, statistics, errors, utilities."""

from repro.common.config import (
    CoreConfig, SplConfig, ClusterConfig, SystemConfig,
    ooo1_config, ooo2_config, spl_config,
    remap_cluster, ooo2_cluster, ooo1_cluster, remap_system,
    CORE_CLOCK_HZ, SPL_CLOCK_HZ, SPL_CLOCK_RATIO,
    MAIN_MEMORY_CYCLES, MIGRATION_CYCLES,
)
from repro.common.errors import (
    ReproError, ConfigError, AssemblyError, SimulationError,
    DeadlockError, MemoryFault, SplError, MappingError, WorkloadError,
)
from repro.common.stats import Stats

__all__ = [
    "CoreConfig", "SplConfig", "ClusterConfig", "SystemConfig",
    "ooo1_config", "ooo2_config", "spl_config",
    "remap_cluster", "ooo2_cluster", "ooo1_cluster", "remap_system",
    "CORE_CLOCK_HZ", "SPL_CLOCK_HZ", "SPL_CLOCK_RATIO",
    "MAIN_MEMORY_CYCLES", "MIGRATION_CYCLES",
    "ReproError", "ConfigError", "AssemblyError", "SimulationError",
    "DeadlockError", "MemoryFault", "SplError", "MappingError",
    "WorkloadError", "Stats",
]
