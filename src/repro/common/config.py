"""Architecture configuration dataclasses and Table II presets.

The paper evaluates two out-of-order cores (Table II): a single-issue OOO1
and a dual-issue OOO2, both at 2 GHz in 65 nm, with an SPL fabric clocked at
500 MHz (one quarter of the core clock).  All the numbers below come
directly from Table II and Sections II/IV of the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError

CORE_CLOCK_HZ = 2_000_000_000
SPL_CLOCK_HZ = 500_000_000
#: Core cycles per SPL fabric cycle (2 GHz / 500 MHz).
SPL_CLOCK_RATIO = CORE_CLOCK_HZ // SPL_CLOCK_HZ
#: Main memory access time: 100 ns at 2 GHz.
MAIN_MEMORY_CYCLES = 200
#: Cycles charged to migrate a thread between core types (Section V-A).
MIGRATION_CYCLES = 500


@dataclass(frozen=True)
class BranchPredictorConfig:
    """gshare + bimodal hybrid predictor with BTB and RAS (Table II)."""

    gshare_bits: int = 12
    bimodal_bits: int = 12
    chooser_bits: int = 12
    #: 512 B BTB; 8 bytes per entry gives 64 entries.
    btb_entries: int = 64
    ras_entries: int = 32

    def validate(self) -> None:
        if min(self.gshare_bits, self.bimodal_bits, self.chooser_bits) < 1:
            raise ConfigError("predictor index widths must be positive")
        if self.btb_entries < 1 or self.ras_entries < 1:
            raise ConfigError("BTB and RAS must have at least one entry")


@dataclass(frozen=True)
class CacheConfig:
    """One set-associative cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ConfigError(f"{self.name}: size not divisible by assoc*line")
        if self.n_sets < 1:
            raise ConfigError(f"{self.name}: fewer than one set")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.n_sets & (self.n_sets - 1):
            raise ConfigError(f"{self.name}: set count must be a power of two")


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (one column of Table II)."""

    name: str
    fetch_width: int
    decode_width: int
    issue_width: int
    retire_width: int
    int_regs: int = 64
    fp_regs: int = 64
    int_queue: int = 32
    fp_queue: int = 16
    rob_entries: int = 64
    int_alus: int = 1
    fp_alus: int = 1
    branch_units: int = 1
    ldst_units: int = 1
    store_queue: int = 16
    load_queue: int = 16
    fetch_queue: int = 16
    predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 8 * 1024, 2, 32, 2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 8 * 1024, 2, 32, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 1024 * 1024, 8, 32, 10)
    )

    def validate(self) -> None:
        if self.issue_width < 1 or self.retire_width < 1:
            raise ConfigError("issue/retire width must be >= 1")
        if self.fetch_width < self.issue_width:
            raise ConfigError("fetch width narrower than issue width")
        if self.rob_entries < self.issue_width:
            raise ConfigError("ROB smaller than issue width")
        arch_regs = 32
        if self.int_regs <= arch_regs or self.fp_regs <= arch_regs:
            raise ConfigError("physical registers must exceed 32 architectural")
        self.predictor.validate()
        for cache in (self.l1i, self.l1d, self.l2):
            cache.validate()


@dataclass(frozen=True)
class SplConfig:
    """SPL fabric parameters (Section II-A)."""

    rows: int = 24
    cells_per_row: int = 16
    bits_per_cell: int = 8
    sharers: int = 4
    max_partitions: int = 4
    input_queue_entries: int = 16
    output_queue_entries: int = 16
    #: Fabric cycles to load one row's configuration on a context switch of
    #: the partition to a different function.
    config_cycles_per_row: int = 1
    #: Core cycles for a barrier-table update broadcast on the inter-cluster
    #: barrier bus (16 data lines plus control, Section II-B2).
    barrier_bus_latency: int = 10
    #: Maximum thread/application IDs representable in the tables.
    max_ids: int = 256

    @property
    def row_width_bits(self) -> int:
        return self.cells_per_row * self.bits_per_cell

    @property
    def row_width_bytes(self) -> int:
        return self.row_width_bits // 8

    @property
    def output_queue_words(self) -> int:
        """Output queue capacity in words: entries are row-width (16 B)."""
        return self.output_queue_entries * self.row_width_bytes // 4

    def validate(self) -> None:
        if self.rows < 1 or self.cells_per_row < 1:
            raise ConfigError("fabric must have at least one row and cell")
        if self.max_partitions > self.sharers:
            raise ConfigError("cannot have more partitions than sharers")
        if self.rows % self.max_partitions != 0:
            raise ConfigError("rows must divide evenly into max partitions")


def ooo1_config() -> CoreConfig:
    """Single-issue out-of-order core (Table II, OOO1 column)."""
    return CoreConfig(
        name="OOO1",
        fetch_width=2,
        decode_width=2,
        issue_width=1,
        retire_width=1,
        int_alus=1,
        branch_units=1,
    )


def ooo2_config() -> CoreConfig:
    """Dual-issue out-of-order core (Table II, OOO2 column)."""
    return CoreConfig(
        name="OOO2",
        fetch_width=4,
        decode_width=4,
        issue_width=2,
        retire_width=2,
        int_alus=2,
        branch_units=2,
    )


def spl_config() -> SplConfig:
    """Default 24-row, 4-way shared SPL (Section II-A)."""
    return SplConfig()


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster of a heterogeneous CMP."""

    kind: str  # "spl" or "conventional"
    core: CoreConfig
    n_cores: int = 4
    spl: SplConfig = field(default_factory=SplConfig)

    def validate(self) -> None:
        if self.kind not in ("spl", "conventional"):
            raise ConfigError(f"unknown cluster kind {self.kind!r}")
        if self.n_cores < 1:
            raise ConfigError("cluster needs at least one core")
        self.core.validate()
        if self.kind == "spl":
            self.spl.validate()
            if self.n_cores != self.spl.sharers:
                raise ConfigError("SPL sharers must equal cluster core count")


@dataclass(frozen=True)
class SystemConfig:
    """A heterogeneous CMP: a list of clusters plus global parameters."""

    clusters: List[ClusterConfig]
    memory_latency: int = MAIN_MEMORY_CYCLES
    bus_occupancy: int = 4
    migration_cycles: int = MIGRATION_CYCLES
    #: Watchdog: abort if no instruction retires anywhere for this many cycles.
    deadlock_cycles: int = 2_000_000

    @property
    def n_cores(self) -> int:
        return sum(c.n_cores for c in self.clusters)

    def validate(self) -> None:
        if not self.clusters:
            raise ConfigError("system needs at least one cluster")
        for cluster in self.clusters:
            cluster.validate()


# -- run options ---------------------------------------------------------------

#: The escape-hatch environment variables, resolved in exactly one place
#: (:meth:`RunOptions.resolve`).  Setting a variable to any non-empty
#: value disables the corresponding feature.
ENV_NO_FASTFORWARD = "REPRO_NO_FASTFORWARD"
ENV_NO_CODEGEN = "REPRO_NO_CODEGEN"
ENV_NO_LINT = "REPRO_NO_LINT"
ENV_NO_BLOCKGEN = "REPRO_NO_BLOCKGEN"


def env_enabled(var: str) -> bool:
    """True unless the REPRO_NO_* escape hatch ``var`` is set (non-empty)."""
    return not os.environ.get(var)


@dataclass(frozen=True)
class RunOptions:
    """Every knob of one simulation run, in one place.

    This replaces the kwarg/env sprawl that used to be spread over
    ``Machine.run(max_cycles=, until=, fast_forward=)``, ``execute()``,
    and ad-hoc ``REPRO_NO_*`` reads: construct a ``RunOptions``, resolve
    it once, and pass it around.  The tri-state fields (``fast_forward``,
    ``codegen``, ``lint``) default to ``None`` = "consult the
    environment"; :meth:`resolve` pins them to booleans using the
    ``REPRO_NO_FASTFORWARD`` / ``REPRO_NO_CODEGEN`` / ``REPRO_NO_LINT``
    escape hatches.  That resolution step is the *only* sanctioned env
    read for run behaviour.

    ``pause_at`` stops :meth:`Machine.run` at exactly that cycle without
    flushing fast-forward elision windows — the machine is left in the
    precise mid-run state the naive loop would inspect at the top of that
    cycle, which is what makes mid-run snapshots deterministic (see
    DESIGN.md §8).

    ``until`` is a host-side predicate closure; it cannot be serialized
    and therefore never participates in :meth:`fingerprint`.
    """

    max_cycles: int = 1_000_000_000
    #: Stop when this predicate returns True (checked between cycles).
    until: Optional[Callable[[], bool]] = None
    #: Stop at exactly this absolute cycle, preserving elision windows.
    pause_at: Optional[int] = None
    #: Quiescence-aware fast-forward scheduler (None: env-resolved).
    fast_forward: Optional[bool] = None
    #: Compiled DFG closures for SPL functions (None: env-resolved).
    codegen: Optional[bool] = None
    #: Static-verifier pre-flight in the experiment engine (None: env).
    lint: Optional[bool] = None
    #: Trace-cache block compilation of the OOO hot loop (None: env).
    blockgen: Optional[bool] = None

    def resolve(self) -> "RunOptions":
        """Pin every tri-state field against the environment, once."""
        return replace(
            self,
            fast_forward=(env_enabled(ENV_NO_FASTFORWARD)
                          if self.fast_forward is None else self.fast_forward),
            codegen=(env_enabled(ENV_NO_CODEGEN)
                     if self.codegen is None else self.codegen),
            lint=(env_enabled(ENV_NO_LINT)
                  if self.lint is None else self.lint),
            blockgen=(env_enabled(ENV_NO_BLOCKGEN)
                      if self.blockgen is None else self.blockgen),
        )

    def fingerprint(self) -> Dict[str, bool]:
        """The execution-affecting knobs, resolved, as a stable mapping.

        Used by the experiment engine's cache key so a result produced
        under one scheduler/codegen mode is never served to a request for
        another.  ``lint`` is excluded (it never changes the simulation),
        as are ``max_cycles``/``until``/``pause_at`` (run-shape inputs the
        request already encodes, or host-only closures).
        """
        resolved = self.resolve()
        return {"fast_forward": bool(resolved.fast_forward),
                "codegen": bool(resolved.codegen),
                "blockgen": bool(resolved.blockgen)}

    def validate(self) -> None:
        if self.max_cycles < 0:
            raise ConfigError("max_cycles must be >= 0")
        if self.pause_at is not None and self.pause_at < 0:
            raise ConfigError("pause_at must be >= 0")


def remap_cluster(n_cores: int = 4) -> ClusterConfig:
    """An SPL cluster: four OOO1 cores sharing a 24-row fabric."""
    spl = SplConfig(sharers=n_cores)
    return ClusterConfig(kind="spl", core=ooo1_config(), n_cores=n_cores, spl=spl)


def ooo2_cluster(n_cores: int = 4) -> ClusterConfig:
    """A conventional cluster of OOO2 cores (right side of Figure 2(a))."""
    return ClusterConfig(kind="conventional", core=ooo2_config(), n_cores=n_cores)


def ooo1_cluster(n_cores: int = 4) -> ClusterConfig:
    """A conventional cluster of OOO1 cores (homogeneous baseline)."""
    return ClusterConfig(kind="conventional", core=ooo1_config(), n_cores=n_cores)


def remap_system(n_spl_clusters: int = 1, n_ooo2_clusters: int = 1) -> SystemConfig:
    """The ReMAP heterogeneous CMP of Figure 2(a)."""
    clusters = [remap_cluster() for _ in range(n_spl_clusters)]
    clusters += [ooo2_cluster() for _ in range(n_ooo2_clusters)]
    return SystemConfig(clusters=clusters)


def with_cluster_count(config: SystemConfig, n: int) -> SystemConfig:
    """Return a copy of ``config`` with its first cluster replicated ``n`` times."""
    return replace(config, clusters=[config.clusters[0]] * n)
