"""JSON (de)serialization of system configurations.

Lets experiment configurations be saved alongside results and reloaded
exactly — `python -m repro` experiments are reproducible from the file.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.common.config import (BranchPredictorConfig, CacheConfig,
                                 ClusterConfig, CoreConfig, SplConfig,
                                 SystemConfig)
from repro.common.errors import ConfigError


def _to_dict(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj):
        return {field.name: _to_dict(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    if isinstance(obj, (list, tuple)):
        return [_to_dict(item) for item in obj]
    return obj


def system_to_dict(config: SystemConfig) -> Dict:
    """Plain-dict form of a SystemConfig (JSON-serializable)."""
    return _to_dict(config)


def system_to_json(config: SystemConfig, indent: int = 2) -> str:
    return json.dumps(system_to_dict(config), indent=indent)


def _cache_from(data: Dict) -> CacheConfig:
    return CacheConfig(**data)


def _core_from(data: Dict) -> CoreConfig:
    data = dict(data)
    data["predictor"] = BranchPredictorConfig(**data["predictor"])
    for cache in ("l1i", "l1d", "l2"):
        data[cache] = _cache_from(data[cache])
    return CoreConfig(**data)


def _cluster_from(data: Dict) -> ClusterConfig:
    data = dict(data)
    data["core"] = _core_from(data["core"])
    data["spl"] = SplConfig(**data["spl"])
    return ClusterConfig(**data)


def system_from_dict(data: Dict) -> SystemConfig:
    """Rebuild and validate a SystemConfig from its dict form."""
    try:
        data = dict(data)
        data["clusters"] = [_cluster_from(cluster)
                            for cluster in data["clusters"]]
        config = SystemConfig(**data)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed system config: {exc}") from exc
    config.validate()
    return config


def system_from_json(text: str) -> SystemConfig:
    return system_from_dict(json.loads(text))
