"""JSON (de)serialization: system configs and the shared codec registry.

Lets experiment configurations be saved alongside results and reloaded
exactly — `python -m repro` experiments are reproducible from the file.

Every versioned record format in the repo (system configs, cached
:class:`~repro.experiments.runner.RunResult` records, metrics snapshots,
machine snapshots) registers a :class:`Codec` here, so producing and
consuming records shares one envelope shape (``kind`` + ``schema`` +
payload) and one version-check error path instead of each module
hand-rolling its own.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, Optional

from repro.common.config import (BranchPredictorConfig, CacheConfig,
                                 ClusterConfig, CoreConfig, SplConfig,
                                 SystemConfig)
from repro.common.errors import ConfigError


# -- versioned codec registry ---------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Codec:
    """One versioned record format: how to flatten and rebuild a value."""

    kind: str
    version: int
    encode: Callable[[Any], Dict]
    decode: Callable[[Dict], Any]


_CODECS: Dict[str, Codec] = {}


def register_codec(kind: str, version: int, encode: Callable[[Any], Dict],
                   decode: Callable[[Dict], Any]) -> Codec:
    """Register (or idempotently re-register) a record format.

    Modules register their own formats at import time; re-registration
    with a different version is a programming error caught loudly.
    """
    existing = _CODECS.get(kind)
    if existing is not None and existing.version != version:
        raise ConfigError(
            f"codec {kind!r} already registered at v{existing.version}, "
            f"cannot re-register at v{version}")
    codec = Codec(kind, version, encode, decode)
    _CODECS[kind] = codec
    return codec


def check_schema(kind: str, record: Dict, version: int) -> None:
    """Shared version gate: raise ConfigError unless the record matches."""
    got = record.get("schema")
    if got != version:
        raise ConfigError(
            f"{kind} record has schema v{got}, this code reads v{version}")


def encode_record(kind: str, value: Any) -> Dict:
    """Stamp ``value`` into a self-describing versioned record."""
    codec = _CODECS.get(kind)
    if codec is None:
        raise ConfigError(f"no codec registered for kind {kind!r}")
    return {"kind": kind, "schema": codec.version,
            "payload": codec.encode(value)}


def decode_record(record: Dict, expect_kind: Optional[str] = None) -> Any:
    """Rebuild the value an :func:`encode_record` record describes."""
    kind = record.get("kind")
    if expect_kind is not None and kind != expect_kind:
        raise ConfigError(
            f"expected a {expect_kind!r} record, got kind {kind!r}")
    codec = _CODECS.get(kind)
    if codec is None:
        raise ConfigError(f"no codec registered for kind {kind!r}")
    check_schema(kind, record, codec.version)
    return codec.decode(record["payload"])


def registered_codecs() -> Dict[str, Codec]:
    """Read-only view of the registry (for tests and tooling)."""
    return dict(_CODECS)


def _to_dict(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj):
        return {field.name: _to_dict(getattr(obj, field.name))
                for field in dataclasses.fields(obj)}
    if isinstance(obj, (list, tuple)):
        return [_to_dict(item) for item in obj]
    return obj


def system_to_dict(config: SystemConfig) -> Dict:
    """Plain-dict form of a SystemConfig (JSON-serializable)."""
    return _to_dict(config)


def system_to_json(config: SystemConfig, indent: int = 2) -> str:
    return json.dumps(system_to_dict(config), indent=indent)


def _cache_from(data: Dict) -> CacheConfig:
    return CacheConfig(**data)


def _core_from(data: Dict) -> CoreConfig:
    data = dict(data)
    data["predictor"] = BranchPredictorConfig(**data["predictor"])
    for cache in ("l1i", "l1d", "l2"):
        data[cache] = _cache_from(data[cache])
    return CoreConfig(**data)


def _cluster_from(data: Dict) -> ClusterConfig:
    data = dict(data)
    data["core"] = _core_from(data["core"])
    data["spl"] = SplConfig(**data["spl"])
    return ClusterConfig(**data)


def system_from_dict(data: Dict) -> SystemConfig:
    """Rebuild and validate a SystemConfig from its dict form."""
    try:
        data = dict(data)
        data["clusters"] = [_cluster_from(cluster)
                            for cluster in data["clusters"]]
        config = SystemConfig(**data)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed system config: {exc}") from exc
    config.validate()
    return config


def system_from_json(text: str) -> SystemConfig:
    return system_from_dict(json.loads(text))


#: SystemConfig's dict form has been stable since the first release.
SYSTEM_SCHEMA_VERSION = 1

register_codec("system-config", SYSTEM_SCHEMA_VERSION,
               system_to_dict, system_from_dict)
