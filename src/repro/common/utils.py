"""Small shared helpers: word arithmetic and geometric means."""

from __future__ import annotations

import math
from typing import Iterable

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
WORD_SIGN = 0x80000000


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Wrap a Python int into an unsigned ``bits``-bit value."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret an unsigned ``bits``-bit value as two's complement."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend a ``from_bits`` value into ``to_bits`` (unsigned repr)."""
    return to_unsigned(to_signed(value, from_bits), to_bits)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises ValueError on an empty or non-positive input."""
    items = list(values)
    if not items:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def mean(values: Iterable[float]) -> float:
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0
