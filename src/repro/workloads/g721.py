"""g721enc / g721dec workload variants (computation-only, Table III).

Variants: ``seq``, ``seq_ooo2``, and ``spl`` (1Th+Comp run as four
concurrent copies sharing the fabric).  The fabric configuration evaluates
the full fmult dataflow — magnitude/exponent extraction (the ``quan``
table search becomes a comparator bank feeding an adder tree), mantissa
normalization through the barrel shifters, the 6-bit multiply, and the
sign fix-up — one result per fabric cycle.
"""

from __future__ import annotations

from typing import List

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm, MemoryImage, Program
from repro.workloads.base import RunSpec
from repro.workloads.kernels.g721 import (POWER2, TAPS, make_data,
                                          predictor_reference)
from repro.workloads.pipeline_common import (COMPUTE_CONFIG,
                                             build_loop_program,
                                             concurrent_spl_spec,
                                             single_thread_spec)

# Registers (r1/r2 reserved by build_loop_program).
PA, PS, ACC, POUT = "r3", "r4", "r5", "r6"
AN, SRN, RES = "r7", "r8", "r9"
T0, T1, T2, T3 = "r10", "r11", "r12", "r13"
PTAB, QI = "r14", "r15"


def fmult_function(name: str = "g721_fmult") -> SplFunction:
    """The fmult dataflow graph (one (an, srn) pair per invocation)."""
    g = Dfg(name)
    an = g.input("an", 0, width=2)
    srn = g.input("srn", 4, width=2)
    zero = g.const(0, 2)
    # anmag
    neg = g.sub(zero, an)
    negm = g.op(DfgOp.AND, neg, g.const(0x1FFF, 2))
    gt0 = g.op(DfgOp.CMPGT, an, zero, width=1)
    anmag = g.select(gt0, an, negm, )
    # anexp = quan(anmag) - 6: count of thresholds <= anmag, as a
    # comparator bank feeding a narrow adder tree.
    flags = [g.op(DfgOp.CMPGT, anmag, g.const(threshold - 1, 2), width=1)
             for threshold in POWER2]
    while len(flags) > 1:
        nxt = []
        for i in range(0, len(flags) - 1, 2):
            nxt.append(g.op(DfgOp.ADD, flags[i], flags[i + 1], width=1))
        if len(flags) % 2:
            nxt.append(flags[-1])
        flags = nxt
    anexp = g.op(DfgOp.SUB, flags[0], g.const(6, 1), width=2)
    # anmant
    exp_ge0 = g.op(DfgOp.CMPGT, anexp, g.const(-1, 2), width=1)
    pos_amt = g.max_(anexp, zero)
    neg_amt = g.max_(g.sub(zero, anexp), zero)
    mant = g.select(exp_ge0,
                    g.op(DfgOp.SHRV, anmag, pos_amt),
                    g.op(DfgOp.SHLV, anmag, neg_amt))
    is_zero = g.op(DfgOp.CMPEQ, anmag, zero, width=1)
    anmant = g.select(is_zero, g.const(32, 2), mant)
    # wanexp / wanmant
    sx = g.op(DfgOp.AND, g.op(DfgOp.SHR, srn, shift=6), g.const(0xF, 2))
    wanexp = g.sub(g.add(anexp, sx), g.const(13, 2))
    product = g.op(DfgOp.MUL, anmant,
                   g.op(DfgOp.AND, srn, g.const(63, 2)), width=4)
    wanmant = g.op(DfgOp.SHR, g.add(product, g.const(0x30, 4)), shift=4,
                   width=4)
    # retval with sign fix-up
    wexp_ge0 = g.op(DfgOp.CMPGT, wanexp, g.const(-1, 2), width=1)
    pos_val = g.op(DfgOp.AND,
                   g.op(DfgOp.SHLV, wanmant, g.max_(wanexp, zero), width=4),
                   g.const(0x7FFF, 4), width=2)
    neg_val = g.op(DfgOp.SHRV, wanmant,
                   g.max_(g.sub(zero, wanexp), zero), width=2)
    retval = g.select(wexp_ge0, pos_val, neg_val)
    sign = g.op(DfgOp.CMPGT, zero, g.op(DfgOp.XOR, an, srn), width=1)
    g.output("result",
             g.op(DfgOp.SELECT, sign, g.op(DfgOp.SUB, zero, retval, width=4),
                  retval, width=4))
    return SplFunction(g)


class G721Layout:
    def __init__(self, image: MemoryImage, items: int, seed: int) -> None:
        self.items = items
        self.an, self.srn = make_data(items, seed)
        self.an_addr = image.alloc_words(self.an)
        self.srn_addr = image.alloc_words(self.srn)
        self.out = image.alloc_zeroed(items)

    def check(self, memory) -> None:
        expected = predictor_reference(self.an, self.srn)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "g721 predictor mismatch"


def _emit_init(lay: G721Layout, power2_addr: int):
    def emit(a: Asm) -> None:
        a.li(PA, lay.an_addr)
        a.li(PS, lay.srn_addr)
        a.li(POUT, lay.out)
        a.li("r16", power2_addr)
    return emit


def _emit_fmult_software(a: Asm) -> None:
    """result <- fmult(AN, SRN) following the C code; clobbers T0-T3, QI."""
    d = a.fresh_label
    # anmag (T0)
    pos = d("fm_pos")
    a.mov(T0, AN)
    a.bgt(AN, "r0", pos)
    a.neg(T0, AN)
    a.andi(T0, T0, 0x1FFF)
    a.label(pos)
    # quan: linear table search (branchy, as in the C code)
    a.mov(PTAB, "r16")
    a.li(QI, 0)
    qloop = d("quan")
    qdone = d("quan_done")
    a.label(qloop)
    a.lw(T1, PTAB, 0)
    a.blt(T0, T1, qdone)
    a.addi(PTAB, PTAB, 4)
    a.addi(QI, QI, 1)
    a.li(T1, len(POWER2))
    a.blt(QI, T1, qloop)
    a.label(qdone)
    a.addi(QI, QI, -6)          # anexp
    # anmant (T1)
    mant_done = d("mant_done")
    not_zero = d("nz")
    a.li(T1, 32)
    a.bnez(T0, not_zero)
    a.j(mant_done)
    a.label(not_zero)
    shl_case = d("shl")
    a.blt(QI, "r0", shl_case)
    a.srl(T1, T0, QI)
    a.j(mant_done)
    a.label(shl_case)
    a.neg(T2, QI)
    a.sll(T1, T0, T2)
    a.label(mant_done)
    # wanexp (T2) = anexp + ((srn >> 6) & 0xF) - 13
    a.srai(T2, SRN, 6)
    a.andi(T2, T2, 0xF)
    a.add(T2, T2, QI)
    a.addi(T2, T2, -13)
    # wanmant (T1) = (anmant * (srn & 63) + 0x30) >> 4
    a.andi(T3, SRN, 63)
    a.mul(T1, T1, T3)
    a.addi(T1, T1, 0x30)
    a.srai(T1, T1, 4)
    # retval (T0)
    rneg = d("rneg")
    rdone = d("rdone")
    a.blt(T2, "r0", rneg)
    a.sll(T0, T1, T2)
    a.andi(T0, T0, 0x7FFF)
    a.j(rdone)
    a.label(rneg)
    a.neg(T3, T2)
    a.srl(T0, T1, T3)
    a.label(rdone)
    # sign fix-up
    sdone = d("sdone")
    a.xor(T1, AN, SRN)
    a.bge(T1, "r0", sdone)
    a.neg(T0, T0)
    a.label(sdone)
    a.mov(RES, T0)


def build_seq_program(lay: G721Layout, power2_addr: int,
                      name: str) -> Program:
    def body(a: Asm) -> None:
        a.li(ACC, 0)
        for _ in range(TAPS):
            a.lw(AN, PA, 0)
            a.lw(SRN, PS, 0)
            _emit_fmult_software(a)
            a.add(ACC, ACC, RES)
            a.addi(PA, PA, 4)
            a.addi(PS, PS, 4)
        a.sw(ACC, POUT, 0)
        a.addi(POUT, POUT, 4)

    return build_loop_program(name, lay.items, _emit_init(lay, power2_addr),
                              body)


def build_spl_program(lay: G721Layout, name: str) -> Program:
    """1Th+Comp: one fabric fmult per tap, software-pipelined one deep."""
    def init(a: Asm) -> None:
        a.li(PA, lay.an_addr)
        a.li(PS, lay.srn_addr)
        a.li(POUT, lay.out)

    def body(a: Asm) -> None:
        a.li(ACC, 0)
        # Issue all eight taps back-to-back, then drain: the fabric
        # pipelines them (II = 1 fabric cycle).
        for _ in range(TAPS):
            a.spl_loadm(PA, 0)
            a.spl_loadm(PS, 4)
            a.spl_init(COMPUTE_CONFIG)
            a.addi(PA, PA, 4)
            a.addi(PS, PS, 4)
        for _ in range(TAPS):
            a.spl_recv(RES)
            a.add(ACC, ACC, RES)
        a.sw(ACC, POUT, 0)
        a.addi(POUT, POUT, 4)

    return build_loop_program(name, lay.items, init, body)


def _make_image(items: int, seed: int, copies: int = 1):
    image = MemoryImage()
    power2_addr = image.alloc_words(POWER2)
    layouts = [G721Layout(image, items, seed + 31 * i)
               for i in range(copies)]
    return image, power2_addr, layouts


def seq_spec(bench: str = "g721enc", items: int = 48,
             wide_core: bool = False) -> RunSpec:
    seed = 42 if bench == "g721enc" else 77
    image, power2_addr, layouts = _make_image(items, seed)
    lay = layouts[0]
    program = build_seq_program(lay, power2_addr, f"{bench}_seq")
    suffix = "seq_ooo2" if wide_core else "seq"
    return single_thread_spec(f"{bench}/{suffix}", image, program,
                              lambda memory: lay.check(memory), items,
                              wide=wide_core)


def spl_spec(bench: str = "g721enc", items: int = 48,
             copies: int = 4) -> RunSpec:
    seed = 42 if bench == "g721enc" else 77
    image, _, layouts = _make_image(items, seed, copies)
    programs = [build_spl_program(lay, f"{bench}_spl_t{i}")
                for i, lay in enumerate(layouts)]
    function = fmult_function()

    def setup(machine) -> None:
        for core in range(copies):
            machine.configure_spl(core, COMPUTE_CONFIG, function)

    def check(memory) -> None:
        for lay in layouts:
            lay.check(memory)

    return concurrent_spl_spec(f"{bench}/spl", image, programs, setup,
                               check, items)


def variants(bench: str):
    return {
        "seq": lambda **kw: seq_spec(bench, **kw),
        "seq_ooo2": lambda **kw: seq_spec(bench, wide_core=True, **kw),
        "spl": lambda **kw: spl_spec(bench, **kw),
    }


VARIANTS_ENC = variants("g721enc")
VARIANTS_DEC = variants("g721dec")
