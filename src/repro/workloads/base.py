"""Workload framework: run specifications and system presets.

Every benchmark variant is described by a :class:`RunSpec`: the workload
(programs + memory image + SPL setup), the machine configuration it runs
on, and the energy-accounting footprint of the hardware configuration it
represents (Section V compares configurations of equal *area*, so idle
blocks still leak).

Energy-accounting conventions (documented in EXPERIMENTS.md):

* ``seq``            — one OOO1 core.
* ``seq_ooo2``       — one OOO2 core.
* ``spl`` (1Th+Comp) — computation-only workloads run four concurrent
  copies to model fabric contention (Section V-A); energy of the whole
  (4 cores + SPL) cluster is divided by four for per-thread ED.
* ``2Th+Comm`` / ``2Th+CompComm`` — two OOO1 cores plus half the SPL
  (the other half assumed in use by another pair, Section V-A).
* ``OOO2+Comm``      — two OOO2 cores; the network is free.
* barrier variants   — all cores of the configuration plus any SPL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import (ClusterConfig, SystemConfig, ooo1_cluster,
                                 ooo2_cluster, remap_cluster)
from repro.common.errors import WorkloadError
from repro.system.workload import Workload


@dataclass
class RunSpec:
    """Everything needed to execute and account one benchmark variant."""

    name: str
    workload: Workload
    system: SystemConfig
    #: Core indices charged as OOO1 / OOO2 in the energy model.
    ooo1_cores: Tuple[int, ...] = ()
    ooo2_cores: Tuple[int, ...] = ()
    #: SPL clusters charged: (cluster_id, leakage_fraction).
    spl_clusters: Tuple[Tuple[int, float], ...] = ()
    #: Divide total configuration energy by this (concurrent-copy runs).
    energy_divisor: float = 1.0
    #: Work units completed, for per-item/per-iteration metrics.
    region_items: int = 1
    #: Free-form details for reports.
    info: Dict = field(default_factory=dict)
    max_cycles: int = 80_000_000

    def __post_init__(self) -> None:
        if self.region_items < 1:
            raise WorkloadError(f"{self.name}: region_items must be >= 1")


# -- system presets ------------------------------------------------------------


def seq_system() -> SystemConfig:
    """A single conventional OOO1 cluster (the baseline core)."""
    return SystemConfig(clusters=[ooo1_cluster(4)])


def ooo2_system() -> SystemConfig:
    """A conventional OOO2 cluster (OOO2+Comm hardware before the network
    is attached)."""
    return SystemConfig(clusters=[ooo2_cluster(4)])


def remap_machine_system(n_spl_clusters: int = 1) -> SystemConfig:
    """``n`` four-core SPL clusters (barrier experiments use up to four)."""
    return SystemConfig(clusters=[remap_cluster()
                                  for _ in range(n_spl_clusters)])


def homogeneous_barrier_system(n_threads: int) -> SystemConfig:
    """Area-equivalent homogeneous clusters for Section V-C2.

    Each SPL cluster is replaced by six OOO1 cores (the SPL's area equals
    two cores) with a free dedicated barrier network.  Enough clusters are
    instantiated to hold ``n_threads``.
    """
    n_clusters = max(1, -(-n_threads // 6))
    return SystemConfig(clusters=[ooo1_cluster(6)
                                  for _ in range(n_clusters)])


def spl_clusters_for_threads(n_threads: int) -> int:
    """SPL clusters needed for ``n_threads`` at four cores per cluster."""
    return max(1, -(-n_threads // 4))


def require_power_of_two_threads(n_threads: int, name: str) -> None:
    if n_threads not in (1, 2, 4, 8, 16):
        raise WorkloadError(f"{name}: thread count {n_threads} not in "
                            f"{{1, 2, 4, 8, 16}}")


def chunk_bounds(total: int, n_chunks: int, index: int) -> Tuple[int, int]:
    """Split ``range(total)`` into contiguous chunks (last gets remainder)."""
    base = total // n_chunks
    extra = total % n_chunks
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return start, start + size
