"""473.astar makebound2 workload (communication+computation).

The producer walks the boundary list and loads the four neighbours' fill
numbers; the fabric compares them against the fill number and packs the
"expand" decisions with the cell index into one word; the consumer marks
and appends the expanded neighbours (branchy, store-heavy)."""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm
from repro.workloads.kernels.astar import (FILLNUM, GRID_W, NOWAY,
                                           makebound2_reference, make_grid)
from repro.workloads.stream_framework import RESULT, StreamKernel, \
    make_variants

PCELLS, CELL, PMAP = "r3", "r4", "r5"
F0, F1, F2, F3 = "r6", "r7", "r8", "r9"
T0, T1, T2 = "r10", "r11", "r12"
PB2, MAPBASE, NBR = "r13", "r14", "r15"

#: Neighbour offsets in cell-index units, fixed order (E, W, S, N).
OFFSETS = (1, -1, GRID_W, -GRID_W)


def bound_function(name: str = "astar_bound") -> SplFunction:
    """packed = (cell << 4) | expand-mask over the four neighbours."""
    g = Dfg(name)
    flags = [g.input(f"f{i}", 4 * i, width=2) for i in range(4)]
    cell = g.input("cell", 16)
    fill = g.const(FILLNUM, 2)
    noway = g.const(NOWAY, 2)
    one = g.const(1, 1)
    mask = None
    for i, flag in enumerate(flags):
        unfilled = g.op(DfgOp.XOR,
                        g.op(DfgOp.CMPEQ, flag, fill, width=1), one,
                        width=1)
        passable = g.op(DfgOp.XOR,
                        g.op(DfgOp.CMPEQ, flag, noway, width=1), one,
                        width=1)
        miss = g.op(DfgOp.AND, unfilled, passable, width=1)
        bit = g.op(DfgOp.SHL, miss, shift=i, width=1) if i else miss
        mask = bit if mask is None else g.op(DfgOp.OR, mask, bit, width=1)
    packed = g.op(DfgOp.OR, g.op(DfgOp.SHL, cell, shift=4, width=4),
                  mask, width=4)
    g.output("packed", packed)
    return SplFunction(g)


class AstarKernel(StreamKernel):
    bench_name = "astar"

    def __init__(self, image, items: int, seed: int) -> None:
        super().__init__(image, items, seed)
        self.waymap, self.cells = make_grid(items, seed)
        self.map_addr = image.alloc_words(self.waymap)
        self.cells_addr = image.alloc_words(self.cells)
        ref_map, ref_bound2 = makebound2_reference(self.waymap, self.cells)
        self.ref_map = ref_map
        self.ref_bound2 = ref_bound2
        self.bound2_addr = image.alloc_zeroed(4 * items + 1)
        self.bound2_len_addr = image.alloc_zeroed(1)

    def make_function(self) -> SplFunction:
        return bound_function()

    def emit_init(self, a: Asm, role: str) -> None:
        if role in ("seq", "producer"):
            a.li(PCELLS, self.cells_addr)
            a.li(PMAP, self.map_addr)
        if role in ("seq", "consumer"):
            a.li(MAPBASE, self.map_addr)
            a.li(PB2, self.bound2_addr)

    def emit_stage_a(self, a: Asm) -> None:
        a.lw(CELL, PCELLS, 0)
        a.addi(PCELLS, PCELLS, 4)
        a.slli(T0, CELL, 2)
        a.add(T0, T0, PMAP)
        for reg, offset in zip((F0, F1, F2, F3), OFFSETS):
            a.lw(reg, T0, 4 * offset)

    def emit_f_software(self, a: Asm) -> None:
        a.li(RESULT, 0)
        a.li(T1, FILLNUM)
        for i, reg in enumerate((F0, F1, F2, F3)):
            skip = a.fresh_label("filled")
            a.beq(reg, T1, skip)
            a.beqz(reg, skip)  # NOWAY: not passable
            a.ori(RESULT, RESULT, 1 << i)
            a.label(skip)
        a.slli(T0, CELL, 4)
        a.or_(RESULT, RESULT, T0)

    def emit_issue(self, a: Asm, config: int) -> None:
        for reg, offset in zip((F0, F1, F2, F3), (0, 4, 8, 12)):
            a.spl_load(reg, offset)
        a.spl_load(CELL, 16)
        a.spl_init(config)

    def emit_stage_b(self, a: Asm, recv) -> None:
        recv(T2)
        a.srli(NBR, T2, 4)  # the cell index
        for i, offset in enumerate(OFFSETS):
            skip = a.fresh_label("noexp")
            a.andi(T0, T2, 1 << i)
            a.beqz(T0, skip)
            a.addi(T1, NBR, offset)       # neighbour index
            a.sw(T1, PB2, 0)              # append to bound2
            a.addi(PB2, PB2, 4)
            a.slli(T0, T1, 2)
            a.add(T0, T0, MAPBASE)
            a.li(T1, FILLNUM)
            a.sw(T1, T0, 0)               # mark filled
            a.label(skip)

    def emit_fini(self, a: Asm, role: str) -> None:
        if role in ("seq", "consumer"):
            a.li(T0, self.bound2_addr)
            a.sub(T0, PB2, T0)
            a.srli(T0, T0, 2)
            a.li(T1, self.bound2_len_addr)
            a.sw(T0, T1, 0)

    def check(self, memory) -> None:
        length = memory.read_word_signed(self.bound2_len_addr)
        assert length == len(self.ref_bound2), \
            f"astar bound2 length {length} != {len(self.ref_bound2)}"
        got = memory.read_words(self.bound2_addr, length)
        assert got == self.ref_bound2, "astar bound2 mismatch"
        got_map = memory.read_words(self.map_addr, len(self.ref_map))
        assert got_map == self.ref_map, "astar waymap mismatch"


VARIANTS = make_variants(AstarKernel, default_items=192)
