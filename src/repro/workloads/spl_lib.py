"""Library of SPL functions used by the workloads (Section III).

Each function is a dataflow graph mapped onto fabric rows by
:mod:`repro.core.mapper`.  The hmmer ``mc`` mapping follows Figure 6's
sequential max chain and occupies 10 rows, as in the paper.
"""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.workloads.kernels.hmmer import INFTY


def hmmer_mc_function() -> SplFunction:
    """Figure 6: the P7Viterbi ``mc`` calculation (10 rows).

    Inputs (32-byte entry, two beats):
      beat 0: mpp[k-1], tpmm[k-1], ip[k-1], tpim[k-1]
      beat 1: dpp[k-1], tpdm[k-1], t4 = xmb + bp[k], ms[k]
    """
    g = Dfg("hmmer_mc")
    mpp = g.input("mpp", 0)
    tpmm = g.input("tpmm", 4)
    ip = g.input("ip", 8)
    tpim = g.input("tpim", 12)
    dpp = g.input("dpp", 16)
    tpdm = g.input("tpdm", 20)
    t4 = g.input("t4", 24)
    ms = g.input("ms", 28)
    t1 = g.add(mpp, tpmm)          # row 1
    t2 = g.add(ip, tpim)           # row 1
    t3 = g.add(dpp, tpdm)          # row 1
    m1 = g.max_(t1, t2)            # rows 2-3
    m2 = g.max_(m1, t3)            # rows 4-5
    m3 = g.max_(m2, t4)            # rows 6-7
    s = g.add(m3, ms)              # row 8
    mc = g.clamp_floor(s, -INFTY)  # rows 9-10
    g.output("mc", mc)
    return SplFunction(g)


def mac2_function(name: str = "ll3_mac2") -> SplFunction:
    """LL3 inner-product step: z0*x0 + z1*x1 (Figure 1(a) mode)."""
    g = Dfg(name)
    z0 = g.input("z0", 0)
    x0 = g.input("x0", 4)
    z1 = g.input("z1", 8)
    x1 = g.input("x1", 12)
    g.output("s", g.add(g.mul(z0, x0), g.mul(z1, x1)))
    return SplFunction(g)


def mac4_function(name: str = "ll3_mac4") -> SplFunction:
    """LL3 inner-product step over four element pairs (two-beat entry).

    Beat 0 carries z[k..k+3] and beat 1 carries x[k..k+3], so each beat is
    one row-wide ``spl_loadv``.
    """
    g = Dfg(name)
    products = []
    for i in range(4):
        z = g.input(f"z{i}", 4 * i)
        x = g.input(f"x{i}", 16 + 4 * i)
        products.append(g.mul(z, x))
    s01 = g.add(products[0], products[1])
    s23 = g.add(products[2], products[3])
    g.output("s", g.add(s01, s23))
    return SplFunction(g)


def sad8_function(name: str = "mpeg2_sad8") -> SplFunction:
    """mpeg2enc dist1: sum of absolute byte differences over 8 pixels.

    Inputs: 8 reference bytes at offsets 0-7, 8 candidate bytes at 8-15.
    Byte differences are computed at 2-byte width (so the subtraction
    cannot wrap) and reduced with an adder tree.
    """
    g = Dfg(name)
    diffs = []
    for i in range(8):
        a = g.input(f"a{i}", i, width=1)
        b = g.input(f"b{i}", 8 + i, width=1)
        # |a - b| over unsigned bytes, widened to 16 bits.
        wa = g.op(DfgOp.AND, a, g.const(0xFF, 2), width=2)
        wb = g.op(DfgOp.AND, b, g.const(0xFF, 2), width=2)
        d = g.sub(wa, wb)
        diffs.append(g.max_(d, g.sub(wb, wa)))
    while len(diffs) > 1:
        nxt = []
        for i in range(0, len(diffs) - 1, 2):
            nxt.append(g.op(DfgOp.ADD, diffs[i], diffs[i + 1], width=4))
        if len(diffs) % 2:
            nxt.append(diffs[-1])
        diffs = nxt
    g.output("sad", diffs[0])
    return SplFunction(g)
