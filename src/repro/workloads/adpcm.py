"""adpcm decoder workload (communication+computation, 99% of execution).

Split per Section V-B1: the producer decodes the bitstream (delta
extraction + step-table/index bookkeeping, which needs the 89-entry
memory table) and feeds (delta, step) into the fabric; the fabric computes
``vpdiff``, applies the sign, and keeps the ``valpred`` predictor state in
a delay register; the consumer stores the reconstructed samples.  Moving
the vpdiff conditionals into the fabric removes the unpredictable
branches the paper calls out for adpcm.
"""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm
from repro.workloads.kernels.adpcm import (INDEX_TABLE, SHORT_MAX, SHORT_MIN,
                                           STEPSIZE_TABLE, decode_reference,
                                           make_deltas)
from repro.workloads.stream_framework import RESULT, StreamKernel, \
    make_variants

PD, PSTEP, PIDXTAB, INDEX = "r3", "r4", "r5", "r6"
DELTA, STEP = "r7", "r8"
T0, T1, VALPRED = "r9", "r10", "r11"
POUT = "r14"


def adpcm_function(name: str = "adpcm_step") -> SplFunction:
    """vpdiff + sign + saturating valpred update (valpred is fabric state)."""
    g = Dfg(name)
    delta = g.input("delta", 0, width=1)
    step = g.input("step", 4, width=2)
    valpred = g.delay(width=2, init=0)
    zero1 = g.const(0, 1)
    vpdiff = g.op(DfgOp.SHR, step, shift=3, width=2)
    for bit, shift in ((4, 0), (2, 1), (1, 2)):
        flag = g.op(DfgOp.CMPGT,
                    g.op(DfgOp.AND, delta, g.const(bit, 1), width=1),
                    zero1, width=1)
        term = g.op(DfgOp.SHR, step, shift=shift, width=2) if shift else step
        vpdiff = g.op(DfgOp.ADD, vpdiff,
                      g.select(flag, term, g.const(0, 2)), width=4)
    sign = g.op(DfgOp.CMPGT,
                g.op(DfgOp.AND, delta, g.const(8, 1), width=1),
                zero1, width=1)
    updated = g.select(sign,
                       g.op(DfgOp.SUB, valpred, vpdiff, width=4),
                       g.op(DfgOp.ADD, valpred, vpdiff, width=4))
    saturated = g.clamp(updated, SHORT_MIN, SHORT_MAX)
    g.set_delay_source(valpred, saturated)
    g.output("sample", saturated)
    # The vpdiff computation is feed-forward and retimes out of the loop;
    # the true recurrence is add/sub -> select -> clamp on valpred
    # (~6 rows), which bounds the initiation interval.
    return SplFunction(g, retimed_feedback_ii=6)


class AdpcmKernel(StreamKernel):
    bench_name = "adpcm"

    def __init__(self, image, items: int, seed: int) -> None:
        super().__init__(image, items, seed)
        self.deltas = make_deltas(items, seed)
        self.deltas_addr = image.alloc_bytes(bytes(self.deltas))
        self.steps_addr = image.alloc_words(STEPSIZE_TABLE)
        self.idxtab_addr = image.alloc_words(INDEX_TABLE)
        self.out = image.alloc_zeroed(items)

    def make_function(self) -> SplFunction:
        return adpcm_function(f"adpcm_step_{self.seed}")

    def emit_init(self, a: Asm, role: str) -> None:
        if role in ("seq", "producer"):
            a.li(PD, self.deltas_addr)
            a.li(PSTEP, self.steps_addr)
            a.li(PIDXTAB, self.idxtab_addr)
            a.li(INDEX, 0)
            a.li(VALPRED, 0)
        if role in ("seq", "consumer"):
            a.li(POUT, self.out)

    def emit_stage_a(self, a: Asm) -> None:
        """Read a delta, fetch step, update the index (producer side)."""
        a.lbu(DELTA, PD, 0)
        a.addi(PD, PD, 1)
        a.slli(T0, INDEX, 2)
        a.add(T0, T0, PSTEP)
        a.lw(STEP, T0, 0)
        # index += indexTable[delta & 7]; clamp to [0, 88]
        a.andi(T0, DELTA, 7)
        a.slli(T0, T0, 2)
        a.add(T0, T0, PIDXTAB)
        a.lw(T0, T0, 0)
        a.add(INDEX, INDEX, T0)
        lo = a.fresh_label("ilo")
        hi = a.fresh_label("ihi")
        a.bge(INDEX, "r0", lo)
        a.li(INDEX, 0)
        a.label(lo)
        a.li(T0, len(STEPSIZE_TABLE) - 1)
        a.ble(INDEX, T0, hi)
        a.mov(INDEX, T0)
        a.label(hi)

    def emit_f_software(self, a: Asm) -> None:
        """vpdiff/sign/saturate in software (seq and comm variants)."""
        a.srai(T0, STEP, 3)  # vpdiff
        for bit, shift in ((4, 0), (2, 1), (1, 2)):
            skip = a.fresh_label("vp")
            a.andi(T1, DELTA, bit)
            a.beqz(T1, skip)
            if shift:
                a.srai(T1, STEP, shift)
                a.add(T0, T0, T1)
            else:
                a.add(T0, T0, STEP)
            a.label(skip)
        plus = a.fresh_label("plus")
        done = a.fresh_label("sdone")
        a.andi(T1, DELTA, 8)
        a.beqz(T1, plus)
        a.sub(VALPRED, VALPRED, T0)
        a.j(done)
        a.label(plus)
        a.add(VALPRED, VALPRED, T0)
        a.label(done)
        lo = a.fresh_label("clo")
        hi = a.fresh_label("chi")
        a.li(T1, SHORT_MIN)
        a.bge(VALPRED, T1, lo)
        a.mov(VALPRED, T1)
        a.label(lo)
        a.li(T1, SHORT_MAX)
        a.ble(VALPRED, T1, hi)
        a.mov(VALPRED, T1)
        a.label(hi)
        a.mov(RESULT, VALPRED)

    def emit_issue(self, a: Asm, config: int) -> None:
        a.spl_load(DELTA, 0)
        a.spl_load(STEP, 4)
        a.spl_init(config)

    def emit_stage_b(self, a: Asm, recv) -> None:
        recv(T1)
        a.sw(T1, POUT, 0)
        a.addi(POUT, POUT, 4)

    def check(self, memory) -> None:
        expected = decode_reference(self.deltas)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "adpcm decode mismatch"


VARIANTS = make_variants(AdpcmKernel, default_items=384)
