"""300.twolf new_dbox_a workload (communication+computation)."""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm
from repro.workloads.kernels.twolf import dbox_reference, make_terminals
from repro.workloads.stream_framework import RESULT, StreamKernel, \
    make_variants

PA, PB, PC, PD = "r3", "r4", "r5", "r6"
VA, VB, VC, VD = "r7", "r8", "r9", "r10"
T0, T1 = "r11", "r12"
ACC, POUT = "r13", "r14"


def dbox_function(name: str = "twolf_dbox") -> SplFunction:
    """min(|a-c|, |a-d|, |b-c|, |b-d|) over four staged words."""
    g = Dfg(name)
    a_ = g.input("a", 0, width=2)
    b_ = g.input("b", 4, width=2)
    c_ = g.input("c", 8, width=2)
    d_ = g.input("d", 12, width=2)

    def absdiff(x, y):
        return g.max_(g.op(DfgOp.SUB, x, y, width=2),
                      g.op(DfgOp.SUB, y, x, width=2))

    m1 = g.min_(absdiff(a_, c_), absdiff(a_, d_))
    m2 = g.min_(absdiff(b_, c_), absdiff(b_, d_))
    g.output("cost", g.min_(m1, m2))
    return SplFunction(g)


class TwolfKernel(StreamKernel):
    bench_name = "twolf"

    def __init__(self, image, items: int, seed: int) -> None:
        super().__init__(image, items, seed)
        self.ax, self.bx, self.cx, self.dx = make_terminals(items, seed)
        self.a_addr = image.alloc_words(self.ax)
        self.b_addr = image.alloc_words(self.bx)
        self.c_addr = image.alloc_words(self.cx)
        self.d_addr = image.alloc_words(self.dx)
        self.costs = image.alloc_zeroed(items)
        self.total = image.alloc_zeroed(1)

    def make_function(self) -> SplFunction:
        return dbox_function()

    def emit_init(self, a: Asm, role: str) -> None:
        if role in ("seq", "producer"):
            a.li(PA, self.a_addr)
            a.li(PB, self.b_addr)
            a.li(PC, self.c_addr)
            a.li(PD, self.d_addr)
        if role in ("seq", "consumer"):
            a.li(ACC, 0)
            a.li(POUT, self.costs)

    def emit_stage_a(self, a: Asm) -> None:
        a.lw(VA, PA, 0)
        a.lw(VB, PB, 0)
        a.lw(VC, PC, 0)
        a.lw(VD, PD, 0)
        for reg in (PA, PB, PC, PD):
            a.addi(reg, reg, 4)

    def emit_f_software(self, a: Asm) -> None:
        def absdiff(x, y, out):
            pos = a.fresh_label("ad")
            a.sub(out, x, y)
            a.bge(out, "r0", pos)
            a.neg(out, out)
            a.label(pos)

        absdiff(VA, VC, RESULT)
        absdiff(VA, VD, T0)
        take = a.fresh_label("m1")
        a.ble(RESULT, T0, take)
        a.mov(RESULT, T0)
        a.label(take)
        absdiff(VB, VC, T0)
        take = a.fresh_label("m2")
        a.ble(RESULT, T0, take)
        a.mov(RESULT, T0)
        a.label(take)
        absdiff(VB, VD, T0)
        take = a.fresh_label("m3")
        a.ble(RESULT, T0, take)
        a.mov(RESULT, T0)
        a.label(take)

    def emit_issue(self, a: Asm, config: int) -> None:
        a.spl_load(VA, 0)
        a.spl_load(VB, 4)
        a.spl_load(VC, 8)
        a.spl_load(VD, 12)
        a.spl_init(config)

    def emit_stage_b(self, a: Asm, recv) -> None:
        recv(T1)
        a.sw(T1, POUT, 0)
        a.addi(POUT, POUT, 4)
        a.add(ACC, ACC, T1)

    def emit_fini(self, a: Asm, role: str) -> None:
        if role in ("seq", "consumer"):
            a.li(T0, self.total)
            a.sw(ACC, T0, 0)

    def check(self, memory) -> None:
        costs, total = dbox_reference(self.ax, self.bx, self.cx, self.dx)
        assert memory.read_words(self.costs, self.items) == costs, \
            "twolf costs mismatch"
        assert memory.read_word_signed(self.total) == total, \
            "twolf total mismatch"


VARIANTS = make_variants(TwolfKernel, default_items=256)
