"""456.hmmer P7Viterbi workload variants (Figures 5 and 6).

Variants built here:

* ``seq``           — Figure 5(a): the original loop on one core.
* ``spl``           — Figure 5(b), 1Th+Comp: ``mc`` computed in the fabric
  (software-pipelined three deep to cover the 10-row latency).  Run as
  four concurrent copies sharing the fabric, per Section V-A.
* ``comm``          — Figure 5(c), 2Th+Comm: producer computes ``mc``/``ic``
  in software and streams ``mc`` through the fabric (identity route).
* ``compcomm``      — Figure 5(d), 2Th+CompComm: producer loads the ``mc``
  inputs, the fabric computes ``mc`` in flight, the consumer computes ``dc``.
* ``ooo2comm``      — the 2Th+Comm program pair on OOO2 cores with the
  idealized dedicated network.
* ``swqueue``       — 2Th+Comm over a shared-memory software queue.

Every variant's output arrays are checked against the reference kernel.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.comm_network import attach_comm_network
from repro.baselines.sw_sync import SwQueue
from repro.common.errors import WorkloadError
from repro.core.function import identity_function
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system.workload import Workload
from repro.workloads.base import (RunSpec, ooo2_system, remap_machine_system,
                                  seq_system)
from repro.workloads.kernels.hmmer import (HmmerData, INFTY, make_data,
                                           p7viterbi_reference)
from repro.workloads.spl_lib import hmmer_mc_function

# Register conventions shared by all hmmer programs.
P_MPP, P_IP, P_DPP = "r1", "r2", "r3"
P_MC, P_DC, P_IC = "r4", "r5", "r6"
P_TAB, K, M_BOUND = "r7", "r8", "r9"
XMB, NINF = "r10", "r11"
T0, T1, T2, TSW = "r12", "r13", "r14", "r15"
MC_PREV, DC_PREV = "r16", "r17"
ROW, R_BOUND, P_XMB = "r18", "r19", "r20"
B_MA, B_IA, B_DA = "r21", "r22", "r23"
B_MB, B_IB, B_DB = "r24", "r25", "r26"
ISSUE_BOUND = "r28"

_TABLE_ORDER = ("tpmm", "tpim", "tpdm", "tpmd", "tpdd", "tpmi", "tpii",
                "bp", "ms", "is_")

#: Software-pipeline depth of the 1Th+Comp variant (hides fabric latency).
PIPE_DEPTH = 3

MC_CONFIG = 1
ROUTE_CONFIG = 2


class HmmerLayout:
    """Memory layout for one thread's hmmer state."""

    def __init__(self, image: MemoryImage, data: HmmerData) -> None:
        n = data.M + 1
        self.n = n
        self.data = data
        self.m_a = image.alloc_words(data.mpp)
        self.i_a = image.alloc_words(data.ip)
        self.d_a = image.alloc_words(data.dpp)
        self.m_b = image.alloc_zeroed(n)
        self.i_b = image.alloc_zeroed(n)
        self.d_b = image.alloc_zeroed(n)
        table_values: List[int] = []
        for name in _TABLE_ORDER:
            table_values.extend(getattr(data, name))
        self.tab = image.alloc_words(table_values)
        self.dist: Dict[str, int] = {
            name: index * n * 4 for index, name in enumerate(_TABLE_ORDER)}
        self.xmb = image.alloc_words(data.xmb)

    def final_buffers(self):
        """(mc, dc, ic) buffer addresses holding the last row's results."""
        if self.data.R % 2 == 1:
            return self.m_b, self.d_b, self.i_b
        return self.m_a, self.d_a, self.i_a


def _check(memory, layout: HmmerLayout) -> None:
    mc_ref, dc_ref, ic_ref = p7viterbi_reference(layout.data)
    mc_addr, dc_addr, ic_addr = layout.final_buffers()
    n = layout.n
    assert memory.read_words(mc_addr, n) == mc_ref, "hmmer mc mismatch"
    assert memory.read_words(dc_addr, n) == dc_ref, "hmmer dc mismatch"
    got_ic = memory.read_words(ic_addr, n)
    assert got_ic[:n - 1] == ic_ref[:n - 1], "hmmer ic mismatch"


# -- shared emission helpers ------------------------------------------------------


def _emit_init(a: Asm, lay: HmmerLayout) -> None:
    a.li(B_MA, lay.m_a)
    a.li(B_IA, lay.i_a)
    a.li(B_DA, lay.d_a)
    a.li(B_MB, lay.m_b)
    a.li(B_IB, lay.i_b)
    a.li(B_DB, lay.d_b)
    a.li(NINF, -INFTY)
    a.li(M_BOUND, lay.data.M)
    a.li(ROW, 0)
    a.li(R_BOUND, lay.data.R)
    a.li(P_XMB, lay.xmb)


def _emit_swap(a: Asm, pairs) -> None:
    for reg_a, reg_b in pairs:
        a.mov(TSW, reg_a)
        a.mov(reg_a, reg_b)
        a.mov(reg_b, TSW)


def _emit_row_end(a: Asm, row_label: str, swap_pairs) -> None:
    _emit_swap(a, swap_pairs)
    a.addi(ROW, ROW, 1)
    a.blt(ROW, R_BOUND, row_label)


def _emit_mc_software(a: Asm, lay: HmmerLayout) -> None:
    """The branchy mc computation of Figure 5(a); result in T0."""
    d = lay.dist
    a.lw(T0, P_MPP, 0)
    a.lw(T1, P_TAB, d["tpmm"])
    a.add(T0, T0, T1)
    a.lw(T1, P_IP, 0)
    a.lw(T2, P_TAB, d["tpim"])
    a.add(T1, T1, T2)
    skip = a.fresh_label("mc1")
    a.ble(T1, T0, skip)
    a.mov(T0, T1)
    a.label(skip)
    a.lw(T1, P_DPP, 0)
    a.lw(T2, P_TAB, d["tpdm"])
    a.add(T1, T1, T2)
    skip = a.fresh_label("mc2")
    a.ble(T1, T0, skip)
    a.mov(T0, T1)
    a.label(skip)
    a.lw(T1, P_TAB, d["bp"] + 4)
    a.add(T1, T1, XMB)
    skip = a.fresh_label("mc3")
    a.ble(T1, T0, skip)
    a.mov(T0, T1)
    a.label(skip)
    a.lw(T1, P_TAB, d["ms"] + 4)
    a.add(T0, T0, T1)
    skip = a.fresh_label("mc4")
    a.bge(T0, NINF, skip)
    a.mov(T0, NINF)
    a.label(skip)


def _emit_dc(a: Asm, lay: HmmerLayout) -> None:
    """dc[k] from MC_PREV/DC_PREV; stores and updates DC_PREV.

    Callers must set MC_PREV to mc[k-1] before and update it after.
    """
    d = lay.dist
    a.lw(T1, P_TAB, d["tpdd"])
    a.add(T1, DC_PREV, T1)
    a.lw(T2, P_TAB, d["tpmd"])
    a.add(T2, MC_PREV, T2)
    skip = a.fresh_label("dc1")
    a.ble(T2, T1, skip)
    a.mov(T1, T2)
    a.label(skip)
    skip = a.fresh_label("dc2")
    a.bge(T1, NINF, skip)
    a.mov(T1, NINF)
    a.label(skip)
    a.sw(T1, P_DC, 0)
    a.mov(DC_PREV, T1)


def _emit_ic(a: Asm, lay: HmmerLayout) -> None:
    """ic[k] (guarded by k < M); stores to P_IC."""
    d = lay.dist
    skip_ic = a.fresh_label("skip_ic")
    a.bge(K, M_BOUND, skip_ic)
    a.lw(T0, P_MPP, 4)
    a.lw(T1, P_TAB, d["tpmi"] + 4)
    a.add(T0, T0, T1)
    a.lw(T1, P_IP, 4)
    a.lw(T2, P_TAB, d["tpii"] + 4)
    a.add(T1, T1, T2)
    skip = a.fresh_label("ic1")
    a.ble(T1, T0, skip)
    a.mov(T0, T1)
    a.label(skip)
    a.lw(T1, P_TAB, d["is_"] + 4)
    a.add(T0, T0, T1)
    skip = a.fresh_label("ic2")
    a.bge(T0, NINF, skip)
    a.mov(T0, NINF)
    a.label(skip)
    a.sw(T0, P_IC, 0)
    a.label(skip_ic)


def _emit_issue_mc_inputs(a: Asm, lay: HmmerLayout, lookahead: int) -> None:
    """Stage + issue the fabric mc inputs for iteration k + lookahead."""
    d = lay.dist
    off = 4 * lookahead
    a.spl_loadm(P_MPP, 0, off)
    a.spl_loadm(P_TAB, 4, d["tpmm"] + off)
    a.spl_loadm(P_IP, 8, off)
    a.spl_loadm(P_TAB, 12, d["tpim"] + off)
    a.spl_loadm(P_DPP, 16, off)
    a.spl_loadm(P_TAB, 20, d["tpdm"] + off)
    a.lw(T0, P_TAB, d["bp"] + 4 + off)
    a.add(T0, T0, XMB)
    a.spl_load(T0, 24)
    a.spl_loadm(P_TAB, 28, d["ms"] + 4 + off)
    a.spl_init(MC_CONFIG)


def _advance(a: Asm, pointers) -> None:
    for reg in pointers:
        a.addi(reg, reg, 4)


def _row_setup_common(a: Asm, lay: HmmerLayout, *, reads: bool,
                      write_m: bool, write_d: bool, write_i: bool,
                      xmb: bool) -> None:
    if reads:
        a.mov(P_MPP, B_MA)
        a.mov(P_IP, B_IA)
        a.mov(P_DPP, B_DA)
    if write_m:
        a.mov(P_MC, B_MB)
        a.sw(NINF, P_MC, 0)
        a.addi(P_MC, P_MC, 4)
    if write_d:
        a.mov(P_DC, B_DB)
        a.sw(NINF, P_DC, 0)
        a.addi(P_DC, P_DC, 4)
    if write_i:
        a.mov(P_IC, B_IB)
        a.sw(NINF, P_IC, 0)
        a.addi(P_IC, P_IC, 4)
    a.li(P_TAB, lay.tab)
    if xmb:
        a.lw(XMB, P_XMB, 0)
        a.addi(P_XMB, P_XMB, 4)
    a.mov(MC_PREV, NINF)
    a.mov(DC_PREV, NINF)
    a.li(K, 1)


_ALL_SWAPS = ((B_MA, B_MB), (B_IA, B_IB), (B_DA, B_DB))


# -- program builders ----------------------------------------------------------------


def build_seq_program(lay: HmmerLayout, name: str = "hmmer_seq"):
    """Figure 5(a): everything in software on one core."""
    a = Asm(name)
    _emit_init(a, lay)
    a.label("row")
    _row_setup_common(a, lay, reads=True, write_m=True, write_d=True,
                      write_i=True, xmb=True)
    a.label("inner")
    _emit_mc_software(a, lay)
    a.sw(T0, P_MC, 0)
    a.mov(TSW, T0)         # keep mc[k]; _emit_dc clobbers T1/T2
    _emit_dc(a, lay)
    a.mov(MC_PREV, TSW)
    _emit_ic(a, lay)
    _advance(a, (P_MPP, P_IP, P_DPP, P_MC, P_DC, P_IC, P_TAB))
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    _emit_row_end(a, "row", _ALL_SWAPS)
    a.halt()
    return a.assemble()


def build_spl_program(lay: HmmerLayout, name: str = "hmmer_spl"):
    """Figure 5(b): mc in the fabric, software-pipelined PIPE_DEPTH deep."""
    if lay.data.M < PIPE_DEPTH + 1:
        raise WorkloadError("hmmer spl variant needs M > pipeline depth")
    a = Asm(name)
    _emit_init(a, lay)
    a.li(ISSUE_BOUND, lay.data.M - PIPE_DEPTH)
    a.label("row")
    _row_setup_common(a, lay, reads=True, write_m=True, write_d=True,
                      write_i=True, xmb=True)
    for d in range(PIPE_DEPTH):
        _emit_issue_mc_inputs(a, lay, d)
    a.label("inner")
    a.spl_recv(T0)                    # mc[k]
    a.sw(T0, P_MC, 0)
    a.mov(TSW, T0)
    _emit_dc(a, lay)
    a.mov(MC_PREV, TSW)
    _emit_ic(a, lay)
    skip = a.fresh_label("noissue")
    a.bgt(K, ISSUE_BOUND, skip)
    _emit_issue_mc_inputs(a, lay, PIPE_DEPTH)
    a.label(skip)
    _advance(a, (P_MPP, P_IP, P_DPP, P_MC, P_DC, P_IC, P_TAB))
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    _emit_row_end(a, "row", _ALL_SWAPS)
    a.halt()
    return a.assemble()


def build_comm_producer(lay: HmmerLayout, name: str = "hmmer_comm_prod"):
    """Figure 5(c) producer: software mc + ic; stream mc to the consumer."""
    a = Asm(name)
    _emit_init(a, lay)
    a.label("row")
    _row_setup_common(a, lay, reads=True, write_m=True, write_d=False,
                      write_i=True, xmb=True)
    a.label("inner")
    _emit_mc_software(a, lay)
    a.sw(T0, P_MC, 0)
    a.spl_load(T0, 0)
    a.spl_init(ROUTE_CONFIG)
    _emit_ic(a, lay)
    _advance(a, (P_MPP, P_IP, P_DPP, P_MC, P_IC, P_TAB))
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    _emit_row_end(a, "row", _ALL_SWAPS)
    a.halt()
    return a.assemble()


def build_consumer(lay: HmmerLayout, store_mc: bool,
                   name: str = "hmmer_cons"):
    """Consumer for both 2Th variants: receive mc[k], compute dc[k]."""
    a = Asm(name)
    _emit_init(a, lay)
    a.label("row")
    _row_setup_common(a, lay, reads=False, write_m=store_mc, write_d=True,
                      write_i=False, xmb=False)
    a.label("inner")
    a.spl_recv(T0)
    if store_mc:
        a.sw(T0, P_MC, 0)
    a.mov(TSW, T0)
    _emit_dc(a, lay)
    a.mov(MC_PREV, TSW)
    pointers = [P_DC, P_TAB] + ([P_MC] if store_mc else [])
    _advance(a, pointers)
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    swaps = ((B_DA, B_DB),) + (((B_MA, B_MB),) if store_mc else ())
    _emit_row_end(a, "row", swaps)
    a.halt()
    return a.assemble()


def build_compcomm_producer(lay: HmmerLayout,
                            name: str = "hmmer_cc_prod"):
    """Figure 5(d) producer: issue mc inputs to the fabric + compute ic."""
    a = Asm(name)
    _emit_init(a, lay)
    a.label("row")
    _row_setup_common(a, lay, reads=True, write_m=False, write_d=False,
                      write_i=True, xmb=True)
    a.label("inner")
    _emit_issue_mc_inputs(a, lay, 0)
    _emit_ic(a, lay)
    _advance(a, (P_MPP, P_IP, P_DPP, P_IC, P_TAB))
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    _emit_row_end(a, "row", _ALL_SWAPS)
    a.halt()
    return a.assemble()


def build_swqueue_producer(lay: HmmerLayout, queue: SwQueue,
                           name: str = "hmmer_swq_prod"):
    """2Th+Comm over a software queue instead of the fabric."""
    a = Asm(name)
    _emit_init(a, lay)
    a.li("r27", 0)  # private tail index
    a.label("row")
    _row_setup_common(a, lay, reads=True, write_m=True, write_d=False,
                      write_i=True, xmb=True)
    a.label("inner")
    _emit_mc_software(a, lay)
    a.sw(T0, P_MC, 0)
    queue.emit_push(a, T0, "r27", "r29", "r30", "r31")
    _emit_ic(a, lay)
    _advance(a, (P_MPP, P_IP, P_DPP, P_MC, P_IC, P_TAB))
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    _emit_row_end(a, "row", _ALL_SWAPS)
    a.halt()
    return a.assemble()


def build_swqueue_consumer(lay: HmmerLayout, queue: SwQueue,
                           name: str = "hmmer_swq_cons"):
    a = Asm(name)
    _emit_init(a, lay)
    a.li("r27", 0)  # private head index
    a.label("row")
    _row_setup_common(a, lay, reads=False, write_m=False, write_d=True,
                      write_i=False, xmb=False)
    a.label("inner")
    queue.emit_pop(a, T0, "r27", "r29", "r31")
    a.mov(TSW, T0)
    _emit_dc(a, lay)
    a.mov(MC_PREV, TSW)
    _advance(a, (P_DC, P_TAB))
    a.addi(K, K, 1)
    a.ble(K, M_BOUND, "inner")
    _emit_row_end(a, "row", ((B_DA, B_DB),))
    a.halt()
    return a.assemble()


# -- run specs -------------------------------------------------------------------------


DEFAULT_M = 96
DEFAULT_R = 6


def _items(M: int, R: int) -> int:
    return M * R


def seq_spec(M: int = DEFAULT_M, R: int = DEFAULT_R,
             wide_core: bool = False) -> RunSpec:
    data = make_data(M, R)
    image = MemoryImage()
    lay = HmmerLayout(image, data)
    program = build_seq_program(lay)
    workload = Workload(
        f"hmmer_seq{'_ooo2' if wide_core else ''}", image,
        [ThreadSpec(program, thread_id=1)], placement=[0],
        check=lambda memory: _check(memory, lay))
    if wide_core:
        return RunSpec("hmmer/seq_ooo2", workload, ooo2_system(),
                       ooo2_cores=(0,), region_items=_items(M, R))
    return RunSpec("hmmer/seq", workload, seq_system(),
                   ooo1_cores=(0,), region_items=_items(M, R))


def spl_spec(M: int = DEFAULT_M, R: int = DEFAULT_R,
             copies: int = 4) -> RunSpec:
    """1Th+Comp with ``copies`` concurrent instances sharing the fabric."""
    image = MemoryImage()
    layouts = [HmmerLayout(image, make_data(M, R, seed=1234 + 77 * i))
               for i in range(copies)]
    threads = [ThreadSpec(build_spl_program(lay, f"hmmer_spl_t{i}"),
                          thread_id=i + 1)
               for i, lay in enumerate(layouts)]
    function = hmmer_mc_function()

    def setup(machine) -> None:
        for core in range(copies):
            machine.configure_spl(core, MC_CONFIG, function)

    def check(memory) -> None:
        for lay in layouts:
            _check(memory, lay)

    workload = Workload("hmmer_spl", image, threads,
                        placement=list(range(copies)), setup=setup,
                        check=check)
    return RunSpec("hmmer/spl", workload, remap_machine_system(1),
                   ooo1_cores=tuple(range(copies)),
                   spl_clusters=((0, 1.0),),
                   energy_divisor=copies,
                   region_items=_items(M, R))


def _pair_workload(name: str, image: MemoryImage, producer, consumer,
                   lay: HmmerLayout, setup) -> Workload:
    return Workload(name, image,
                    [ThreadSpec(producer, thread_id=1),
                     ThreadSpec(consumer, thread_id=2)],
                    placement=[0, 1], setup=setup,
                    check=lambda memory: _check(memory, lay))


def comm_spec(M: int = DEFAULT_M, R: int = DEFAULT_R) -> RunSpec:
    """2Th+Comm on the SPL (identity route, half fabric)."""
    data = make_data(M, R)
    image = MemoryImage()
    lay = HmmerLayout(image, data)
    route = identity_function("hmmer_route")

    def setup(machine) -> None:
        machine.set_partitions(0, [12, 12], [0, 0, 1, 1])
        machine.configure_spl(0, ROUTE_CONFIG, route, dest_thread=2)

    workload = _pair_workload(
        "hmmer_comm", image, build_comm_producer(lay),
        build_consumer(lay, store_mc=False), lay, setup)
    return RunSpec("hmmer/comm", workload, remap_machine_system(1),
                   ooo1_cores=(0, 1), spl_clusters=((0, 0.5),),
                   region_items=_items(M, R))


def compcomm_spec(M: int = DEFAULT_M, R: int = DEFAULT_R) -> RunSpec:
    """2Th+CompComm: mc computed in flight (half fabric)."""
    if M < 48:
        raise WorkloadError("compcomm needs M >= 48 so the producer can "
                            "never overrun the consumer across rows")
    data = make_data(M, R)
    image = MemoryImage()
    lay = HmmerLayout(image, data)
    function = hmmer_mc_function()

    def setup(machine) -> None:
        machine.set_partitions(0, [12, 12], [0, 0, 1, 1])
        machine.configure_spl(0, MC_CONFIG, function, dest_thread=2)

    workload = _pair_workload(
        "hmmer_compcomm", image, build_compcomm_producer(lay),
        build_consumer(lay, store_mc=True), lay, setup)
    return RunSpec("hmmer/compcomm", workload, remap_machine_system(1),
                   ooo1_cores=(0, 1), spl_clusters=((0, 0.5),),
                   region_items=_items(M, R))


def ooo2comm_spec(M: int = DEFAULT_M, R: int = DEFAULT_R) -> RunSpec:
    """The 2Th+Comm programs on OOO2 cores + idealized network."""
    data = make_data(M, R)
    image = MemoryImage()
    lay = HmmerLayout(image, data)

    def setup(machine) -> None:
        controller = attach_comm_network(machine, 0)
        controller.configure_send(0, ROUTE_CONFIG, dest_thread=2)

    workload = _pair_workload(
        "hmmer_ooo2comm", image, build_comm_producer(lay),
        build_consumer(lay, store_mc=False), lay, setup)
    return RunSpec("hmmer/ooo2comm", workload, ooo2_system(),
                   ooo2_cores=(0, 1), region_items=_items(M, R))


def swqueue_spec(M: int = DEFAULT_M, R: int = DEFAULT_R) -> RunSpec:
    """2Th+Comm over a software queue (Section V-B comparison)."""
    data = make_data(M, R)
    image = MemoryImage()
    lay = HmmerLayout(image, data)
    queue = SwQueue(image, 64)
    workload = _pair_workload(
        "hmmer_swqueue", image, build_swqueue_producer(lay, queue),
        build_swqueue_consumer(lay, queue), lay, setup=None)
    return RunSpec("hmmer/swqueue", workload, seq_system(),
                   ooo1_cores=(0, 1), region_items=_items(M, R))


VARIANTS = {
    "seq": seq_spec,
    "seq_ooo2": lambda **kw: seq_spec(wide_core=True, **kw),
    "spl": spl_spec,
    "comm": comm_spec,
    "compcomm": compcomm_spec,
    "ooo2comm": ooo2comm_spec,
    "swqueue": swqueue_spec,
}
