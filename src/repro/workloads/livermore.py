"""Livermore Loops 2, 3, 6 workload variants (Figures 12-14).

All three loops run ``passes`` times with barriers between parallel work
units, exactly the structure the paper evaluates:

* **LL2** (ICCG) — log2(n) reduction levels per pass, one barrier per
  level (the level structure is emitted unrolled, as a compiler would for
  a known n).
* **LL3** (inner product) — per pass each thread accumulates a partial
  product; ``barrier_comp`` additionally (a) computes the multiply-
  accumulate groups in the fabric (Figure 1(a)) and (b) reduces the
  partial sums with an ADD-reduction barrier (Figure 1(c)), eliminating
  the second barrier.
* **LL6** (linear recurrence) — two barriers per outer iteration, with
  runtime-chunked inner sums (extremely fine-grained synchronization).

Variants per loop: ``seq``, ``sw`` (software barriers), ``barrier``
(ReMAP sync-only), ``hwbar`` (dedicated network, homogeneous cores), and
for LL3 ``barrier_comp``.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import WorkloadError
from repro.core.dfg import DfgOp
from repro.core.function import barrier_reduce_function
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system.workload import Workload
from repro.workloads.base import (RunSpec, chunk_bounds,
                                  require_power_of_two_threads, seq_system,
                                  spl_clusters_for_threads)
from repro.workloads.kernels.livermore import (LL6_C, MASK, ll2_data,
                                               ll2_levels, ll2_reference,
                                               ll3_data, ll3_reference,
                                               ll6_data, ll6_reference)
from repro.workloads.spl_lib import mac4_function
from repro.workloads.sync_backends import make_backend

# Register conventions (r3-r5 and r11 are reserved for barrier sequences).
PASS, NPASS = "r1", "r2"
T0, T1, T2 = "r3", "r4", "r5"
P0, P1, P2 = "r6", "r7", "r8"
IDX, HI = "r9", "r10"
ACC, GQ = "r12", "r13"
GRP, GBND = "r14", "r15"
PZI, PXI = "r16", "r17"
LO, HI2, KK = "r18", "r19", "r20"

MAC_CONFIG = 9
REDUCE_CONFIG = 10
FINAL_CONFIG = 11
TOKEN2_CONFIG = 12
#: Fabric MAC pipeline depth for the LL3 barrier_comp variant.
MAC_PIPE = 3


def _threads(programs) -> List[ThreadSpec]:
    return [ThreadSpec(program, thread_id=i + 1)
            for i, program in enumerate(programs)]


def _barrier_spec_fields(backend):
    cores, spl = backend.energy_fields()
    return dict(ooo1_cores=cores, spl_clusters=spl)


# ===================== LL2 =========================================================


class Ll2Layout:
    def __init__(self, image: MemoryImage, n: int, passes: int) -> None:
        self.n = n
        self.passes = passes
        self.x0, self.v = ll2_data(n)
        self.x = image.alloc_words(self.x0)
        self.vaddr = image.alloc_words(self.v)


def _ll2_check(memory, lay: Ll2Layout) -> None:
    reference = ll2_reference(lay.x0, lay.v, lay.n, lay.passes)
    got = memory.read_words(lay.x, 2 * lay.n)
    assert got == reference, "LL2 x mismatch"


def _emit_ll2_level(a: Asm, lay: Ll2Layout, ipnt: int, ipntp: int,
                    lo_item: int, hi_item: int) -> None:
    """One reduction level for items [lo_item, hi_item) of the level."""
    if hi_item <= lo_item:
        return
    k0 = ipnt + 1 + 2 * lo_item
    i0 = ipntp + lo_item
    a.li(P0, lay.x + 4 * k0)        # &x[k]
    a.li(P1, lay.vaddr + 4 * k0)    # &v[k]
    a.li(P2, lay.x + 4 * i0)        # &x[i]
    a.li(IDX, lo_item)
    a.li(HI, hi_item)
    loop = a.fresh_label("ll2")
    a.label(loop)
    a.lw(T0, P0, 0)      # x[k]
    a.lw(T1, P1, 0)      # v[k]
    a.lw(T2, P0, -4)     # x[k-1]
    a.mul(T1, T1, T2)
    a.sub(T0, T0, T1)
    a.lw(T1, P1, 4)      # v[k+1]
    a.lw(T2, P0, 4)      # x[k+1]
    a.mul(T1, T1, T2)
    a.sub(T0, T0, T1)
    a.andi(T0, T0, MASK)
    a.sw(T0, P2, 0)
    a.addi(P0, P0, 8)
    a.addi(P1, P1, 8)
    a.addi(P2, P2, 4)
    a.addi(IDX, IDX, 1)
    a.blt(IDX, HI, loop)


def _build_ll2_program(lay: Ll2Layout, thread: int, p: int,
                       backend, name: str):
    a = Asm(name)
    if backend is not None:
        backend.emit_prologue(a)
    a.li(PASS, 0)
    a.li(NPASS, lay.passes)
    a.label("pass")
    for ipnt, ipntp, _ in ll2_levels(lay.n):
        items = max(0, (ipntp - ipnt) // 2)
        if p == 1:
            _emit_ll2_level(a, lay, ipnt, ipntp, 0, items)
        elif items < 2:
            # A single item may read its own write index (old value);
            # thread 0 runs it alone.
            if thread == 0:
                _emit_ll2_level(a, lay, ipnt, ipntp, 0, items)
        else:
            # The LAST item of a level reads x[ipntp], which the FIRST
            # item writes (the level-boundary dependency of the original
            # loop).  Both run on thread 0 in program order; the
            # independent middle items are chunked across all threads.
            if thread == 0:
                _emit_ll2_level(a, lay, ipnt, ipntp, 0, 1)
            lo_mid, hi_mid = chunk_bounds(items - 2, p, thread)
            _emit_ll2_level(a, lay, ipnt, ipntp, 1 + lo_mid, 1 + hi_mid)
            if thread == 0:
                _emit_ll2_level(a, lay, ipnt, ipntp, items - 1, items)
        if backend is not None:
            backend.emit_barrier(a)
    a.addi(PASS, PASS, 1)
    a.blt(PASS, NPASS, "pass")
    a.halt()
    return a.assemble()


def ll2_seq_spec(n: int = 128, passes: int = 4) -> RunSpec:
    image = MemoryImage()
    lay = Ll2Layout(image, n, passes)
    program = _build_ll2_program(lay, 0, 1, None, "ll2_seq")
    workload = Workload("ll2_seq", image, _threads([program]),
                        placement=[0],
                        check=lambda memory: _ll2_check(memory, lay))
    return RunSpec("ll2/seq", workload, seq_system(), ooo1_cores=(0,),
                   region_items=passes)


def ll2_parallel_spec(kind: str, n: int = 128, p: int = 8,
                      passes: int = 4) -> RunSpec:
    require_power_of_two_threads(p, "ll2")
    image = MemoryImage()
    lay = Ll2Layout(image, n, passes)
    backend = make_backend(kind, p, image)
    programs = [_build_ll2_program(lay, t, p, backend, f"ll2_{kind}_t{t}")
                for t in range(p)]
    workload = Workload(f"ll2_{kind}_p{p}", image, _threads(programs),
                        placement=list(range(p)), setup=backend.setup,
                        check=lambda memory: _ll2_check(memory, lay))
    return RunSpec(f"ll2/{kind}_p{p}", workload, backend.system(),
                   region_items=passes, **_barrier_spec_fields(backend))


# ===================== LL3 =========================================================


class Ll3Layout:
    def __init__(self, image: MemoryImage, n: int, passes: int,
                 p: int) -> None:
        self.n = n
        self.passes = passes
        self.z, self.xv = ll3_data(n)
        self.zaddr = image.alloc_words(self.z)
        self.xaddr = image.alloc_words(self.xv)
        self.partials = image.alloc_zeroed(max(1, p))
        self.regionals = image.alloc_zeroed(4)
        self.q = image.alloc_zeroed(1)


def _ll3_check(memory, lay: Ll3Layout) -> None:
    expected = ll3_reference(lay.z, lay.xv)
    got = memory.read_word_signed(lay.q)
    assert got == expected, f"LL3 q mismatch: {got} != {expected}"


def _emit_ll3_software_mac(a: Asm, lay: Ll3Layout, lo: int,
                           hi: int) -> None:
    """ACC += sum of z[k]*x[k] for k in [lo, hi) — plain software."""
    if hi <= lo:
        return
    a.li(P0, lay.zaddr + 4 * lo)
    a.li(P1, lay.xaddr + 4 * lo)
    a.li(IDX, lo)
    a.li(HI, hi)
    loop = a.fresh_label("mac")
    a.label(loop)
    a.lw(T0, P0, 0)
    a.lw(T1, P1, 0)
    a.mul(T0, T0, T1)
    a.add(ACC, ACC, T0)
    a.addi(P0, P0, 4)
    a.addi(P1, P1, 4)
    a.addi(IDX, IDX, 1)
    a.blt(IDX, HI, loop)


def _emit_ll3_combine(a: Asm, lay: Ll3Layout, p: int) -> None:
    """Thread 0: q = sum(partials[0..p)); store."""
    a.li(ACC, 0)
    a.li(P0, lay.partials)
    a.li(IDX, 0)
    a.li(HI, p)
    loop = a.fresh_label("comb")
    a.label(loop)
    a.lw(T0, P0, 0)
    a.add(ACC, ACC, T0)
    a.addi(P0, P0, 4)
    a.addi(IDX, IDX, 1)
    a.blt(IDX, HI, loop)
    a.li(T0, lay.q)
    a.sw(ACC, T0, 0)
    a.fence()


def _build_ll3_program(lay: Ll3Layout, thread: int, p: int, backend,
                       name: str):
    """seq / sw / barrier / hwbar variants (software MACs + partials)."""
    lo, hi = (0, lay.n) if p == 1 else chunk_bounds(lay.n, p, thread)
    a = Asm(name)
    if backend is not None:
        backend.emit_prologue(a)
    a.li(PASS, 0)
    a.li(NPASS, lay.passes)
    a.label("pass")
    a.li(ACC, 0)
    _emit_ll3_software_mac(a, lay, lo, hi)
    if backend is None:
        a.li(T0, lay.q)
        a.sw(ACC, T0, 0)
    else:
        a.li(T0, lay.partials + 4 * thread)
        a.sw(ACC, T0, 0)
        a.fence()
        backend.emit_barrier(a)
        if thread == 0:
            _emit_ll3_combine(a, lay, p)
        backend.emit_barrier(a)
    a.addi(PASS, PASS, 1)
    a.blt(PASS, NPASS, "pass")
    a.halt()
    return a.assemble()


def _build_ll3_comp_program(lay: Ll3Layout, thread: int, p: int,
                            name: str):
    """barrier_comp: fabric MAC groups + ADD-reduction barrier."""
    lo, hi = chunk_bounds(lay.n, p, thread)
    chunk = hi - lo
    groups = chunk // 4
    tail_lo = lo + groups * 4
    n_clusters = spl_clusters_for_threads(p)
    slot = thread % 4
    a = Asm(name)
    a.li(PASS, 0)
    a.li(NPASS, lay.passes)
    a.label("pass")
    a.li(ACC, 0)
    if groups > 0:
        depth = min(MAC_PIPE, groups)
        a.li(PZI, lay.zaddr + 4 * lo)
        a.li(PXI, lay.xaddr + 4 * lo)
        for _ in range(depth):
            a.spl_loadv(PZI, 0)   # beat 0: z[k..k+3]
            a.spl_loadv(PXI, 16)  # beat 1: x[k..k+3]
            a.spl_init(MAC_CONFIG)
            a.addi(PZI, PZI, 16)
            a.addi(PXI, PXI, 16)
        a.li(GRP, 0)
        a.li(GBND, groups)
        loop = a.fresh_label("grp")
        noissue = a.fresh_label("noissue")
        a.label(loop)
        a.spl_recv(T0)
        a.add(ACC, ACC, T0)
        a.li(T1, groups - depth)
        a.bge(GRP, T1, noissue)
        a.spl_loadv(PZI, 0)
        a.spl_loadv(PXI, 16)
        a.spl_init(MAC_CONFIG)
        a.addi(PZI, PZI, 16)
        a.addi(PXI, PXI, 16)
        a.label(noissue)
        a.addi(GRP, GRP, 1)
        a.blt(GRP, GBND, loop)
    _emit_ll3_software_mac(a, lay, tail_lo, hi)
    # ADD-reduction barrier over partial sums (stage 1: regional).
    a.spl_load(ACC, 0)
    a.spl_init(REDUCE_CONFIG)
    a.spl_recv(GQ)
    if n_clusters > 1:
        cluster = thread // 4
        if slot == 0:
            a.li(T0, lay.regionals + 4 * cluster)
            a.sw(GQ, T0, 0)
            a.fence()
        # Stage 2: token barrier (reusing the ADD-reduce configuration).
        a.spl_load("r0", 0)
        a.spl_init(TOKEN2_CONFIG)
        a.spl_recv(T0)
        # Stage 3: final sum of the regional sums.  Only slots < n_clusters
        # contribute a regional value; the rest stage zero.
        if slot < n_clusters:
            a.li(T0, lay.regionals + 4 * slot)
            a.spl_loadm(T0, 0)
        else:
            a.spl_load("r0", 0)
        a.spl_init(FINAL_CONFIG)
        a.spl_recv(GQ)
    if thread == 0:
        a.li(T0, lay.q)
        a.sw(GQ, T0, 0)
        a.fence()
    a.addi(PASS, PASS, 1)
    a.blt(PASS, NPASS, "pass")
    a.halt()
    return a.assemble()


def ll3_seq_spec(n: int = 256, passes: int = 10) -> RunSpec:
    image = MemoryImage()
    lay = Ll3Layout(image, n, passes, 1)
    program = _build_ll3_program(lay, 0, 1, None, "ll3_seq")
    workload = Workload("ll3_seq", image, _threads([program]),
                        placement=[0],
                        check=lambda memory: _ll3_check(memory, lay))
    return RunSpec("ll3/seq", workload, seq_system(), ooo1_cores=(0,),
                   region_items=passes)


def ll3_parallel_spec(kind: str, n: int = 256, p: int = 8,
                      passes: int = 10) -> RunSpec:
    require_power_of_two_threads(p, "ll3")
    image = MemoryImage()
    lay = Ll3Layout(image, n, passes, p)
    backend = make_backend(kind, p, image)
    programs = [_build_ll3_program(lay, t, p, backend, f"ll3_{kind}_t{t}")
                for t in range(p)]
    workload = Workload(f"ll3_{kind}_p{p}", image, _threads(programs),
                        placement=list(range(p)), setup=backend.setup,
                        check=lambda memory: _ll3_check(memory, lay))
    return RunSpec(f"ll3/{kind}_p{p}", workload, backend.system(),
                   region_items=passes, **_barrier_spec_fields(backend))


def ll3_barrier_comp_spec(n: int = 256, p: int = 8,
                          passes: int = 10) -> RunSpec:
    require_power_of_two_threads(p, "ll3")
    image = MemoryImage()
    lay = Ll3Layout(image, n, passes, p)
    n_clusters = spl_clusters_for_threads(p)
    mac = mac4_function()
    programs = [_build_ll3_comp_program(lay, t, p, f"ll3_bc_t{t}")
                for t in range(p)]

    def setup(machine) -> None:
        thread_ids = list(range(1, p + 1))
        machine.register_barrier(1, 1, thread_ids)
        if n_clusters > 1:
            machine.register_barrier(2, 1, thread_ids)
            machine.register_barrier(3, 1, thread_ids)
        for cluster in range(n_clusters):
            local = [t for t in range(p) if t // 4 == cluster]
            reduce_fn = barrier_reduce_function(len(local), DfgOp.ADD,
                                                f"ll3_sum_{len(local)}")
            # Each thread gets a private 6-row partition for its MAC
            # stream (Section II-A spatial partitioning); barriers execute
            # on the lowest participant's partition.
            if len(local) > 1:
                rows_each = 24 // 4
                machine.set_partitions(local[0], [rows_each] * 4,
                                       [0, 1, 2, 3])
            for t in local:
                machine.configure_spl(t, MAC_CONFIG, mac)
                machine.configure_spl(t, REDUCE_CONFIG, reduce_fn,
                                      barrier_id=1)
                if n_clusters > 1:
                    machine.configure_spl(t, TOKEN2_CONFIG, reduce_fn,
                                          barrier_id=2)
                    machine.configure_spl(t, FINAL_CONFIG, reduce_fn,
                                          barrier_id=3)

    workload = Workload(f"ll3_barrier_comp_p{p}", image, _threads(programs),
                        placement=list(range(p)), setup=setup,
                        check=lambda memory: _ll3_check(memory, lay))
    return RunSpec(f"ll3/barrier_comp_p{p}", workload,
                   make_backend("spl", p, MemoryImage()).system(),
                   ooo1_cores=tuple(range(p)),
                   spl_clusters=tuple((c, 1.0) for c in range(n_clusters)),
                   region_items=passes)


# ===================== LL6 =========================================================


class Ll6Layout:
    def __init__(self, image: MemoryImage, n: int, passes: int,
                 p: int) -> None:
        self.n = n
        self.passes = passes
        self.b = ll6_data(n)
        flat: List[int] = []
        for row in self.b:
            flat.extend(row)
        self.baddr = image.alloc_words(flat)
        self.w = image.alloc_zeroed(n)
        image.write_word(self.w, 1)  # w[0] = 1
        self.partials = image.alloc_zeroed(max(1, p))


def _ll6_check(memory, lay: Ll6Layout) -> None:
    expected = ll6_reference(lay.b, lay.n, lay.passes)
    got = memory.read_words(lay.w, lay.n)
    assert got == expected, "LL6 w mismatch"


def _emit_ll6_inner(a: Asm, lay: Ll6Layout, i_reg: str, lo_reg: str,
                    hi_reg: str) -> None:
    """ACC = sum b[k][i]*w[i-k-1] for k in [lo, hi) at runtime bounds."""
    a.li(ACC, 0)
    done = a.fresh_label("ll6_done")
    a.bge(lo_reg, hi_reg, done)
    # P0 = &b[lo][i],  P1 = &w[i-lo-1]
    a.li(T0, 4 * lay.n)
    a.mul(T1, lo_reg, T0)
    a.li(P0, lay.baddr)
    a.add(P0, P0, T1)
    a.slli(T1, i_reg, 2)
    a.add(P0, P0, T1)
    a.sub(T1, i_reg, lo_reg)
    a.addi(T1, T1, -1)
    a.slli(T1, T1, 2)
    a.li(P1, lay.w)
    a.add(P1, P1, T1)
    a.mov(KK, lo_reg)
    loop = a.fresh_label("ll6")
    a.label(loop)
    a.lw(T0, P0, 0)
    a.lw(T1, P1, 0)
    a.mul(T0, T0, T1)
    a.add(ACC, ACC, T0)
    a.addi(P0, P0, 4 * lay.n)
    a.addi(P1, P1, -4)
    a.addi(KK, KK, 1)
    a.blt(KK, hi_reg, loop)
    a.label(done)


def _build_ll6_program(lay: Ll6Layout, thread: int, p: int, backend,
                       name: str):
    if p > 1 and p & (p - 1):
        raise WorkloadError("ll6 needs a power-of-two thread count")
    log2p = p.bit_length() - 1
    a = Asm(name)
    if backend is not None:
        backend.emit_prologue(a)
    a.li(PASS, 0)
    a.li(NPASS, lay.passes)
    a.label("pass")
    a.li(P2, 1)              # i
    a.li(HI2, lay.n)
    a.label("iloop")
    if p == 1:
        a.li(LO, 0)
        a.mov(GQ, P2)        # hi = i
    else:
        a.li(T0, thread)
        a.mul(T0, T0, P2)
        a.srli(LO, T0, log2p)
        a.li(T0, thread + 1)
        a.mul(T0, T0, P2)
        a.srli(GQ, T0, log2p)
    _emit_ll6_inner(a, lay, P2, LO, GQ)
    if backend is None:
        a.addi(ACC, ACC, LL6_C)
        a.andi(ACC, ACC, MASK)
        a.li(T0, lay.w)
        a.slli(T1, P2, 2)
        a.add(T0, T0, T1)
        a.sw(ACC, T0, 0)
    else:
        a.li(T0, lay.partials + 4 * thread)
        a.sw(ACC, T0, 0)
        a.fence()
        backend.emit_barrier(a)
        if thread == 0:
            a.li(ACC, LL6_C)
            a.li(P0, lay.partials)
            a.li(IDX, 0)
            a.li(HI, p)
            loop = a.fresh_label("comb")
            a.label(loop)
            a.lw(T0, P0, 0)
            a.add(ACC, ACC, T0)
            a.addi(P0, P0, 4)
            a.addi(IDX, IDX, 1)
            a.blt(IDX, HI, loop)
            a.andi(ACC, ACC, MASK)
            a.li(T0, lay.w)
            a.slli(T1, P2, 2)
            a.add(T0, T0, T1)
            a.sw(ACC, T0, 0)
            a.fence()
        backend.emit_barrier(a)
    a.addi(P2, P2, 1)
    a.blt(P2, HI2, "iloop")
    a.addi(PASS, PASS, 1)
    a.blt(PASS, NPASS, "pass")
    a.halt()
    return a.assemble()


def ll6_seq_spec(n: int = 64, passes: int = 2) -> RunSpec:
    image = MemoryImage()
    lay = Ll6Layout(image, n, passes, 1)
    program = _build_ll6_program(lay, 0, 1, None, "ll6_seq")
    workload = Workload("ll6_seq", image, _threads([program]),
                        placement=[0],
                        check=lambda memory: _ll6_check(memory, lay))
    return RunSpec("ll6/seq", workload, seq_system(), ooo1_cores=(0,),
                   region_items=passes)


def ll6_parallel_spec(kind: str, n: int = 64, p: int = 8,
                      passes: int = 2) -> RunSpec:
    require_power_of_two_threads(p, "ll6")
    image = MemoryImage()
    lay = Ll6Layout(image, n, passes, p)
    backend = make_backend(kind, p, image)
    programs = [_build_ll6_program(lay, t, p, backend, f"ll6_{kind}_t{t}")
                for t in range(p)]
    workload = Workload(f"ll6_{kind}_p{p}", image, _threads(programs),
                        placement=list(range(p)), setup=backend.setup,
                        check=lambda memory: _ll6_check(memory, lay))
    return RunSpec(f"ll6/{kind}_p{p}", workload, backend.system(),
                   region_items=passes, **_barrier_spec_fields(backend))


LL2_VARIANTS = {
    "seq": ll2_seq_spec,
    "sw": lambda **kw: ll2_parallel_spec("sw", **kw),
    "barrier": lambda **kw: ll2_parallel_spec("spl", **kw),
    "hwbar": lambda **kw: ll2_parallel_spec("net", **kw),
}

LL3_VARIANTS = {
    "seq": ll3_seq_spec,
    "sw": lambda **kw: ll3_parallel_spec("sw", **kw),
    "barrier": lambda **kw: ll3_parallel_spec("spl", **kw),
    "barrier_comp": ll3_barrier_comp_spec,
    "hwbar": lambda **kw: ll3_parallel_spec("net", **kw),
}

LL6_VARIANTS = {
    "seq": ll6_seq_spec,
    "sw": lambda **kw: ll6_parallel_spec("sw", **kw),
    "barrier": lambda **kw: ll6_parallel_spec("spl", **kw),
    "hwbar": lambda **kw: ll6_parallel_spec("net", **kw),
}
