"""Shared spec builders for the computation / communication workloads.

The Table III benchmarks come in two families:

* **Computation-only** (g721, mpeg2, gsm, libquantum): one thread per
  kernel; the ``spl`` variant runs four concurrent copies sharing the
  fabric to model contention (Section V-A).
* **Communication(+computation)** (wc, unepic, cjpeg, adpcm, twolf,
  hmmer, astar): producer/consumer pairs; communicating variants own half
  of a spatially partitioned fabric (the other half assumed busy).

These helpers build :class:`repro.workloads.base.RunSpec` objects with the
energy-accounting conventions of EXPERIMENTS.md, so each benchmark module
only supplies programs, SPL functions, and a checker.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.baselines.comm_network import attach_comm_network
from repro.isa import Asm, MemoryImage, Program, ThreadSpec
from repro.system.workload import Workload
from repro.workloads.base import (RunSpec, ooo2_system, remap_machine_system,
                                  seq_system)

#: Config ids shared by all pipeline workloads.
COMPUTE_CONFIG = 1
ROUTE_CONFIG = 2


def build_loop_program(name: str, items: int, emit_init: Callable,
                       emit_body: Callable,
                       emit_fini: Optional[Callable] = None) -> Program:
    """Scaffold ``for r1 in range(items): body`` around kernel hooks.

    ``r1`` (item counter) and ``r2`` (bound) are reserved; hooks own the
    rest of the register file.
    """
    a = Asm(name)
    emit_init(a)
    a.li("r1", 0)
    a.li("r2", items)
    a.label("loop")
    emit_body(a)
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    if emit_fini is not None:
        emit_fini(a)
    a.halt()
    return a.assemble()


def single_thread_spec(name: str, image: MemoryImage, program: Program,
                       check, items: int, wide: bool = False) -> RunSpec:
    """``seq`` (OOO1) or ``seq_ooo2`` baseline."""
    workload = Workload(name.replace("/", "_"), image,
                        [ThreadSpec(program, thread_id=1)], placement=[0],
                        check=check)
    if wide:
        return RunSpec(name, workload, ooo2_system(), ooo2_cores=(0,),
                       region_items=items)
    return RunSpec(name, workload, seq_system(), ooo1_cores=(0,),
                   region_items=items)


def concurrent_spl_spec(name: str, image: MemoryImage,
                        programs: List[Program], setup, check,
                        items: int) -> RunSpec:
    """1Th+Comp: ``len(programs)`` concurrent copies share the fabric."""
    copies = len(programs)
    threads = [ThreadSpec(program, thread_id=i + 1)
               for i, program in enumerate(programs)]
    workload = Workload(name.replace("/", "_"), image, threads,
                        placement=list(range(copies)), setup=setup,
                        check=check)
    return RunSpec(name, workload, remap_machine_system(1),
                   ooo1_cores=tuple(range(copies)),
                   spl_clusters=((0, 1.0),),
                   energy_divisor=copies, region_items=items)


def remap_pair_spec(name: str, image: MemoryImage, producer: Program,
                    consumer: Program, configure, check,
                    items: int) -> RunSpec:
    """A producer/consumer pair on an SPL cluster with half the fabric.

    ``configure(machine)`` installs the SPL bindings (after the standard
    half-fabric partitioning has been applied).
    """

    def setup(machine) -> None:
        machine.set_partitions(0, [12, 12], [0, 0, 1, 1])
        configure(machine)

    workload = Workload(
        name.replace("/", "_"), image,
        [ThreadSpec(producer, thread_id=1),
         ThreadSpec(consumer, thread_id=2)],
        placement=[0, 1], setup=setup, check=check)
    return RunSpec(name, workload, remap_machine_system(1),
                   ooo1_cores=(0, 1), spl_clusters=((0, 0.5),),
                   region_items=items)


def ooo2_pair_spec(name: str, image: MemoryImage, producer: Program,
                   consumer: Program, check, items: int,
                   route_words: int = 1) -> RunSpec:
    """The OOO2+Comm baseline pair: idealized network routes the stream."""

    def setup(machine) -> None:
        controller = attach_comm_network(machine, 0)
        controller.configure_send(0, ROUTE_CONFIG, dest_thread=2)

    workload = Workload(
        name.replace("/", "_"), image,
        [ThreadSpec(producer, thread_id=1),
         ThreadSpec(consumer, thread_id=2)],
        placement=[0, 1], setup=setup, check=check)
    return RunSpec(name, workload, ooo2_system(), ooo2_cores=(0, 1),
                   region_items=items)


def sw_pair_spec(name: str, image: MemoryImage, producer: Program,
                 consumer: Program, check, items: int) -> RunSpec:
    """Software-queue pair on OOO1 cores (Section V-B)."""
    workload = Workload(
        name.replace("/", "_"), image,
        [ThreadSpec(producer, thread_id=1),
         ThreadSpec(consumer, thread_id=2)],
        placement=[0, 1], check=check)
    return RunSpec(name, workload, seq_system(), ooo1_cores=(0, 1),
                   region_items=items)
