"""unepic workload: Huffman decode (producer) + dequant + scatter store.

The producer owns the bit-serial prefix decode (branchy, data-dependent),
the fabric dequantizes symbols in flight, and the consumer performs the
permutation-indexed stores and the nonzero count — exactly the
"unpredictable branch + pointer chasing load" split Section V-B1
describes for unepic.
"""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm
from repro.workloads.kernels.unepic import (QUANT_SCALE, make_perm,
                                            make_stream, unepic_reference)
from repro.workloads.stream_framework import RESULT, StreamKernel, \
    make_variants

PBITS, BITBUF, BITCNT, SYM = "r3", "r4", "r5", "r6"
T0, T1 = "r7", "r8"
PPERM, POUT_BASE, NZ, T2 = "r10", "r11", "r12", "r13"


def dequant_function(name: str = "unepic_dequant") -> SplFunction:
    """value = ((sym+1)>>1) * SCALE, negated for odd symbols."""
    g = Dfg(name)
    sym = g.input("sym", 0, width=2)
    mag = g.op(DfgOp.SHR, g.add(sym, g.const(1, 2)), shift=1, width=2)
    value = g.op(DfgOp.MUL, mag, g.const(QUANT_SCALE, 2), width=4)
    odd = g.op(DfgOp.AND, sym, g.const(1, 2), width=1)
    g.output("val", g.select(odd, g.sub(g.const(0, 4), value), value))
    return SplFunction(g)


class UnepicKernel(StreamKernel):
    bench_name = "unepic"

    def __init__(self, image, items: int, seed: int) -> None:
        super().__init__(image, items, seed)
        self.symbols, words = make_stream(items, seed)
        self.perm = make_perm(items, seed + 1)
        self.bits_addr = image.alloc_words(words)
        self.perm_addr = image.alloc_words(self.perm)
        self.out = image.alloc_zeroed(items)
        self.nz_addr = image.alloc_zeroed(1)

    def make_function(self) -> SplFunction:
        return dequant_function()

    def emit_init(self, a: Asm, role: str) -> None:
        if role in ("seq", "producer"):
            a.li(PBITS, self.bits_addr)
            a.li(BITCNT, 0)
            a.li(BITBUF, 0)
        if role in ("seq", "consumer"):
            a.li(PPERM, self.perm_addr)
            a.li(POUT_BASE, self.out)
            a.li(NZ, 0)

    def emit_stage_a(self, a: Asm) -> None:
        """Bit-serial prefix decode into SYM (count leading ones)."""
        have = a.fresh_label("have")
        loop = a.fresh_label("dec")
        done = a.fresh_label("dec_done")
        a.li(SYM, 0)
        a.label(loop)
        # get one bit (MSB first); fall through to refill when empty
        a.bnez(BITCNT, have)
        a.lw(BITBUF, PBITS, 0)
        a.addi(PBITS, PBITS, 4)
        a.li(BITCNT, 32)
        a.label(have)
        a.srli(T0, BITBUF, 31)
        a.slli(BITBUF, BITBUF, 1)
        a.addi(BITCNT, BITCNT, -1)
        a.beqz(T0, done)           # a zero bit terminates the code
        a.addi(SYM, SYM, 1)
        a.li(T0, 7)
        a.blt(SYM, T0, loop)       # symbol 7 has no terminating zero
        a.label(done)

    def emit_f_software(self, a: Asm) -> None:
        a.addi(T0, SYM, 1)
        a.srli(T0, T0, 1)
        a.li(T1, QUANT_SCALE)
        a.mul(RESULT, T0, T1)
        even = a.fresh_label("even")
        a.andi(T0, SYM, 1)
        a.beqz(T0, even)
        a.neg(RESULT, RESULT)
        a.label(even)

    def emit_issue(self, a: Asm, config: int) -> None:
        a.spl_load(SYM, 0)
        a.spl_init(config)

    def emit_stage_b(self, a: Asm, recv) -> None:
        recv(T2)
        a.lw(T0, PPERM, 0)         # pointer-chasing scatter index
        a.addi(PPERM, PPERM, 4)
        a.slli(T0, T0, 2)
        a.add(T0, T0, POUT_BASE)
        a.sw(T2, T0, 0)
        nz = a.fresh_label("nz")
        a.beqz(T2, nz)             # unpredictable data-dependent branch
        a.addi(NZ, NZ, 1)
        a.label(nz)

    def emit_fini(self, a: Asm, role: str) -> None:
        if role in ("seq", "consumer"):
            a.li(T0, self.nz_addr)
            a.sw(NZ, T0, 0)

    def check(self, memory) -> None:
        expected = unepic_reference(self.symbols, self.perm)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "unepic output mismatch"
        nz_expected = sum(1 for v in expected if v != 0)
        # The scatter is a permutation, so counting nonzero inputs and
        # outputs is equivalent.
        assert memory.read_word_signed(self.nz_addr) == nz_expected


VARIANTS = make_variants(UnepicKernel, default_items=256)
