"""Parallel Dijkstra workload variants (Figure 7, Figures 12(d)/13(b)/14(d)).

Variants:

* ``seq``          — dense O(V^2) Dijkstra on one OOO1 core.
* ``sw``           — Figure 7(a): software barriers (x2 per iteration),
  thread 0 computes the global minimum in software.
* ``barrier``      — Figure 7(b): ReMAP synchronization-only barriers,
  global minimum still in software.
* ``barrier_comp`` — Figure 7(c): the fabric computes the global minimum
  during the barrier.  One barrier per iteration on a single cluster;
  the staged regional-minimum scheme with an extra barrier when threads
  span clusters (Section III-B).
* ``hwbar``        — the homogeneous baseline of Section V-C2: OOO1 cores
  with an idealized dedicated barrier network, global min in software.

Local minima travel as ``dist << 10 | node`` packed words, making the
minimum unique; every variant's final distance vector is checked against
the reference kernel.
"""

from __future__ import annotations

from typing import List

from repro.baselines.comm_network import attach_network
from repro.baselines.sw_sync import SwBarrier
from repro.common.config import SystemConfig, ooo1_cluster
from repro.common.errors import WorkloadError
from repro.core.dfg import DfgOp
from repro.core.function import barrier_reduce_function, barrier_token_function
from repro.isa import Asm, MemoryImage, ThreadSpec
from repro.system.workload import Workload
from repro.workloads.base import (RunSpec, chunk_bounds,
                                  homogeneous_barrier_system,
                                  remap_machine_system, seq_system,
                                  spl_clusters_for_threads)
from repro.workloads.kernels.dijkstra import (INF_DIST, INF_PACKED,
                                              NODE_BITS, dijkstra_reference,
                                              make_graph)

# Register conventions.
IT, N = "r1", "r2"
T0, T1, T2 = "r3", "r4", "r5"
BEST, PD, PV, IDX = "r7", "r8", "r9", "r10"
SENSE, HI, GMIN, GD, GN, PW, LO = "r11", "r12", "r13", "r14", "r15", "r16", "r17"

REGMIN_CONFIG = 3
TOKEN_CONFIG = 4
FINAL_CONFIG = 5


class DijkstraLayout:
    """Shared memory layout for one graph instance."""

    def __init__(self, image: MemoryImage, weights: List[List[int]],
                 n_threads: int) -> None:
        self.n = len(weights)
        flat: List[int] = []
        for row in weights:
            flat.extend(row)
        self.w = image.alloc_words(flat)
        self.dist = image.alloc_words([0] + [INF_DIST] * (self.n - 1))
        self.visited = image.alloc_zeroed(self.n)
        self.localmins = image.alloc_zeroed(max(1, n_threads))
        self.globalmin = image.alloc_zeroed(1)
        self.regionalmins = image.alloc_zeroed(4)
        self.weights = weights


def _check(memory, layout: DijkstraLayout) -> None:
    reference = dijkstra_reference(layout.weights)
    got = memory.read_words(layout.dist, layout.n)
    assert got == reference, (
        f"dijkstra dist mismatch: {got[:8]}... vs {reference[:8]}...")


# -- emission helpers --------------------------------------------------------------


def _emit_local_min(a: Asm, lay: DijkstraLayout, lo: int, hi: int) -> None:
    """Packed minimum of the thread's unvisited chunk into BEST."""
    a.li(BEST, INF_PACKED)
    a.li(PD, lay.dist + 4 * lo)
    a.li(PV, lay.visited + 4 * lo)
    a.li(IDX, lo)
    a.li(HI, hi)
    scan = a.fresh_label("scan")
    skip = a.fresh_label("scan_skip")
    a.label(scan)
    a.lw(T0, PV, 0)
    a.bnez(T0, skip)
    a.lw(T1, PD, 0)
    a.slli(T1, T1, NODE_BITS)
    a.or_(T1, T1, IDX)
    a.bge(T1, BEST, skip)
    a.mov(BEST, T1)
    a.label(skip)
    a.addi(PD, PD, 4)
    a.addi(PV, PV, 4)
    a.addi(IDX, IDX, 1)
    a.blt(IDX, HI, scan)


def _emit_decode_and_update(a: Asm, lay: DijkstraLayout, lo: int,
                            hi: int) -> None:
    """Decode GMIN into GD/GN, mark visited if owned, update the chunk."""
    a.srli(GD, GMIN, NODE_BITS)
    a.andi(GN, GMIN, (1 << NODE_BITS) - 1)
    nomark = a.fresh_label("nomark")
    a.li(T0, lo)
    a.blt(GN, T0, nomark)
    a.li(T0, hi)
    a.bge(GN, T0, nomark)
    a.li(T0, lay.visited)
    a.slli(T1, GN, 2)
    a.add(T0, T0, T1)
    a.li(T1, 1)
    a.sw(T1, T0, 0)
    a.label(nomark)
    # PW = &W[GN][lo]
    a.li(T0, lay.n * 4)
    a.mul(T1, GN, T0)
    a.li(PW, lay.w + 4 * lo)
    a.add(PW, PW, T1)
    a.li(PD, lay.dist + 4 * lo)
    a.li(IDX, lo)
    a.li(HI, hi)
    update = a.fresh_label("update")
    noupd = a.fresh_label("noupd")
    a.label(update)
    a.lw(T0, PW, 0)
    a.add(T0, T0, GD)
    a.lw(T1, PD, 0)
    a.bge(T0, T1, noupd)
    a.sw(T0, PD, 0)
    a.label(noupd)
    a.addi(PW, PW, 4)
    a.addi(PD, PD, 4)
    a.addi(IDX, IDX, 1)
    a.blt(IDX, HI, update)


def _emit_global_min_software(a: Asm, lay: DijkstraLayout,
                              n_threads: int) -> None:
    """Thread 0: min over localmins[0..p), store to globalmin."""
    a.li(BEST, INF_PACKED)
    a.li(PD, lay.localmins)
    a.li(IDX, 0)
    a.li(HI, n_threads)
    loop = a.fresh_label("gmin")
    skip = a.fresh_label("gmin_skip")
    a.label(loop)
    a.lw(T0, PD, 0)
    a.bge(T0, BEST, skip)
    a.mov(BEST, T0)
    a.label(skip)
    a.addi(PD, PD, 4)
    a.addi(IDX, IDX, 1)
    a.blt(IDX, HI, loop)
    a.li(T0, lay.globalmin)
    a.sw(BEST, T0, 0)
    a.fence()


def _emit_token_barrier(a: Asm, config_id: int) -> None:
    """Arrive at a hardware barrier (SPL or dedicated network) and wait."""
    a.spl_load("r0", 0)
    a.spl_init(config_id)
    a.spl_recv(T0)


# -- program builders ------------------------------------------------------------------


def build_seq_program(lay: DijkstraLayout):
    a = Asm("dijkstra_seq")
    a.li(IT, 0)
    a.li(N, lay.n)
    a.label("outer")
    _emit_local_min(a, lay, 0, lay.n)
    a.mov(GMIN, BEST)
    _emit_decode_and_update(a, lay, 0, lay.n)
    a.addi(IT, IT, 1)
    a.blt(IT, N, "outer")
    a.halt()
    return a.assemble()


def _emit_store_local_min(a: Asm, lay: DijkstraLayout, thread: int) -> None:
    a.li(T0, lay.localmins + 4 * thread)
    a.sw(BEST, T0, 0)
    a.fence()


def _emit_load_global_min(a: Asm, lay: DijkstraLayout) -> None:
    a.li(T0, lay.globalmin)
    a.lw(GMIN, T0, 0)


def build_two_barrier_program(lay: DijkstraLayout, thread: int,
                              n_threads: int, barrier_emitter,
                              name: str):
    """Figure 7(a)/(b) shape: barrier; t0 computes gmin; barrier; update."""
    lo, hi = chunk_bounds(lay.n, n_threads, thread)
    a = Asm(name)
    a.li(SENSE, 1)
    a.li(IT, 0)
    a.li(N, lay.n)
    a.label("outer")
    _emit_local_min(a, lay, lo, hi)
    _emit_store_local_min(a, lay, thread)
    barrier_emitter(a)
    if thread == 0:
        _emit_global_min_software(a, lay, n_threads)
    barrier_emitter(a)
    _emit_load_global_min(a, lay)
    _emit_decode_and_update(a, lay, lo, hi)
    a.addi(IT, IT, 1)
    a.blt(IT, N, "outer")
    a.halt()
    return a.assemble()


def build_barrier_comp_program(lay: DijkstraLayout, thread: int,
                               n_threads: int, name: str):
    """Figure 7(c): global minimum computed in the fabric at the barrier."""
    lo, hi = chunk_bounds(lay.n, n_threads, thread)
    n_clusters = spl_clusters_for_threads(n_threads)
    a = Asm(name)
    a.li(IT, 0)
    a.li(N, lay.n)
    a.label("outer")
    _emit_local_min(a, lay, lo, hi)
    if n_clusters == 1:
        a.spl_load(BEST, 0)
        a.spl_init(REGMIN_CONFIG)
        a.spl_recv(GMIN)
    else:
        # Stage 1: regional minimum within each cluster.
        a.spl_load(BEST, 0)
        a.spl_init(REGMIN_CONFIG)
        a.spl_recv(GMIN)  # regional minimum
        cluster = thread // 4
        if thread % 4 == 0:  # cluster representative publishes it
            a.li(T0, lay.regionalmins + 4 * cluster)
            a.sw(GMIN, T0, 0)
            a.fence()
        # Stage 2: extra barrier so all regional minima are visible.
        _emit_token_barrier(a, TOKEN_CONFIG)
        # Stage 3: every participant loads one regional minimum and the
        # fabric reduces them to the global minimum.
        slot_mod = (thread % 4) % n_clusters
        a.li(T0, lay.regionalmins + 4 * slot_mod)
        a.spl_loadm(T0, 0)
        a.spl_init(FINAL_CONFIG)
        a.spl_recv(GMIN)
    _emit_decode_and_update(a, lay, lo, hi)
    a.addi(IT, IT, 1)
    a.blt(IT, N, "outer")
    a.halt()
    return a.assemble()


# -- run specs ----------------------------------------------------------------------------


def _threads(programs) -> List[ThreadSpec]:
    return [ThreadSpec(program, thread_id=i + 1)
            for i, program in enumerate(programs)]


def seq_spec(n: int = 60) -> RunSpec:
    image = MemoryImage()
    lay = DijkstraLayout(image, make_graph(n), 1)
    workload = Workload("dijkstra_seq", image,
                        _threads([build_seq_program(lay)]), placement=[0],
                        check=lambda memory: _check(memory, lay))
    return RunSpec("dijkstra/seq", workload, seq_system(), ooo1_cores=(0,),
                   region_items=n)


def sw_spec(n: int = 60, p: int = 8) -> RunSpec:
    image = MemoryImage()
    lay = DijkstraLayout(image, make_graph(n), p)
    barrier = SwBarrier(image, p)

    def emitter(a: Asm) -> None:
        barrier.emit(a, SENSE, T0, T1, T2)

    programs = [build_two_barrier_program(lay, t, p, emitter,
                                          f"dijkstra_sw_t{t}")
                for t in range(p)]
    n_clusters = max(1, -(-p // 4))
    system = SystemConfig(clusters=[ooo1_cluster(4)
                                    for _ in range(n_clusters)])
    workload = Workload(f"dijkstra_sw_p{p}", image, _threads(programs),
                        placement=list(range(p)),
                        check=lambda memory: _check(memory, lay))
    return RunSpec(f"dijkstra/sw_p{p}", workload, system,
                   ooo1_cores=tuple(range(p)), region_items=n)


def _remap_barrier_setup(machine, p: int, comp: bool) -> None:
    n_clusters = spl_clusters_for_threads(p)
    thread_ids = list(range(1, p + 1))
    machine.register_barrier(1, 1, thread_ids)
    if comp and n_clusters > 1:
        machine.register_barrier(2, 1, thread_ids)
        machine.register_barrier(3, 1, thread_ids)
    for cluster in range(n_clusters):
        local = [t for t in range(p) if t // 4 == cluster]
        slots = len(local)
        if comp:
            regmin = barrier_reduce_function(slots, DfgOp.MIN,
                                             f"dijkstra_regmin_{slots}")
            for t in local:
                machine.configure_spl(t, REGMIN_CONFIG, regmin, barrier_id=1)
            if n_clusters > 1:
                # All three stages reuse the SAME min-reduce configuration
                # (a min over tokens is a valid sync-only barrier), so the
                # partition never reconfigures between stages.
                for t in local:
                    machine.configure_spl(t, TOKEN_CONFIG, regmin,
                                          barrier_id=2)
                    machine.configure_spl(t, FINAL_CONFIG, regmin,
                                          barrier_id=3)
        else:
            token = barrier_token_function(slots, f"dijkstra_tok_{slots}")
            for t in local:
                machine.configure_spl(t, TOKEN_CONFIG, token, barrier_id=1)


def barrier_spec(n: int = 60, p: int = 8) -> RunSpec:
    """ReMAP synchronization-only barriers (Figure 7(b))."""
    image = MemoryImage()
    lay = DijkstraLayout(image, make_graph(n), p)

    def emitter(a: Asm) -> None:
        _emit_token_barrier(a, TOKEN_CONFIG)

    programs = [build_two_barrier_program(lay, t, p, emitter,
                                          f"dijkstra_bar_t{t}")
                for t in range(p)]
    n_clusters = spl_clusters_for_threads(p)
    workload = Workload(
        f"dijkstra_barrier_p{p}", image, _threads(programs),
        placement=list(range(p)),
        setup=lambda machine: _remap_barrier_setup(machine, p, comp=False),
        check=lambda memory: _check(memory, lay))
    return RunSpec(f"dijkstra/barrier_p{p}", workload,
                   remap_machine_system(n_clusters),
                   ooo1_cores=tuple(range(p)),
                   spl_clusters=tuple((c, 1.0) for c in range(n_clusters)),
                   region_items=n)


def barrier_comp_spec(n: int = 60, p: int = 8) -> RunSpec:
    """Barrier + integrated global-minimum computation (Figure 7(c))."""
    image = MemoryImage()
    lay = DijkstraLayout(image, make_graph(n), p)
    programs = [build_barrier_comp_program(lay, t, p, f"dijkstra_bc_t{t}")
                for t in range(p)]
    n_clusters = spl_clusters_for_threads(p)
    workload = Workload(
        f"dijkstra_barrier_comp_p{p}", image, _threads(programs),
        placement=list(range(p)),
        setup=lambda machine: _remap_barrier_setup(machine, p, comp=True),
        check=lambda memory: _check(memory, lay))
    return RunSpec(f"dijkstra/barrier_comp_p{p}", workload,
                   remap_machine_system(n_clusters),
                   ooo1_cores=tuple(range(p)),
                   spl_clusters=tuple((c, 1.0) for c in range(n_clusters)),
                   region_items=n)


def hwbar_spec(n: int = 60, p: int = 8) -> RunSpec:
    """Homogeneous area-equivalent baseline with a barrier network."""
    image = MemoryImage()
    lay = DijkstraLayout(image, make_graph(n), p)

    def emitter(a: Asm) -> None:
        _emit_token_barrier(a, TOKEN_CONFIG)

    programs = [build_two_barrier_program(lay, t, p, emitter,
                                          f"dijkstra_hw_t{t}")
                for t in range(p)]
    system = homogeneous_barrier_system(p)

    def setup(machine) -> None:
        controller = attach_network(machine, list(range(p)), name="barnet")
        controller.register_barrier(1, list(range(1, p + 1)))
        for t in range(p):
            controller.configure_barrier(t, TOKEN_CONFIG, barrier_id=1)

    workload = Workload(
        f"dijkstra_hwbar_p{p}", image, _threads(programs),
        placement=list(range(p)), setup=setup,
        check=lambda memory: _check(memory, lay))
    # Area-equivalent: clusters of six OOO1 cores; idle extras still leak.
    n_cores_charged = 6 * len(system.clusters)
    return RunSpec(f"dijkstra/hwbar_p{p}", workload, system,
                   ooo1_cores=tuple(range(min(n_cores_charged,
                                              system.n_cores))),
                   region_items=n)


VARIANTS = {
    "seq": seq_spec,
    "sw": sw_spec,
    "barrier": barrier_spec,
    "barrier_comp": barrier_comp_spec,
    "hwbar": hwbar_spec,
}
