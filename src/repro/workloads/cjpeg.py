"""cjpeg workload: rgb->Y in the fabric, DCT butterflies in the consumer."""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm
from repro.workloads.kernels.cjpeg import (ROUND, Y_B, Y_G, Y_R,
                                           cjpeg_reference, make_rgb)
from repro.workloads.stream_framework import RESULT, StreamKernel, \
    make_variants

PP, PIX = "r3", "r4"
T0, T1, T2 = "r5", "r6", "r7"
PBUF, CNT, POUT, BUF0 = "r15", "r16", "r17", "r18"


def ycc_function(name: str = "cjpeg_ycc") -> SplFunction:
    """Y = (19595 r + 38470 g + 7471 b + 32768) >> 16 from a packed pixel."""
    g = Dfg(name)
    r = g.input("r", 0, width=1)
    gg = g.input("g", 1, width=1)
    b = g.input("b", 2, width=1)
    mask = g.const(0xFF, 2)
    acc = g.const(ROUND, 4)
    for byte, coefficient in ((r, Y_R), (gg, Y_G), (b, Y_B)):
        wide = g.op(DfgOp.AND, byte, mask, width=2)
        acc = g.add(acc, g.op(DfgOp.MUL, wide, g.const(coefficient, 4),
                              width=4))
    g.output("y", g.op(DfgOp.SHR, acc, shift=16, width=4))
    return SplFunction(g)


class CjpegKernel(StreamKernel):
    bench_name = "cjpeg"

    def __init__(self, image, items: int, seed: int) -> None:
        if items % 8:
            raise ValueError("cjpeg items must be a multiple of 8")
        super().__init__(image, items, seed)
        self.pixels = make_rgb(items, seed)
        packed = [r | (g << 8) | (b << 16) for r, g, b in self.pixels]
        self.pix_addr = image.alloc_words(packed)
        self.buf = image.alloc_zeroed(8)
        self.out = image.alloc_zeroed(items)

    def make_function(self) -> SplFunction:
        return ycc_function()

    def emit_init(self, a: Asm, role: str) -> None:
        if role in ("seq", "producer"):
            a.li(PP, self.pix_addr)
        if role in ("seq", "consumer"):
            a.li(BUF0, self.buf)
            a.mov(PBUF, BUF0)
            a.li(CNT, 0)
            a.li(POUT, self.out)

    def emit_stage_a(self, a: Asm) -> None:
        a.lw(PIX, PP, 0)
        a.addi(PP, PP, 4)

    def emit_f_software(self, a: Asm) -> None:
        a.andi(T0, PIX, 0xFF)
        a.li(T1, Y_R)
        a.mul(RESULT, T0, T1)
        a.srli(T0, PIX, 8)
        a.andi(T0, T0, 0xFF)
        a.li(T1, Y_G)
        a.mul(T0, T0, T1)
        a.add(RESULT, RESULT, T0)
        a.srli(T0, PIX, 16)
        a.andi(T0, T0, 0xFF)
        a.li(T1, Y_B)
        a.mul(T0, T0, T1)
        a.add(RESULT, RESULT, T0)
        a.li(T1, ROUND)
        a.add(RESULT, RESULT, T1)
        a.srai(RESULT, RESULT, 16)

    def emit_issue(self, a: Asm, config: int) -> None:
        a.spl_loadm(PP, 0, -4)  # the packed pixel stage A just consumed
        a.spl_init(config)

    def emit_stage_b(self, a: Asm, recv) -> None:
        recv(T2)
        a.sw(T2, PBUF, 0)
        a.addi(PBUF, PBUF, 4)
        a.addi(CNT, CNT, 1)
        skip = a.fresh_label("nodct")
        a.li(T0, 8)
        a.bne(CNT, T0, skip)
        # Two butterfly stages over buf[0..7] into the output stream.
        y = [f"r{19 + i}" for i in range(8)]  # r19-r26... r26 clashes
        y = ["r19", "r20", "r21", "r22", "r23", "r24", "r5", "r6"]
        for i, reg in enumerate(y):
            a.lw(reg, BUF0, 4 * i)
        # tmp[i] = y[i] + y[7-i]; tmp[4+i] = y[3-i] - y[4+i]
        tmps = ["r7", "r8", "r9", "r10", "r11", "r12", "r13", "r14"]
        for i in range(4):
            a.add(tmps[i], y[i], y[7 - i])
        for i in range(4):
            a.sub(tmps[4 + i], y[3 - i], y[4 + i])
        a.add(T0, tmps[0], tmps[3])
        a.sw(T0, POUT, 0)
        a.add(T0, tmps[1], tmps[2])
        a.sw(T0, POUT, 4)
        a.sub(T0, tmps[1], tmps[2])
        a.sw(T0, POUT, 8)
        a.sub(T0, tmps[0], tmps[3])
        a.sw(T0, POUT, 12)
        for i in range(4):
            a.sw(tmps[4 + i], POUT, 16 + 4 * i)
        a.addi(POUT, POUT, 32)
        a.mov(PBUF, BUF0)
        a.li(CNT, 0)
        a.label(skip)

    def check(self, memory) -> None:
        expected = cjpeg_reference(self.pixels)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "cjpeg mismatch"


VARIANTS = make_variants(CjpegKernel, default_items=256)
