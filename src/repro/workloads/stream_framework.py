"""Framework for the streaming producer/consumer benchmarks.

The communicating Table III workloads (wc, unepic, cjpeg, adpcm, twolf,
astar) share one shape: a stream of items flows through stage A (producer
side), a transform F, and stage B (consumer side).  A benchmark provides
emission hooks and the framework assembles every evaluated variant:

=============  =====================================================
``seq``        one thread: A; F in software; B
``seq_ooo2``   the same program on an OOO2 core
``spl``        one thread: A + issue to fabric; recv; B (1Th+Comp),
               software-pipelined; four concurrent copies share the fabric
``comm``       two threads: producer A + software F + send via fabric
               route; consumer recv + B (2Th+Comm)
``compcomm``   producer A + issue (F computed in flight); consumer
               recv + B (2Th+CompComm)
``ooo2comm``   the ``comm`` programs on OOO2 cores + idealized network
``swqueue``    the ``comm`` shape over a shared-memory software queue
=============  =====================================================

Hook contract (all hooks receive the Asm being built):

* ``emit_init(a, role)`` — set up pointers/constants.  ``role`` is
  "seq", "producer", or "consumer"; stage-A pointers and stage-B pointers
  must be disjoint registers so the spl variant can run A ahead of B.
* ``emit_stage_a(a)`` — load/compute per-item inputs, leaving the F inputs
  in registers; advances A-side pointers.
* ``emit_f_software(a)`` — compute F from those registers into RESULT.
* ``emit_issue(a, config)`` — stage F's inputs (spl_load/spl_loadm using
  A-side pointers *before* emit_stage_a advanced them is allowed if the
  hook manages its own offsets) and ``spl_init(config)``.
* ``emit_stage_b(a, recv)`` — ``recv(reg)`` emits the code that brings the
  next F result into ``reg`` (spl_recv or software-queue pop); the hook
  then consumes it and advances B-side pointers.

Registers: r1/r2 are the loop counter/bound; r26-r31 are reserved for the
software-queue variant; RESULT is r25.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.sw_sync import SwQueue
from repro.core.function import SplFunction, identity_function
from repro.isa import Asm, MemoryImage, Program
from repro.workloads.base import RunSpec
from repro.workloads.pipeline_common import (COMPUTE_CONFIG, ROUTE_CONFIG,
                                             concurrent_spl_spec,
                                             ooo2_pair_spec, remap_pair_spec,
                                             single_thread_spec,
                                             sw_pair_spec)

RESULT = "r25"
#: Software pipeline depth used by the spl (1Th+Comp) variant.
SPL_PIPE_DEPTH = 3


class StreamKernel:
    """One benchmark instance: data layout plus emission hooks.

    Subclasses (one per benchmark) implement the hooks and ``check``.
    A fresh instance is built per run so layouts never alias.
    """

    #: Name used in spec ids, e.g. "wc".
    bench_name = "stream"
    #: Results sent per item through the route (comm variants).
    route_words = 1

    def __init__(self, image: MemoryImage, items: int, seed: int) -> None:
        self.image = image
        self.items = items
        self.seed = seed

    # -- hooks ------------------------------------------------------------------

    def make_function(self) -> SplFunction:
        raise NotImplementedError

    def emit_init(self, a: Asm, role: str) -> None:
        raise NotImplementedError

    def emit_stage_a(self, a: Asm) -> None:
        raise NotImplementedError

    def emit_f_software(self, a: Asm) -> None:
        raise NotImplementedError

    def emit_issue(self, a: Asm, config: int) -> None:
        raise NotImplementedError

    def emit_stage_b(self, a: Asm, recv: Callable[[str], None]) -> None:
        raise NotImplementedError

    def emit_fini(self, a: Asm, role: str) -> None:
        """Optional epilogue (e.g. store accumulated counters)."""

    def check(self, memory) -> None:
        raise NotImplementedError

    # -- program assembly ----------------------------------------------------------

    def build_seq(self, name: str) -> Program:
        a = Asm(name)
        self.emit_init(a, "seq")
        a.li("r1", 0)
        a.li("r2", self.items)
        a.label("loop")
        self.emit_stage_a(a)
        self.emit_f_software(a)
        self.emit_stage_b(a, lambda reg: a.mov(reg, RESULT))
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        self.emit_fini(a, "seq")
        a.halt()
        return a.assemble()

    def build_spl_single(self, name: str) -> Program:
        """1Th+Comp: A+issue runs SPL_PIPE_DEPTH items ahead of recv+B."""
        depth = min(SPL_PIPE_DEPTH, self.items)
        a = Asm(name)
        self.emit_init(a, "seq")
        for _ in range(depth):
            self.emit_stage_a(a)
            self.emit_issue(a, COMPUTE_CONFIG)
        a.li("r1", 0)
        a.li("r2", self.items)
        a.label("loop")
        self.emit_stage_b(a, lambda reg: a.spl_recv(reg))
        skip = a.fresh_label("noissue")
        a.li("r24", self.items - depth)
        a.bge("r1", "r24", skip)
        self.emit_stage_a(a)
        self.emit_issue(a, COMPUTE_CONFIG)
        a.label(skip)
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        self.emit_fini(a, "seq")
        a.halt()
        return a.assemble()

    def build_producer_comm(self, name: str,
                            queue: Optional[SwQueue] = None) -> Program:
        """Producer for comm/ooo2comm/swqueue: software F, then send."""
        a = Asm(name)
        self.emit_init(a, "producer")
        if queue is not None:
            a.li("r26", 0)  # private tail
        a.li("r1", 0)
        a.li("r2", self.items)
        a.label("loop")
        self.emit_stage_a(a)
        self.emit_f_software(a)
        if queue is None:
            a.spl_load(RESULT, 0)
            a.spl_init(ROUTE_CONFIG)
        else:
            queue.emit_push(a, RESULT, "r26", "r27", "r28", "r29")
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        self.emit_fini(a, "producer")
        a.halt()
        return a.assemble()

    def build_producer_compcomm(self, name: str) -> Program:
        a = Asm(name)
        self.emit_init(a, "producer")
        a.li("r1", 0)
        a.li("r2", self.items)
        a.label("loop")
        self.emit_stage_a(a)
        self.emit_issue(a, COMPUTE_CONFIG)
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        self.emit_fini(a, "producer")
        a.halt()
        return a.assemble()

    def build_consumer(self, name: str,
                       queue: Optional[SwQueue] = None) -> Program:
        a = Asm(name)
        self.emit_init(a, "consumer")
        if queue is not None:
            a.li("r26", 0)  # private head
        a.li("r1", 0)
        a.li("r2", self.items)
        a.label("loop")
        if queue is None:
            self.emit_stage_b(a, lambda reg: a.spl_recv(reg))
        else:
            self.emit_stage_b(
                a, lambda reg: queue.emit_pop(a, reg, "r26", "r27", "r29"))
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", "loop")
        self.emit_fini(a, "consumer")
        a.halt()
        return a.assemble()


def make_variants(kernel_class, default_items: int,
                  copies: int = 4) -> Dict[str, Callable[..., RunSpec]]:
    """Build the variant->spec-factory map for a StreamKernel subclass."""
    bench = kernel_class.bench_name

    def fresh(items: int, seed_offset: int = 0) -> StreamKernel:
        return kernel_class(MemoryImage(), items,
                            seed=1000 + seed_offset)

    def seq(items: int = default_items, wide_core: bool = False) -> RunSpec:
        kernel = fresh(items)
        program = kernel.build_seq(f"{bench}_seq")
        suffix = "seq_ooo2" if wide_core else "seq"
        return single_thread_spec(f"{bench}/{suffix}", kernel.image, program,
                                  kernel.check, items, wide=wide_core)

    def spl(items: int = default_items) -> RunSpec:
        image = MemoryImage()
        kernels = [kernel_class(image, items, seed=1000 + 17 * i)
                   for i in range(copies)]
        programs = [k.build_spl_single(f"{bench}_spl_t{i}")
                    for i, k in enumerate(kernels)]
        functions = [k.make_function() for k in kernels]

        def setup(machine) -> None:
            if functions[0].is_stateful:
                # Private partition + instance per thread (state cannot be
                # time-multiplexed across threads).
                machine.set_partitions(0, [6, 6, 6, 6], [0, 1, 2, 3])
                for core in range(copies):
                    machine.configure_spl(core, COMPUTE_CONFIG,
                                          functions[core])
            else:
                for core in range(copies):
                    machine.configure_spl(core, COMPUTE_CONFIG, functions[0])

        def check(memory) -> None:
            for k in kernels:
                k.check(memory)

        return concurrent_spl_spec(f"{bench}/spl", image, programs, setup,
                                   check, items)

    def comm(items: int = default_items) -> RunSpec:
        kernel = fresh(items)
        route = identity_function(f"{bench}_route", kernel.route_words)

        def configure(machine) -> None:
            machine.configure_spl(0, ROUTE_CONFIG, route, dest_thread=2)

        return remap_pair_spec(
            f"{bench}/comm", kernel.image,
            kernel.build_producer_comm(f"{bench}_comm_prod"),
            kernel.build_consumer(f"{bench}_comm_cons"),
            configure, kernel.check, items)

    def compcomm(items: int = default_items) -> RunSpec:
        kernel = fresh(items)
        function = kernel.make_function()

        def configure(machine) -> None:
            machine.configure_spl(0, COMPUTE_CONFIG, function,
                                  dest_thread=2)

        return remap_pair_spec(
            f"{bench}/compcomm", kernel.image,
            kernel.build_producer_compcomm(f"{bench}_cc_prod"),
            kernel.build_consumer(f"{bench}_cc_cons"),
            configure, kernel.check, items)

    def ooo2comm(items: int = default_items) -> RunSpec:
        kernel = fresh(items)
        return ooo2_pair_spec(
            f"{bench}/ooo2comm", kernel.image,
            kernel.build_producer_comm(f"{bench}_o2_prod"),
            kernel.build_consumer(f"{bench}_o2_cons"),
            kernel.check, items, route_words=kernel.route_words)

    def swqueue(items: int = default_items) -> RunSpec:
        kernel = fresh(items)
        queue = SwQueue(kernel.image, 64)
        return sw_pair_spec(
            f"{bench}/swqueue", kernel.image,
            kernel.build_producer_comm(f"{bench}_swq_prod", queue),
            kernel.build_consumer(f"{bench}_swq_cons", queue),
            kernel.check, items)

    return {
        "seq": seq,
        "seq_ooo2": lambda **kw: seq(wide_core=True, **kw),
        "spl": spl,
        "comm": comm,
        "compcomm": compcomm,
        "ooo2comm": ooo2comm,
        "swqueue": swqueue,
    }
