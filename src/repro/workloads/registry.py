"""Table III: the benchmark registry.

Maps every benchmark to its optimized functions, the fraction of total
program execution time those functions account for (used by the Figure 8/9
whole-program composition), its category, and the variant spec factories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.workloads import (adpcm, astar, cjpeg, dijkstra, g721, gsm,
                             hmmer, libquantum, livermore, mpeg2, twolf,
                             unepic, wc)

CATEGORY_COMP = "computation"
CATEGORY_COMMCOMP = "communication+computation"
CATEGORY_BARRIER = "barrier"


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table III."""

    name: str
    category: str
    functions: str
    exec_fraction: float  # "% Exec Time" / 100
    variants: Dict[str, Callable]
    #: Number of region entries/exits in the whole program, used to charge
    #: migration overhead in the Figure 8 composition (one region phase in
    #: our kernels; real programs enter the region once per invocation).
    region_entries: int = 1


REGISTRY: Dict[str, BenchmarkInfo] = {}


def _add(info: BenchmarkInfo) -> None:
    REGISTRY[info.name] = info


_add(BenchmarkInfo("g721dec", CATEGORY_COMP, "fmult", 0.48,
                   g721.VARIANTS_DEC))
_add(BenchmarkInfo("g721enc", CATEGORY_COMP, "fmult", 0.46,
                   g721.VARIANTS_ENC))
_add(BenchmarkInfo("mpeg2dec", CATEGORY_COMP,
                   "store_ppm_tga, conv422to444, conv420to422", 0.63,
                   mpeg2.VARIANTS_DEC))
_add(BenchmarkInfo("mpeg2enc", CATEGORY_COMP, "dist1", 0.70,
                   mpeg2.VARIANTS_ENC))
_add(BenchmarkInfo("gsmtoast", CATEGORY_COMP,
                   "LTP parameters, weighting filter", 0.54,
                   gsm.VARIANTS_TOAST))
_add(BenchmarkInfo("gsmuntoast", CATEGORY_COMP,
                   "short term synthesis filtering", 0.76,
                   gsm.VARIANTS_UNTOAST))
_add(BenchmarkInfo("libquantum", CATEGORY_COMP,
                   "quantum_toffoli, quantum_cnot", 0.40,
                   libquantum.VARIANTS))

_add(BenchmarkInfo("wc", CATEGORY_COMMCOMP, "wc", 1.00, wc.VARIANTS))
_add(BenchmarkInfo("unepic", CATEGORY_COMMCOMP,
                   "read_and_huffman_decode", 0.22, unepic.VARIANTS))
_add(BenchmarkInfo("cjpeg", CATEGORY_COMMCOMP,
                   "rgb_ycc_convert, jpeg_fdct_islow", 0.50, cjpeg.VARIANTS))
_add(BenchmarkInfo("adpcm", CATEGORY_COMMCOMP, "adpcm_decoder", 0.99,
                   adpcm.VARIANTS))
# twolf's optimized region is entered once per net with short sequential
# stretches between — the frequent migrations are why it is the paper's
# one exception in Figure 8.
_add(BenchmarkInfo("twolf", CATEGORY_COMMCOMP, "new_dbox_a", 0.30,
                   twolf.VARIANTS, region_entries=8))
_add(BenchmarkInfo("hmmer", CATEGORY_COMMCOMP, "P7Viterbi", 0.85,
                   hmmer.VARIANTS))
_add(BenchmarkInfo("astar", CATEGORY_COMMCOMP, "regwayobj::makebound2",
                   0.33, astar.VARIANTS))

_add(BenchmarkInfo("ll2", CATEGORY_BARRIER, "Livermore Loop 2", 1.00,
                   livermore.LL2_VARIANTS))
_add(BenchmarkInfo("ll3", CATEGORY_BARRIER, "Livermore Loop 3", 1.00,
                   livermore.LL3_VARIANTS))
_add(BenchmarkInfo("ll6", CATEGORY_BARRIER, "Livermore Loop 6", 1.00,
                   livermore.LL6_VARIANTS))
_add(BenchmarkInfo("dijkstra", CATEGORY_BARRIER, "Dijkstra's Algorithm",
                   1.00, dijkstra.VARIANTS))


def by_category(category: str) -> Tuple[BenchmarkInfo, ...]:
    return tuple(info for info in REGISTRY.values()
                 if info.category == category)


def communicating() -> Tuple[BenchmarkInfo, ...]:
    return by_category(CATEGORY_COMMCOMP)


def computation_only() -> Tuple[BenchmarkInfo, ...]:
    return by_category(CATEGORY_COMP)


def barrier_benchmarks() -> Tuple[BenchmarkInfo, ...]:
    return by_category(CATEGORY_BARRIER)


def table3_rows():
    """Rows of Table III (name, optimized functions, % exec time)."""
    rows = []
    for info in REGISTRY.values():
        if info.category == CATEGORY_BARRIER:
            rows.append((info.name, info.functions, "100%"))
        else:
            rows.append((info.name, info.functions,
                         f"{int(info.exec_fraction * 100)}%"))
    return rows
