"""Reference for the cjpeg kernels: rgb_ycc_convert + a 1-D fdct stage.

cjpeg is the paper's example of a workload using two ReMAP modes: colour
conversion is computed in the fabric while the stream is communicated to
the consumer, which runs the (software) DCT butterflies (50% of time
combined, Table III).  The DCT here is the first two butterfly stages of
jpeg_fdct_islow over each 8-sample row — enough to exercise the
consumer-side dependency structure without the full transform.
"""

from __future__ import annotations

from typing import List, Tuple

# libjpeg fixed-point luma coefficients (scaled by 2^16).
Y_R, Y_G, Y_B = 19595, 38470, 7471
ROUND = 1 << 15


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_rgb(count: int, seed: int) -> List[Tuple[int, int, int]]:
    gen = _lcg(seed)
    return [(next(gen) % 256, next(gen) % 256, next(gen) % 256)
            for _ in range(count)]


def rgb_to_y(r: int, g: int, b: int) -> int:
    return (Y_R * r + Y_G * g + Y_B * b + ROUND) >> 16


def fdct_stage(row: List[int]) -> List[int]:
    """First two butterfly stages of an 8-point DCT-II."""
    tmp = [row[i] + row[7 - i] for i in range(4)] + \
          [row[3 - i] - row[4 + i] for i in range(4)]
    out = [tmp[0] + tmp[3], tmp[1] + tmp[2], tmp[1] - tmp[2],
           tmp[0] - tmp[3], tmp[4], tmp[5], tmp[6], tmp[7]]
    return out


def cjpeg_reference(pixels: List[Tuple[int, int, int]]) -> List[int]:
    """Y conversion then per-8 DCT stage; flat output array."""
    ys = [rgb_to_y(r, g, b) for r, g, b in pixels]
    out: List[int] = []
    for base in range(0, len(ys) - 7, 8):
        out.extend(fdct_stage(ys[base:base + 8]))
    return out
