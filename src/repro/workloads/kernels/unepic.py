"""Reference for the unepic kernel: Huffman decode + dequantization.

A canonical prefix code (epic-style) is decoded bit-serially from a packed
stream — the unpredictable-branch part the paper isolates in its own
thread — and each symbol is dequantized (sign-magnitude scale) and
scattered through a permutation index (the pointer-chasing store).
"""

from __future__ import annotations

from typing import List, Tuple

#: Canonical code: symbol -> (code, length).  Prefix-free by construction.
HUFF_TABLE = {
    0: (0b0, 1),
    1: (0b10, 2),
    2: (0b110, 3),
    3: (0b1110, 4),
    4: (0b11110, 5),
    5: (0b111110, 6),
    6: (0b1111110, 7),
    7: (0b1111111, 7),
}
N_SYMBOLS = len(HUFF_TABLE)
QUANT_SCALE = 12


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_stream(n_symbols: int, seed: int) -> Tuple[List[int], List[int]]:
    """Returns (symbols, packed bitstream words, MSB-first)."""
    gen = _lcg(seed)
    symbols = [next(gen) % N_SYMBOLS for _ in range(n_symbols)]
    bits: List[int] = []
    for symbol in symbols:
        code, length = HUFF_TABLE[symbol]
        for i in range(length - 1, -1, -1):
            bits.append((code >> i) & 1)
    while len(bits) % 32:
        bits.append(0)
    words = []
    for base in range(0, len(bits), 32):
        word = 0
        for bit in bits[base:base + 32]:
            word = (word << 1) | bit
        words.append(word)
    return symbols, words


def make_perm(count: int, seed: int) -> List[int]:
    """A scatter permutation (pointer-chasing store targets)."""
    gen = _lcg(seed)
    perm = list(range(count))
    for i in range(count - 1, 0, -1):
        j = next(gen) % (i + 1)
        perm[i], perm[j] = perm[j], perm[i]
    return perm


def dequant(symbol: int) -> int:
    """Sign-magnitude dequantization: odd symbols negative."""
    magnitude = (symbol + 1) // 2
    value = magnitude * QUANT_SCALE
    return -value if symbol & 1 else value


def unepic_reference(symbols: List[int], perm: List[int]) -> List[int]:
    out = [0] * len(symbols)
    for i, symbol in enumerate(symbols):
        out[perm[i]] = dequant(symbol)
    return out
