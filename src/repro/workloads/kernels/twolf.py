"""Reference for the 300.twolf ``new_dbox_a`` kernel (30% of time).

Per net terminal the placement cost is the minimum Manhattan-style
distance among the four pairings of the two candidate rows with the two
pin positions; costs accumulate per net.
"""

from __future__ import annotations

from typing import List, Tuple


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_terminals(count: int, seed: int):
    gen = _lcg(seed)
    def vals():
        return [next(gen) % 4096 for _ in range(count)]
    return vals(), vals(), vals(), vals()


def dbox_cost(a: int, b: int, c: int, d: int) -> int:
    return min(abs(a - c), abs(a - d), abs(b - c), abs(b - d))


def dbox_reference(ax: List[int], bx: List[int], cx: List[int],
                   dx: List[int]) -> Tuple[List[int], int]:
    costs = [dbox_cost(a, b, c, d) for a, b, c, d in zip(ax, bx, cx, dx)]
    return costs, sum(costs)
