"""Reference implementations of Livermore Loops 2, 3, and 6.

Following Section IV-A the kernels are transformed to operate on integers;
LL2 and LL6 additionally mask their results to 15 bits so repeated passes
stay in range (a fixed-point transform applied identically in the
reference and in the simulated programs).
"""

from __future__ import annotations

from typing import List, Tuple

MASK = 0x7FFF
LL6_C = 17  # the integer stand-in for the 0.01 seed constant


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def _values(seed: int, count: int, lo: int, hi: int) -> List[int]:
    gen = _lcg(seed)
    span = hi - lo + 1
    return [lo + next(gen) % span for _ in range(count)]


# -- LL2: ICCG (incomplete Cholesky conjugate gradient) -------------------------


def ll2_data(n: int, seed: int = 7) -> Tuple[List[int], List[int]]:
    """Returns (x, v) arrays of length 2n."""
    x = _values(seed, 2 * n, 0, 100)
    v = _values(seed + 1, 2 * n, -3, 3)
    return x, v


def ll2_levels(n: int) -> List[Tuple[int, int, int]]:
    """The (ipnt, ipntp, ii) triples of the do-while level structure."""
    levels = []
    ii, ipntp = n, 0
    while ii > 0:
        ipnt = ipntp
        ipntp += ii
        ii //= 2
        levels.append((ipnt, ipntp, ii))
    return levels


def ll2_reference(x: List[int], v: List[int], n: int,
                  passes: int = 1) -> List[int]:
    x = list(x)
    for _ in range(passes):
        for ipnt, ipntp, _ in ll2_levels(n):
            i = ipntp - 1
            for k in range(ipnt + 1, ipntp, 2):
                i += 1
                x[i] = (x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1]) & MASK
    return x


# -- LL3: inner product ------------------------------------------------------------


def ll3_data(n: int, seed: int = 11) -> Tuple[List[int], List[int]]:
    z = _values(seed, n, -50, 50)
    x = _values(seed + 1, n, -50, 50)
    return z, x


def ll3_reference(z: List[int], x: List[int]) -> int:
    return sum(zi * xi for zi, xi in zip(z, x))


# -- LL6: general linear recurrence ---------------------------------------------------


def ll6_data(n: int, seed: int = 13) -> List[List[int]]:
    """The b matrix (only entries b[k][i] with k < i are used)."""
    gen = _lcg(seed)
    return [[next(gen) % 5 - 2 for _ in range(n)] for _ in range(n)]


def ll6_reference(b: List[List[int]], n: int, passes: int = 1,
                  w0: int = 1) -> List[int]:
    w = [0] * n
    w[0] = w0
    for _ in range(passes):
        for i in range(1, n):
            acc = LL6_C
            for k in range(i):
                acc += b[k][i] * w[i - k - 1]
            w[i] = acc & MASK
    return w
