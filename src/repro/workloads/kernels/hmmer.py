"""Reference implementation of the 456.hmmer P7Viterbi inner loop.

This is the exact integer recurrence of Figure 5(a), iterated over ``R``
"rows" (sequence positions): after each row the previous-row arrays are
rotated (``mpp <- mc``, ``ip <- ic``, ``dpp <- dc``) as in the real
P7Viterbi dynamic program.  All workload variants are checked against this
function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

INFTY = 987654321


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_values(seed: int, count: int, lo: int = -1000,
                hi: int = 1000) -> List[int]:
    gen = _lcg(seed)
    span = hi - lo + 1
    return [lo + next(gen) % span for _ in range(count)]


@dataclass
class HmmerData:
    """Model parameters and initial state for M match states, R rows."""

    M: int
    R: int
    mpp: List[int]
    ip: List[int]
    dpp: List[int]
    tpmm: List[int]
    tpim: List[int]
    tpdm: List[int]
    tpmd: List[int]
    tpdd: List[int]
    tpmi: List[int]
    tpii: List[int]
    bp: List[int]
    ms: List[int]
    is_: List[int]
    xmb: List[int] = field(default_factory=list)


def make_data(M: int, R: int, seed: int = 1234) -> HmmerData:
    n = M + 1
    return HmmerData(
        M=M, R=R,
        mpp=make_values(seed + 1, n), ip=make_values(seed + 2, n),
        dpp=make_values(seed + 3, n),
        tpmm=make_values(seed + 4, n), tpim=make_values(seed + 5, n),
        tpdm=make_values(seed + 6, n), tpmd=make_values(seed + 7, n),
        tpdd=make_values(seed + 8, n), tpmi=make_values(seed + 9, n),
        tpii=make_values(seed + 10, n),
        bp=make_values(seed + 11, n), ms=make_values(seed + 12, n),
        is_=make_values(seed + 13, n),
        xmb=make_values(seed + 14, R),
    )


def p7viterbi_reference(data: HmmerData):
    """Run the recurrence; returns final (mc, dc, ic) arrays."""
    M = data.M
    mpp, ip, dpp = list(data.mpp), list(data.ip), list(data.dpp)
    mc = [0] * (M + 1)
    dc = [0] * (M + 1)
    ic = [0] * (M + 1)
    for r in range(data.R):
        xmb = data.xmb[r]
        mc[0] = -INFTY
        dc[0] = -INFTY
        ic[0] = -INFTY
        for k in range(1, M + 1):
            mck = mpp[k - 1] + data.tpmm[k - 1]
            sc = ip[k - 1] + data.tpim[k - 1]
            if sc > mck:
                mck = sc
            sc = dpp[k - 1] + data.tpdm[k - 1]
            if sc > mck:
                mck = sc
            sc = xmb + data.bp[k]
            if sc > mck:
                mck = sc
            mck += data.ms[k]
            if mck < -INFTY:
                mck = -INFTY
            mc[k] = mck

            dck = dc[k - 1] + data.tpdd[k - 1]
            sc = mc[k - 1] + data.tpmd[k - 1]
            if sc > dck:
                dck = sc
            if dck < -INFTY:
                dck = -INFTY
            dc[k] = dck

            if k < M:
                ick = mpp[k] + data.tpmi[k]
                sc = ip[k] + data.tpii[k]
                if sc > ick:
                    ick = sc
                ick += data.is_[k]
                if ick < -INFTY:
                    ick = -INFTY
                ic[k] = ick
        # Rotate rows: current scores become the previous-row inputs.
        mpp, mc = mc, mpp
        ip, ic = ic, ip
        dpp, dc = dc, dpp
    # After the final swap the results live in mpp/ip/dpp.
    return mpp, dpp, ip
