"""Reference kernels for the mpeg2 workloads (Table III).

* ``dist1`` (mpeg2enc, 70% of time): sum of absolute differences between a
  reference and a candidate block — the motion-estimation inner loop.
* ``conv422`` (mpeg2dec, part of the 63% conversion/store time): the
  chroma upsampling filter, modelled as a 4-tap symmetric interpolation
  with clipping, producing four packed output bytes per step (the
  store_ppm_tga byte-packing is folded into the same pass).
"""

from __future__ import annotations

from typing import List, Tuple

BLOCK = 64  # pixels per dist1 item (an 8x8 block)


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_bytes(count: int, seed: int) -> List[int]:
    gen = _lcg(seed)
    return [next(gen) % 256 for _ in range(count)]


def dist1_reference(ref: List[int], cand: List[int]) -> List[int]:
    """Per-block SAD."""
    items = len(ref) // BLOCK
    out = []
    for i in range(items):
        sad = 0
        for j in range(BLOCK):
            diff = ref[i * BLOCK + j] - cand[i * BLOCK + j]
            sad += diff if diff >= 0 else -diff
        out.append(sad)
    return out


def _clip(value: int) -> int:
    return 0 if value < 0 else 255 if value > 255 else value


def conv_pixel(a: int, b: int, c: int, d: int) -> int:
    """One interpolated pixel: clip((5*(b+c) - (a+d) + 4) >> 3)."""
    return _clip((5 * (b + c) - (a + d) + 4) >> 3)


def conv420_pixel(cur: int, adj: int) -> int:
    """conv420to422 vertical interpolation: clip((3*cur + adj + 2) >> 2)."""
    return _clip((3 * cur + adj + 2) >> 2)


def conv420_reference(cur: List[int], adj: List[int]) -> List[int]:
    """Vertical chroma upsampling between two rows; 4 packed pixels/word."""
    items = min(len(cur), len(adj)) // 4
    out = []
    for i in range(items):
        word = 0
        for lane in range(4):
            pixel = conv420_pixel(cur[4 * i + lane], adj[4 * i + lane])
            word |= pixel << (8 * lane)
        out.append(word)
    return out


def conv422_reference(src: List[int]) -> List[int]:
    """Filter groups of consecutive bytes; four packed pixels per word.

    Output word i packs conv_pixel over the sliding windows starting at
    4*i .. 4*i+3 (the source must have 3 bytes of tail padding).
    """
    items = (len(src) - 3) // 4
    out = []
    for i in range(items):
        word = 0
        for lane in range(4):
            base = 4 * i + lane
            pixel = conv_pixel(src[base], src[base + 1], src[base + 2],
                               src[base + 3])
            word |= pixel << (8 * lane)
        out.append(word)
    return out
