"""Reference for the IMA ADPCM decoder inner loop (99% of adpcm time)."""

from __future__ import annotations

from typing import List, Tuple

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8]

STEPSIZE_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
    7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
    18500, 20350, 22385, 24623, 27086, 29794, 32767]

SHORT_MIN, SHORT_MAX = -32768, 32767


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_deltas(count: int, seed: int) -> List[int]:
    gen = _lcg(seed)
    return [next(gen) & 0xF for _ in range(count)]


def decode_step(delta: int, valpred: int, index: int) -> Tuple[int, int]:
    """One decoder step; returns (new valpred, new index)."""
    step = STEPSIZE_TABLE[index]
    vpdiff = step >> 3
    if delta & 4:
        vpdiff += step
    if delta & 2:
        vpdiff += step >> 1
    if delta & 1:
        vpdiff += step >> 2
    if delta & 8:
        valpred -= vpdiff
    else:
        valpred += vpdiff
    valpred = max(SHORT_MIN, min(SHORT_MAX, valpred))
    index += INDEX_TABLE[delta & 7]
    index = max(0, min(len(STEPSIZE_TABLE) - 1, index))
    return valpred, index


def decode_reference(deltas: List[int]) -> List[int]:
    valpred, index = 0, 0
    samples = []
    for delta in deltas:
        valpred, index = decode_step(delta, valpred, index)
        samples.append(valpred)
    return samples
