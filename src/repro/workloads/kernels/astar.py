"""Reference for the 473.astar regwayobj::makebound2 kernel (33% of time).

makebound2 expands a search boundary on a grid: for each cell of the
current boundary it inspects the four neighbours' fill numbers, and every
neighbour not yet filled is marked and appended to the next boundary.
Boundary cells are generated with disjoint neighbourhoods so the
producer/consumer split (checks ahead of marks) is race-free.
"""

from __future__ import annotations

from typing import List, Tuple

GRID_W = 64
FILLNUM = 7


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


#: Distinct boundary cells; visits cycle over them so the map stays warm
#: (makebound2 is called repeatedly over the same search region).
N_DISTINCT = 24


def make_grid(n_visits: int, seed: int) -> Tuple[List[int], List[int]]:
    """Returns (waymap fill numbers, boundary visit sequence).

    The lattice spacing keeps neighbourhoods disjoint (race-free
    check-ahead-of-mark) and a cache line apart so producer reads and
    consumer marks never false-share.  The visit list walks the lattice
    repeatedly: the first sweep expands the boundary, later sweeps find
    everything filled — the common case in the interior of a search.
    """
    gen = _lcg(seed)
    lattice = []
    y = 2
    while len(lattice) < N_DISTINCT:
        for x in range(2, GRID_W - 2, 8):
            lattice.append(y * GRID_W + x)
            if len(lattice) == N_DISTINCT:
                break
        y += 3
    height = y + 3
    waymap = [0] * (GRID_W * height)
    for index in range(len(waymap)):
        # Roughly half the neighbours start already filled.
        waymap[index] = FILLNUM if next(gen) % 2 else next(gen) % 5
    for cell in lattice:
        waymap[cell] = FILLNUM
    cells = [lattice[i % N_DISTINCT] for i in range(n_visits)]
    return waymap, cells


def neighbours(cell: int) -> List[int]:
    return [cell + 1, cell - 1, cell + GRID_W, cell - GRID_W]


NOWAY = 0


def expandable(flag: int) -> bool:
    """A neighbour is expanded when unfilled AND passable (not NOWAY)."""
    return flag != FILLNUM and flag != NOWAY


def makebound2_reference(waymap: List[int],
                         cells: List[int]) -> Tuple[List[int], List[int]]:
    """Returns (final waymap, bound2 list)."""
    waymap = list(waymap)
    bound2: List[int] = []
    for cell in cells:
        for nbr in neighbours(cell):
            if expandable(waymap[nbr]):
                waymap[nbr] = FILLNUM
                bound2.append(nbr)
    return waymap, bound2
