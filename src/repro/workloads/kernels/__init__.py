"""Pure-Python reference implementations (test oracles)."""
