"""Reference for the Unix ``wc`` kernel: line/word/char counting."""

from __future__ import annotations

from typing import List, Tuple

SPACE, NEWLINE, TAB = 32, 10, 9
_WORDS = [b"lorem", b"ipsum", b"dolor", b"sit", b"amet", b"x",
          b"consectetur", b"ad", b"minim", b"veniam"]


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_text(n_bytes: int, seed: int) -> bytes:
    """Pseudo-random text with words, spaces, tabs, and newlines."""
    gen = _lcg(seed)
    chunks: List[bytes] = []
    size = 0
    while size < n_bytes:
        word = _WORDS[next(gen) % len(_WORDS)]
        sep = (b"\n" if next(gen) % 7 == 0
               else b"\t" if next(gen) % 5 == 0 else b" ")
        chunks.append(word + sep)
        size += len(word) + 1
    return b"".join(chunks)[:n_bytes]


def is_space(byte: int) -> bool:
    return byte in (SPACE, NEWLINE, TAB)


def wc_reference(text: bytes) -> Tuple[int, int, int]:
    """(lines, words, chars), the classic wc state machine."""
    lines = words = 0
    in_word = False
    for byte in text:
        if byte == NEWLINE:
            lines += 1
        if is_space(byte):
            in_word = False
        elif not in_word:
            words += 1
            in_word = True
    return lines, words, len(text)
