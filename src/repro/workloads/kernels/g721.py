"""Reference implementation of the G.721 ADPCM ``fmult`` kernel.

``fmult`` multiplies a predictor coefficient by a signal value in the
floating-point-like format of the CCITT reference code; it accounts for
46-48% of g721 encode/decode time (Table III).  The region kernel applies
the eight predictor taps per sample, as the codec's predictor loop does.
"""

from __future__ import annotations

from typing import List, Tuple

POWER2 = [1, 2, 4, 8, 0x10, 0x20, 0x40, 0x80, 0x100, 0x200, 0x400, 0x800,
          0x1000, 0x2000, 0x4000]
TAPS = 8


def quan(val: int) -> int:
    """First index i with val < POWER2[i], else len(POWER2)."""
    for i, threshold in enumerate(POWER2):
        if val < threshold:
            return i
    return len(POWER2)


def fmult(an: int, srn: int) -> int:
    """The CCITT G.721 fmult, bit-exact to the reference C code."""
    anmag = an if an > 0 else (-an) & 0x1FFF
    anexp = quan(anmag) - 6
    if anmag == 0:
        anmant = 32
    elif anexp >= 0:
        anmant = anmag >> anexp
    else:
        anmant = anmag << -anexp
    wanexp = anexp + ((srn >> 6) & 0xF) - 13
    wanmant = (anmant * (srn & 0o77) + 0x30) >> 4
    if wanexp >= 0:
        retval = (wanmant << wanexp) & 0x7FFF
    else:
        retval = wanmant >> -wanexp
    return -retval if (an ^ srn) < 0 else retval


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_data(items: int, seed: int = 42) -> Tuple[List[int], List[int]]:
    """(an, srn) streams, TAPS values per item."""
    gen = _lcg(seed)
    count = items * TAPS
    an = [next(gen) % 8192 - 4096 for _ in range(count)]
    srn = [next(gen) % 2048 - 1024 for _ in range(count)]
    return an, srn


def predictor_reference(an: List[int], srn: List[int]) -> List[int]:
    """Per-item sum of the eight tap fmults (the sezi/sei accumulation)."""
    items = len(an) // TAPS
    out = []
    for i in range(items):
        acc = 0
        for j in range(TAPS):
            acc += fmult(an[i * TAPS + j], srn[i * TAPS + j])
        out.append(acc)
    return out
