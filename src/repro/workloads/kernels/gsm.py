"""Reference kernels for the GSM 06.10 workloads.

* gsmtoast  — the weighting filter (part of the 54% LTP/weighting region):
  an 8-tap FIR over shorts with rounding and saturation, decimating by two
  so the input window stays word-aligned.
* gsmuntoast — short-term synthesis filtering (76% of time): the 8-stage
  reflection-coefficient lattice with GSM's rounded fixed-point multiply
  and saturating state updates.
"""

from __future__ import annotations

from typing import List, Tuple

#: FIR taps (GSM weighting-filter-like coefficients, 8 taps).
H = [-134, -374, 0, 2054, 5741, 8192, 5741, 2054]
FIR_ROUND = 8192
FIR_SHIFT = 13

#: Reflection coefficients for the synthesis lattice (Q15-ish).
RRP = [16384, -12288, 8192, -6144, 4096, -2048, 1024, -512]
STAGES = len(RRP)
SHORT_MIN, SHORT_MAX = -32768, 32767


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_shorts(count: int, seed: int, lo: int = -1000,
                hi: int = 1000) -> List[int]:
    gen = _lcg(seed)
    span = hi - lo + 1
    return [lo + next(gen) % span for _ in range(count)]


def _sat(value: int) -> int:
    return SHORT_MIN if value < SHORT_MIN else \
        SHORT_MAX if value > SHORT_MAX else value


def weighting_reference(e: List[int], outputs: int) -> List[int]:
    """Decimate-by-two FIR: out[j] = sat((8192 + sum e[2j+i]*H[i]) >> 13)."""
    result = []
    for j in range(outputs):
        acc = FIR_ROUND
        for i in range(len(H)):
            acc += e[2 * j + i] * H[i]
        result.append(_sat(acc >> FIR_SHIFT))
    return result


#: Taps of the long-term-predictor cross-correlation window.
LTP_TAPS = 8


def ltp_reference(d: List[int], dp: List[int],
                  lags: int) -> Tuple[int, int]:
    """The LTP parameter search: the lag maximizing the cross-correlation
    of the short-term residual ``d`` with the reconstructed history ``dp``
    (Calculation_of_the_LTP_parameters).  Lags step by two samples (the
    same decimation as the weighting filter, keeping windows word
    aligned).  Returns (best_corr, best_lag); ties resolve to the
    smallest lag, as the sequential scan does."""
    best_corr = None
    best_lag = 0
    for lag in range(lags):
        corr = sum(d[i] * dp[2 * lag + i] for i in range(LTP_TAPS))
        if best_corr is None or corr > best_corr:
            best_corr = corr
            best_lag = lag
    return best_corr, best_lag


def mult_r(a: int, b: int) -> int:
    """GSM rounded fixed-point multiply: (a*b + 16384) >> 15."""
    return (a * b + 16384) >> 15


def synthesis_reference(wt: List[int]) -> Tuple[List[int], List[int]]:
    """The lattice filter over all samples; returns (sr, final v state)."""
    v = [0] * (STAGES + 1)
    sr = []
    for sample in wt:
        sri = sample
        for i in range(STAGES, 0, -1):
            sri = _sat(sri - mult_r(RRP[i - 1], v[i - 1]))
            v[i] = _sat(v[i - 1] + mult_r(RRP[i - 1], sri))
        sr.append(sri)
        v[0] = sri
    return sr, v
