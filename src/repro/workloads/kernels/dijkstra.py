"""Reference implementation of Dijkstra's shortest-path algorithm.

Matches the parallel decomposition of Figure 7: dense O(V^2) Dijkstra with
deterministic tie-breaking.  Local/global minima are packed as
``dist << NODE_BITS | node`` so the minimum is unique even on distance
ties — the same packing the simulated programs use.
"""

from __future__ import annotations

from typing import List

NODE_BITS = 10
MAX_NODES = 1 << NODE_BITS
#: Distance of an unreached node; packed values still fit in 31 bits.
INF_DIST = 1 << 20
#: Packed sentinel: larger than any real packed (dist, node).
INF_PACKED = (INF_DIST << NODE_BITS) | (MAX_NODES - 1)


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_graph(n: int, seed: int = 99) -> List[List[int]]:
    """Dense directed graph with weights in [1, 255]."""
    if n > MAX_NODES:
        raise ValueError(f"at most {MAX_NODES} nodes supported")
    gen = _lcg(seed)
    weights = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i != j:
                weights[i][j] = 1 + next(gen) % 255
    return weights


def pack(dist: int, node: int) -> int:
    return (dist << NODE_BITS) | node


def unpack(packed: int):
    return packed >> NODE_BITS, packed & (MAX_NODES - 1)


def dijkstra_reference(weights: List[List[int]], source: int = 0
                       ) -> List[int]:
    """Dense Dijkstra with the packed-minimum selection rule."""
    n = len(weights)
    dist = [INF_DIST] * n
    dist[source] = 0
    visited = [False] * n
    for _ in range(n):
        best = INF_PACKED
        for i in range(n):
            if not visited[i]:
                candidate = pack(dist[i], i)
                if candidate < best:
                    best = candidate
        best_dist, best_node = unpack(best)
        visited[best_node] = True
        for i in range(n):
            new_dist = best_dist + weights[best_node][i]
            if new_dist < dist[i]:
                dist[i] = new_dist
    return dist
