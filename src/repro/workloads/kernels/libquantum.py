"""Reference kernel for 462.libquantum (quantum_toffoli / quantum_cnot).

The gates operate on an array of basis-state bitmasks: a Toffoli flips the
target bit of every state whose two control bits are set; a CNOT uses one
control.  The region applies one Toffoli followed by one CNOT to each
state, 40% of libquantum's time (Table III).
"""

from __future__ import annotations

from typing import List

TOFFOLI_CONTROLS = (1 << 3) | (1 << 7)
TOFFOLI_TARGET = 1 << 11
CNOT_CONTROL = 1 << 5
CNOT_TARGET = 1 << 9


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def make_states(count: int, seed: int) -> List[int]:
    gen = _lcg(seed)
    return [next(gen) & 0xFFFF for _ in range(count)]


def toffoli(state: int) -> int:
    if state & TOFFOLI_CONTROLS == TOFFOLI_CONTROLS:
        return state ^ TOFFOLI_TARGET
    return state


def cnot(state: int) -> int:
    if state & CNOT_CONTROL:
        return state ^ CNOT_TARGET
    return state


def gates_reference(states: List[int], passes: int = 1) -> List[int]:
    """Apply the Toffoli+CNOT pair ``passes`` times, as a gate sequence
    repeatedly touching the whole register (in place)."""
    current = list(states)
    for _ in range(passes):
        current = [cnot(toffoli(state)) for state in current]
    return current
