"""Synchronization backends shared by the barrier workloads.

A backend bundles what differs between SW / ReMAP / dedicated-network
barrier variants: the system configuration, the per-thread barrier code,
the machine setup (barrier registration + config bindings), and the
energy-accounting footprint.  The barrier instruction sequence is the same
for ReMAP and the dedicated network (``spl_load; spl_init; spl_recv``);
only the backing hardware changes.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.baselines.comm_network import attach_network
from repro.baselines.sw_sync import SwBarrier
from repro.common.config import SystemConfig, ooo1_cluster
from repro.core.function import barrier_token_function
from repro.isa import Asm, MemoryImage
from repro.workloads.base import (homogeneous_barrier_system,
                                  remap_machine_system,
                                  spl_clusters_for_threads)

TOKEN_CONFIG = 8
#: Register clobbered by barrier sequences (token receive / SW temps).
BAR_T0, BAR_T1, BAR_T2, BAR_SENSE = "r3", "r4", "r5", "r11"


class SyncBackend:
    """One way of synchronizing ``p`` threads."""

    def __init__(self, kind: str, p: int, image: MemoryImage) -> None:
        if kind not in ("sw", "spl", "net"):
            raise ValueError(f"unknown sync backend {kind!r}")
        self.kind = kind
        self.p = p
        self._sw_barrier = SwBarrier(image, p) if kind == "sw" else None

    # -- program side -----------------------------------------------------------

    def emit_prologue(self, a: Asm) -> None:
        """Per-thread init (the SW barrier needs a local sense register)."""
        if self.kind == "sw":
            a.li(BAR_SENSE, 1)

    def emit_barrier(self, a: Asm) -> None:
        if self.kind == "sw":
            self._sw_barrier.emit(a, BAR_SENSE, BAR_T0, BAR_T1, BAR_T2)
        else:
            a.spl_load("r0", 0)
            a.spl_init(TOKEN_CONFIG)
            a.spl_recv(BAR_T0)

    # -- machine side ------------------------------------------------------------

    def system(self) -> SystemConfig:
        if self.kind == "spl":
            return remap_machine_system(spl_clusters_for_threads(self.p))
        if self.kind == "net":
            return homogeneous_barrier_system(self.p)
        n_clusters = max(1, -(-self.p // 4))
        return SystemConfig(clusters=[ooo1_cluster(4)
                                      for _ in range(n_clusters)])

    def setup(self, machine) -> None:
        p = self.p
        if self.kind == "spl":
            machine.register_barrier(1, 1, list(range(1, p + 1)))
            for cluster in range(spl_clusters_for_threads(p)):
                local = [t for t in range(p) if t // 4 == cluster]
                token = barrier_token_function(len(local),
                                               f"token_{len(local)}")
                for t in local:
                    machine.configure_spl(t, TOKEN_CONFIG, token,
                                          barrier_id=1)
        elif self.kind == "net":
            controller = attach_network(machine, list(range(p)),
                                        name="barnet")
            controller.register_barrier(1, list(range(1, p + 1)))
            for t in range(p):
                controller.configure_barrier(t, TOKEN_CONFIG, barrier_id=1)

    # -- energy accounting ----------------------------------------------------------

    def energy_fields(self) -> Tuple[Tuple[int, ...], Tuple]:
        """(ooo1_cores, spl_clusters) for the RunSpec."""
        if self.kind == "spl":
            n_clusters = spl_clusters_for_threads(self.p)
            return (tuple(range(self.p)),
                    tuple((c, 1.0) for c in range(n_clusters)))
        if self.kind == "net":
            # Area-equivalent homogeneous clusters: six cores each leak.
            system = homogeneous_barrier_system(self.p)
            return tuple(range(system.n_cores)), ()
        return tuple(range(self.p)), ()


def make_backend(kind: str, p: int, image: MemoryImage) -> SyncBackend:
    return SyncBackend(kind, p, image)


BackendFactory = Callable[[str, int, MemoryImage], SyncBackend]
