"""mpeg2enc (dist1) and mpeg2dec (conversion) workloads (comp-only)."""

from __future__ import annotations

from typing import List

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm, MemoryImage, Program
from repro.workloads.base import RunSpec
from repro.workloads.kernels.mpeg2 import (BLOCK, conv420_reference,
                                           conv422_reference,
                                           dist1_reference, make_bytes)
from repro.workloads.pipeline_common import (COMPUTE_CONFIG,
                                             build_loop_program,
                                             concurrent_spl_spec,
                                             single_thread_spec)
from repro.workloads.spl_lib import sad8_function

PR, PC, POUT, ACC = "r3", "r4", "r5", "r6"
T0, T1, T2, IDX, HI = "r7", "r8", "r9", "r10", "r11"
#: Second mpeg2dec configuration: the conv420to422 vertical pass.
V420_CONFIG = 2


def conv420_function(name: str = "mpeg2_conv420") -> SplFunction:
    """conv420to422: four vertically interpolated pixels per entry.

    Bytes 0-3 are the current chroma row, 4-7 the adjacent row.
    """
    g = Dfg(name)
    mask = g.const(0xFF, 2)
    word = None
    for lane in range(4):
        cur = g.op(DfgOp.AND, g.input(f"c{lane}", lane, width=1), mask,
                   width=2)
        adj = g.op(DfgOp.AND, g.input(f"a{lane}", 4 + lane, width=1), mask,
                   width=2)
        three = g.op(DfgOp.ADD, g.op(DfgOp.SHL, cur, shift=1, width=4),
                     cur, width=4)
        t = g.op(DfgOp.SHR,
                 g.add(g.add(three, adj), g.const(2, 4)), shift=2, width=4)
        pixel = g.clamp(t, 0, 255)
        shifted = g.op(DfgOp.SHL, pixel, shift=8 * lane, width=4)
        word = shifted if word is None else g.op(DfgOp.OR, word, shifted,
                                                 width=4)
    g.output("pixels", word)
    return SplFunction(g)


def conv4_function(name: str = "mpeg2_conv4") -> SplFunction:
    """Four interpolated pixels from eight source bytes, packed per word."""
    g = Dfg(name)
    raw = [g.input(f"b{i}", i, width=1) for i in range(8)]
    mask = g.const(0xFF, 2)
    wide = [g.op(DfgOp.AND, b, mask, width=2) for b in raw]
    word = None
    for lane in range(4):
        a_, b_, c_, d_ = wide[lane:lane + 4]
        inner = g.op(DfgOp.ADD, b_, c_, width=2)
        # 5*x as (x << 2) + x through the shifters + carry chain.
        five = g.op(DfgOp.ADD, g.op(DfgOp.SHL, inner, shift=2, width=4),
                    inner, width=4)
        outer = g.op(DfgOp.ADD, a_, d_, width=2)
        t = g.op(DfgOp.SHR,
                 g.add(g.op(DfgOp.SUB, five, outer, width=4),
                       g.const(4, 4)),
                 shift=3, width=4)
        pixel = g.clamp(t, 0, 255)
        shifted = g.op(DfgOp.SHL, pixel, shift=8 * lane, width=4)
        word = shifted if word is None else g.op(DfgOp.OR, word, shifted,
                                                 width=4)
    g.output("pixels", word)
    return SplFunction(g)


# ---------------- mpeg2enc: dist1 ------------------------------------------------


class Dist1Layout:
    def __init__(self, image: MemoryImage, items: int, seed: int) -> None:
        self.items = items
        self.ref = make_bytes(items * BLOCK, seed)
        self.cand = make_bytes(items * BLOCK, seed + 1)
        self.ref_addr = image.alloc_bytes(bytes(self.ref))
        self.cand_addr = image.alloc_bytes(bytes(self.cand))
        self.out = image.alloc_zeroed(items)

    def check(self, memory) -> None:
        expected = dist1_reference(self.ref, self.cand)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "dist1 SAD mismatch"


def build_dist1_seq(lay: Dist1Layout, name: str) -> Program:
    def init(a: Asm) -> None:
        a.li(PR, lay.ref_addr)
        a.li(PC, lay.cand_addr)
        a.li(POUT, lay.out)

    def body(a: Asm) -> None:
        a.li(ACC, 0)
        a.li(IDX, 0)
        a.li(HI, BLOCK)
        loop = a.fresh_label("px")
        pos = a.fresh_label("abs")
        a.label(loop)
        a.lbu(T0, PR, 0)
        a.lbu(T1, PC, 0)
        a.sub(T0, T0, T1)
        a.bge(T0, "r0", pos)
        a.neg(T0, T0)
        a.label(pos)
        a.add(ACC, ACC, T0)
        a.addi(PR, PR, 1)
        a.addi(PC, PC, 1)
        a.addi(IDX, IDX, 1)
        a.blt(IDX, HI, loop)
        a.sw(ACC, POUT, 0)
        a.addi(POUT, POUT, 4)

    return build_loop_program(name, lay.items, init, body)


def build_dist1_spl(lay: Dist1Layout, name: str) -> Program:
    groups = BLOCK // 8

    def init(a: Asm) -> None:
        a.li(PR, lay.ref_addr)
        a.li(PC, lay.cand_addr)
        a.li(POUT, lay.out)

    def body(a: Asm) -> None:
        a.li(ACC, 0)
        for _ in range(groups):
            a.spl_loadm(PR, 0)       # ref bytes 0-3
            a.spl_loadm(PR, 4, 4)    # ref bytes 4-7
            a.spl_loadm(PC, 8)       # cand bytes 0-3
            a.spl_loadm(PC, 12, 4)   # cand bytes 4-7
            a.spl_init(COMPUTE_CONFIG)
            a.addi(PR, PR, 8)
            a.addi(PC, PC, 8)
        for _ in range(groups):
            a.spl_recv(T0)
            a.add(ACC, ACC, T0)
        a.sw(ACC, POUT, 0)
        a.addi(POUT, POUT, 4)

    return build_loop_program(name, lay.items, init, body)


def mpeg2enc_seq_spec(items: int = 24, wide_core: bool = False) -> RunSpec:
    image = MemoryImage()
    lay = Dist1Layout(image, items, seed=501)
    program = build_dist1_seq(lay, "mpeg2enc_seq")
    suffix = "seq_ooo2" if wide_core else "seq"
    return single_thread_spec(f"mpeg2enc/{suffix}", image, program,
                              lambda memory: lay.check(memory), items,
                              wide=wide_core)


def mpeg2enc_spl_spec(items: int = 24, copies: int = 4) -> RunSpec:
    image = MemoryImage()
    layouts = [Dist1Layout(image, items, seed=501 + 13 * i)
               for i in range(copies)]
    programs = [build_dist1_spl(lay, f"mpeg2enc_spl_t{i}")
                for i, lay in enumerate(layouts)]
    function = sad8_function()

    def setup(machine) -> None:
        for core in range(copies):
            machine.configure_spl(core, COMPUTE_CONFIG, function)

    def check(memory) -> None:
        for lay in layouts:
            lay.check(memory)

    return concurrent_spl_spec("mpeg2enc/spl", image, programs, setup,
                               check, items)


# ---------------- mpeg2dec: conversion ---------------------------------------------


class ConvLayout:
    """mpeg2dec state: the horizontal 422->444 stream plus a 420->422
    vertical pass between two chroma rows (Table III's three functions:
    both conversions with the byte packing folded in)."""

    def __init__(self, image: MemoryImage, items: int, seed: int) -> None:
        self.items = items
        self.vitems = max(1, items // 2)
        self.src = make_bytes(items * 4 + 4, seed)
        self.src_addr = image.alloc_bytes(bytes(self.src))
        self.out = image.alloc_zeroed(items)
        self.cur = make_bytes(self.vitems * 4, seed + 7)
        self.adj = make_bytes(self.vitems * 4, seed + 8)
        self.cur_addr = image.alloc_bytes(bytes(self.cur))
        self.adj_addr = image.alloc_bytes(bytes(self.adj))
        self.vout = image.alloc_zeroed(self.vitems)

    def check(self, memory) -> None:
        expected = conv422_reference(self.src)[:self.items]
        got = [memory.read_word(self.out + 4 * i) for i in range(self.items)]
        assert got == expected, "mpeg2dec conversion mismatch"
        vexpected = conv420_reference(self.cur, self.adj)
        vgot = [memory.read_word(self.vout + 4 * i)
                for i in range(self.vitems)]
        assert vgot == vexpected, "mpeg2dec 420->422 mismatch"


def build_conv_seq(lay: ConvLayout, name: str) -> Program:
    def init(a: Asm) -> None:
        a.li(PR, lay.src_addr)
        a.li(POUT, lay.out)

    def body(a: Asm) -> None:
        a.li(ACC, 0)  # packed word
        for lane in range(4):
            a.lbu(T0, PR, lane + 1)
            a.lbu(T1, PR, lane + 2)
            a.add(T0, T0, T1)        # b + c
            a.slli(T1, T0, 2)
            a.add(T0, T1, T0)        # 5*(b+c)
            a.lbu(T1, PR, lane)
            a.lbu(T2, PR, lane + 3)
            a.add(T1, T1, T2)        # a + d
            a.sub(T0, T0, T1)
            a.addi(T0, T0, 4)
            a.srai(T0, T0, 3)
            lo = a.fresh_label("lo")
            hi = a.fresh_label("hi")
            a.bge(T0, "r0", lo)
            a.li(T0, 0)
            a.label(lo)
            a.li(T1, 255)
            a.ble(T0, T1, hi)
            a.li(T0, 255)
            a.label(hi)
            if lane:
                a.slli(T0, T0, 8 * lane)
            a.or_(ACC, ACC, T0)
        a.sw(ACC, POUT, 0)
        a.addi(PR, PR, 4)
        a.addi(POUT, POUT, 4)

    def fini(a: Asm) -> None:
        _emit_v420_software(a, lay)

    return build_loop_program(name, lay.items, init, body, fini)


def _emit_v420_software(a: Asm, lay: ConvLayout) -> None:
    """The vertical 420->422 pass in software (branchy clipping)."""
    PCUR, PADJ, PV, VI, VB = "r12", "r13", "r14", "r15", "r16"
    a.li(PCUR, lay.cur_addr)
    a.li(PADJ, lay.adj_addr)
    a.li(PV, lay.vout)
    a.li(VI, 0)
    a.li(VB, lay.vitems)
    loop = a.fresh_label("v420")
    a.label(loop)
    a.li(ACC, 0)
    for lane in range(4):
        a.lbu(T0, PCUR, lane)
        a.slli(T1, T0, 1)
        a.add(T0, T0, T1)        # 3*cur
        a.lbu(T1, PADJ, lane)
        a.add(T0, T0, T1)
        a.addi(T0, T0, 2)
        a.srai(T0, T0, 2)
        hi = a.fresh_label("vhi")
        a.li(T1, 255)
        a.ble(T0, T1, hi)
        a.li(T0, 255)
        a.label(hi)
        if lane:
            a.slli(T0, T0, 8 * lane)
        a.or_(ACC, ACC, T0)
    a.sw(ACC, PV, 0)
    a.addi(PCUR, PCUR, 4)
    a.addi(PADJ, PADJ, 4)
    a.addi(PV, PV, 4)
    a.addi(VI, VI, 1)
    a.blt(VI, VB, loop)


def _emit_v420_spl(a: Asm, lay: ConvLayout) -> None:
    """The vertical pass through the fabric, pipelined two deep."""
    PCUR, PADJ, PV, VI, VB = "r12", "r13", "r14", "r15", "r16"
    depth = min(2, lay.vitems)
    a.li(PCUR, lay.cur_addr)
    a.li(PADJ, lay.adj_addr)
    a.li(PV, lay.vout)
    a.li(VI, 0)
    a.li(VB, lay.vitems)

    def issue() -> None:
        a.spl_loadm(PCUR, 0)   # current row bytes 0-3
        a.spl_loadm(PADJ, 4)   # adjacent row bytes 0-3
        a.spl_init(V420_CONFIG)
        a.addi(PCUR, PCUR, 4)
        a.addi(PADJ, PADJ, 4)

    for _ in range(depth):
        issue()
    loop = a.fresh_label("v420")
    noissue = a.fresh_label("vnoissue")
    a.label(loop)
    a.spl_recv(T0)
    a.sw(T0, PV, 0)
    a.addi(PV, PV, 4)
    a.li(T1, lay.vitems - depth)
    a.bge(VI, T1, noissue)
    issue()
    a.label(noissue)
    a.addi(VI, VI, 1)
    a.blt(VI, VB, loop)


def build_conv_spl(lay: ConvLayout, name: str) -> Program:
    """Software-pipelined three deep to cover the fabric latency."""
    depth = min(3, lay.items)

    def issue(a: Asm) -> None:
        a.spl_loadm(PR, 0)      # bytes 0-3
        a.spl_loadm(PR, 4, 4)   # bytes 4-7
        a.spl_init(COMPUTE_CONFIG)
        a.addi(PR, PR, 4)

    def init(a: Asm) -> None:
        a.li(PR, lay.src_addr)
        a.li(POUT, lay.out)
        for _ in range(depth):
            issue(a)

    def body(a: Asm) -> None:
        a.spl_recv(T0)
        a.sw(T0, POUT, 0)
        a.addi(POUT, POUT, 4)
        skip = a.fresh_label("noissue")
        a.li(T1, lay.items - depth)
        a.bge("r1", T1, skip)
        issue(a)
        a.label(skip)

    def fini(a: Asm) -> None:
        _emit_v420_spl(a, lay)

    return build_loop_program(name, lay.items, init, body, fini)


def mpeg2dec_seq_spec(items: int = 192, wide_core: bool = False) -> RunSpec:
    image = MemoryImage()
    lay = ConvLayout(image, items, seed=601)
    program = build_conv_seq(lay, "mpeg2dec_seq")
    suffix = "seq_ooo2" if wide_core else "seq"
    return single_thread_spec(f"mpeg2dec/{suffix}", image, program,
                              lambda memory: lay.check(memory), items,
                              wide=wide_core)


def mpeg2dec_spl_spec(items: int = 192, copies: int = 4) -> RunSpec:
    image = MemoryImage()
    layouts = [ConvLayout(image, items, seed=601 + 13 * i)
               for i in range(copies)]
    programs = [build_conv_spl(lay, f"mpeg2dec_spl_t{i}")
                for i, lay in enumerate(layouts)]
    function = conv4_function()
    vertical = conv420_function()

    def setup(machine) -> None:
        for core in range(copies):
            machine.configure_spl(core, COMPUTE_CONFIG, function)
            machine.configure_spl(core, V420_CONFIG, vertical)

    def check(memory) -> None:
        for lay in layouts:
            lay.check(memory)

    return concurrent_spl_spec("mpeg2dec/spl", image, programs, setup,
                               check, items)


VARIANTS_ENC = {
    "seq": mpeg2enc_seq_spec,
    "seq_ooo2": lambda **kw: mpeg2enc_seq_spec(wide_core=True, **kw),
    "spl": mpeg2enc_spl_spec,
}

VARIANTS_DEC = {
    "seq": mpeg2dec_seq_spec,
    "seq_ooo2": lambda **kw: mpeg2dec_seq_spec(wide_core=True, **kw),
    "spl": mpeg2dec_spl_spec,
}
