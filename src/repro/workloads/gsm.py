"""gsmtoast / gsmuntoast workload variants (computation-only).

gsmtoast's weighting filter is a feed-forward FIR: one ``spl_loadv``
stages the whole 8-short window and the fabric produces one saturated
output per cycle.

gsmuntoast's synthesis lattice is a *recurrence*: the ``v[]`` reflection
state lives in the fabric's flip-flops (DELAY nodes), and the
configuration is mapped systolically so successive samples enter every
few rows (``retimed_feedback_ii``).  Because the state belongs to one
thread, each concurrent copy gets a private fabric partition and its own
function instance.
"""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgNode, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm, MemoryImage, Program
from repro.workloads.base import RunSpec
from repro.workloads.kernels.gsm import (FIR_ROUND, FIR_SHIFT, H,
                                         LTP_TAPS, RRP, SHORT_MAX,
                                         SHORT_MIN, STAGES, ltp_reference,
                                         make_shorts, synthesis_reference,
                                         weighting_reference)
from repro.workloads.pipeline_common import (COMPUTE_CONFIG,
                                             build_loop_program,
                                             concurrent_spl_spec,
                                             single_thread_spec)

PE, POUT, ACC = "r3", "r4", "r5"
T0, T1, T2, IDX = "r6", "r7", "r8", "r9"
#: Second gsmtoast configuration: the LTP correlation (COMPUTE_CONFIG
#: from pipeline_common is 1).
LTP_CONFIG = 2
V_BASE = "r10"  # first of four packed v-state registers (r10-r13) — unused
#: Assumed rows between successive samples after systolic retiming of the
#: lattice (one stage's multiply-round-subtract path).
LATTICE_RETIMED_II = 11


def weighting_function(name: str = "gsm_weight") -> SplFunction:
    """8-tap FIR with rounding and saturation (one output per entry)."""
    g = Dfg(name)
    taps = [g.input(f"e{i}", 2 * i, width=2) for i in range(len(H))]
    acc = g.const(FIR_ROUND, 4)
    for tap, coefficient in zip(taps, H):
        product = g.op(DfgOp.MUL, tap, g.const(coefficient, 2), width=4)
        acc = g.add(acc, product)
    shifted = g.op(DfgOp.SHR, acc, shift=FIR_SHIFT, width=4)
    g.output("out", g.clamp(shifted, SHORT_MIN, SHORT_MAX))
    return SplFunction(g)


def corr8_function(name: str = "gsm_ltp_corr") -> SplFunction:
    """LTP cross-correlation step: sum of d[i]*dp[i] over eight shorts.

    Beat 0 stages the residual window d, beat 1 the history window dp.
    """
    g = Dfg(name)
    acc = None
    for i in range(LTP_TAPS):
        d = g.input(f"d{i}", 2 * i, width=2)
        dp = g.input(f"p{i}", 16 + 2 * i, width=2)
        term = g.op(DfgOp.MUL, d, dp, width=4)
        acc = term if acc is None else g.add(acc, term)
    g.output("corr", acc)
    return SplFunction(g)


def synthesis_function(name: str = "gsm_lattice") -> SplFunction:
    """The stateful 8-stage lattice; v[] lives in delay registers."""
    g = Dfg(name)
    wt = g.input("wt", 0, width=2)
    v_regs = [g.delay(width=2) for _ in range(STAGES)]  # v[0..7]

    def mult_r(coefficient: int, node: DfgNode) -> DfgNode:
        product = g.op(DfgOp.MUL, node, g.const(coefficient, 2), width=4)
        return g.op(DfgOp.SHR, g.add(product, g.const(16384, 4)),
                    shift=15, width=4)

    def sat(node: DfgNode) -> DfgNode:
        return g.clamp(node, SHORT_MIN, SHORT_MAX)

    sri = wt
    new_v = {}
    for i in range(STAGES, 0, -1):
        sri = sat(g.op(DfgOp.SUB, sri, mult_r(RRP[i - 1], v_regs[i - 1]),
                       width=4))
        if i - 1 < STAGES - 1:
            # v[i] (for i < STAGES) feeds next invocation's v[i] register.
            new_v[i] = sat(g.add(v_regs[i - 1], mult_r(RRP[i - 1], sri)))
    for i, node in new_v.items():
        g.set_delay_source(v_regs[i], node)
    g.set_delay_source(v_regs[0], sri)
    g.output("sr", sri)
    return SplFunction(g, retimed_feedback_ii=LATTICE_RETIMED_II)


# ---------------- gsmtoast ---------------------------------------------------------


class ToastLayout:
    """gsmtoast state: the weighting-filter stream plus the LTP search
    (Table III lists both functions for the 54% region)."""

    def __init__(self, image: MemoryImage, items: int, seed: int) -> None:
        self.items = items
        self.lags = max(2, items // 2)
        self.e = make_shorts(2 * items + len(H), seed)
        data = b"".join(v.to_bytes(2, "little", signed=True)
                        for v in self.e)
        self.e_addr = image.alloc(len(data), align=16)
        image.write_bytes(self.e_addr, data)
        self.out = image.alloc_zeroed(items)
        self.d = make_shorts(LTP_TAPS, seed + 5)
        self.dp = make_shorts(2 * self.lags + LTP_TAPS, seed + 6)
        d_bytes = b"".join(v.to_bytes(2, "little", signed=True)
                           for v in self.d)
        dp_bytes = b"".join(v.to_bytes(2, "little", signed=True)
                            for v in self.dp)
        self.d_addr = image.alloc(len(d_bytes), align=16)
        image.write_bytes(self.d_addr, d_bytes)
        self.dp_addr = image.alloc(len(dp_bytes), align=16)
        image.write_bytes(self.dp_addr, dp_bytes)
        self.ltp_out = image.alloc_zeroed(2)  # best corr, best lag

    def check(self, memory) -> None:
        expected = weighting_reference(self.e, self.items)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "gsmtoast weighting mismatch"
        corr, lag = ltp_reference(self.d, self.dp, self.lags)
        assert memory.read_word_signed(self.ltp_out) == corr, \
            "gsmtoast LTP corr mismatch"
        assert memory.read_word_signed(self.ltp_out + 4) == lag, \
            "gsmtoast LTP lag mismatch"


def build_toast_seq(lay: ToastLayout, name: str) -> Program:
    def init(a: Asm) -> None:
        a.li(PE, lay.e_addr)
        a.li(POUT, lay.out)

    def body(a: Asm) -> None:
        a.li(ACC, FIR_ROUND)
        for i, coefficient in enumerate(H):
            a.lh(T0, PE, 2 * i)
            a.li(T1, coefficient)
            a.mul(T0, T0, T1)
            a.add(ACC, ACC, T0)
        a.srai(ACC, ACC, FIR_SHIFT)
        lo = a.fresh_label("lo")
        hi = a.fresh_label("hi")
        a.li(T0, SHORT_MIN)
        a.bge(ACC, T0, lo)
        a.mov(ACC, T0)
        a.label(lo)
        a.li(T0, SHORT_MAX)
        a.ble(ACC, T0, hi)
        a.mov(ACC, T0)
        a.label(hi)
        a.sw(ACC, POUT, 0)
        a.addi(PE, PE, 4)
        a.addi(POUT, POUT, 4)

    def fini(a: Asm) -> None:
        _emit_ltp_software(a, lay)

    return build_loop_program(name, lay.items, init, body, fini)


# Registers for the LTP phase (the FIR loop has finished by then).
BEST, BLAG, LAG, PDP, PD = "r10", "r11", "r12", "r13", "r14"
LAGS_B = "r15"


def _emit_ltp_store(a: Asm, lay: ToastLayout) -> None:
    a.li(T0, lay.ltp_out)
    a.sw(BEST, T0, 0)
    a.sw(BLAG, T0, 4)


def _emit_ltp_software(a: Asm, lay: ToastLayout) -> None:
    """The branchy sliding-window correlation search."""
    a.li(BEST, -(1 << 30))
    a.li(BLAG, 0)
    a.li(LAG, 0)
    a.li(PD, lay.d_addr)
    a.li(PDP, lay.dp_addr)
    a.li(LAGS_B, lay.lags)
    loop = a.fresh_label("ltp")
    nomax = a.fresh_label("nomax")
    a.label(loop)
    a.li(ACC, 0)
    for i in range(LTP_TAPS):
        a.lh(T0, PD, 2 * i)
        a.lh(T1, PDP, 2 * i)
        a.mul(T0, T0, T1)
        a.add(ACC, ACC, T0)
    a.ble(ACC, BEST, nomax)
    a.mov(BEST, ACC)
    a.mov(BLAG, LAG)
    a.label(nomax)
    a.addi(PDP, PDP, 4)  # two samples per lag step
    a.addi(LAG, LAG, 1)
    a.blt(LAG, LAGS_B, loop)
    _emit_ltp_store(a, lay)


def _emit_ltp_spl(a: Asm, lay: ToastLayout) -> None:
    """LTP with the correlation computed in the fabric per lag."""
    depth = min(3, lay.lags)
    a.li(BEST, -(1 << 30))
    a.li(BLAG, 0)
    a.li(LAG, 0)
    a.li(PD, lay.d_addr)
    a.li(PDP, lay.dp_addr)
    a.li(LAGS_B, lay.lags)

    def issue() -> None:
        a.spl_loadv(PD, 0)       # residual window (constant across lags)
        a.spl_loadv(PDP, 16)     # history window at this lag
        a.spl_init(LTP_CONFIG)
        a.addi(PDP, PDP, 4)

    for _ in range(depth):
        issue()
    loop = a.fresh_label("ltp")
    nomax = a.fresh_label("nomax")
    noissue = a.fresh_label("noissue")
    a.label(loop)
    a.spl_recv(ACC)
    a.ble(ACC, BEST, nomax)
    a.mov(BEST, ACC)
    a.mov(BLAG, LAG)
    a.label(nomax)
    a.li(T0, lay.lags - depth)
    a.bge(LAG, T0, noissue)
    issue()
    a.label(noissue)
    a.addi(LAG, LAG, 1)
    a.blt(LAG, LAGS_B, loop)
    _emit_ltp_store(a, lay)


def build_toast_spl(lay: ToastLayout, name: str) -> Program:
    depth = min(3, lay.items)

    def issue(a: Asm) -> None:
        a.spl_loadv(PE, 0)
        a.spl_init(COMPUTE_CONFIG)
        a.addi(PE, PE, 4)

    def init(a: Asm) -> None:
        a.li(PE, lay.e_addr)
        a.li(POUT, lay.out)
        for _ in range(depth):
            issue(a)

    def body(a: Asm) -> None:
        a.spl_recv(T0)
        a.sw(T0, POUT, 0)
        a.addi(POUT, POUT, 4)
        skip = a.fresh_label("noissue")
        a.li(T1, lay.items - depth)
        a.bge("r1", T1, skip)
        issue(a)
        a.label(skip)

    def fini(a: Asm) -> None:
        _emit_ltp_spl(a, lay)

    return build_loop_program(name, lay.items, init, body, fini)


def toast_seq_spec(items: int = 96, wide_core: bool = False) -> RunSpec:
    image = MemoryImage()
    lay = ToastLayout(image, items, seed=701)
    program = build_toast_seq(lay, "gsmtoast_seq")
    suffix = "seq_ooo2" if wide_core else "seq"
    return single_thread_spec(f"gsmtoast/{suffix}", image, program,
                              lambda memory: lay.check(memory), items,
                              wide=wide_core)


def toast_spl_spec(items: int = 96, copies: int = 4) -> RunSpec:
    image = MemoryImage()
    layouts = [ToastLayout(image, items, seed=701 + 13 * i)
               for i in range(copies)]
    programs = [build_toast_spl(lay, f"gsmtoast_spl_t{i}")
                for i, lay in enumerate(layouts)]
    function = weighting_function()
    ltp = corr8_function()

    def setup(machine) -> None:
        for core in range(copies):
            machine.configure_spl(core, COMPUTE_CONFIG, function)
            machine.configure_spl(core, LTP_CONFIG, ltp)

    def check(memory) -> None:
        for lay in layouts:
            lay.check(memory)

    return concurrent_spl_spec("gsmtoast/spl", image, programs, setup,
                               check, items)


# ---------------- gsmuntoast -------------------------------------------------------


class UntoastLayout:
    def __init__(self, image: MemoryImage, items: int, seed: int) -> None:
        self.items = items
        self.wt = make_shorts(items, seed)
        self.wt_addr = image.alloc_words(self.wt)  # one short per word slot
        self.out = image.alloc_zeroed(items)

    def check(self, memory) -> None:
        expected, _ = synthesis_reference(self.wt)
        got = memory.read_words(self.out, self.items)
        assert got == expected, "gsmuntoast synthesis mismatch"


def build_untoast_seq(lay: UntoastLayout, name: str) -> Program:
    """Software lattice; v state in registers r20..r27 (v[0..7])."""
    v_regs = [f"r{20 + i}" for i in range(STAGES)]

    def init(a: Asm) -> None:
        a.li(PE, lay.wt_addr)
        a.li(POUT, lay.out)
        for reg in v_regs:
            a.li(reg, 0)

    def sat(a: Asm, reg: str) -> None:
        lo = a.fresh_label("lo")
        hi = a.fresh_label("hi")
        a.li(T1, SHORT_MIN)
        a.bge(reg, T1, lo)
        a.mov(reg, T1)
        a.label(lo)
        a.li(T1, SHORT_MAX)
        a.ble(reg, T1, hi)
        a.mov(reg, T1)
        a.label(hi)

    def body(a: Asm) -> None:
        a.lw(ACC, PE, 0)  # sri = wt[k]
        for i in range(STAGES, 0, -1):
            # sri = sat(sri - mult_r(rrp, v[i-1]))
            a.li(T0, RRP[i - 1])
            a.mul(T2, T0, v_regs[i - 1])
            a.li(T1, 16384)
            a.add(T2, T2, T1)
            a.srai(T2, T2, 15)
            a.sub(ACC, ACC, T2)
            sat(a, ACC)
            if i - 1 < STAGES - 1:
                # v[i] = sat(v[i-1] + mult_r(rrp, sri))
                a.mul(T2, T0, ACC)
                a.li(T1, 16384)
                a.add(T2, T2, T1)
                a.srai(T2, T2, 15)
                a.add(T2, v_regs[i - 1], T2)
                a.mov(v_regs[i], T2)
                sat(a, v_regs[i])
        a.mov(v_regs[0], ACC)
        a.sw(ACC, POUT, 0)
        a.addi(PE, PE, 4)
        a.addi(POUT, POUT, 4)

    return build_loop_program(name, lay.items, init, body)


def build_untoast_spl(lay: UntoastLayout, name: str) -> Program:
    """The lattice runs in the fabric; the core just streams samples."""
    depth = min(2, lay.items)

    def issue(a: Asm) -> None:
        a.spl_loadm(PE, 0)
        a.spl_init(COMPUTE_CONFIG)
        a.addi(PE, PE, 4)

    def init(a: Asm) -> None:
        a.li(PE, lay.wt_addr)
        a.li(POUT, lay.out)
        for _ in range(depth):
            issue(a)

    def body(a: Asm) -> None:
        a.spl_recv(T0)
        a.sw(T0, POUT, 0)
        a.addi(POUT, POUT, 4)
        skip = a.fresh_label("noissue")
        a.li(T1, lay.items - depth)
        a.bge("r1", T1, skip)
        issue(a)
        a.label(skip)

    return build_loop_program(name, lay.items, init, body)


def untoast_seq_spec(items: int = 64, wide_core: bool = False) -> RunSpec:
    image = MemoryImage()
    lay = UntoastLayout(image, items, seed=801)
    program = build_untoast_seq(lay, "gsmuntoast_seq")
    suffix = "seq_ooo2" if wide_core else "seq"
    return single_thread_spec(f"gsmuntoast/{suffix}", image, program,
                              lambda memory: lay.check(memory), items,
                              wide=wide_core)


def untoast_spl_spec(items: int = 64, copies: int = 4) -> RunSpec:
    image = MemoryImage()
    layouts = [UntoastLayout(image, items, seed=801 + 13 * i)
               for i in range(copies)]
    programs = [build_untoast_spl(lay, f"gsmuntoast_spl_t{i}")
                for i, lay in enumerate(layouts)]

    def setup(machine) -> None:
        # Stateful configuration: one private partition + one function
        # instance per thread (state cannot be time-multiplexed).
        machine.set_partitions(0, [6, 6, 6, 6], [0, 1, 2, 3])
        for core in range(copies):
            machine.configure_spl(core, COMPUTE_CONFIG,
                                  synthesis_function(f"gsm_lattice_t{core}"))

    def check(memory) -> None:
        for lay in layouts:
            lay.check(memory)

    return concurrent_spl_spec("gsmuntoast/spl", image, programs, setup,
                               check, items)


VARIANTS_TOAST = {
    "seq": toast_seq_spec,
    "seq_ooo2": lambda **kw: toast_seq_spec(wide_core=True, **kw),
    "spl": toast_spl_spec,
}

VARIANTS_UNTOAST = {
    "seq": untoast_seq_spec,
    "seq_ooo2": lambda **kw: untoast_seq_spec(wide_core=True, **kw),
    "spl": untoast_spl_spec,
}
