"""Table III workloads: reference kernels, programs, and run specs."""
