"""``wc`` workload (communication+computation, 100% of execution).

The producer streams the text; the fabric classifies four characters per
entry — newline count and word starts, carrying the in-word state across
entries in a delay register — and the consumer accumulates the counts.
"""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm
from repro.workloads.kernels.wc import NEWLINE, SPACE, TAB, make_text, \
    wc_reference
from repro.workloads.stream_framework import RESULT, StreamKernel, \
    make_variants

PT, TW = "r3", "r4"
T0, T1, T2, CH = "r5", "r6", "r7", "r8"
PREV_SPACE = "r10"
LINES, WORDS = "r11", "r12"
OUT = "r14"


def wc4_function(name: str = "wc4") -> SplFunction:
    """Per 4-byte chunk: packed (newlines | word_starts << 8), stateful."""
    g = Dfg(name)
    raw = [g.input(f"b{i}", i, width=1) for i in range(4)]
    prev = g.delay(width=1, init=1)  # "previous byte was a space"
    one = g.const(1, 1)
    newline_flags = []
    start_flags = []
    last_space = prev
    for byte in raw:
        is_nl = g.op(DfgOp.CMPEQ, byte, g.const(NEWLINE, 1), width=1)
        space = g.op(DfgOp.OR,
                     g.op(DfgOp.OR, is_nl,
                          g.op(DfgOp.CMPEQ, byte, g.const(SPACE, 1),
                               width=1), width=1),
                     g.op(DfgOp.CMPEQ, byte, g.const(TAB, 1), width=1),
                     width=1)
        not_space = g.op(DfgOp.XOR, space, one, width=1)
        start_flags.append(g.op(DfgOp.AND, not_space, last_space, width=1))
        newline_flags.append(is_nl)
        last_space = space
    g.set_delay_source(prev, last_space)

    def tree(nodes):
        while len(nodes) > 1:
            nxt = []
            for i in range(0, len(nodes) - 1, 2):
                nxt.append(g.op(DfgOp.ADD, nodes[i], nodes[i + 1], width=1))
            if len(nodes) % 2:
                nxt.append(nodes[-1])
            nodes = nxt
        return nodes[0]

    newlines = tree(newline_flags)
    starts = tree(start_flags)
    packed = g.op(DfgOp.OR,
                  g.op(DfgOp.AND, newlines, g.const(0xFF, 2), width=2),
                  g.op(DfgOp.SHL,
                       g.op(DfgOp.AND, starts, g.const(0xFF, 2), width=2),
                       shift=8, width=2),
                  width=2)
    g.output("packed", packed)
    return SplFunction(g)


class WcKernel(StreamKernel):
    bench_name = "wc"

    def __init__(self, image, items: int, seed: int) -> None:
        super().__init__(image, items, seed)
        self.text = make_text(items * 4, seed)
        self.text_addr = image.alloc(len(self.text), align=16)
        image.write_bytes(self.text_addr, self.text)
        self.out = image.alloc_zeroed(3)

    def make_function(self) -> SplFunction:
        return wc4_function(f"wc4_{self.seed}")

    def emit_init(self, a: Asm, role: str) -> None:
        if role in ("seq", "producer"):
            a.li(PT, self.text_addr)
            a.li(PREV_SPACE, 1)
        if role in ("seq", "consumer"):
            a.li(LINES, 0)
            a.li(WORDS, 0)
            a.li(OUT, self.out)

    def emit_stage_a(self, a: Asm) -> None:
        a.lw(TW, PT, 0)
        a.addi(PT, PT, 4)

    def emit_f_software(self, a: Asm) -> None:
        """The classic per-character state machine; RESULT = packed."""
        a.li(RESULT, 0)
        for i in range(4):
            if i:
                a.srli(CH, TW, 8 * i)
                a.andi(CH, CH, 0xFF)
            else:
                a.andi(CH, TW, 0xFF)
            not_nl = a.fresh_label("nnl")
            space = a.fresh_label("sp")
            done = a.fresh_label("done")
            a.li(T0, NEWLINE)
            a.bne(CH, T0, not_nl)
            a.addi(RESULT, RESULT, 1)      # newline count (low byte)
            a.j(space)
            a.label(not_nl)
            a.li(T0, SPACE)
            a.beq(CH, T0, space)
            a.li(T0, TAB)
            a.beq(CH, T0, space)
            # non-space: word start if previous was space
            a.beqz(PREV_SPACE, done)
            a.li(T1, 1 << 8)
            a.add(RESULT, RESULT, T1)      # word-start count (high byte)
            a.li(PREV_SPACE, 0)
            a.j(done)
            a.label(space)
            a.li(PREV_SPACE, 1)
            a.label(done)

    def emit_issue(self, a: Asm, config: int) -> None:
        a.spl_loadm(PT, 0, -4)  # stage the word emit_stage_a just consumed
        a.spl_init(config)

    def emit_stage_b(self, a: Asm, recv) -> None:
        recv(T2)
        a.andi(T0, T2, 0xFF)
        a.add(LINES, LINES, T0)
        a.srli(T0, T2, 8)
        a.add(WORDS, WORDS, T0)

    def emit_fini(self, a: Asm, role: str) -> None:
        if role in ("seq", "consumer"):
            a.sw(LINES, OUT, 0)
            a.sw(WORDS, OUT, 4)
            a.li(T0, self.items * 4)
            a.sw(T0, OUT, 8)

    def check(self, memory) -> None:
        lines, words, chars = wc_reference(self.text)
        got = memory.read_words(self.out, 3)
        assert got == [lines, words, chars], f"wc mismatch: {got}"


VARIANTS = make_variants(WcKernel, default_items=256)
