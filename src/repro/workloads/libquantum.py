"""462.libquantum workload variants (computation-only).

The fabric configuration applies Toffoli + CNOT to eight basis states per
entry (two row-wide ``spl_loadv`` beats in, eight ``spl_store`` words
out), turning the branchy gate conditionals into LUT select logic.
"""

from __future__ import annotations

from repro.core.dfg import Dfg, DfgOp
from repro.core.function import SplFunction
from repro.isa import Asm, MemoryImage, Program
from repro.workloads.base import RunSpec
from repro.workloads.kernels.libquantum import (CNOT_CONTROL, CNOT_TARGET,
                                                TOFFOLI_CONTROLS,
                                                TOFFOLI_TARGET,
                                                gates_reference, make_states)
from repro.workloads.pipeline_common import (COMPUTE_CONFIG,
                                             build_loop_program,
                                             concurrent_spl_spec,
                                             single_thread_spec)

PS, POUT, T0, T1, T2 = "r3", "r4", "r5", "r6", "r7"
LANES = 8  # states per fabric entry


def gates8_function(name: str = "quantum_gates8") -> SplFunction:
    """Toffoli then CNOT on eight state words."""
    g = Dfg(name)
    for lane in range(LANES):
        state = g.input(f"s{lane}", 4 * lane)
        tc = g.const(TOFFOLI_CONTROLS)
        hit_t = g.op(DfgOp.CMPEQ, g.op(DfgOp.AND, state, tc), tc, width=1)
        after_t = g.select(hit_t,
                           g.op(DfgOp.XOR, state,
                                g.const(TOFFOLI_TARGET)), state)
        cc = g.const(CNOT_CONTROL)
        hit_c = g.op(DfgOp.CMPEQ, g.op(DfgOp.AND, after_t, cc), cc, width=1)
        after_c = g.select(hit_c,
                           g.op(DfgOp.XOR, after_t,
                                g.const(CNOT_TARGET)), after_t)
        g.output(f"o{lane}", after_c)
    return SplFunction(g)


class QuantumLayout:
    def __init__(self, image: MemoryImage, items: int, seed: int,
                 passes: int) -> None:
        self.items = items  # groups of LANES states
        self.passes = passes
        self.states = make_states(items * LANES, seed)
        self.addr = image.alloc(4 * len(self.states), align=16)
        for i, state in enumerate(self.states):
            image.write_word(self.addr + 4 * i, state)

    def check(self, memory) -> None:
        expected = gates_reference(self.states, self.passes)
        got = [memory.read_word(self.addr + 4 * i)
               for i in range(self.items * LANES)]
        assert got == expected, "libquantum gates mismatch"


def build_seq(lay: QuantumLayout, name: str) -> Program:
    """In-place gate application, ``passes`` sweeps over the register."""
    a = Asm(name)
    a.li("r8", 0)
    a.li("r9", lay.passes)
    a.label("pass")
    a.li(PS, lay.addr)
    a.li("r1", 0)
    a.li("r2", lay.items)
    a.label("loop")
    for lane in range(LANES):
        a.lw(T0, PS, 4 * lane)
        skip_t = a.fresh_label("t")
        skip_c = a.fresh_label("c")
        a.li(T1, TOFFOLI_CONTROLS)
        a.and_(T2, T0, T1)
        a.bne(T2, T1, skip_t)
        a.xori(T0, T0, TOFFOLI_TARGET)
        a.label(skip_t)
        a.andi(T2, T0, CNOT_CONTROL)
        a.beqz(T2, skip_c)
        a.xori(T0, T0, CNOT_TARGET)
        a.label(skip_c)
        a.sw(T0, PS, 4 * lane)
    a.addi(PS, PS, 4 * LANES)
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.addi("r8", "r8", 1)
    a.blt("r8", "r9", "pass")
    a.halt()
    return a.assemble()


def build_spl(lay: QuantumLayout, name: str) -> Program:
    """In-place fabric sweep, software-pipelined two deep."""
    depth = min(2, lay.items)
    a = Asm(name)

    def issue() -> None:
        a.spl_loadv(PS, 0)
        a.spl_loadv(PS, 16, 16)
        a.spl_init(COMPUTE_CONFIG)
        a.addi(PS, PS, 4 * LANES)

    a.li("r8", 0)
    a.li("r9", lay.passes)
    a.label("pass")
    a.li(PS, lay.addr)
    a.li(POUT, lay.addr)
    for _ in range(depth):
        issue()
    a.li("r1", 0)
    a.li("r2", lay.items)
    a.label("loop")
    for lane in range(LANES):
        a.spl_store(POUT, 4 * lane)
    a.addi(POUT, POUT, 4 * LANES)
    skip = a.fresh_label("noissue")
    a.li(T1, lay.items - depth)
    a.bge("r1", T1, skip)
    issue()
    a.label(skip)
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "loop")
    a.addi("r8", "r8", 1)
    a.blt("r8", "r9", "pass")
    a.halt()
    return a.assemble()


def seq_spec(items: int = 48, passes: int = 6,
             wide_core: bool = False) -> RunSpec:
    image = MemoryImage()
    lay = QuantumLayout(image, items, seed=901, passes=passes)
    program = build_seq(lay, "libquantum_seq")
    suffix = "seq_ooo2" if wide_core else "seq"
    return single_thread_spec(f"libquantum/{suffix}", image, program,
                              lambda memory: lay.check(memory),
                              items * passes, wide=wide_core)


def spl_spec(items: int = 48, passes: int = 6, copies: int = 4) -> RunSpec:
    image = MemoryImage()
    layouts = [QuantumLayout(image, items, seed=901 + 13 * i, passes=passes)
               for i in range(copies)]
    programs = [build_spl(lay, f"libquantum_spl_t{i}")
                for i, lay in enumerate(layouts)]
    function = gates8_function()

    def setup(machine) -> None:
        for core in range(copies):
            machine.configure_spl(core, COMPUTE_CONFIG, function)

    def check(memory) -> None:
        for lay in layouts:
            lay.check(memory)

    return concurrent_spl_spec("libquantum/spl", image, programs, setup,
                               check, items * passes)


VARIANTS = {
    "seq": seq_spec,
    "seq_ooo2": lambda **kw: seq_spec(wide_core=True, **kw),
    "spl": spl_spec,
}
