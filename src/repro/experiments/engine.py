"""Parallel experiment engine with a persistent, content-addressed cache.

Every figure, table, and ablation in this repo is a fan-out of independent
:class:`RunSpec` simulations.  This module gives all of them one execution
path:

* **Declarative requests.** A :class:`SpecRequest` names a spec *by
  construction recipe* — registry benchmark + variant (or a
  ``module:function`` factory path), factory parameters, an optional
  system-config override, and an optional named transform.  Specs
  themselves carry closures (workload ``setup``/``check``) and cannot
  cross a process boundary; requests are plain, hashable, picklable data,
  so workers rebuild the spec locally.
* **Fan-out.** :meth:`ExperimentEngine.gather` runs pending requests on a
  ``ProcessPoolExecutor`` (``--jobs`` / ``REPRO_JOBS``); ``jobs=1``
  preserves the historical in-process serial path.
* **Memoization.** Results are stored on disk (``REPRO_CACHE_DIR`` or
  ``~/.cache/repro``) keyed by a stable hash of the request, the result
  schema version, and a fingerprint of the ``repro`` source tree — any
  code change invalidates the cache automatically.
* **Structured failures.** A failing spec never kills the batch: it is
  reported as a :class:`SpecError` (request, exception type, message,
  traceback), and strict callers get them all at once in an
  :class:`ExperimentBatchError`.
* **Pre-flight lint.** Before fanning out, every cache-missing spec is
  statically verified (``repro.analysis.lint_spec``) in the parent
  process; error-severity diagnostics turn into ``LintError``-typed
  :class:`SpecError` records instead of burning a worker on a spec that
  would fault mid-simulation.  Disable with ``--no-lint`` /
  ``REPRO_NO_LINT`` or ``ExperimentEngine(lint=False)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import sys
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from repro.common.config import ENV_NO_LINT, SystemConfig, env_enabled
from repro.common.errors import ConfigError
from repro.common.serialize import system_from_json, system_to_dict
from repro.experiments.runner import (RESULT_SCHEMA_VERSION, RunResult,
                                      execute)

_SCALARS = (bool, int, float, str)


# -- declarative run requests --------------------------------------------------


@dataclass(frozen=True)
class SpecRequest:
    """A picklable recipe for building one :class:`RunSpec`.

    ``bench`` is a registry benchmark name, or a ``"module:function"``
    dotted path to any factory returning a RunSpec (``variant`` is then
    ignored).  ``params`` are the factory's keyword arguments as a sorted
    tuple of pairs.  ``system_json`` optionally replaces the built spec's
    system configuration; ``transform`` optionally names a
    ``"module:function"`` applied to the built spec (for overrides a
    config swap cannot express).
    """

    bench: str
    variant: str = ""
    params: Tuple[Tuple[str, Any], ...] = ()
    system_json: Optional[str] = None
    name: Optional[str] = None
    transform: Optional[str] = None

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        if self.variant:
            return f"{self.bench}/{self.variant}"
        return self.bench

    def cache_key(self) -> str:
        from repro.common.config import RunOptions
        record = {
            "schema": RESULT_SCHEMA_VERSION,
            "bench": self.bench,
            "variant": self.variant,
            "params": list(self.params),
            "system": (json.loads(self.system_json)
                       if self.system_json else None),
            "name": self.name,
            "transform": self.transform,
            # Effective run options (scheduler/codegen mode after env
            # resolution): runs under REPRO_NO_FASTFORWARD / _NO_CODEGEN
            # must not share cache entries with default-mode runs.
            "options": RunOptions().resolve().fingerprint(),
        }
        text = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()


def request(bench: str, variant: str = "", *,
            system: Optional[SystemConfig] = None,
            name: Optional[str] = None,
            transform: Optional[str] = None, **params) -> SpecRequest:
    """Build a :class:`SpecRequest`, validating parameter types."""
    for key, value in params.items():
        if not isinstance(value, _SCALARS):
            raise ConfigError(
                f"{bench}/{variant}: parameter {key}={value!r} is not a "
                f"scalar (int/float/bool/str) — requests must be "
                f"declarative and hashable")
    system_json = None
    if system is not None:
        system_json = json.dumps(system_to_dict(system), sort_keys=True,
                                 separators=(",", ":"))
    return SpecRequest(bench=bench, variant=variant,
                       params=tuple(sorted(params.items())),
                       system_json=system_json, name=name,
                       transform=transform)


def _resolve(path: str) -> Callable:
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ConfigError(f"bad dotted path {path!r} (want module:function)")
    return getattr(importlib.import_module(module_name), attr)


def build_spec(req: SpecRequest):
    """Rebuild the RunSpec a request describes (runs in the worker)."""
    if ":" in req.bench:
        factory = _resolve(req.bench)
    else:
        from repro.workloads import registry
        info = registry.REGISTRY.get(req.bench)
        if info is None:
            raise ConfigError(f"unknown benchmark {req.bench!r}")
        factory = info.variants.get(req.variant)
        if factory is None:
            raise ConfigError(f"{req.bench} has no variant {req.variant!r} "
                              f"(have {', '.join(sorted(info.variants))})")
    spec = factory(**dict(req.params))
    if req.system_json is not None:
        spec = replace(spec, system=system_from_json(req.system_json))
    if req.name is not None:
        spec = replace(spec, name=req.name)
    if req.transform is not None:
        spec = _resolve(req.transform)(spec)
    return spec


# -- structured failure records ------------------------------------------------


@dataclass
class SpecError:
    """One spec's failure, preserved without killing the batch."""

    request: SpecRequest
    exception_type: str
    message: str
    traceback_text: str

    def __str__(self) -> str:
        return (f"{self.request.label}: {self.exception_type}: "
                f"{self.message}")

    def to_dict(self) -> Dict:
        """JSON-safe payload (the unit the job server serializes)."""
        return {
            "request": dataclasses.asdict(self.request),
            "label": self.request.label,
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback": self.traceback_text,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SpecError":
        request_data = dict(data["request"])
        request_data["params"] = tuple(
            (key, value) for key, value in request_data.get("params", ()))
        return cls(request=SpecRequest(**request_data),
                   exception_type=data["exception_type"],
                   message=data["message"],
                   traceback_text=data.get("traceback", ""))


class ExperimentBatchError(Exception):
    """Raised by strict gathers after the whole batch has completed.

    Carries both the live :class:`SpecError` records (``errors``) and
    their structured :meth:`SpecError.to_dict` payloads (``payloads``),
    so services can serialize batch failures without string-parsing the
    exception message or tracebacks.
    """

    def __init__(self, errors: List[SpecError]) -> None:
        self.errors = errors
        self.payloads = [error.to_dict() for error in errors]
        first = errors[0]
        summary = f"{len(errors)} of the batch's specs failed; first: " \
                  f"{first}\n{first.traceback_text}"
        super().__init__(summary)

    def to_dict(self) -> Dict:
        """The whole batch failure as one JSON-safe record."""
        return {"errors": self.payloads}


# -- persistent result cache ---------------------------------------------------


_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file — changes invalidate the cache."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _fingerprint_cache = digest.hexdigest()[:12]
    return _fingerprint_cache


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Content-addressed on-disk store of ``RunResult.to_dict()`` records.

    Layout: ``<root>/v<schema>-<code fingerprint>/<key[:2]>/<key>.json``.
    Invalidation is implicit — a schema bump or any change to the
    ``repro`` package moves the version directory, so stale entries are
    simply never read again.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        root = root or default_cache_dir()
        self.root = Path(root) / \
            f"v{RESULT_SCHEMA_VERSION}-{code_fingerprint()}"

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[Dict]:
        path = self._path(key)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        return record.get("result")

    def store(self, key: str, req: SpecRequest, result: Dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"request": dataclasses.asdict(req), "result": result}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)  # atomic: concurrent writers race benignly


class LintCache:
    """On-disk cache of pre-flight lint verdicts, beside the result cache.

    Layout: ``<root>/v<schema>-<fingerprint>/lint/<key[:2]>/<key>.json``.
    Keys are the same content-addressed request hashes as
    :class:`ResultCache` and live under the same code-fingerprinted
    version directory, so any source change (including to the analysis
    rules themselves) invalidates cached verdicts implicitly.  A record
    is ``{"ok": true}`` or ``{"ok": false, "outcome": [...]}`` where
    ``outcome`` is the error tuple :meth:`ExperimentEngine._preflight`
    would have produced.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        root = root or default_cache_dir()
        self.root = Path(root) / \
            f"v{RESULT_SCHEMA_VERSION}-{code_fingerprint()}" / "lint"

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[Dict]:
        try:
            with open(self._path(key)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def store(self, key: str, outcome: Optional[Tuple]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record: Dict = {"ok": outcome is None}
        if outcome is not None:
            record["outcome"] = list(outcome)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)


# -- the engine ----------------------------------------------------------------


def _run_request(req: SpecRequest) -> Tuple:
    """Worker entry point: build, simulate, serialize (all picklable)."""
    try:
        result = execute(build_spec(req))
        return ("ok", result.to_dict())
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc),
                traceback.format_exc())


class ExperimentEngine:
    """Batched execution of SpecRequests with caching and fan-out.

    Use it either as submit/gather::

        engine.submit(request("hmmer", "seq", M=64, R=3), key="baseline")
        results = engine.gather()          # {"baseline": RunResult}

    or as a one-shot batch::

        results = engine.run_batch([req_a, req_b])   # input order

    ``jobs`` defaults to ``REPRO_JOBS`` (else 1).  ``use_cache`` defaults
    to on unless ``REPRO_NO_CACHE`` is set.  ``lint`` defaults to on
    unless ``REPRO_NO_LINT`` is set; when on, cache-missing specs are
    statically verified before dispatch and error-severity findings
    become ``LintError``-typed :class:`SpecError` records.  Verdicts are
    cached persistently (:class:`LintCache`) under the same
    content-addressed keys as results, so repeated batches skip the
    analysis entirely until the code or the request changes.
    """

    def __init__(self, jobs: Optional[int] = None,
                 use_cache: Optional[bool] = None,
                 cache_dir: Optional[Path] = None,
                 lint: Optional[bool] = None,
                 progress: bool = False) -> None:
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if use_cache is None:
            use_cache = not os.environ.get("REPRO_NO_CACHE")
        if lint is None:
            lint = env_enabled(ENV_NO_LINT)
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.lint_cache = LintCache(cache_dir) if use_cache else None
        self.lint = lint
        self.progress = progress
        self._pending: List[Tuple[Any, SpecRequest]] = []
        self._lint_passed: set = set()
        #: Session-wide counters, reported in progress lines.
        self.cache_hits = 0
        self.simulated = 0
        self.failed = 0

    # -- submission ----------------------------------------------------------

    def submit(self, req: SpecRequest, key: Any = None) -> None:
        """Queue one request; ``key`` identifies it in gather()'s dict."""
        if key is None:
            key = len(self._pending)
        self._pending.append((key, req))

    def gather(self) -> Dict[Any, RunResult]:
        """Run everything submitted since the last gather.

        Returns ``{key: RunResult}`` in submission order.  If any spec
        failed, the *whole batch still completes* and then an
        :class:`ExperimentBatchError` listing every failure is raised.
        """
        items, self._pending = self._pending, []
        results, errors = self._execute(items)
        if errors:
            raise ExperimentBatchError(errors)
        return {key: results[key] for key, _ in items}

    def run_batch(self, reqs: Sequence[SpecRequest], strict: bool = True
                  ) -> List[Union[RunResult, SpecError]]:
        """Execute ``reqs``; the result list parallels the input.

        With ``strict`` (the default) any failure raises
        :class:`ExperimentBatchError` after the batch completes; with
        ``strict=False`` failed entries are the :class:`SpecError`
        records themselves, in place.
        """
        items = [(index, req) for index, req in enumerate(reqs)]
        results, errors = self._execute(items)
        if errors and strict:
            raise ExperimentBatchError(errors)
        by_key = {error.request.cache_key(): error for error in errors}
        out: List[Union[RunResult, SpecError]] = []
        for index, req in items:
            out.append(results.get(index, by_key.get(req.cache_key())))
        return out

    def run(self, req: SpecRequest) -> RunResult:
        """Convenience: one request, strict."""
        return self.run_batch([req])[0]

    # -- execution -----------------------------------------------------------

    def _execute(self, items: List[Tuple[Any, SpecRequest]]
                 ) -> Tuple[Dict[Any, RunResult], List[SpecError]]:
        total = len(items)
        results: Dict[Any, RunResult] = {}
        errors: List[SpecError] = []
        done = hits = simulated = 0
        # Probe the cache; group the misses by cache key so duplicate
        # requests in one batch simulate only once.
        todo: Dict[str, List[Tuple[Any, SpecRequest]]] = {}
        for key, req in items:
            cache_key = req.cache_key()
            record = self.cache.load(cache_key) if self.cache else None
            if record is not None:
                result = RunResult.from_dict(record)
                result.cache_hit = True
                results[key] = result
                done += 1
                hits += 1
                self._note(done, total, hits, simulated, len(errors),
                           f"cached {req.label}")
            else:
                todo.setdefault(cache_key, []).append((key, req))

        def finish(cache_key: str, outcome: Tuple) -> None:
            nonlocal done, simulated
            keyed = todo[cache_key]
            req = keyed[0][1]
            done += len(keyed)
            if outcome[0] == "ok":
                simulated += 1
                record = outcome[1]
                if self.cache:
                    self.cache.store(cache_key, req, record)
                for key, each in keyed:
                    result = RunResult.from_dict(record)
                    results[key] = result
                self._note(done, total, hits, simulated, len(errors),
                           f"simulated {req.label}")
            else:
                _, exc_type, message, tb = outcome
                for key, each in keyed:
                    errors.append(SpecError(each, exc_type, message, tb))
                self._note(done, total, hits, simulated, len(errors),
                           f"FAILED {req.label}: {exc_type}: {message}")

        if self.lint:
            for cache_key in list(todo):
                outcome = self._preflight_outcome(cache_key,
                                                  todo[cache_key][0][1])
                if outcome is not None:
                    finish(cache_key, outcome)
                    del todo[cache_key]

        if self.jobs == 1 or len(todo) <= 1:
            for cache_key, keyed in todo.items():
                finish(cache_key, _run_request(keyed[0][1]))
        else:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {pool.submit(_run_request, keyed[0][1]): cache_key
                           for cache_key, keyed in todo.items()}
                pending = set(futures)
                while pending:
                    finished, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                    for future in finished:
                        finish(futures[future], future.result())
        self.cache_hits += hits
        self.simulated += simulated
        self.failed += len(errors)
        if total:
            self._note(done, total, hits, simulated, len(errors),
                       "batch complete")
        return results, errors

    def _preflight_outcome(self, cache_key: str,
                           req: SpecRequest) -> Optional[Tuple]:
        """Memoized pre-flight verdict for one request.

        ``None`` means the spec may run; otherwise the engine's error
        outcome tuple (``("error", type, message, traceback)``).
        Verdicts are remembered in-process and in :class:`LintCache`.
        """
        if cache_key in self._lint_passed:
            return None
        record = self.lint_cache.load(cache_key) \
            if self.lint_cache else None
        if record is not None:
            outcome = None if record.get("ok") \
                else tuple(record["outcome"])
        else:
            outcome = self._preflight(req)
            if self.lint_cache:
                self.lint_cache.store(cache_key, outcome)
        if outcome is None:
            self._lint_passed.add(cache_key)
        return outcome

    def preflight(self, req: SpecRequest) -> Optional[SpecError]:
        """Public pre-flight gate: lint one request without running it.

        Returns ``None`` when the spec is clear to simulate (or linting
        is disabled), else a structured :class:`SpecError`.  This is the
        hook the job service uses to reject bad specs before burning a
        worker process.
        """
        if not self.lint:
            return None
        outcome = self._preflight_outcome(req.cache_key(), req)
        if outcome is None:
            return None
        _, exc_type, message, tb = outcome
        return SpecError(req, exc_type, message, tb)

    def _preflight(self, req: SpecRequest) -> Optional[Tuple]:
        """Lint one spec; an error-outcome tuple when it must not run.

        Spec-construction failures return ``None`` so the normal
        execution path reports them with their own type and traceback.
        """
        from repro.analysis import lint_spec, render_text
        try:
            diagnostics = lint_spec(build_spec(req))
        except Exception:
            return None
        errors = [diag for diag in diagnostics if diag.is_error]
        if not errors:
            return None
        return ("error", "LintError",
                f"static pre-flight found {len(errors)} error-severity "
                f"diagnostics (--no-lint to bypass)",
                render_text(errors))

    def _note(self, done: int, total: int, hits: int, simulated: int,
              failed: int, event: str) -> None:
        if not self.progress:
            return
        line = (f"[engine] {done}/{total} done "
                f"({simulated} simulated, {hits} cache hits")
        if failed:
            line += f", {failed} failed"
        print(f"{line}) — {event}", file=sys.stderr)


_default_engine: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """Shared environment-configured engine for study entry points."""
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine
