"""SimPoint-style sampled simulation over machine snapshots.

Whole-program runs spend most wall-clock simulating steady-state
behaviour that a short measured window predicts well.  The sampled
driver (``python -m repro sample``) runs detailed *warmup* cycles to
populate caches, predictors, queues and the SPL fabric, snapshots the
machine (DESIGN.md §8), then measures a bounded *sample* window and
reports IPC estimated from that window alone.  Because snapshots are
exact, the sample window is cycle-for-cycle the same simulation a full
run passes through — the only approximation is extrapolating the
sampled IPC to the whole program, and ``--compare-full`` quantifies
exactly that error against an uninterrupted run.

The snapshot written at the warmup boundary doubles as a resume point:
``python -m repro resume out/snap.json`` continues the run to
completion and verifies the workload's reference output.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.common.config import RunOptions
from repro.common.errors import ConfigError
from repro.experiments.engine import SpecRequest, build_spec
from repro.system.machine import Machine
from repro.system.snapshot import write_snapshot


def sampled_run(req: SpecRequest, warmup: int, sample: int,
                snapshot_path: Optional[str] = None,
                compare_full: bool = False) -> Dict:
    """Warmup -> snapshot -> measure one sample window.

    Returns a JSON-safe report: the measured window's cycles/retired
    deltas and IPC, per-phase wall-clock, and (with ``compare_full``)
    the sampled-vs-full IPC error and the wall-clock ratio between the
    full run and the measured phase.
    """
    if warmup < 0 or sample <= 0:
        raise ConfigError("need warmup >= 0 and sample > 0 cycles")
    spec = build_spec(req)
    machine = Machine(spec.system)
    machine.load(spec.workload)

    t0 = time.perf_counter()
    machine.run(options=RunOptions(max_cycles=spec.max_cycles,
                                   pause_at=warmup))
    wall_warmup = time.perf_counter() - t0
    warmup_end = machine.cycle
    if machine.finished():
        raise ConfigError(
            f"{spec.name} finished during warmup (at cycle {warmup_end}); "
            f"choose a warmup below the total run length")
    if snapshot_path is not None:
        write_snapshot(snapshot_path, machine, req)

    retired_0 = machine.total_retired()
    t0 = time.perf_counter()
    machine.run(options=RunOptions(max_cycles=spec.max_cycles,
                                   pause_at=warmup_end + sample))
    wall_sample = time.perf_counter() - t0
    cycles_delta = machine.cycle - warmup_end
    retired_delta = machine.total_retired() - retired_0
    sampled_ipc = retired_delta / cycles_delta if cycles_delta else 0.0

    report = {
        "name": spec.name,
        "warmup": warmup,
        "sample": sample,
        "warmup_end": warmup_end,
        "sample_end": machine.cycle,
        "cycles_delta": cycles_delta,
        "retired_delta": retired_delta,
        "sampled_ipc": sampled_ipc,
        "finished_in_sample": machine.finished(),
        "wall_warmup_s": wall_warmup,
        "wall_sample_s": wall_sample,
        "snapshot_path": snapshot_path,
    }
    if compare_full:
        full_spec = build_spec(req)  # images are consumed: rebuild
        full_machine = Machine(full_spec.system)
        full_machine.load(full_spec.workload)
        t0 = time.perf_counter()
        full_cycles = full_machine.run(
            options=RunOptions(max_cycles=full_spec.max_cycles))
        wall_full = time.perf_counter() - t0
        full_ipc = full_machine.total_retired() / full_cycles
        report["full"] = {
            "cycles": full_cycles,
            "retired": full_machine.total_retired(),
            "ipc": full_ipc,
            "wall_s": wall_full,
            "ipc_error": (abs(sampled_ipc - full_ipc) / full_ipc
                          if full_ipc else 0.0),
            "wall_ratio_vs_sample": (wall_full / wall_sample
                                     if wall_sample else float("inf")),
        }
    return report


def format_report(report: Dict) -> str:
    """Human-readable rendering of a :func:`sampled_run` report."""
    lines = [
        f"{report['name']}: warmup to cycle {report['warmup_end']}, "
        f"measured [{report['warmup_end']}, {report['sample_end']})",
        f"  sample: {report['retired_delta']} retired / "
        f"{report['cycles_delta']} cycles -> IPC "
        f"{report['sampled_ipc']:.4f}"
        + (" (run finished inside the window)"
           if report["finished_in_sample"] else ""),
        f"  wall: warmup {report['wall_warmup_s'] * 1e3:.1f} ms, "
        f"measure {report['wall_sample_s'] * 1e3:.1f} ms",
    ]
    if report.get("snapshot_path"):
        lines.append(f"  snapshot -> {report['snapshot_path']}")
    full = report.get("full")
    if full:
        lines.append(
            f"  full run: {full['retired']} retired / {full['cycles']} "
            f"cycles -> IPC {full['ipc']:.4f} "
            f"in {full['wall_s'] * 1e3:.1f} ms")
        lines.append(
            f"  sampled-vs-full IPC error {full['ipc_error'] * 100:.2f}%, "
            f"measured phase {full['wall_ratio_vs_sample']:.1f}x faster "
            f"than the full run")
    return "\n".join(lines)
