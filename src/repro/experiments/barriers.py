"""Figures 12, 13, and 14: fine-grained barrier synchronization sweeps.

For each of LL2 / LL6 / LL3 / Dijkstra this sweeps problem size and
thread count across the synchronization schemes: sequential, software
barriers (SW), ReMAP barriers, ReMAP barriers+computation (LL3 and
Dijkstra only), and the dedicated-network homogeneous baseline of
Section V-C2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.engine import (ExperimentEngine, default_engine,
                                      request)
from repro.experiments.runner import RunResult
from repro.workloads import registry

#: Paper sweep ranges (Figure 12); quick runs use subsets.
PAPER_SIZES = {
    "ll2": (8, 16, 32, 64, 128, 256, 512),
    "ll6": (8, 16, 32, 64, 128, 256),
    "ll3": (32, 64, 128, 256, 512, 1024),
    "dijkstra": (20, 40, 60, 80, 100, 120, 140, 160, 180, 200),
}

QUICK_SIZES = {
    "ll2": (16, 64, 256),
    "ll6": (8, 16, 48),
    "ll3": (32, 128, 512),
    "dijkstra": (20, 40, 80),
}

HAS_COMP = {"ll3", "dijkstra"}

#: Keyword used for the problem size by each benchmark's spec factories.
_SIZE_KEY = {"ll2": "n", "ll6": "n", "ll3": "n", "dijkstra": "n"}


@dataclass
class BarrierSweep:
    """cycles-per-iteration and ED for each (variant, threads, size)."""

    bench: str
    #: {(variant, threads or 0, size): RunResult}
    runs: Dict[Tuple[str, int, int], RunResult] = field(default_factory=dict)

    def cycles_per_iteration(self, variant: str, threads: int,
                             size: int) -> float:
        return self.runs[(variant, threads, size)].cycles_per_item

    def relative_ed(self, variant: str, threads: int, size: int) -> float:
        """ED relative to sequential execution at the same size."""
        seq = self.runs[("seq", 0, size)]
        run = self.runs[(variant, threads, size)]
        seq_ed = (seq.energy_joules / seq.region_items) * \
            (seq.seconds / seq.region_items)
        run_ed = (run.energy_joules / run.region_items) * \
            (run.seconds / run.region_items)
        return run_ed / seq_ed


def sweep_grid(bench: str, sizes: List[int],
               thread_counts: Tuple[int, ...],
               include_hwbar: bool) -> List[Tuple[str, int, int]]:
    """The (variant, threads, size) grid one barrier sweep declares."""
    grid = []
    for size in sizes:
        grid.append(("seq", 0, size))
        for p in thread_counts:
            grid.append(("sw", p, size))
            grid.append(("barrier", p, size))
            if bench in HAS_COMP:
                grid.append(("barrier_comp", p, size))
            if include_hwbar:
                grid.append(("hwbar", p, size))
    return grid


def run_barrier_sweep(bench: str, sizes: Optional[List[int]] = None,
                      thread_counts: Tuple[int, ...] = (8, 16),
                      include_hwbar: bool = False,
                      engine: Optional[ExperimentEngine] = None
                      ) -> BarrierSweep:
    engine = engine or default_engine()
    sizes = list(sizes or QUICK_SIZES[bench])
    size_key = _SIZE_KEY[bench]
    for variant, p, size in sweep_grid(bench, sizes, thread_counts,
                                       include_hwbar):
        params = {size_key: size}
        if p:
            params["p"] = p
        engine.submit(request(bench, variant, **params),
                      key=(variant, p, size))
    sweep = BarrierSweep(bench)
    sweep.runs.update(engine.gather())
    return sweep


def figure12_series(sweep: BarrierSweep,
                    thread_counts: Tuple[int, ...] = (8, 16)) -> Dict:
    """Per-iteration cycles vs problem size, one series per config."""
    sizes = sorted({size for (_, _, size) in sweep.runs})
    series = {"sizes": sizes,
              "Seq": [sweep.cycles_per_iteration("seq", 0, s)
                      for s in sizes]}
    for p in thread_counts:
        series[f"SW-p{p}"] = [sweep.cycles_per_iteration("sw", p, s)
                              for s in sizes]
        series[f"Barrier-p{p}"] = [
            sweep.cycles_per_iteration("barrier", p, s) for s in sizes]
        if ("barrier_comp", p, sizes[0]) in sweep.runs:
            series[f"Barrier+Comp-p{p}"] = [
                sweep.cycles_per_iteration("barrier_comp", p, s)
                for s in sizes]
    return series


def figure13_series(sweep: BarrierSweep,
                    thread_counts: Tuple[int, ...] = (2, 4, 8, 16)) -> Dict:
    """Barrier+Comp improvement over Barrier alone, per thread count."""
    sizes = sorted({size for (_, _, size) in sweep.runs})
    series = {"sizes": sizes}
    for p in thread_counts:
        if ("barrier_comp", p, sizes[0]) not in sweep.runs:
            continue
        series[f"Barrier+Comp-p{p}"] = [
            (sweep.cycles_per_iteration("barrier", p, s)
             / sweep.cycles_per_iteration("barrier_comp", p, s) - 1.0) * 100
            for s in sizes]
    return series


def figure14_series(sweep: BarrierSweep,
                    thread_counts: Tuple[int, ...] = (8, 16)) -> Dict:
    """Relative ED vs problem size (sequential baseline = 1.0)."""
    sizes = sorted({size for (_, _, size) in sweep.runs})
    series = {"sizes": sizes}
    for p in thread_counts:
        series[f"SW-p{p}"] = [sweep.relative_ed("sw", p, s) for s in sizes]
        series[f"Barrier-p{p}"] = [sweep.relative_ed("barrier", p, s)
                                   for s in sizes]
        if ("barrier_comp", p, sizes[0]) in sweep.runs:
            series[f"Barrier+Comp-p{p}"] = [
                sweep.relative_ed("barrier_comp", p, s) for s in sizes]
    return series


def homogeneous_comparison(bench: str, sizes: Optional[List[int]] = None,
                           thread_counts: Tuple[int, ...] = (4, 8),
                           engine: Optional[ExperimentEngine] = None
                           ) -> List[dict]:
    """Section V-C2: ReMAP barrier+comp ED vs the homogeneous baseline."""
    if bench not in HAS_COMP:
        raise ValueError(f"{bench} has no barrier+comp variant")
    sweep = run_barrier_sweep(bench, sizes, thread_counts,
                              include_hwbar=True, engine=engine)
    sizes_run = sorted({size for (_, _, size) in sweep.runs})
    rows = []
    for size in sizes_run:
        for p in thread_counts:
            remap_ed = sweep.relative_ed("barrier_comp", p, size)
            hw_ed = sweep.relative_ed("hwbar", p, size)
            rows.append({
                "size": size, "threads": p,
                "remap_ed": remap_ed, "homogeneous_ed": hw_ed,
                "ed_reduction_pct": (1.0 - remap_ed / hw_ed) * 100.0,
            })
    return rows
