"""Run one RunSpec on a fresh machine and account performance + energy.

:class:`RunResult` is the engine's unit of exchange, so it round-trips
through a versioned dict schema (:meth:`RunResult.to_dict` /
:meth:`RunResult.from_dict`).  A freshly executed result carries the live
``spec`` and ``stats`` tree; one rebuilt from the cache or a worker
process carries ``spec=None`` and the flattened ``counters`` instead.
Every metric consumers touch (cycles, per-item throughput, energy, ED)
derives only from the serialized fields, so cached, parallel, and
in-process results are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.common.config import CORE_CLOCK_HZ, RunOptions
from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.power.model import EnergyBreakdown, EnergyModel
from repro.system.machine import Machine
from repro.workloads.base import RunSpec

#: Bump when the meaning of any serialized field changes; the result cache
#: keys on it, so old entries stop being read.
#: v3: added the versioned ``metrics`` snapshot (repro.obs.metrics).
RESULT_SCHEMA_VERSION = 3


@dataclass
class RunResult:
    """Outcome of one simulated benchmark variant."""

    spec: Optional[RunSpec]
    cycles: int
    energy: EnergyBreakdown
    stats: Optional[Stats] = None
    #: Serialized identity/accounting fields; filled from ``spec`` when
    #: one is present, or directly by :meth:`from_dict`.
    name: str = ""
    region_items: int = 1
    energy_divisor: float = 1.0
    system: Optional[Dict] = None
    #: Flattened ``Stats`` counters ({"machine.cpu0.retired": ...}).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Run-level metrics snapshot (see :mod:`repro.obs.metrics`); carries
    #: its own ``schema`` field and survives cache round-trips.
    metrics: Dict = field(default_factory=dict)
    #: True when the engine served this result from the persistent cache.
    cache_hit: bool = False

    def __post_init__(self) -> None:
        if self.spec is not None:
            from repro.common.serialize import system_to_dict
            self.name = self.spec.name
            self.region_items = self.spec.region_items
            self.energy_divisor = self.spec.energy_divisor
            self.system = system_to_dict(self.spec.system)
        if self.stats is not None and not self.counters:
            self.counters = self.stats.as_dict()
        if not self.metrics and self.counters:
            from repro.obs.metrics import snapshot_from_counters
            self.metrics = snapshot_from_counters(self.counters, self.cycles)

    @property
    def seconds(self) -> float:
        return self.cycles / CORE_CLOCK_HZ

    @property
    def energy_joules(self) -> float:
        return self.energy.total / self.energy_divisor

    @property
    def energy_delay(self) -> float:
        return self.energy_joules * self.seconds

    @property
    def cycles_per_item(self) -> float:
        return self.cycles / self.region_items

    def counter(self, key: str, default: float = 0.0) -> float:
        """A flattened stats counter, e.g. ``machine.spl0.spl_issues``."""
        return self.counters.get(key, default)

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "cycles_per_item": self.cycles_per_item,
            "energy_j": self.energy_joules,
            "ed": self.energy_delay,
        }

    def to_dict(self) -> Dict:
        """JSON-serializable record of the run (spec identity + results)."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "region_items": self.region_items,
            "energy_divisor": self.energy_divisor,
            "system": self.system,
            "results": self.summary(),
            "energy_breakdown": {
                "core_dynamic": self.energy.core_dynamic,
                "memory_dynamic": self.energy.memory_dynamic,
                "spl_dynamic": self.energy.spl_dynamic,
                "leakage": self.energy.leakage,
            },
            "counters": self.counters,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (``spec=None``)."""
        from repro.common.serialize import check_schema
        check_schema("RunResult", data, RESULT_SCHEMA_VERSION)
        try:
            return cls(
                spec=None,
                cycles=data["results"]["cycles"],
                energy=EnergyBreakdown(**data["energy_breakdown"]),
                stats=None,
                name=data["name"],
                region_items=data["region_items"],
                energy_divisor=data["energy_divisor"],
                system=data.get("system"),
                counters=dict(data.get("counters", {})),
                metrics=dict(data.get("metrics", {})))
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed RunResult record: {exc}") from exc


def execute(spec: RunSpec, check: bool = True,
            model: Optional[EnergyModel] = None, *,
            options: Optional[RunOptions] = None) -> RunResult:
    """Build a machine, run the workload to completion, verify, account.

    The run is configured by one :class:`RunOptions` value.  An
    ``options`` whose ``max_cycles`` is still the RunOptions default is
    bounded by the spec's own ``max_cycles`` budget, matching the
    historical behaviour.  (The loose ``fast_forward`` keyword this
    function accepted for one release now lives only in
    :mod:`repro.api.compat`.)
    """
    if options is None:
        options = RunOptions(max_cycles=spec.max_cycles)
    elif options.max_cycles == RunOptions.max_cycles:
        options = replace(options, max_cycles=spec.max_cycles)
    machine = Machine(spec.system)
    machine.load(spec.workload)
    cycles = machine.run(options=options)
    return finalize(machine, spec, cycles, check=check, model=model)


def finalize(machine: Machine, spec: RunSpec, cycles: int,
             check: bool = True,
             model: Optional[EnergyModel] = None) -> RunResult:
    """Verify and account one completed machine into a :class:`RunResult`.

    The back half of :func:`execute`, shared with runners that drive the
    machine themselves (the job-server worker runs in ``pause_at``
    slices to emit heartbeats) so every path produces byte-identical
    result records for the same simulation.
    """
    machine.finish_observation()
    if check and spec.workload.check is not None:
        spec.workload.check(machine.memory)
    model = model or EnergyModel()
    energy = model.configuration_energy(
        machine.stats, cycles,
        ooo1_cores=spec.ooo1_cores,
        ooo2_cores=spec.ooo2_cores,
        spl_clusters=spec.spl_clusters)
    from repro.obs.metrics import snapshot_from_machine
    return RunResult(spec=spec, cycles=cycles, energy=energy,
                     stats=machine.stats,
                     metrics=snapshot_from_machine(machine))


def _register_result_codec() -> None:
    from repro.common.serialize import register_codec
    register_codec("run-result", RESULT_SCHEMA_VERSION,
                   lambda result: result.to_dict(), RunResult.from_dict)


_register_result_codec()


def speedup(baseline: RunResult, candidate: RunResult) -> float:
    """Throughput ratio on a per-work-item basis (>1 means faster)."""
    return baseline.cycles_per_item / candidate.cycles_per_item


def relative_ed(baseline: RunResult, candidate: RunResult) -> float:
    """ED of the candidate relative to the baseline (<1 means better).

    Both runs complete the same number of work items per thread-set, so ED
    is compared per item-set: (E/items) x (T/items).
    """
    base = (baseline.energy_joules / baseline.region_items) * \
        (baseline.seconds / baseline.region_items)
    cand = (candidate.energy_joules / candidate.region_items) * \
        (candidate.seconds / candidate.region_items)
    return cand / base
