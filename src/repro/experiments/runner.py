"""Run one RunSpec on a fresh machine and account performance + energy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.config import CORE_CLOCK_HZ
from repro.common.stats import Stats
from repro.power.model import EnergyBreakdown, EnergyModel
from repro.system.machine import Machine
from repro.workloads.base import RunSpec


@dataclass
class RunResult:
    """Outcome of one simulated benchmark variant."""

    spec: RunSpec
    cycles: int
    energy: EnergyBreakdown
    stats: Stats

    @property
    def seconds(self) -> float:
        return self.cycles / CORE_CLOCK_HZ

    @property
    def energy_joules(self) -> float:
        return self.energy.total / self.spec.energy_divisor

    @property
    def energy_delay(self) -> float:
        return self.energy_joules * self.seconds

    @property
    def cycles_per_item(self) -> float:
        return self.cycles / self.spec.region_items

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "cycles_per_item": self.cycles_per_item,
            "energy_j": self.energy_joules,
            "ed": self.energy_delay,
        }

    def to_dict(self) -> Dict:
        """JSON-serializable record of the run (spec + results)."""
        from repro.common.serialize import system_to_dict
        return {
            "name": self.spec.name,
            "region_items": self.spec.region_items,
            "system": system_to_dict(self.spec.system),
            "results": self.summary(),
            "energy_breakdown": {
                "core_dynamic": self.energy.core_dynamic,
                "memory_dynamic": self.energy.memory_dynamic,
                "spl_dynamic": self.energy.spl_dynamic,
                "leakage": self.energy.leakage,
            },
        }


def execute(spec: RunSpec, check: bool = True,
            model: Optional[EnergyModel] = None) -> RunResult:
    """Build a machine, run the workload to completion, verify, account."""
    machine = Machine(spec.system)
    machine.load(spec.workload)
    cycles = machine.run(max_cycles=spec.max_cycles)
    if check and spec.workload.check is not None:
        spec.workload.check(machine.memory)
    model = model or EnergyModel()
    energy = model.configuration_energy(
        machine.stats, cycles,
        ooo1_cores=spec.ooo1_cores,
        ooo2_cores=spec.ooo2_cores,
        spl_clusters=spec.spl_clusters)
    return RunResult(spec=spec, cycles=cycles, energy=energy,
                     stats=machine.stats)


def speedup(baseline: RunResult, candidate: RunResult) -> float:
    """Throughput ratio on a per-work-item basis (>1 means faster)."""
    return baseline.cycles_per_item / candidate.cycles_per_item


def relative_ed(baseline: RunResult, candidate: RunResult) -> float:
    """ED of the candidate relative to the baseline (<1 means better).

    Both runs complete the same number of work items per thread-set, so ED
    is compared per item-set: (E/items) x (T/items).
    """
    base = (baseline.energy_joules / baseline.spec.region_items) * \
        (baseline.seconds / baseline.spec.region_items)
    cand = (candidate.energy_joules / candidate.spec.region_items) * \
        (candidate.seconds / candidate.spec.region_items)
    return cand / base
