"""Simulation-loop throughput benchmark (``python -m repro bench``).

Times representative benches — one compute-bound (seq), one barrier-heavy,
one communication+computation — under three simulation legs: the naive
per-cycle loop, the quiescence-aware fast-forward scheduler, and the
fast-forward scheduler with trace-cache block compilation on top (the
default configuration).  Each case runs on a fresh machine per leg,
asserts all legs agree on final cycle and retired-instruction counts (the
cycle-exactness guarantee, enforced exhaustively in
tests/test_fastforward.py and tests/test_blockgen.py), and reports
simulated cycles per wall-clock second.  Results are written to
``BENCH_simloop.json`` so CI can archive the perf trajectory.

Schema 2 notes: repeats are interleaved round-robin across the legs
rather than run leg-by-leg, so slow host-frequency drift cannot bias one
leg's best-of-N against another's (leg-sequential timing once produced a
phantom 0.965x "regression" on the livermore case that an interleaved
re-measurement showed to be 1.02x).  Each leg records its wall-clock
spread (min/median/stdev) and the report carries a host fingerprint so
archived numbers can be compared apples-to-apples.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.common.config import RunOptions
from repro.common.errors import SimulationError
from repro.system.machine import Machine
from repro.workloads import registry

#: Report schema; bump when the JSON layout changes.  Schema 2 added the
#: blockgen leg, per-leg wall-clock spread, and the host fingerprint;
#: :func:`check_report` still accepts schema-1 baselines (the simulated
#: ``cycles``/``retired`` keys it gates on are unchanged).
BENCH_SCHEMA_VERSION = 2

#: Schemas :func:`check_report` knows how to read.
_READABLE_SCHEMAS = (1, 2)

#: Default output file (gitignored).
DEFAULT_OUT = "BENCH_simloop.json"

#: Default output file for the snapshot round-trip mode (gitignored).
SNAPSHOT_OUT = "BENCH_snapshot.json"

#: case name -> (benchmark, variant, spec kwargs).  Sizes are chosen so a
#: naive run takes on the order of a second: long enough to time
#: meaningfully, short enough for a CI smoke job.
CASES: Dict[str, Tuple[str, str, Dict]] = {
    "seq": ("g721dec", "seq", {"items": 40}),
    "barrier": ("ll2", "barrier", {"n": 192, "passes": 8, "p": 16}),
    "compcomm": ("hmmer", "compcomm", {"M": 96, "R": 4}),
    # Two more compute-bound cases: ALU-dense single-core loops where the
    # wall clock is pure pipeline work (no SPL, no communication), sized
    # like "seq" so a naive run is on the order of a second.
    "adpcm": ("adpcm", "seq", {"items": 900}),
    "livermore": ("ll3", "seq", {"n": 256, "passes": 24}),
}

#: Timed runs per leg; the report keeps the best wall time plus the
#: spread (the extra repeats absorb allocator/cache warm-up noise).
BENCH_REPEATS = 3

#: leg name -> (fast_forward, blockgen).  The blockgen leg is the default
#: RunOptions configuration; running all three per case makes every bench
#: invocation an A/B cycle-drift gate for the compiled hot loop.
LEGS: Tuple[Tuple[str, bool, bool], ...] = (
    ("naive", False, False),
    ("fast_forward", True, False),
    ("blockgen", True, True),
)


def _run_once(make_spec, fast_forward: bool,
              blockgen: bool) -> Tuple[int, int, float, Machine]:
    """(final cycle, retired instructions, wall seconds, machine) for one
    run.

    Builds a fresh spec and machine per run: several workload images are
    consumed by execution, so specs are single-use.
    """
    spec = make_spec()
    machine = Machine(spec.system)
    machine.load(spec.workload)
    start = time.perf_counter()
    cycles = machine.run(options=RunOptions(max_cycles=spec.max_cycles,
                                            fast_forward=fast_forward,
                                            blockgen=blockgen))
    wall = time.perf_counter() - start
    return cycles, machine.total_retired(), wall, machine


def _leg_stats(cycles: int, walls: List[float]) -> Dict:
    """Wall-clock summary for one leg: best, spread, throughput."""
    best = min(walls)
    return {
        "wall_s": best,
        "wall_median_s": statistics.median(walls),
        "wall_stdev_s": (statistics.stdev(walls) if len(walls) > 1 else 0.0),
        "cycles_per_s": cycles / best,
    }


def run_case(name: str) -> Dict:
    """Benchmark one case under all legs; returns the report row."""
    bench, variant, kwargs = CASES[name]

    def make_spec():
        return registry.REGISTRY[bench].variants[variant](**kwargs)

    spec = make_spec()
    walls: Dict[str, List[float]] = {leg: [] for leg, _, _ in LEGS}
    results: Dict[str, Tuple[int, int]] = {}
    # Interleave repeats round-robin across legs so slow host drift (CPU
    # frequency, thermal) spreads evenly instead of biasing one leg.
    engagement: Dict[str, int] = {}
    for _ in range(BENCH_REPEATS):
        for leg, fast_forward, blockgen in LEGS:
            cycles, retired, wall, machine = _run_once(
                make_spec, fast_forward, blockgen)
            walls[leg].append(wall)
            if blockgen:
                runners = machine._bg_runners.values()
                engagement = {
                    "windows": sum(r.windows for r in runners),
                    "fused_cycles": sum(r.fused_cycles for r in runners),
                    "multi_windows": machine._bg_multi.windows,
                    "multi_fused_cycles": machine._bg_multi.fused_cycles,
                }
            if leg not in results:
                results[leg] = (cycles, retired)
            elif results[leg] != (cycles, retired):
                raise SimulationError(
                    f"bench case {name!r} ({spec.name}): {leg} leg is "
                    f"not deterministic")
    reference = results["naive"]
    for leg, _, _ in LEGS:
        if results[leg] != reference:
            raise SimulationError(
                f"bench case {name!r} ({spec.name}): {leg} diverged — "
                f"naive {reference[0]} cycles / {reference[1]} retired, "
                f"{leg} {results[leg][0]} / {results[leg][1]}")
    cycles, retired = reference
    row: Dict = {
        "case": name,
        "spec": spec.name,
        "cycles": cycles,
        "retired": retired,
    }
    for leg, _, _ in LEGS:
        row[leg] = _leg_stats(cycles, walls[leg])
    if engagement:
        # Informational (never gated): how much of the blockgen leg ran
        # inside fused windows, split single-core vs multi-core.
        row["blockgen"]["engagement"] = engagement
    row["speedup"] = row["naive"]["wall_s"] / row["fast_forward"]["wall_s"]
    row["blockgen_speedup"] = row["naive"]["wall_s"] / row["blockgen"]["wall_s"]
    return row


def host_fingerprint() -> Dict[str, str]:
    """Interpreter and platform identity recorded with every report.

    Wall-clock numbers are only comparable between reports that share a
    fingerprint; :func:`check_report` ignores it (the simulated results
    it gates on are host-independent).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def run_bench(case_names: Optional[List[str]] = None) -> Dict:
    """Run the selected (default: all) cases; returns the full report."""
    names = list(case_names) if case_names else list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise SimulationError(
            f"unknown bench cases: {', '.join(unknown)} "
            f"(known: {', '.join(CASES)})")
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "host": host_fingerprint(),
        "repeats": BENCH_REPEATS,
        "cases": [run_case(name) for name in names],
    }


def run_snapshot_roundtrip(case_names: Optional[List[str]] = None,
                           snapshot_dir: Optional[str] = None) -> Dict:
    """Pause each case mid-run, snapshot to a file, restore, continue.

    The rows carry the same ``cycles``/``retired`` keys as
    :func:`run_bench`, so :func:`check_report` gates a round-tripped run
    against the very same committed baseline — proving the snapshot path
    reproduces the uninterrupted simulation exactly, end to end through
    the on-disk format.
    """
    from repro.experiments.engine import request
    from repro.system.snapshot import (read_snapshot, restore_machine,
                                       write_snapshot)
    names = list(case_names) if case_names else list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise SimulationError(
            f"unknown bench cases: {', '.join(unknown)} "
            f"(known: {', '.join(CASES)})")
    if snapshot_dir is None:
        snapshot_dir = tempfile.mkdtemp(prefix="repro-snap-")
    os.makedirs(snapshot_dir, exist_ok=True)
    rows = []
    for name in names:
        bench, variant, kwargs = CASES[name]
        req = request(bench, variant, **kwargs)

        spec = registry.REGISTRY[bench].variants[variant](**kwargs)
        full = Machine(spec.system)
        full.load(spec.workload)
        total = full.run(options=RunOptions(max_cycles=spec.max_cycles))
        retired = full.total_retired()

        spec2 = registry.REGISTRY[bench].variants[variant](**kwargs)
        paused = Machine(spec2.system)
        paused.load(spec2.workload)
        paused.run(options=RunOptions(max_cycles=spec2.max_cycles,
                                      pause_at=total // 2))
        path = os.path.join(snapshot_dir, f"{name}.json")
        write_snapshot(path, paused, req)

        restored, rebuilt_spec = restore_machine(read_snapshot(path))
        cycles = restored.run(
            options=RunOptions(max_cycles=rebuilt_spec.max_cycles))
        if (cycles, restored.total_retired()) != (total, retired):
            raise SimulationError(
                f"bench case {name!r} ({spec.name}): snapshot round-trip "
                f"diverged — uninterrupted {total} cycles / {retired} "
                f"retired, restored {cycles} / "
                f"{restored.total_retired()}")
        if restored.stats.as_dict() != full.stats.as_dict():
            raise SimulationError(
                f"bench case {name!r} ({spec.name}): snapshot round-trip "
                f"stats diverged from the uninterrupted run")
        rows.append({
            "case": name,
            "spec": spec.name,
            "cycles": cycles,
            "retired": retired,
            "pause_at": total // 2,
            "snapshot": path,
        })
    return {"schema": BENCH_SCHEMA_VERSION, "mode": "snapshot-roundtrip",
            "host": host_fingerprint(), "cases": rows}


def write_report(report: Dict, path: str = DEFAULT_OUT) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def check_report(fresh: Dict, baseline: Dict) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Simulated results (final cycles and retired instructions) must match
    exactly for every case the two reports share — they are deterministic,
    so any drift is a behaviour change, not noise.  Wall-clock numbers are
    informational only and never fail the check.  Schema-1 baselines
    (before the blockgen leg and the spread/host keys) remain readable:
    the gated keys are identical in both layouts.  Returns a list of
    failure messages (empty when the gate passes).
    """
    failures: List[str] = []
    for label, report in (("fresh", fresh), ("baseline", baseline)):
        if report.get("schema") not in _READABLE_SCHEMAS:
            return [f"{label} report has unknown schema "
                    f"{report.get('schema')!r} "
                    f"(readable: {_READABLE_SCHEMAS})"]
    fresh_rows = {row["case"]: row for row in fresh["cases"]}
    base_rows = {row["case"]: row for row in baseline["cases"]}
    shared = [name for name in base_rows if name in fresh_rows]
    if not shared:
        return ["no bench cases in common with the baseline report"]
    for name in shared:
        for key in ("cycles", "retired"):
            got, want = fresh_rows[name][key], base_rows[name][key]
            if got != want:
                failures.append(
                    f"{name}: {key} changed {want} -> {got} "
                    f"(simulated results must be exact)")
    return failures


def format_report(report: Dict) -> str:
    lines = []
    host = report.get("host")
    if host:
        lines.append(f"host: python {host['python']} "
                     f"({host.get('implementation', '?')}) "
                     f"on {host.get('platform', '?')}")
    for row in report["cases"]:
        if "naive" not in row:
            lines.append(
                f"{row['case']:10s} {row['spec']:28s} "
                f"{row['cycles']:>10d} cyc  snapshot round-trip OK "
                f"(paused at {row['pause_at']})")
            continue
        naive = row["naive"]["cycles_per_s"]
        ff = row["fast_forward"]["cycles_per_s"]
        line = (
            f"{row['case']:10s} {row['spec']:28s} {row['cycles']:>10d} cyc  "
            f"naive {naive / 1e3:8.1f} kcyc/s  "
            f"ff {ff / 1e3:8.1f} kcyc/s")
        if "blockgen" in row:
            bg = row["blockgen"]["cycles_per_s"]
            line += (f"  blockgen {bg / 1e3:8.1f} kcyc/s  "
                     f"speedup {row['speedup']:.2f}x/"
                     f"{row['blockgen_speedup']:.2f}x")
        else:
            line += f"  speedup {row['speedup']:.2f}x"
        lines.append(line)
    return "\n".join(lines)
