"""Simulation-loop throughput benchmark (``python -m repro bench``).

Times representative benches — one compute-bound (seq), one barrier-heavy,
one communication+computation — under both schedulers: the naive per-cycle
loop and the quiescence-aware fast-forward scheduler that is the default.
Each case runs on a fresh machine per scheduler, asserts the two agree on
final cycle and retired-instruction counts (the cycle-exactness guarantee,
enforced exhaustively in tests/test_fastforward.py), and reports simulated
cycles per wall-clock second.  Results are written to
``BENCH_simloop.json`` so CI can archive the perf trajectory.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.common.config import RunOptions
from repro.common.errors import SimulationError
from repro.system.machine import Machine
from repro.workloads import registry

#: Report schema; bump when the JSON layout changes.
BENCH_SCHEMA_VERSION = 1

#: Default output file (gitignored).
DEFAULT_OUT = "BENCH_simloop.json"

#: Default output file for the snapshot round-trip mode (gitignored).
SNAPSHOT_OUT = "BENCH_snapshot.json"

#: case name -> (benchmark, variant, spec kwargs).  Sizes are chosen so a
#: naive run takes on the order of a second: long enough to time
#: meaningfully, short enough for a CI smoke job.
CASES: Dict[str, Tuple[str, str, Dict]] = {
    "seq": ("g721dec", "seq", {"items": 40}),
    "barrier": ("ll2", "barrier", {"n": 192, "passes": 8, "p": 16}),
    "compcomm": ("hmmer", "compcomm", {"M": 96, "R": 4}),
    # Two more compute-bound cases: ALU-dense single-core loops where the
    # wall clock is pure pipeline work (no SPL, no communication), sized
    # like "seq" so a naive run is on the order of a second.
    "adpcm": ("adpcm", "seq", {"items": 900}),
    "livermore": ("ll3", "seq", {"n": 256, "passes": 24}),
}

#: Timed runs per scheduler; the report keeps the best wall time (the
#: others absorb allocator/cache warm-up noise).
BENCH_REPEATS = 3


def _run_once(make_spec, fast_forward: bool) -> Tuple[int, int, float]:
    """(final cycle, retired instructions, wall seconds) for one run.

    Builds a fresh spec and machine per run: several workload images are
    consumed by execution, so specs are single-use.
    """
    spec = make_spec()
    machine = Machine(spec.system)
    machine.load(spec.workload)
    start = time.perf_counter()
    cycles = machine.run(max_cycles=spec.max_cycles,
                         fast_forward=fast_forward)
    wall = time.perf_counter() - start
    return cycles, machine.total_retired(), wall


def _run_best(make_spec, fast_forward: bool) -> Tuple[int, int, float]:
    """Best-of-``BENCH_REPEATS`` wall time (results must not vary)."""
    cycles, retired, wall = _run_once(make_spec, fast_forward)
    for _ in range(BENCH_REPEATS - 1):
        again_cycles, again_retired, again_wall = _run_once(
            make_spec, fast_forward)
        if (again_cycles, again_retired) != (cycles, retired):
            raise SimulationError("bench run is not deterministic")
        wall = min(wall, again_wall)
    return cycles, retired, wall


def run_case(name: str) -> Dict:
    """Benchmark one case under both schedulers; returns the report row."""
    bench, variant, kwargs = CASES[name]

    def make_spec():
        return registry.REGISTRY[bench].variants[variant](**kwargs)

    spec = make_spec()
    naive_cycles, naive_retired, naive_wall = _run_best(make_spec, False)
    ff_cycles, ff_retired, ff_wall = _run_best(make_spec, True)
    if (ff_cycles, ff_retired) != (naive_cycles, naive_retired):
        raise SimulationError(
            f"bench case {name!r} ({spec.name}): fast-forward diverged — "
            f"naive {naive_cycles} cycles / {naive_retired} retired, "
            f"fast-forward {ff_cycles} / {ff_retired}")
    return {
        "case": name,
        "spec": spec.name,
        "cycles": naive_cycles,
        "retired": naive_retired,
        "naive": {
            "wall_s": naive_wall,
            "cycles_per_s": naive_cycles / naive_wall,
        },
        "fast_forward": {
            "wall_s": ff_wall,
            "cycles_per_s": naive_cycles / ff_wall,
        },
        "speedup": naive_wall / ff_wall,
    }


def run_bench(case_names: Optional[List[str]] = None) -> Dict:
    """Run the selected (default: all) cases; returns the full report."""
    names = list(case_names) if case_names else list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise SimulationError(
            f"unknown bench cases: {', '.join(unknown)} "
            f"(known: {', '.join(CASES)})")
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "cases": [run_case(name) for name in names],
    }


def run_snapshot_roundtrip(case_names: Optional[List[str]] = None,
                           snapshot_dir: Optional[str] = None) -> Dict:
    """Pause each case mid-run, snapshot to a file, restore, continue.

    The rows carry the same ``cycles``/``retired`` keys as
    :func:`run_bench`, so :func:`check_report` gates a round-tripped run
    against the very same committed baseline — proving the snapshot path
    reproduces the uninterrupted simulation exactly, end to end through
    the on-disk format.
    """
    from repro.experiments.engine import request
    from repro.system.snapshot import (read_snapshot, restore_machine,
                                       write_snapshot)
    names = list(case_names) if case_names else list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise SimulationError(
            f"unknown bench cases: {', '.join(unknown)} "
            f"(known: {', '.join(CASES)})")
    if snapshot_dir is None:
        snapshot_dir = tempfile.mkdtemp(prefix="repro-snap-")
    os.makedirs(snapshot_dir, exist_ok=True)
    rows = []
    for name in names:
        bench, variant, kwargs = CASES[name]
        req = request(bench, variant, **kwargs)

        spec = registry.REGISTRY[bench].variants[variant](**kwargs)
        full = Machine(spec.system)
        full.load(spec.workload)
        total = full.run(options=RunOptions(max_cycles=spec.max_cycles))
        retired = full.total_retired()

        spec2 = registry.REGISTRY[bench].variants[variant](**kwargs)
        paused = Machine(spec2.system)
        paused.load(spec2.workload)
        paused.run(options=RunOptions(max_cycles=spec2.max_cycles,
                                      pause_at=total // 2))
        path = os.path.join(snapshot_dir, f"{name}.json")
        write_snapshot(path, paused, req)

        restored, rebuilt_spec = restore_machine(read_snapshot(path))
        cycles = restored.run(
            options=RunOptions(max_cycles=rebuilt_spec.max_cycles))
        if (cycles, restored.total_retired()) != (total, retired):
            raise SimulationError(
                f"bench case {name!r} ({spec.name}): snapshot round-trip "
                f"diverged — uninterrupted {total} cycles / {retired} "
                f"retired, restored {cycles} / "
                f"{restored.total_retired()}")
        if restored.stats.as_dict() != full.stats.as_dict():
            raise SimulationError(
                f"bench case {name!r} ({spec.name}): snapshot round-trip "
                f"stats diverged from the uninterrupted run")
        rows.append({
            "case": name,
            "spec": spec.name,
            "cycles": cycles,
            "retired": retired,
            "pause_at": total // 2,
            "snapshot": path,
        })
    return {"schema": BENCH_SCHEMA_VERSION, "mode": "snapshot-roundtrip",
            "cases": rows}


def write_report(report: Dict, path: str = DEFAULT_OUT) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def check_report(fresh: Dict, baseline: Dict) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Simulated results (final cycles and retired instructions) must match
    exactly for every case the two reports share — they are deterministic,
    so any drift is a behaviour change, not noise.  Wall-clock numbers are
    informational only and never fail the check.  Returns a list of
    failure messages (empty when the gate passes).
    """
    failures: List[str] = []
    fresh_rows = {row["case"]: row for row in fresh["cases"]}
    base_rows = {row["case"]: row for row in baseline["cases"]}
    shared = [name for name in base_rows if name in fresh_rows]
    if not shared:
        return ["no bench cases in common with the baseline report"]
    for name in shared:
        for key in ("cycles", "retired"):
            got, want = fresh_rows[name][key], base_rows[name][key]
            if got != want:
                failures.append(
                    f"{name}: {key} changed {want} -> {got} "
                    f"(simulated results must be exact)")
    return failures


def format_report(report: Dict) -> str:
    lines = []
    for row in report["cases"]:
        if "naive" not in row:
            lines.append(
                f"{row['case']:10s} {row['spec']:28s} "
                f"{row['cycles']:>10d} cyc  snapshot round-trip OK "
                f"(paused at {row['pause_at']})")
            continue
        naive = row["naive"]["cycles_per_s"]
        ff = row["fast_forward"]["cycles_per_s"]
        lines.append(
            f"{row['case']:10s} {row['spec']:28s} {row['cycles']:>10d} cyc  "
            f"naive {naive / 1e3:8.1f} kcyc/s  "
            f"fast-forward {ff / 1e3:8.1f} kcyc/s  "
            f"speedup {row['speedup']:.2f}x")
    return "\n".join(lines)
