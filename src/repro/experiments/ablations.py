"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the ReMAP design and sweeps it:

* **Fabric sharing degree** — how much does 4-way temporal sharing cost a
  thread vs owning the fabric (Section II-A's contention argument)?
* **Fabric size / virtualization** — shrink the 24 rows and watch
  functions virtualize (initiation interval grows, Section II-A).
* **Spatial partitioning** — private per-thread partitions vs full-fabric
  temporal sharing for the LL3 MAC stream.
* **Queue depth** — the decoupling capacity of the SPL input/output
  queues for a producer/consumer pair.
* **Barrier bus latency** — sensitivity of multi-cluster barriers to the
  inter-cluster broadcast delay (Section II-B2).
* **Reconfiguration cost** — per-row configuration-load cycles for a
  workload that alternates fabric functions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.common.config import ClusterConfig, SplConfig, SystemConfig, \
    ooo1_config
from repro.experiments.runner import execute
from repro.workloads import dijkstra as dijkstra_mod
from repro.workloads import g721, hmmer
from repro.workloads.livermore import LL3_VARIANTS


def _spl_system(spl: SplConfig, n_clusters: int = 1) -> SystemConfig:
    cluster = ClusterConfig(kind="spl", core=ooo1_config(),
                            n_cores=spl.sharers, spl=spl)
    return SystemConfig(clusters=[cluster] * n_clusters)


def sharing_degree(items: int = 24) -> List[Dict]:
    """Per-thread region throughput with 1, 2, and 4 fabric sharers."""
    rows = []
    for copies in (1, 2, 4):
        spec = g721.spl_spec(items=items, copies=copies)
        result = execute(spec)
        rows.append({
            "sharers": copies,
            "cycles_per_item": result.cycles_per_item,
        })
    base = rows[0]["cycles_per_item"]
    for row in rows:
        row["slowdown_vs_private"] = row["cycles_per_item"] / base
    return rows


def fabric_size(items: int = 24) -> List[Dict]:
    """Shrink the fabric: virtualization raises the initiation interval.

    The g721 fmult configuration needs 26 rows, so it is virtualized even
    at full size; at 12 and 6 rows the multiplexing deepens.
    """
    rows = []
    for fabric_rows in (48, 24, 12, 6):
        partitions = 4 if fabric_rows % 4 == 0 else 2
        spl = replace(SplConfig(), rows=fabric_rows,
                      max_partitions=partitions)
        spec = g721.spl_spec(items=items, copies=4)
        spec = replace(spec, system=_spl_system(spl),
                       name=f"g721/spl_rows{fabric_rows}")
        result = execute(spec)
        rows.append({
            "fabric_rows": fabric_rows,
            "cycles_per_item": result.cycles_per_item,
        })
    return rows


def spatial_partitioning(n: int = 256, p: int = 4,
                         passes: int = 5) -> List[Dict]:
    """LL3 MAC streams: private 6-row partitions vs shared 24 rows.

    The shipped barrier_comp variant partitions; this ablation also runs
    an unpartitioned configuration for comparison.
    """
    partitioned = execute(LL3_VARIANTS["barrier_comp"](
        n=n, p=p, passes=passes))

    # Monkey-path-free unpartitioned run: rebuild the spec and strip the
    # set_partitions call by wrapping the workload setup.
    spec = LL3_VARIANTS["barrier_comp"](n=n, p=p, passes=passes)
    original_setup = spec.workload.setup

    def setup_without_partitions(machine) -> None:
        calls = []
        original = machine.set_partitions
        machine.set_partitions = lambda *a, **k: calls.append(a)
        try:
            original_setup(machine)
        finally:
            machine.set_partitions = original

    spec.workload.setup = setup_without_partitions
    shared = execute(spec)
    return [
        {"configuration": "private 6-row partitions",
         "cycles_per_pass": partitioned.cycles_per_item},
        {"configuration": "shared 24-row fabric",
         "cycles_per_pass": shared.cycles_per_item},
    ]


def queue_depth(M: int = 64, R: int = 3) -> List[Dict]:
    """Producer/consumer decoupling vs SPL queue capacity."""
    rows = []
    for entries in (2, 4, 16, 64):
        spl = replace(SplConfig(), input_queue_entries=entries,
                      output_queue_entries=entries)
        spec = hmmer.compcomm_spec(M=M, R=R)
        spec = replace(spec, system=_spl_system(spl),
                       name=f"hmmer/compcomm_q{entries}")
        result = execute(spec)
        rows.append({
            "queue_entries": entries,
            "cycles_per_item": result.cycles_per_item,
        })
    return rows


def barrier_bus_latency(n: int = 40, p: int = 8) -> List[Dict]:
    """Multi-cluster barrier cost vs inter-cluster bus latency."""
    rows = []
    for latency in (0, 10, 50, 200):
        spl = replace(SplConfig(), barrier_bus_latency=latency)
        spec = dijkstra_mod.barrier_spec(n=n, p=p)
        spec = replace(spec, system=_spl_system(spl, n_clusters=2),
                       name=f"dijkstra/barrier_bus{latency}")
        result = execute(spec)
        rows.append({
            "bus_latency": latency,
            "cycles_per_iteration": result.cycles_per_item,
        })
    return rows


def reconfiguration_cost(n: int = 128, p: int = 4,
                         passes: int = 5) -> List[Dict]:
    """LL3 barrier_comp alternates MAC and reduce configurations every
    pass; sweep the per-row configuration-load cost."""
    rows = []
    for cycles_per_row in (0, 1, 4, 16):
        spl = replace(SplConfig(), config_cycles_per_row=cycles_per_row)
        spec = LL3_VARIANTS["barrier_comp"](n=n, p=p, passes=passes)
        spec = replace(spec, system=_spl_system(spl),
                       name=f"ll3/bc_cfg{cycles_per_row}")
        result = execute(spec)
        rows.append({
            "config_cycles_per_row": cycles_per_row,
            "cycles_per_pass": result.cycles_per_item,
        })
    return rows


def dynamic_management(n: int = 128) -> List[Dict]:
    """Adaptive partitioning (core/manager.py) vs static temporal sharing
    on a four-thread stream with two different fabric functions."""
    from repro.common.config import remap_system
    from repro.core.compile import compile_expression
    from repro.core.manager import attach_fabric_manager
    from repro.isa import Asm, MemoryImage, ThreadSpec
    from repro.system.machine import Machine
    from repro.system.workload import Workload

    def make_workload() -> Workload:
        image = MemoryImage()
        fn_a = compile_expression("o = x * 3 + 1;", inputs={"x": 0},
                                  name="fa")
        fn_b = compile_expression("o = max(x, -x) - 2;", inputs={"x": 0},
                                  name="fb")
        threads = []
        for tid in range(4):
            values = [(tid * 11 + i * 7) % 300 - 150 for i in range(n)]
            src = image.alloc_words(values)
            dst = image.alloc_zeroed(n)
            asm = Asm(f"t{tid}")
            asm.li("r1", src)
            asm.li("r2", dst)
            asm.li("r3", 0)
            asm.li("r4", n)
            asm.label("loop")
            asm.spl_loadm("r1", 0)
            asm.spl_init(1)
            asm.spl_recv("r5")
            asm.sw("r5", "r2", 0)
            asm.addi("r1", "r1", 4)
            asm.addi("r2", "r2", 4)
            asm.addi("r3", "r3", 1)
            asm.blt("r3", "r4", "loop")
            asm.halt()
            threads.append(ThreadSpec(asm.assemble(), thread_id=tid + 1))

        def setup(machine) -> None:
            for core in range(4):
                machine.configure_spl(core, 1,
                                      fn_a if core % 2 == 0 else fn_b)

        return Workload("mixed", image, threads, placement=[0, 1, 2, 3],
                        setup=setup)

    rows = []
    for managed in (False, True):
        machine = Machine(remap_system())
        machine.load(make_workload())
        if managed:
            attach_fabric_manager(machine, 0, interval=512)
        cycles = machine.run(max_cycles=5_000_000)
        reconfigs = machine.stats.find("spl0").get("reconfigurations")
        rows.append({"configuration": "managed" if managed
                     else "static shared",
                     "cycles": cycles,
                     "reconfigurations": int(reconfigs)})
    return rows
