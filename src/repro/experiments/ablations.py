"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the ReMAP design and sweeps it:

* **Fabric sharing degree** — how much does 4-way temporal sharing cost a
  thread vs owning the fabric (Section II-A's contention argument)?
* **Fabric size / virtualization** — shrink the 24 rows and watch
  functions virtualize (initiation interval grows, Section II-A).
* **Spatial partitioning** — private per-thread partitions vs full-fabric
  temporal sharing for the LL3 MAC stream.
* **Queue depth** — the decoupling capacity of the SPL input/output
  queues for a producer/consumer pair.
* **Barrier bus latency** — sensitivity of multi-cluster barriers to the
  inter-cluster broadcast delay (Section II-B2).
* **Reconfiguration cost** — per-row configuration-load cycles for a
  workload that alternates fabric functions.
* **Dynamic management** — adaptive fabric partitioning vs static
  temporal sharing.

Every sweep declares its spec grid and hands it to the experiment engine
(custom hardware via system-config overrides, behavioural tweaks via
named spec transforms), so ablations parallelize and cache like every
other study.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.common.config import ClusterConfig, SplConfig, SystemConfig, \
    ooo1_config
from repro.experiments.engine import (ExperimentEngine, default_engine,
                                      request)
from repro.workloads.base import RunSpec


def _spl_system(spl: SplConfig, n_clusters: int = 1) -> SystemConfig:
    cluster = ClusterConfig(kind="spl", core=ooo1_config(),
                            n_cores=spl.sharers, spl=spl)
    return SystemConfig(clusters=[cluster] * n_clusters)


def sharing_degree(items: int = 24,
                   engine: Optional[ExperimentEngine] = None) -> List[Dict]:
    """Per-thread region throughput with 1, 2, and 4 fabric sharers."""
    engine = engine or default_engine()
    sharers = (1, 2, 4)
    results = engine.run_batch([request("g721enc", "spl", items=items,
                                        copies=copies)
                                for copies in sharers])
    rows = [{"sharers": copies, "cycles_per_item": result.cycles_per_item}
            for copies, result in zip(sharers, results)]
    base = rows[0]["cycles_per_item"]
    for row in rows:
        row["slowdown_vs_private"] = row["cycles_per_item"] / base
    return rows


def fabric_size(items: int = 24,
                engine: Optional[ExperimentEngine] = None) -> List[Dict]:
    """Shrink the fabric: virtualization raises the initiation interval.

    The g721 fmult configuration needs 26 rows, so it is virtualized even
    at full size; at 12 and 6 rows the multiplexing deepens.
    """
    engine = engine or default_engine()
    sizes = (48, 24, 12, 6)
    reqs = []
    for fabric_rows in sizes:
        partitions = 4 if fabric_rows % 4 == 0 else 2
        spl = replace(SplConfig(), rows=fabric_rows,
                      max_partitions=partitions)
        reqs.append(request("g721enc", "spl", items=items, copies=4,
                            system=_spl_system(spl),
                            name=f"g721/spl_rows{fabric_rows}"))
    return [{"fabric_rows": fabric_rows,
             "cycles_per_item": result.cycles_per_item}
            for fabric_rows, result in zip(sizes, engine.run_batch(reqs))]


def strip_partitions(spec: RunSpec) -> RunSpec:
    """Spec transform: run the workload without its set_partitions calls."""
    original_setup = spec.workload.setup

    def setup_without_partitions(machine) -> None:
        original = machine.set_partitions
        machine.set_partitions = lambda *a, **k: None
        try:
            original_setup(machine)
        finally:
            machine.set_partitions = original

    spec.workload.setup = setup_without_partitions
    return spec


def spatial_partitioning(n: int = 256, p: int = 4, passes: int = 5,
                         engine: Optional[ExperimentEngine] = None
                         ) -> List[Dict]:
    """LL3 MAC streams: private 6-row partitions vs shared 24 rows.

    The shipped barrier_comp variant partitions; this ablation also runs
    an unpartitioned configuration (the :func:`strip_partitions`
    transform) for comparison.
    """
    engine = engine or default_engine()
    partitioned, shared = engine.run_batch([
        request("ll3", "barrier_comp", n=n, p=p, passes=passes),
        request("ll3", "barrier_comp", n=n, p=p, passes=passes,
                name="ll3/barrier_comp_shared",
                transform="repro.experiments.ablations:strip_partitions"),
    ])
    return [
        {"configuration": "private 6-row partitions",
         "cycles_per_pass": partitioned.cycles_per_item},
        {"configuration": "shared 24-row fabric",
         "cycles_per_pass": shared.cycles_per_item},
    ]


def queue_depth(M: int = 64, R: int = 3,
                engine: Optional[ExperimentEngine] = None) -> List[Dict]:
    """Producer/consumer decoupling vs SPL queue capacity."""
    engine = engine or default_engine()
    depths = (2, 4, 16, 64)
    reqs = []
    for entries in depths:
        spl = replace(SplConfig(), input_queue_entries=entries,
                      output_queue_entries=entries)
        reqs.append(request("hmmer", "compcomm", M=M, R=R,
                            system=_spl_system(spl),
                            name=f"hmmer/compcomm_q{entries}"))
    return [{"queue_entries": entries,
             "cycles_per_item": result.cycles_per_item}
            for entries, result in zip(depths, engine.run_batch(reqs))]


def barrier_bus_latency(n: int = 40, p: int = 8,
                        engine: Optional[ExperimentEngine] = None
                        ) -> List[Dict]:
    """Multi-cluster barrier cost vs inter-cluster bus latency."""
    engine = engine or default_engine()
    latencies = (0, 10, 50, 200)
    reqs = []
    for latency in latencies:
        spl = replace(SplConfig(), barrier_bus_latency=latency)
        reqs.append(request("dijkstra", "barrier", n=n, p=p,
                            system=_spl_system(spl, n_clusters=2),
                            name=f"dijkstra/barrier_bus{latency}"))
    return [{"bus_latency": latency,
             "cycles_per_iteration": result.cycles_per_item}
            for latency, result in zip(latencies, engine.run_batch(reqs))]


def reconfiguration_cost(n: int = 128, p: int = 4, passes: int = 5,
                         engine: Optional[ExperimentEngine] = None
                         ) -> List[Dict]:
    """LL3 barrier_comp alternates MAC and reduce configurations every
    pass; sweep the per-row configuration-load cost."""
    engine = engine or default_engine()
    costs = (0, 1, 4, 16)
    reqs = []
    for cycles_per_row in costs:
        spl = replace(SplConfig(), config_cycles_per_row=cycles_per_row)
        reqs.append(request("ll3", "barrier_comp", n=n, p=p, passes=passes,
                            system=_spl_system(spl),
                            name=f"ll3/bc_cfg{cycles_per_row}"))
    return [{"config_cycles_per_row": cycles_per_row,
             "cycles_per_pass": result.cycles_per_item}
            for cycles_per_row, result in zip(costs,
                                              engine.run_batch(reqs))]


def manager_spec(n: int = 128, managed: bool = False) -> RunSpec:
    """A four-thread stream with two different fabric functions, with or
    without the adaptive fabric manager (core/manager.py) attached."""
    from repro.common.config import remap_system
    from repro.core.compile import compile_expression
    from repro.core.manager import attach_fabric_manager
    from repro.isa import Asm, MemoryImage, ThreadSpec
    from repro.system.workload import Workload

    image = MemoryImage()
    fn_a = compile_expression("o = x * 3 + 1;", inputs={"x": 0}, name="fa")
    fn_b = compile_expression("o = max(x, -x) - 2;", inputs={"x": 0},
                              name="fb")
    threads = []
    for tid in range(4):
        values = [(tid * 11 + i * 7) % 300 - 150 for i in range(n)]
        src = image.alloc_words(values)
        dst = image.alloc_zeroed(n)
        asm = Asm(f"t{tid}")
        asm.li("r1", src)
        asm.li("r2", dst)
        asm.li("r3", 0)
        asm.li("r4", n)
        asm.label("loop")
        asm.spl_loadm("r1", 0)
        asm.spl_init(1)
        asm.spl_recv("r5")
        asm.sw("r5", "r2", 0)
        asm.addi("r1", "r1", 4)
        asm.addi("r2", "r2", 4)
        asm.addi("r3", "r3", 1)
        asm.blt("r3", "r4", "loop")
        asm.halt()
        threads.append(ThreadSpec(asm.assemble(), thread_id=tid + 1))

    def setup(machine) -> None:
        for core in range(4):
            machine.configure_spl(core, 1,
                                  fn_a if core % 2 == 0 else fn_b)
        if managed:
            attach_fabric_manager(machine, 0, interval=512)

    workload = Workload("mixed", image, threads, placement=[0, 1, 2, 3],
                        setup=setup)
    suffix = "managed" if managed else "static"
    return RunSpec(name=f"manager/{suffix}", workload=workload,
                   system=remap_system(), region_items=n,
                   max_cycles=5_000_000)


def dynamic_management(n: int = 128,
                       engine: Optional[ExperimentEngine] = None
                       ) -> List[Dict]:
    """Adaptive partitioning (core/manager.py) vs static temporal sharing
    on a four-thread stream with two different fabric functions."""
    engine = engine or default_engine()
    results = engine.run_batch([
        request("repro.experiments.ablations:manager_spec", n=n,
                managed=managed)
        for managed in (False, True)])
    return [{"configuration": "managed" if managed else "static shared",
             "cycles": result.cycles,
             "reconfigurations":
                 int(result.counter("machine.spl0.reconfigurations"))}
            for managed, result in zip((False, True), results)]
