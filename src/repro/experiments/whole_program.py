"""Figures 8 and 9: whole-program performance and ED in the heterogeneous
CMP.

The paper runs 250M-instruction SimPoints of whole programs.  We simulate
the optimized regions and compose whole-program behaviour analytically
(see DESIGN.md):

* the region accounts for ``f`` of baseline execution time (Table III);
* under ReMAP, the region runs on the SPL cluster (best ReMAP variant) and
  the rest on an OOO2 core, paying the 500-cycle migration both ways per
  region entry (Section V-A);
* under OOO2+Comm, the region runs on the OOO2+network pair and the rest
  on an OOO2 core, with no migrations.

Energy is composed the same way: measured region energy plus the remainder
at the measured average power of the corresponding core type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import MIGRATION_CYCLES
from repro.experiments.engine import ExperimentEngine
from repro.experiments.regions import RegionResults, run_region_study
from repro.workloads import registry


@dataclass
class WholeProgramPoint:
    """Composed whole-program numbers for one benchmark."""

    bench: str
    remap_speedup: float
    ooo2comm_speedup: float
    remap_relative_ed: float
    ooo2comm_relative_ed: float

    def improvement_pct(self, config: str) -> float:
        value = self.remap_speedup if config == "remap" \
            else self.ooo2comm_speedup
        return (value - 1.0) * 100.0


def _compose(results: RegionResults, info,
             region_variant: str, uses_migration: bool):
    """Returns (speedup, relative ED) for one configuration."""
    f = info.exec_fraction
    seq = results.runs["seq"]
    wide = results.runs["seq_ooo2"]
    region = results.runs[region_variant]
    # Baseline: the whole program on one OOO1 core.
    base_region_cycles = seq.cycles
    base_total_cycles = base_region_cycles / f
    rest_cycles_base = base_total_cycles - base_region_cycles
    # Sequential-code speedup of an OOO2 core, measured on this kernel.
    s2 = seq.cycles / wide.cycles
    rest_cycles = rest_cycles_base / s2
    migration = (2 * MIGRATION_CYCLES * info.region_entries
                 if uses_migration else 0)
    total_cycles = region.cycles + rest_cycles + migration
    speedup = base_total_cycles / total_cycles
    # Energy composition: measured region energy + remainder at the
    # average power of the core running it.
    p1 = seq.energy_joules / seq.seconds          # OOO1 average power
    p2 = wide.energy_joules / wide.seconds        # OOO2 average power
    cycles_to_s = seq.seconds / seq.cycles
    base_energy = p1 * base_total_cycles * cycles_to_s
    energy = (region.energy_joules
              + p2 * (rest_cycles + migration) * cycles_to_s)
    base_ed = base_energy * base_total_cycles * cycles_to_s
    ed = energy * total_cycles * cycles_to_s
    return speedup, ed / base_ed


def best_remap_variant(info) -> str:
    """The region variant ReMAP schedules (Section V-A)."""
    if info.category == registry.CATEGORY_COMP:
        return "spl"
    return "compcomm"


def whole_program_study(benchmarks: Optional[List[str]] = None,
                        overrides: Optional[Dict[str, dict]] = None,
                        engine: Optional[ExperimentEngine] = None
                        ) -> List[WholeProgramPoint]:
    study = run_region_study(benchmarks, overrides=overrides, engine=engine)
    points = []
    for bench, results in study.items():
        info = registry.REGISTRY[bench]
        remap_speedup, remap_ed = _compose(
            results, info, best_remap_variant(info), uses_migration=True)
        if info.category == registry.CATEGORY_COMP:
            # Computation-only programs under OOO2+Comm simply run on the
            # OOO2 core (the network is unused).
            ooo2_speedup = results.runs["seq"].cycles / \
                results.runs["seq_ooo2"].cycles
            base = results.runs["seq"]
            wide = results.runs["seq_ooo2"]
            ooo2_ed = (wide.energy_joules * wide.seconds) / \
                (base.energy_joules * base.seconds)
        else:
            ooo2_speedup, ooo2_ed = _compose(
                results, info, "ooo2comm", uses_migration=False)
        points.append(WholeProgramPoint(
            bench=bench,
            remap_speedup=remap_speedup,
            ooo2comm_speedup=ooo2_speedup,
            remap_relative_ed=remap_ed,
            ooo2comm_relative_ed=ooo2_ed))
    return points


def figure8_rows(points: List[WholeProgramPoint]) -> List[dict]:
    return [{"bench": p.bench,
             "ReMAP_improvement_pct": p.improvement_pct("remap"),
             "OOO2+Comm_improvement_pct": p.improvement_pct("ooo2comm")}
            for p in points]


def figure9_rows(points: List[WholeProgramPoint]) -> List[dict]:
    return [{"bench": p.bench,
             "ReMAP_relative_ED": p.remap_relative_ed,
             "OOO2+Comm_relative_ED": p.ooo2comm_relative_ed}
            for p in points]
