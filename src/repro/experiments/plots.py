"""ASCII line plots for the figure series (no plotting libraries needed).

Renders the Figure 12/13/14-style sweeps as terminal charts, with optional
logarithmic y scaling like the paper's plots::

    cycles
    10000 |                      S
          |              S
     3162 |      S               w      S = Seq
          |              w   B          w = SW-p8
     1000 |      w   B                  B = Barrier-p8
          +---------------------------
            8     32    128   512
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

_MARKS = "SwBbCcXxOo*+"


def _scale(value: float, lo: float, hi: float, steps: int,
           log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return max(0, min(steps - 1, round(position * (steps - 1))))


def ascii_plot(series: Dict, height: int = 12, width: int = 60,
               log_y: bool = True, ylabel: str = "") -> str:
    """Render a {name: [values], "sizes": [...]} mapping as an ASCII chart."""
    sizes: Sequence = series["sizes"]
    names = [name for name in series if name != "sizes"]
    values: List[float] = [v for name in names for v in series[name]
                           if v is not None and v > 0]
    if not values:
        return "(nothing to plot)"
    lo, hi = min(values), max(values)
    if log_y and lo <= 0:
        log_y = False
    grid = [[" "] * width for _ in range(height)]
    for name_index, name in enumerate(names):
        mark = _MARKS[name_index % len(_MARKS)]
        for size_index, value in enumerate(series[name]):
            if value is None or (log_y and value <= 0):
                continue
            x = _scale(size_index, 0, max(1, len(sizes) - 1), width, False)
            y = _scale(value, lo, hi, height, log_y)
            grid[height - 1 - y][x] = mark
    # y axis labels at top/middle/bottom
    def fmt(v: float) -> str:
        return f"{v:9.3g}"

    if log_y:
        mid = 10 ** ((math.log10(lo) + math.log10(hi)) / 2)
    else:
        mid = (lo + hi) / 2
    labels = {0: fmt(hi), height // 2: fmt(mid), height - 1: fmt(lo)}
    lines = [ylabel] if ylabel else []
    for row_index, row in enumerate(grid):
        label = labels.get(row_index, " " * 9)
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    # x tick labels
    ticks = [" "] * width
    for size_index, size in enumerate(sizes):
        x = _scale(size_index, 0, max(1, len(sizes) - 1), width, False)
        text = str(size)
        x = max(0, min(x, width - len(text)))  # keep the label in frame
        for offset, char in enumerate(text):
            ticks[x + offset] = char
    lines.append(" " * 10 + "".join(ticks))
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} = {name}"
                        for i, name in enumerate(names))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
