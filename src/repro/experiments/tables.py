"""Regeneration of Tables I, II, and III."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import ooo1_config, ooo2_config, spl_config
from repro.power.area import table1 as power_table1
from repro.workloads import registry


def table1() -> Dict[str, Dict[str, float]]:
    """Table I: relative area and power of four OOO1 cores vs the SPL."""
    return power_table1()


def table2() -> List[Tuple[str, str, str]]:
    """Table II: architecture parameters as (parameter, OOO1, OOO2) rows."""
    ooo1, ooo2 = ooo1_config(), ooo2_config()
    rows = [
        ("Fetch/Decode/Rename Width", str(ooo1.fetch_width),
         str(ooo2.fetch_width)),
        ("Issue/Retire Width", str(ooo1.issue_width), str(ooo2.issue_width)),
        ("Branch Predictor", "gshare + bimodal", "gshare + bimodal"),
        ("RAS Entries", str(ooo1.predictor.ras_entries),
         str(ooo2.predictor.ras_entries)),
        ("BTB Size", "512B", "512B"),
        ("Integer/FP Registers", f"{ooo1.int_regs}/{ooo1.fp_regs}",
         f"{ooo2.int_regs}/{ooo2.fp_regs}"),
        ("Integer/FP Queue Entries", f"{ooo1.int_queue}/{ooo1.fp_queue}",
         f"{ooo2.int_queue}/{ooo2.fp_queue}"),
        ("ROB Entries", str(ooo1.rob_entries), str(ooo2.rob_entries)),
        ("Int/FP ALUs", f"{ooo1.int_alus}/{ooo1.fp_alus}",
         f"{ooo2.int_alus}/{ooo2.fp_alus}"),
        ("Branch Units", str(ooo1.branch_units), str(ooo2.branch_units)),
        ("LD/ST Units", str(ooo1.ldst_units), str(ooo2.ldst_units)),
        ("L1 Inst Cache", "8kB 2-way, 2-cycle", "8kB 2-way, 2-cycle"),
        ("L1 Data Cache", "8kB 2-way, 2-cycle", "8kB 2-way, 2-cycle"),
        ("L2 Cache", "1MB per core, 10-cycle", "1MB per core, 10-cycle"),
        ("Coherence Protocol", "MESI", "MESI"),
        ("Main Memory Access Time", "100 ns", "100 ns"),
    ]
    return rows


def table3() -> List[Tuple[str, str, str]]:
    """Table III: benchmark, optimized functions, % exec time."""
    return registry.table3_rows()


def spl_parameters() -> Dict[str, int]:
    """The SPL organization of Section II-A (for reports/tests)."""
    spl = spl_config()
    return {
        "rows": spl.rows,
        "cells_per_row": spl.cells_per_row,
        "bits_per_cell": spl.bits_per_cell,
        "sharers": spl.sharers,
        "max_partitions": spl.max_partitions,
    }
