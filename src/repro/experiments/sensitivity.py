"""Microarchitectural sensitivity studies.

Sweeps one Table II core parameter at a time and measures its effect on a
representative kernel — the standard methodology for checking that a
simulator's bottlenecks respond believably (ROB-limited ILP, physical
registers, cache capacity, memory latency).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.common.config import CacheConfig, SystemConfig, ooo1_cluster
from repro.experiments.runner import execute
from repro.workloads import hmmer


def _system_with_core(**core_overrides) -> SystemConfig:
    cluster = ooo1_cluster()
    core = dataclasses.replace(cluster.core, **core_overrides)
    return SystemConfig(clusters=[dataclasses.replace(cluster, core=core)])


def _run_seq(system: SystemConfig, label: str, value) -> Dict:
    spec = hmmer.seq_spec(M=64, R=3)
    spec = dataclasses.replace(spec, system=system,
                               name=f"hmmer/seq_{label}{value}")
    result = execute(spec)
    return {label: value, "cycles_per_item": result.cycles_per_item}


def rob_size(values=(16, 32, 64, 128)) -> List[Dict]:
    """Window-limited ILP: shrinking the ROB must cost performance."""
    return [_run_seq(_system_with_core(rob_entries=v), "rob", v)
            for v in values]


def physical_registers(values=(40, 48, 64, 96)) -> List[Dict]:
    """Rename-limited ILP (Table II gives 64/64)."""
    return [_run_seq(_system_with_core(int_regs=v, fp_regs=v), "regs", v)
            for v in values]


def l1d_size(values=(2, 8, 32)) -> List[Dict]:
    """Cache capacity in kB; the hmmer tables live or die by this."""
    rows = []
    for kb in values:
        l1 = CacheConfig("L1D", kb * 1024, 2, 32, 2)
        rows.append(_run_seq(_system_with_core(l1d=l1), "l1d_kb", kb))
    return rows


def memory_latency(values=(50, 200, 800)) -> List[Dict]:
    """Main-memory access time in cycles (the paper's 100 ns = 200)."""
    rows = []
    for cycles in values:
        cluster = ooo1_cluster()
        system = SystemConfig(clusters=[cluster], memory_latency=cycles)
        rows.append(_run_seq(system, "mem_cycles", cycles))
    return rows


ALL_SENSITIVITIES = {
    "rob": rob_size,
    "registers": physical_registers,
    "l1d": l1d_size,
    "memory": memory_latency,
}
