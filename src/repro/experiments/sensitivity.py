"""Microarchitectural sensitivity studies.

Sweeps one Table II core parameter at a time and measures its effect on a
representative kernel — the standard methodology for checking that a
simulator's bottlenecks respond believably (ROB-limited ILP, physical
registers, cache capacity, memory latency).  Each sweep declares its
(system override x kernel) grid to the experiment engine.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.common.config import CacheConfig, SystemConfig, ooo1_cluster
from repro.experiments.engine import (ExperimentEngine, default_engine,
                                      request)


def _system_with_core(**core_overrides) -> SystemConfig:
    cluster = ooo1_cluster()
    core = dataclasses.replace(cluster.core, **core_overrides)
    return SystemConfig(clusters=[dataclasses.replace(cluster, core=core)])


def _seq_request(system: SystemConfig, label: str, value):
    return request("hmmer", "seq", M=64, R=3, system=system,
                   name=f"hmmer/seq_{label}{value}")


def _sweep(reqs, label: str, values,
           engine: Optional[ExperimentEngine]) -> List[Dict]:
    engine = engine or default_engine()
    return [{label: value, "cycles_per_item": result.cycles_per_item}
            for value, result in zip(values, engine.run_batch(reqs))]


def rob_size(values=(16, 32, 64, 128),
             engine: Optional[ExperimentEngine] = None) -> List[Dict]:
    """Window-limited ILP: shrinking the ROB must cost performance."""
    reqs = [_seq_request(_system_with_core(rob_entries=v), "rob", v)
            for v in values]
    return _sweep(reqs, "rob", values, engine)


def physical_registers(values=(40, 48, 64, 96),
                       engine: Optional[ExperimentEngine] = None
                       ) -> List[Dict]:
    """Rename-limited ILP (Table II gives 64/64)."""
    reqs = [_seq_request(_system_with_core(int_regs=v, fp_regs=v),
                         "regs", v)
            for v in values]
    return _sweep(reqs, "regs", values, engine)


def l1d_size(values=(2, 8, 32),
             engine: Optional[ExperimentEngine] = None) -> List[Dict]:
    """Cache capacity in kB; the hmmer tables live or die by this."""
    reqs = []
    for kb in values:
        l1 = CacheConfig("L1D", kb * 1024, 2, 32, 2)
        reqs.append(_seq_request(_system_with_core(l1d=l1), "l1d_kb", kb))
    return _sweep(reqs, "l1d_kb", values, engine)


def memory_latency(values=(50, 200, 800),
                   engine: Optional[ExperimentEngine] = None) -> List[Dict]:
    """Main-memory access time in cycles (the paper's 100 ns = 200)."""
    reqs = []
    for cycles in values:
        system = SystemConfig(clusters=[ooo1_cluster()],
                              memory_latency=cycles)
        reqs.append(_seq_request(system, "mem_cycles", cycles))
    return _sweep(reqs, "mem_cycles", values, engine)


ALL_SENSITIVITIES = {
    "rob": rob_size,
    "registers": physical_registers,
    "l1d": l1d_size,
    "memory": memory_latency,
}
