"""Experiment harnesses: one module per paper table/figure."""

from repro.experiments.runner import RunResult, execute, relative_ed, speedup

__all__ = ["RunResult", "execute", "relative_ed", "speedup"]
