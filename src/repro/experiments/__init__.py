"""Experiment harnesses: one module per paper table/figure.

All studies execute through :mod:`repro.experiments.engine` — declare a
grid of requests and the engine parallelizes, caches, and
reports per-spec failures.
"""

from repro.experiments.engine import (ExperimentBatchError,
                                      ExperimentEngine, SpecError,
                                      SpecRequest, request)
from repro.experiments.runner import RunResult, execute, relative_ed, speedup

__all__ = ["ExperimentBatchError", "ExperimentEngine", "RunResult",
           "SpecError", "SpecRequest", "execute", "relative_ed", "request",
           "speedup"]
