"""Figures 10 and 11: optimized-region performance and energy x delay.

For every Table III computation/communication benchmark this study runs
the region variants the paper plots — 1Th+Comp, 2Th+Comm, 2Th+CompComm,
and OOO2+Comm — against the single-threaded OOO1 baseline, plus the
software-queue comparison of Section V-B.  The study *declares* its
(benchmark x variant) grid and hands it to the experiment engine, which
parallelizes and caches the individual simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.engine import (ExperimentEngine, default_engine,
                                      request)
from repro.experiments.runner import RunResult, relative_ed, speedup
from repro.workloads import registry

#: Variant keys in Figure 10/11 order.
REGION_VARIANTS_COMP = ("spl",)
REGION_VARIANTS_COMM = ("spl", "comm", "compcomm", "ooo2comm")

#: Default per-benchmark item counts for quick runs (None = module default).
QUICK_ITEMS: Dict[str, Optional[dict]] = {
    "hmmer": {"M": 64, "R": 3},
}


@dataclass
class RegionResults:
    """All region runs for one benchmark."""

    bench: str
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def speedup(self, variant: str) -> float:
        return speedup(self.runs["seq"], self.runs[variant])

    def improvement_pct(self, variant: str) -> float:
        return (self.speedup(variant) - 1.0) * 100.0

    def relative_ed(self, variant: str) -> float:
        return relative_ed(self.runs["seq"], self.runs[variant])


def region_variants(info, include_swqueue: bool = False) -> List[str]:
    """The variant keys the study runs for one benchmark."""
    variants = ["seq", "seq_ooo2"]
    if info.category == registry.CATEGORY_COMP:
        variants += list(REGION_VARIANTS_COMP)
    else:
        variants += list(REGION_VARIANTS_COMM)
        if include_swqueue:
            variants.append("swqueue")
    return variants


def run_region_study(benchmarks: Optional[List[str]] = None,
                     include_swqueue: bool = False,
                     overrides: Optional[Dict[str, dict]] = None,
                     engine: Optional[ExperimentEngine] = None
                     ) -> Dict[str, RegionResults]:
    """Execute the region variants; returns {bench: RegionResults}."""
    engine = engine or default_engine()
    overrides = overrides or {}
    wanted = benchmarks or [info.name for info in
                            registry.computation_only()
                            + registry.communicating()]
    for name in wanted:
        info = registry.REGISTRY[name]
        kwargs = overrides.get(name, QUICK_ITEMS.get(name) or {})
        for variant in region_variants(info, include_swqueue):
            engine.submit(request(name, variant, **kwargs),
                          key=(name, variant))
    study: Dict[str, RegionResults] = {}
    for (name, variant), result in engine.gather().items():
        study.setdefault(name, RegionResults(name)).runs[variant] = result
    return study


def figure10_rows(study: Dict[str, RegionResults]) -> List[dict]:
    """Per-benchmark % performance improvement over the OOO1 baseline."""
    rows = []
    for bench, results in study.items():
        row = {"bench": bench}
        for variant, label in (("spl", "1Th+Comp"), ("comm", "2Th+Comm"),
                               ("compcomm", "2Th+CompComm"),
                               ("ooo2comm", "OOO2+Comm")):
            if variant in results.runs:
                row[label] = results.improvement_pct(variant)
        rows.append(row)
    return rows


def figure11_rows(study: Dict[str, RegionResults]) -> List[dict]:
    """Per-benchmark relative energy x delay (baseline = 1.0)."""
    rows = []
    for bench, results in study.items():
        row = {"bench": bench}
        for variant, label in (("spl", "1Th+Comp"), ("comm", "2Th+Comm"),
                               ("compcomm", "2Th+CompComm"),
                               ("ooo2comm", "OOO2+Comm")):
            if variant in results.runs:
                row[label] = results.relative_ed(variant)
        rows.append(row)
    return rows


def swqueue_rows(study: Dict[str, RegionResults]) -> List[dict]:
    """Section V-B: software-queue slowdown vs the OOO1 baseline."""
    rows = []
    for bench, results in study.items():
        if "swqueue" in results.runs:
            rows.append({
                "bench": bench,
                "swqueue_slowdown_pct":
                    (1.0 / results.speedup("swqueue") - 1.0) * 100.0,
            })
    return rows
