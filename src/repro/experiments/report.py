"""Plain-text rendering of experiment outputs (tables and series).

Deprecated location: the renderer now lives in :mod:`repro.obs.render`
so experiment tables and post-run machine reports share one
implementation.  This module re-exports the historical names.
"""

from __future__ import annotations

from repro.obs.render import format_series, format_table, geomean_row

__all__ = ["format_table", "format_series", "geomean_row"]
