"""Plain-text rendering of experiment outputs (tables and series)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: List[dict], columns: Sequence[str] = (),
                 floatfmt: str = "{:.2f}") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if not columns:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    else:
        columns = list(columns)
    rendered = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(floatfmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(column), *(len(r[i]) for r in rendered))
              for i, column in enumerate(columns)]
    lines = ["  ".join(column.ljust(width)
                       for column, width in zip(columns, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for cells in rendered:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def format_series(series: Dict, value_fmt: str = "{:.1f}") -> str:
    """Render a {name: [values...], "sizes": [...]} mapping as a table."""
    sizes = series["sizes"]
    rows = []
    for size_index, size in enumerate(sizes):
        row = {"size": size}
        for name, values in series.items():
            if name == "sizes":
                continue
            row[name] = values[size_index]
        rows.append(row)
    columns = ["size"] + [name for name in series if name != "sizes"]
    return format_table(rows, columns, floatfmt=value_fmt)


def geomean_row(rows: List[dict], label: str = "geomean") -> dict:
    """Geometric mean across numeric columns (for summary lines)."""
    import math
    if not rows:
        return {"bench": label}
    out = {"bench": label}
    keys = [key for key in rows[0] if isinstance(rows[0][key], float)]
    for key in keys:
        values = [row[key] for row in rows if key in row]
        positive = [1.0 + v / 100.0 if "pct" in key or "improvement" in key
                    else v for v in values]
        if any(v <= 0 for v in positive):
            continue
        mean = math.exp(sum(math.log(v) for v in positive) / len(positive))
        out[key] = (mean - 1.0) * 100.0 if "pct" in key or "improvement" \
            in key else mean
    return out
