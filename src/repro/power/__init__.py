"""Power/area models calibrated to Table I."""

from repro.power.area import (
    OOO1_AREA, OOO2_AREA, SPL_AREA, AreaBudget, area_equivalences,
    homogeneous_barrier_cluster_area, ooo2_comm_cluster_area,
    spl_cluster_area, table1,
)
from repro.power.model import EnergyBreakdown, EnergyModel, energy_delay
from repro.power.presets import DEFAULT_PARAMS, EnergyParams

__all__ = [
    "OOO1_AREA", "OOO2_AREA", "SPL_AREA", "AreaBudget", "area_equivalences",
    "homogeneous_barrier_cluster_area", "ooo2_comm_cluster_area",
    "spl_cluster_area", "table1",
    "EnergyBreakdown", "EnergyModel", "energy_delay",
    "DEFAULT_PARAMS", "EnergyParams",
]
