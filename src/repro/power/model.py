"""Activity-based energy accounting (the Wattch/HotLeakage substitute).

Dynamic energy is charged per microarchitectural event using the counters
the simulator already collects; leakage is charged per second for every
hardware block the evaluated configuration occupies, whether busy or idle.
``energy_delay`` returns the paper's ED metric (Figures 9/11/14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.config import CORE_CLOCK_HZ
from repro.common.stats import Stats
from repro.power.presets import DEFAULT_PARAMS, EnergyParams

PJ = 1e-12


@dataclass
class EnergyBreakdown:
    """Joules, split by source."""

    core_dynamic: float = 0.0
    memory_dynamic: float = 0.0
    spl_dynamic: float = 0.0
    leakage: float = 0.0

    @property
    def total(self) -> float:
        return (self.core_dynamic + self.memory_dynamic
                + self.spl_dynamic + self.leakage)

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.core_dynamic + other.core_dynamic,
            self.memory_dynamic + other.memory_dynamic,
            self.spl_dynamic + other.spl_dynamic,
            self.leakage + other.leakage)


class EnergyModel:
    """Computes energy for a machine run from its statistics tree."""

    def __init__(self, params: EnergyParams = DEFAULT_PARAMS) -> None:
        self.params = params

    # -- per-block dynamic energy ------------------------------------------------

    def core_dynamic(self, cpu_stats: Stats, wide: bool) -> float:
        """Dynamic Joules from one core's pipeline counters.

        ``wide`` selects the OOO2 scaling of per-event energy.
        """
        p = self.params
        get = cpu_stats.get
        pj = (get("fetched") * p.fetch_pj
              + get("dispatched") * p.dispatch_pj
              + get("issued") * p.issue_pj
              + get("int_ops") * p.int_op_pj
              + get("fp_ops") * p.fp_op_pj
              + get("branches_resolved") * p.branch_pj
              + get("retired") * p.retire_pj
              + get("atomics") * p.atomic_pj
              + (get("spl_loads") + get("spl_recvs") + get("spl_inits")
                 + get("spl_stores")) * p.spl_queue_pj)
        if wide:
            pj *= self.params.ooo2_peak_w / self.params.ooo1_peak_w
        return pj * PJ

    def memory_dynamic(self, mem_core_stats: Stats) -> float:
        """Dynamic Joules from one core's cache-port counters."""
        p = self.params
        get = mem_core_stats.get
        l1 = (get("l1d_hits") + get("l1d_misses")
              + get("l1i_hits") + get("l1i_misses"))
        l2 = get("l2_hits") + get("l2_misses")
        pj = l1 * p.l1_access_pj + l2 * p.l2_access_pj
        return pj * PJ

    def spl_dynamic(self, spl_stats: Stats) -> float:
        p = self.params
        get = spl_stats.get
        pj = (get("rows_evaluated") * p.spl_row_pj
              + get("reconfig_rows") * p.spl_config_row_pj
              + (get("stage_loads") + get("deliveries")
                 + get("requests")) * p.spl_queue_pj)
        return pj * PJ

    def shared_dynamic(self, mem_stats: Stats) -> float:
        """Bus + main-memory dynamic Joules (machine-wide)."""
        p = self.params
        bus = mem_stats.find("bus")
        pj = mem_stats.total("memory_reads") * p.memory_access_pj
        if bus is not None:
            pj += bus.get("transactions") * p.bus_transaction_pj
        return pj * PJ

    # -- whole-configuration accounting --------------------------------------------

    def configuration_energy(self, machine_stats: Stats, cycles: int,
                             ooo1_cores: Iterable[int] = (),
                             ooo2_cores: Iterable[int] = (),
                             spl_clusters: Iterable = (),
                             extra_leak_w: float = 0.0) -> EnergyBreakdown:
        """Energy of a hardware configuration over ``cycles``.

        ``ooo1_cores``/``ooo2_cores`` list the core indices that exist in
        the evaluated configuration (they leak even when idle);
        ``spl_clusters`` lists SPL controller ids whose fabric is present —
        either bare ids or ``(id, fraction)`` pairs, where ``fraction``
        charges only part of the fabric's leakage (e.g. 0.5 when a
        communicating pair owns half of a spatially-partitioned fabric,
        Section V-A).
        """
        seconds = cycles / CORE_CLOCK_HZ
        breakdown = EnergyBreakdown()
        mem_stats = machine_stats.find("mem")
        for index in ooo1_cores:
            breakdown = self._add_core(breakdown, machine_stats, mem_stats,
                                       index, wide=False)
            breakdown.leakage += self.params.ooo1_leak_w * seconds
        for index in ooo2_cores:
            breakdown = self._add_core(breakdown, machine_stats, mem_stats,
                                       index, wide=True)
            breakdown.leakage += self.params.ooo2_leak_w * seconds
        for entry in spl_clusters:
            cluster_id, fraction = entry if isinstance(entry, tuple) \
                else (entry, 1.0)
            spl_stats = machine_stats.find(f"spl{cluster_id}")
            if spl_stats is not None:
                breakdown.spl_dynamic += self.spl_dynamic(spl_stats)
            breakdown.leakage += self.params.spl_leak_w * fraction * seconds
        if mem_stats is not None:
            breakdown.memory_dynamic += self.shared_dynamic(mem_stats)
        breakdown.leakage += extra_leak_w * seconds
        return breakdown

    def _add_core(self, breakdown: EnergyBreakdown, machine_stats: Stats,
                  mem_stats: Optional[Stats], index: int,
                  wide: bool) -> EnergyBreakdown:
        cpu_stats = machine_stats.find(f"cpu{index}")
        if cpu_stats is not None:
            breakdown.core_dynamic += self.core_dynamic(cpu_stats, wide)
        if mem_stats is not None:
            port = mem_stats.find(f"core{index}")
            if port is not None:
                breakdown.memory_dynamic += self.memory_dynamic(port)
        return breakdown


def energy_delay(energy_joules: float, cycles: int) -> float:
    """The paper's ED metric: energy x execution time (J*s)."""
    return energy_joules * (cycles / CORE_CLOCK_HZ)
