"""Area model; regenerates Table I and the area-equivalence arguments.

The unit of area is one OOO1 core.  Section V uses two equivalences:

* a (4 x OOO1 + SPL) cluster ~ a 4 x OOO2 cluster with a zero-area
  communication network (Section V-A), and
* the SPL ~ two OOO1 cores, so a homogeneous replacement cluster has six
  OOO1 cores plus a zero-area barrier network (Section V-C2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.power.presets import (EnergyParams, DEFAULT_PARAMS,
                                 OOO2_AREA_RATIO, SPL_AREA_RATIO_VS_4CORES)

OOO1_AREA = 1.0
OOO2_AREA = OOO2_AREA_RATIO
SPL_AREA = SPL_AREA_RATIO_VS_4CORES * 4


def spl_cluster_area() -> float:
    """Area of a ReMAP cluster: four OOO1 cores plus the shared SPL."""
    return 4 * OOO1_AREA + SPL_AREA


def ooo2_comm_cluster_area() -> float:
    """Four OOO2 cores; the dedicated network is assumed free (Sec V-A)."""
    return 4 * OOO2_AREA


def homogeneous_barrier_cluster_area() -> float:
    """Six OOO1 cores; the barrier network is assumed free (Sec V-C2)."""
    return 6 * OOO1_AREA


def table1(params: EnergyParams = DEFAULT_PARAMS) -> Dict[str, Dict[str, float]]:
    """Regenerate Table I: relative area/peak-dynamic/leakage figures."""
    four_cores_area = 4 * OOO1_AREA
    four_cores_peak = 4 * params.ooo1_peak_w
    four_cores_leak = 4 * params.ooo1_leak_w
    return {
        "four_cores": {"spl_rows": 0, "total_area": 1.0,
                       "peak_dynamic": 1.0, "total_leakage": 1.0},
        "spl": {
            "spl_rows": 24,
            "total_area": SPL_AREA / four_cores_area,
            "peak_dynamic": params.spl_peak_w / four_cores_peak,
            "total_leakage": params.spl_leak_w / four_cores_leak,
        },
    }


@dataclass(frozen=True)
class AreaBudget:
    """Check that two configurations occupy comparable die area."""

    name_a: str
    area_a: float
    name_b: str
    area_b: float

    @property
    def ratio(self) -> float:
        return self.area_a / self.area_b

    def comparable(self, tolerance: float = 0.05) -> bool:
        return abs(self.ratio - 1.0) <= tolerance


def area_equivalences() -> Dict[str, AreaBudget]:
    return {
        "remap_vs_ooo2comm": AreaBudget(
            "spl_cluster", spl_cluster_area(),
            "ooo2_comm_cluster", ooo2_comm_cluster_area()),
        "remap_vs_homogeneous": AreaBudget(
            "spl_cluster", spl_cluster_area(),
            "homogeneous_barrier_cluster", homogeneous_barrier_cluster_area()),
    }
