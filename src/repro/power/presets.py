"""Energy/area constants (65 nm, 2 GHz, 1.1 V — Section IV).

The paper derives power with Wattch/CACTI/HotLeakage and reports only the
*ratios* of Table I:

===================  =====  ==============  =============
Component            Rows   Peak dyn power  Total leakage
4 x OOO1 cores       n/a    1.00            1.00
4-way shared SPL     24     0.14            0.67
===================  =====  ==============  =============

with total SPL area 0.51x the four cores.  We anchor absolute numbers to a
plausible 65 nm operating point (an OOO1 core peaking at ~2 W dynamic with
0.5 W leakage) and size every other constant so the Table I ratios hold by
construction; all results in the paper's evaluation depend on these ratios,
not on the absolute wattage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CORE_CLOCK_HZ

#: Assumed OOO1 peak dynamic power (W); anchor for Table I ratios.
OOO1_PEAK_DYNAMIC_W = 2.0
#: Assumed OOO1 leakage power (W).
OOO1_LEAKAGE_W = 0.5

#: Area of one OOO2 core relative to one OOO1 core.  Section V-C2 notes the
#: SPL "consumes as much area as two single-issue cores" and Section V-A
#: that a 4 x OOO2 cluster matches a (4 x OOO1 + SPL) cluster, giving
#: OOO2 = (4 + 2.04) / 4 = 1.51 OOO1 areas.
OOO2_AREA_RATIO = 1.51
#: 4-way shared 24-row SPL area relative to FOUR OOO1 cores (Table I).
SPL_AREA_RATIO_VS_4CORES = 0.51
#: SPL peak dynamic and leakage relative to four OOO1 cores (Table I).
SPL_PEAK_DYNAMIC_RATIO = 0.14
SPL_LEAKAGE_RATIO = 0.67

#: Dynamic energy is dominated by capacitance, which scales with area;
#: the OOO2's wider structures also switch more per event.
OOO2_DYNAMIC_SCALE = 1.4
OOO2_LEAKAGE_SCALE = OOO2_AREA_RATIO


@dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energies (picojoules) and leakage (watts)."""

    # -- OOO1 per-event dynamic energy (pJ) --
    fetch_pj: float = 60.0
    dispatch_pj: float = 60.0
    issue_pj: float = 80.0
    int_op_pj: float = 40.0
    fp_op_pj: float = 110.0
    branch_pj: float = 25.0
    retire_pj: float = 40.0
    l1_access_pj: float = 90.0
    l2_access_pj: float = 420.0
    memory_access_pj: float = 8000.0
    bus_transaction_pj: float = 600.0
    atomic_pj: float = 180.0
    # -- SPL dynamic energy (pJ) --
    #: One row evaluated for one input (sized so 24 rows at 500 MHz full
    #: throughput equal SPL_PEAK_DYNAMIC_RATIO x four OOO1 peak cores).
    spl_row_pj: float = (SPL_PEAK_DYNAMIC_RATIO * 4 * OOO1_PEAK_DYNAMIC_W
                         / 500e6 / 24) * 1e12  # ~93 pJ
    spl_queue_pj: float = 20.0
    spl_config_row_pj: float = 120.0
    # -- leakage power (W) --
    ooo1_leak_w: float = OOO1_LEAKAGE_W
    ooo2_leak_w: float = OOO1_LEAKAGE_W * OOO2_LEAKAGE_SCALE
    spl_leak_w: float = SPL_LEAKAGE_RATIO * 4 * OOO1_LEAKAGE_W
    # -- peak dynamic power (W), used to regenerate Table I --
    ooo1_peak_w: float = OOO1_PEAK_DYNAMIC_W
    ooo2_peak_w: float = OOO1_PEAK_DYNAMIC_W * OOO2_DYNAMIC_SCALE
    spl_peak_w: float = SPL_PEAK_DYNAMIC_RATIO * 4 * OOO1_PEAK_DYNAMIC_W

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / CORE_CLOCK_HZ


DEFAULT_PARAMS = EnergyParams()
