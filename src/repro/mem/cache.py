"""Set-associative tag array with LRU replacement.

Caches in this simulator track *which lines are present* for timing; data
itself always lives in :class:`repro.mem.memory.MainMemory`.  This
"functional data / timing tags" split is a standard fast-simulation trick:
it keeps MESI bookkeeping cheap while preserving hit/miss/eviction and
coherence behaviour exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.common.config import CacheConfig
from repro.common.stats import Stats


class TagArray:
    """LRU tag array for one cache level."""

    __slots__ = ("config", "offset_bits", "set_mask", "sets", "stats")

    def __init__(self, config: CacheConfig, stats: Stats) -> None:
        self.config = config
        self.offset_bits = config.line_bytes.bit_length() - 1
        self.set_mask = config.n_sets - 1
        # set index -> OrderedDict of line address -> True (LRU order)
        self.sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self.stats = stats
        stats.declare("evictions")

    def line_addr(self, addr: int) -> int:
        return addr >> self.offset_bits

    def _set_of(self, line: int) -> int:
        return line & self.set_mask

    def lookup(self, line: int) -> bool:
        """True on hit; refreshes LRU."""
        entries = self.sets.get(self._set_of(line))
        if entries is not None and line in entries:
            entries.move_to_end(line)
            return True
        return False

    def contains(self, line: int) -> bool:
        entries = self.sets.get(self._set_of(line))
        return entries is not None and line in entries

    def insert(self, line: int) -> Optional[int]:
        """Insert a line; returns the evicted line address, if any."""
        index = self._set_of(line)
        entries = self.sets.get(index)
        if entries is None:
            entries = OrderedDict()
            self.sets[index] = entries
        if line in entries:
            entries.move_to_end(line)
            return None
        victim = None
        if len(entries) >= self.config.assoc:
            victim, _ = entries.popitem(last=False)
            self.stats.bump("evictions")
        entries[line] = True
        return victim

    def remove(self, line: int) -> bool:
        entries = self.sets.get(self._set_of(line))
        if entries is not None and line in entries:
            del entries[line]
            return True
        return False

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self.sets.values())

    def snapshot_state(self) -> dict:
        """Per-set line lists in LRU order (order is semantic: restore
        must reproduce the exact same eviction victims)."""
        return {"sets": [[index, list(entries)]
                         for index, entries in sorted(self.sets.items())]}

    def restore_state(self, state: dict) -> None:
        self.sets = {index: OrderedDict((line, True) for line in lines)
                     for index, lines in state["sets"]}
