"""Functional main memory.

One sparse word-addressed store shared by every core.  Coherence and timing
live in :mod:`repro.mem.hierarchy`; this class is purely functional, so the
simulator always has a single authoritative copy of data.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.common.errors import MemoryFault
from repro.common.utils import to_signed, to_unsigned
from repro.isa.program import MemoryImage


class MainMemory:
    """Sparse 32-bit word memory with byte/halfword accessors."""

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}

    def load_image(self, image: MemoryImage) -> None:
        for word_addr, value in image.items():
            self.words[word_addr] = value

    # -- snapshot contract (DESIGN.md §8) -------------------------------------

    def snapshot_state(self) -> dict:
        return {"words": [[addr, value]
                          for addr, value in sorted(self.words.items())]}

    def restore_state(self, state: dict) -> None:
        self.words = {addr: value for addr, value in state["words"]}

    # -- word accessors -------------------------------------------------------

    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MemoryFault(f"unaligned word read at {addr:#x}")
        return self.words.get(addr >> 2, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MemoryFault(f"unaligned word write at {addr:#x}")
        self.words[addr >> 2] = value & 0xFFFFFFFF

    def read_word_signed(self, addr: int) -> int:
        return to_signed(self.read_word(addr))

    # -- sub-word accessors ----------------------------------------------------

    def read_byte(self, addr: int) -> int:
        word = self.words.get(addr >> 2, 0)
        return (word >> ((addr & 3) * 8)) & 0xFF

    def write_byte(self, addr: int, value: int) -> None:
        shift = (addr & 3) * 8
        word = self.words.get(addr >> 2, 0)
        self.words[addr >> 2] = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)

    def read_half(self, addr: int) -> int:
        if addr & 1:
            raise MemoryFault(f"unaligned halfword read at {addr:#x}")
        word = self.words.get(addr >> 2, 0)
        return (word >> ((addr & 2) * 8)) & 0xFFFF

    def write_half(self, addr: int, value: int) -> None:
        if addr & 1:
            raise MemoryFault(f"unaligned halfword write at {addr:#x}")
        shift = (addr & 2) * 8
        word = self.words.get(addr >> 2, 0)
        self.words[addr >> 2] = (word & ~(0xFFFF << shift)) | (
            (value & 0xFFFF) << shift)

    # -- floats (IEEE-754 single stored in a word) -----------------------------

    def read_float(self, addr: int) -> float:
        return struct.unpack("<f", struct.pack("<I", self.read_word(addr)))[0]

    def write_float(self, addr: int, value: float) -> None:
        self.write_word(addr, struct.unpack("<I", struct.pack("<f", value))[0])

    # -- debugging helpers ------------------------------------------------------

    def read_words(self, addr: int, count: int):
        return [to_signed(self.read_word(addr + 4 * i)) for i in range(count)]

    def write_words(self, addr: int, values) -> None:
        for i, value in enumerate(values):
            self.write_word(addr + 4 * i, to_unsigned(value))
