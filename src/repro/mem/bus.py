"""Shared snooping bus with arbitration and fixed occupancy.

Requests are serialized: a transaction issued at cycle ``c`` is granted at
``max(c, next_free)`` and holds the bus for ``occupancy`` cycles.  This
captures the first-order contention behaviour (e.g. software barriers
hammering a shared counter line) without message-level simulation.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import Stats
from repro.obs import events as ev
from repro.obs.bus import EventBus


class SnoopBus:
    """Single shared bus connecting all private L2s and main memory."""

    __slots__ = ("occupancy", "next_free", "stats", "obs")

    def __init__(self, occupancy: int, stats: Stats,
                 obs: Optional[EventBus] = None) -> None:
        self.occupancy = occupancy
        self.next_free = 0
        self.stats = stats
        stats.declare("transactions", "wait_cycles")
        self.obs = obs if obs is not None else EventBus()

    def transact(self, cycle: int) -> int:
        """Arbitrate at ``cycle``; returns the grant cycle."""
        grant = cycle if cycle >= self.next_free else self.next_free
        wait = grant - cycle
        self.next_free = grant + self.occupancy
        self.stats.bump("transactions")
        if wait:
            self.stats.bump("wait_cycles", wait)
            if self.obs.active:
                self.obs.emit(cycle, "bus", ev.BUS_WAIT, wait=wait,
                              grant=grant)
        return grant

    def snapshot_state(self) -> dict:
        return {"next_free": self.next_free}

    def restore_state(self, state: dict) -> None:
        self.next_free = state["next_free"]
