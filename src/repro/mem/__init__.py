"""Memory subsystem: main memory, caches, MESI coherence, snooping bus."""

from repro.mem.bus import SnoopBus
from repro.mem.cache import TagArray
from repro.mem.hierarchy import (
    CoherentMemorySystem, SHARED, EXCLUSIVE, MODIFIED,
    C2C_LATENCY, UPGRADE_LATENCY,
)
from repro.mem.memory import MainMemory

__all__ = [
    "SnoopBus", "TagArray", "CoherentMemorySystem", "MainMemory",
    "SHARED", "EXCLUSIVE", "MODIFIED", "C2C_LATENCY", "UPGRADE_LATENCY",
]
