"""MESI-coherent private cache hierarchy.

Each core owns a private L1I, L1D and an inclusive private L2 (Table II:
8 kB 2-way L1s, 1 MB L2 per core, MESI, 100 ns memory).  The L2s snoop a
shared bus.  One MESI state machine runs per (core, line); the L1/L2 tag
arrays model capacity and give the latency of the level the line is found
in.  Timing is computed transactionally at access time — the returned value
is the cycle at which the access completes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import CacheConfig, SystemConfig
from repro.common.stats import Stats
from repro.mem.bus import SnoopBus
from repro.mem.cache import TagArray
from repro.obs import events as ev
from repro.obs.bus import EventBus

# MESI states; absence from the state dict means Invalid.
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

#: Latency of a cache-to-cache transfer once the bus is granted.
C2C_LATENCY = 30
#: Latency of an invalidation-only (upgrade) transaction once granted.
UPGRADE_LATENCY = 8
#: Instruction addresses live in their own region so program text never
#: aliases workload data in the shared tag space.
INST_SPACE = 1 << 31


class _CorePort:
    """Per-core tag arrays and counters."""

    __slots__ = ("index", "l1i", "l1d", "l2", "states", "stats",
                 "l1_latency", "l2_latency", "_c_l1d_hits", "_c_l1d_misses",
                 "_c_l1d_upgrades", "_c_l2_hits", "_c_l2_misses",
                 "_c_l1i_hits", "_c_l1i_misses")

    STAT_KEYS = (
        "l1d_hits", "l1d_misses", "l1d_upgrades", "l2_hits", "l2_misses",
        "l1i_hits", "l1i_misses", "snoop_writebacks",
        "snoop_invalidations", "l2_writebacks")

    def __init__(self, index: int, l1i_cfg: CacheConfig, l1d_cfg: CacheConfig,
                 l2_cfg: CacheConfig, stats: Stats) -> None:
        self.index = index
        self.stats = stats
        stats.declare(*self.STAT_KEYS)
        self.l1i = TagArray(l1i_cfg, stats.child("l1i"))
        self.l1d = TagArray(l1d_cfg, stats.child("l1d"))
        self.l2 = TagArray(l2_cfg, stats.child("l2"))
        self.states: Dict[int, int] = {}
        self.l1_latency = l1d_cfg.hit_latency
        self.l2_latency = l2_cfg.hit_latency
        # Bound handles for the per-access hot path (data_access and
        # inst_fetch run for every load/store/fetch line).
        self._c_l1d_hits = stats.counter("l1d_hits")
        self._c_l1d_misses = stats.counter("l1d_misses")
        self._c_l1d_upgrades = stats.counter("l1d_upgrades")
        self._c_l2_hits = stats.counter("l2_hits")
        self._c_l2_misses = stats.counter("l2_misses")
        self._c_l1i_hits = stats.counter("l1i_hits")
        self._c_l1i_misses = stats.counter("l1i_misses")

    def snapshot_state(self) -> dict:
        return {
            "l1i": self.l1i.snapshot_state(),
            "l1d": self.l1d.snapshot_state(),
            "l2": self.l2.snapshot_state(),
            "states": [[line, state]
                       for line, state in sorted(self.states.items())],
        }

    def restore_state(self, state: dict) -> None:
        self.l1i.restore_state(state["l1i"])
        self.l1d.restore_state(state["l1d"])
        self.l2.restore_state(state["l2"])
        self.states = {line: mesi for line, mesi in state["states"]}


class CoherentMemorySystem:
    """All private hierarchies plus the shared bus and main memory timing."""

    def __init__(self, core_cache_configs, system: SystemConfig,
                 stats: Stats, obs: Optional[EventBus] = None) -> None:
        """``core_cache_configs`` is a list of (l1i, l1d, l2) per core."""
        self.system = system
        self.stats = stats
        stats.declare("upgrades", "c2c_transfers", "memory_reads")
        self.obs = obs if obs is not None else EventBus()
        self.bus = SnoopBus(system.bus_occupancy, stats.child("bus"),
                            obs=self.obs)
        self.memory_latency = system.memory_latency
        #: Callbacks (core_index, line) fired on snoop invalidations, used by
        #: cores to replay speculatively-issued loads (see cpu.pipeline).
        self.invalidation_listeners = []
        self.ports: List[_CorePort] = [
            _CorePort(i, l1i, l1d, l2, stats.child(f"core{i}"))
            for i, (l1i, l1d, l2) in enumerate(core_cache_configs)
        ]

    # -- snapshot contract (DESIGN.md §8) ----------------------------------------

    def snapshot_state(self) -> dict:
        """Tag arrays, MESI states, and bus arbitration.  Invalidation
        listeners are construction-time wiring, not state."""
        return {"bus": self.bus.snapshot_state(),
                "ports": [port.snapshot_state() for port in self.ports]}

    def restore_state(self, state: dict) -> None:
        self.bus.restore_state(state["bus"])
        for port, port_state in zip(self.ports, state["ports"]):
            port.restore_state(port_state)

    # -- public access points ---------------------------------------------------

    def data_access(self, core: int, addr: int, is_write: bool,
                    cycle: int) -> int:
        """Perform the timing side of a data access; returns completion cycle."""
        port = self.ports[core]
        line = port.l1d.line_addr(addr)
        state = port.states.get(line, 0)
        if port.l1d.lookup(line):
            if not is_write or state >= EXCLUSIVE:
                port._c_l1d_hits.add()
                if is_write and state == EXCLUSIVE:
                    port.states[line] = MODIFIED
                return cycle + port.l1_latency
            # Write hit on a Shared line: bus upgrade.
            port._c_l1d_upgrades.add()
            return self._upgrade(port, line, cycle + port.l1_latency)
        port._c_l1d_misses.add()
        ready = cycle + port.l1_latency
        if port.l2.lookup(line) and state:
            port._c_l2_hits.add()
            ready += port.l2_latency
            if is_write and state == SHARED:
                ready = self._upgrade(port, line, ready)
            elif is_write:
                port.states[line] = MODIFIED
            self._fill_l1(port, line)
            if self.obs.active:
                self.obs.emit(cycle, f"mem{port.index}", ev.MEM_MISS,
                              level="l1d", addr=addr, done=ready,
                              write=is_write)
            return ready
        port._c_l2_misses.add()
        ready += port.l2_latency
        done = self._bus_fill(port, line, is_write, ready, data_cache=True)
        if self.obs.active:
            self.obs.emit(cycle, f"mem{port.index}", ev.MEM_MISS,
                          level="l2", addr=addr, done=done, write=is_write)
        return done

    def inst_fetch(self, core: int, pc: int, cycle: int) -> int:
        """Fetch timing for the line containing instruction index ``pc``."""
        port = self.ports[core]
        line = port.l1i.line_addr(INST_SPACE + pc * 4)
        if port.l1i.lookup(line):
            port._c_l1i_hits.add()
            return cycle + port.l1_latency
        port._c_l1i_misses.add()
        ready = cycle + port.l1_latency
        if port.l2.lookup(line):
            ready += port.l2_latency
        else:
            # Instructions are read-only: no snooping needed, straight to
            # memory through the bus.
            grant = self.bus.transact(ready + port.l2_latency)
            ready = grant + self.memory_latency
            self._fill_l2(port, line, SHARED)
        victim = port.l1i.insert(line)
        if victim is not None:
            pass  # clean instruction lines are silently dropped
        if self.obs.active:
            self.obs.emit(cycle, f"mem{port.index}", ev.MEM_MISS,
                          level="l1i", addr=INST_SPACE + pc * 4, done=ready,
                          write=False)
        return ready

    # -- internals ----------------------------------------------------------------

    def _upgrade(self, port: _CorePort, line: int, ready: int) -> int:
        grant = self.bus.transact(ready)
        self._invalidate_others(port.index, line)
        port.states[line] = MODIFIED
        self.stats.bump("upgrades")
        return grant + UPGRADE_LATENCY

    def _bus_fill(self, port: _CorePort, line: int, is_write: bool,
                  ready: int, data_cache: bool) -> int:
        grant = self.bus.transact(ready)
        supplier = self._snoop(port.index, line, is_write)
        if supplier == "c2c":
            done = grant + C2C_LATENCY
            self.stats.bump("c2c_transfers")
        else:
            done = grant + self.memory_latency
            self.stats.bump("memory_reads")
        if is_write:
            port.states[line] = MODIFIED
        else:
            shared = any(line in other.states
                         for other in self.ports if other is not port)
            port.states[line] = SHARED if shared else EXCLUSIVE
        self._fill_l2(port, line, port.states[line])
        if data_cache:
            self._fill_l1(port, line)
        return done

    def _snoop(self, requester: int, line: int, is_write: bool) -> str:
        """Snoop every other hierarchy; returns "c2c" or "memory"."""
        supplier = "memory"
        for other in self.ports:
            if other.index == requester:
                continue
            state = other.states.get(line)
            if state is None:
                continue
            if state == MODIFIED:
                other.stats.bump("snoop_writebacks")
                supplier = "c2c"
            elif supplier == "memory":
                supplier = "c2c"
            if is_write:
                self._drop(other, line)
                other.stats.bump("snoop_invalidations")
            else:
                other.states[line] = SHARED
        return supplier

    def _invalidate_others(self, requester: int, line: int) -> None:
        for other in self.ports:
            if other.index == requester:
                continue
            if line in other.states:
                self._drop(other, line)
                other.stats.bump("snoop_invalidations")

    def _drop(self, port: _CorePort, line: int) -> None:
        port.states.pop(line, None)
        port.l1d.remove(line)
        port.l2.remove(line)
        for listener in self.invalidation_listeners:
            listener(port.index, line)

    def _fill_l1(self, port: _CorePort, line: int) -> None:
        victim = port.l1d.insert(line)
        if victim is not None and victim not in port.l2.sets.get(
                victim & port.l2.set_mask, ()):
            # Inclusion normally guarantees the victim is still in L2;
            # nothing to do if it is (writeback stays on-chip).
            pass

    def _fill_l2(self, port: _CorePort, line: int, state: int) -> None:
        victim = port.l2.insert(line)
        if victim is not None:
            # Inclusive hierarchy: the L1 copy must go too.
            port.l1d.remove(victim)
            port.l1i.remove(victim)
            victim_state = port.states.pop(victim, None)
            if victim_state == MODIFIED:
                port.stats.bump("l2_writebacks")

    # -- introspection -------------------------------------------------------------

    def line_state(self, core: int, addr: int) -> int:
        """MESI state (0 = Invalid) of the line holding ``addr`` in ``core``."""
        port = self.ports[core]
        return port.states.get(port.l1d.line_addr(addr), 0)

    def check_invariants(self) -> None:
        """Assert the MESI single-writer invariant over all tracked lines."""
        owners: Dict[int, List[int]] = {}
        for port in self.ports:
            for line, state in port.states.items():
                owners.setdefault(line, []).append(state)
        for line, states in owners.items():
            exclusive = sum(1 for s in states if s >= EXCLUSIVE)
            if exclusive > 1 or (exclusive == 1 and len(states) > 1):
                raise AssertionError(
                    f"MESI violation on line {line:#x}: states {states}")
