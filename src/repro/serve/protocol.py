"""Wire schemas of the job service, as versioned codec-registry records.

Two record kinds cross the service boundary:

* ``job-request`` — what a client submits: one declarative
  :class:`~repro.experiments.engine.SpecRequest` recipe plus service
  metadata (tenant, priority, timeout).  Exactly the data a library user
  hands to :func:`repro.api.submit`, so the HTTP layer is a codec, not a
  second API.
* ``job-record`` — everything the service knows about one job: identity,
  lifecycle state, timing, the latest heartbeat, and on completion the
  full :class:`~repro.experiments.runner.RunResult` record or the
  structured :meth:`~repro.experiments.engine.SpecError.to_dict`
  payloads.

Both register with :mod:`repro.common.serialize`, sharing the repo-wide
``kind`` + ``schema`` + payload envelope and version-check error path
with system configs, cached results, and machine snapshots.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.serialize import check_schema, register_codec
from repro.experiments.engine import SpecRequest

JOB_REQUEST_SCHEMA_VERSION = 1
JOB_RECORD_SCHEMA_VERSION = 1

# -- job lifecycle -------------------------------------------------------------

#: The job lifecycle state machine (see docs/SERVICE.md).  ``QUEUED``
#: and ``RUNNING`` are live; the other three are terminal.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: Legal transitions; anything else is a programming error caught loudly.
#: A cache hit goes straight QUEUED -> DONE without ever RUNNING.
VALID_TRANSITIONS = {
    QUEUED: frozenset((RUNNING, DONE, FAILED, CANCELLED)),
    RUNNING: frozenset((DONE, FAILED, CANCELLED)),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


# -- job request ---------------------------------------------------------------


@dataclass(frozen=True)
class JobRequest:
    """One submission: a spec recipe plus service metadata."""

    request: SpecRequest
    tenant: str = "default"
    priority: int = 0
    #: Wall-clock budget for the worker; None = the service default.
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")


def job_request_to_dict(job: JobRequest) -> Dict:
    return {
        "schema": JOB_REQUEST_SCHEMA_VERSION,
        "request": dataclasses.asdict(job.request),
        "tenant": job.tenant,
        "priority": job.priority,
        "timeout_s": job.timeout_s,
    }


def spec_request_from_dict(data: Dict) -> SpecRequest:
    """Rebuild a SpecRequest from its JSON dict form (lists -> tuples)."""
    try:
        data = dict(data)
        params: Tuple = tuple(
            (key, value) for key, value in data.get("params", ()))
        return SpecRequest(
            bench=data["bench"], variant=data.get("variant", ""),
            params=params, system_json=data.get("system_json"),
            name=data.get("name"), transform=data.get("transform"))
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed spec request: {exc}") from exc


def job_request_from_dict(data: Dict) -> JobRequest:
    check_schema("job-request", data, JOB_REQUEST_SCHEMA_VERSION)
    try:
        return JobRequest(
            request=spec_request_from_dict(data["request"]),
            tenant=data.get("tenant", "default"),
            priority=int(data.get("priority", 0)),
            timeout_s=data.get("timeout_s"))
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed job request: {exc}") from exc


# -- job record ----------------------------------------------------------------


@dataclass
class JobRecord:
    """JSON-safe view of one job's full service-side state."""

    job_id: str
    tenant: str
    priority: int
    state: str
    label: str
    cache_key: str
    #: True when the result was answered from the ResultCache (either at
    #: submit time — the fast path — or stored by an earlier job).
    cached: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Latest liveness sample: {"cycle", "retired", "ipc"}.
    heartbeat: Optional[Dict] = None
    #: RunResult.to_dict() record once DONE.
    result: Optional[Dict] = None
    #: SpecError.to_dict() payloads once FAILED (no string parsing).
    errors: Tuple[Dict, ...] = ()
    #: Human-oriented one-liner for CANCELLED/FAILED states.
    detail: str = ""

    def to_dict(self) -> Dict:
        record = dataclasses.asdict(self)
        record["schema"] = JOB_RECORD_SCHEMA_VERSION
        record["errors"] = list(record["errors"])
        return record

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        check_schema("job-record", data, JOB_RECORD_SCHEMA_VERSION)
        data = {key: value for key, value in data.items()
                if key != "schema"}
        try:
            data["errors"] = tuple(data.get("errors", ()))
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"malformed job record: {exc}") from exc


register_codec("job-request", JOB_REQUEST_SCHEMA_VERSION,
               job_request_to_dict, job_request_from_dict)
register_codec("job-record", JOB_RECORD_SCHEMA_VERSION,
               lambda record: record.to_dict(), JobRecord.from_dict)
