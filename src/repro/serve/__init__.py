"""Simulation-as-a-service: the async job server over ``repro.api``.

Layering (dependencies point down):

* :mod:`repro.serve.server` / :mod:`repro.serve.client` — HTTP/1.1 +
  SSE transport over a :class:`repro.api.Session` (stdlib asyncio only);
* :mod:`repro.serve.jobs` — multi-tenant bounded job table;
* :mod:`repro.serve.pool` / :mod:`repro.serve.worker` — sharded
  process workers with heartbeat pipes;
* :mod:`repro.serve.protocol` — versioned wire records.

This module stays import-light on purpose: ``repro.api`` imports the
mechanism layers, and the transport imports ``repro.api``, so pulling
the transport in here would be a cycle.  Import the submodules you
need directly.
"""

__all__ = ["client", "jobs", "pool", "protocol", "server", "worker"]
