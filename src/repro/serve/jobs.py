"""Multi-tenant job table: bounded priority queue, quotas, subscriptions.

The :class:`JobTable` is the service's in-memory source of truth.  It is
deliberately transport-free — :mod:`repro.api` drives it for library
users and :mod:`repro.serve.server` drives the same instance over HTTP —
and thread-safe, because submissions arrive on arbitrary threads while a
dispatcher thread drains the queue and per-job monitor threads deliver
worker messages.

Admission control happens at submit time, synchronously:

* **Back-pressure** — the queue holds at most ``queue_limit`` live jobs
  in total; beyond that :class:`QueueFullError` carries a
  ``retry_after_s`` hint (HTTP maps it to ``429`` + ``Retry-After``).
* **Quotas** — each tenant may hold at most ``tenant_quota`` live
  (queued + running) jobs; beyond that :class:`QuotaError`.
* **Draining** — after :meth:`JobTable.drain` no submission is accepted
  (:class:`DrainingError`, HTTP ``503``); jobs already admitted run to
  completion.

Priorities are max-first, FIFO within a priority level.  Every state
change and heartbeat fans out to per-job subscribers — the SSE feed is
just a subscriber that forwards into an asyncio queue.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.serve.protocol import (CANCELLED, DONE, FAILED, QUEUED, RUNNING,
                                  TERMINAL_STATES, VALID_TRANSITIONS,
                                  JobRecord, JobRequest)


class ServeError(ReproError):
    """Base class for job-service admission and lookup failures."""


class QueueFullError(ServeError):
    """The bounded job queue is at capacity; retry after a backoff."""

    def __init__(self, limit: int, retry_after_s: float = 1.0) -> None:
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(
            f"job queue is full ({limit} live jobs); "
            f"retry after {retry_after_s:.0f}s")


class QuotaError(ServeError):
    """One tenant holds too many live jobs already."""

    def __init__(self, tenant: str, quota: int) -> None:
        self.tenant = tenant
        self.quota = quota
        super().__init__(
            f"tenant {tenant!r} is at its quota of {quota} live jobs")


class DrainingError(ServeError):
    """The service is draining and no longer admits jobs."""

    def __init__(self) -> None:
        super().__init__("service is draining; no new jobs are admitted")


class UnknownJobError(ServeError):
    """No job with the given id exists in this table."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")


#: A subscriber receives ``(event, payload)`` pairs: ``("state",
#: record_dict)`` on every transition and ``("heartbeat", sample)``
#: between them.  Callbacks run on service threads and must not block.
Subscriber = Callable[[str, Dict], None]


class Job:
    """One submission's mutable service-side state."""

    def __init__(self, job_id: str, request: JobRequest,
                 cache_key: str) -> None:
        self.job_id = job_id
        self.request = request
        self.cache_key = cache_key
        self.state = QUEUED
        self.cached = False
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.heartbeat: Optional[Dict] = None
        self.result: Optional[Dict] = None
        self.errors: Tuple[Dict, ...] = ()
        self.detail = ""
        self._lock = threading.Lock()
        self._terminal = threading.Event()
        self._subscribers: List[Subscriber] = []

    # -- views -------------------------------------------------------------

    @property
    def label(self) -> str:
        return self.request.request.label

    @property
    def tenant(self) -> str:
        return self.request.tenant

    def record(self) -> JobRecord:
        with self._lock:
            return JobRecord(
                job_id=self.job_id, tenant=self.tenant,
                priority=self.request.priority, state=self.state,
                label=self.label, cache_key=self.cache_key,
                cached=self.cached, submitted_at=self.submitted_at,
                started_at=self.started_at, finished_at=self.finished_at,
                heartbeat=(dict(self.heartbeat)
                           if self.heartbeat else None),
                result=self.result, errors=self.errors,
                detail=self.detail)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe closure.

        A job that is already terminal immediately replays its final
        state so late subscribers never hang waiting for a transition.
        """
        with self._lock:
            self._subscribers.append(callback)
            terminal = self.state in TERMINAL_STATES
        if terminal:
            callback("state", self.record().to_dict())

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)
        return unsubscribe

    def _notify(self, event: str, payload: Dict) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event, payload)

    # -- mutations (called by the table / session only) --------------------

    def transition(self, state: str, *, detail: str = "",
                   cached: Optional[bool] = None,
                   result: Optional[Dict] = None,
                   errors: Tuple[Dict, ...] = ()) -> bool:
        """Move to ``state`` if legal; returns False on a lost race.

        Losing races are expected (e.g. a cancel landing after the
        worker finished) and must not clobber the terminal state.
        """
        with self._lock:
            if state not in VALID_TRANSITIONS[self.state]:
                return False
            self.state = state
            if detail:
                self.detail = detail
            if cached is not None:
                self.cached = cached
            if result is not None:
                self.result = result
            if errors:
                self.errors = tuple(errors)
            if state == RUNNING:
                self.started_at = time.time()
            if state in TERMINAL_STATES:
                self.finished_at = time.time()
        self._notify("state", self.record().to_dict())
        if self.is_terminal:
            self._terminal.set()
        return True

    def beat(self, sample: Dict) -> None:
        with self._lock:
            self.heartbeat = dict(sample)
        self._notify("heartbeat", dict(sample))

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._terminal.wait(timeout)


class JobTable:
    """Bounded, quota'd, priority-ordered registry of jobs."""

    def __init__(self, queue_limit: int = 64,
                 tenant_quota: int = 16,
                 retry_after_s: float = 1.0) -> None:
        if queue_limit < 1 or tenant_quota < 1:
            raise ServeError("queue_limit and tenant_quota must be >= 1")
        self.queue_limit = queue_limit
        self.tenant_quota = tenant_quota
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._live: Dict[str, int] = {}  # tenant -> queued + running
        self._draining = False

    # -- admission ---------------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Admit one job or raise an admission error (no side effects)."""
        cache_key = request.request.cache_key()
        with self._lock:
            if self._draining:
                raise DrainingError()
            live_total = sum(self._live.values())
            if live_total >= self.queue_limit:
                raise QueueFullError(self.queue_limit, self.retry_after_s)
            if self._live.get(request.tenant, 0) >= self.tenant_quota:
                raise QuotaError(request.tenant, self.tenant_quota)
            job = Job(uuid.uuid4().hex[:12], request, cache_key)
            self._jobs[job.job_id] = job
            self._live[request.tenant] = \
                self._live.get(request.tenant, 0) + 1
            heapq.heappush(self._heap,
                           (-request.priority, next(self._seq), job))
            self._available.notify()
        return job

    def admit_resolved(self, request: JobRequest, cache_key: str) -> Job:
        """Admit a job that is already terminal-bound (cache fast path).

        Bypasses the queue entirely — the job never occupies a slot and
        never reaches a worker — but still registers it so status and
        SSE lookups behave identically to dispatched jobs.  Draining
        still rejects it: a draining service answers nothing new.
        """
        with self._lock:
            if self._draining:
                raise DrainingError()
            job = Job(uuid.uuid4().hex[:12], request, cache_key)
            self._jobs[job.job_id] = job
        return job

    # -- dispatcher side ---------------------------------------------------

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job (None on timeout/drain).

        Jobs cancelled while queued are skipped here; their live-count
        was already released by :meth:`cancel`.
        """
        deadline = None if timeout is None else time.time() + timeout
        with self._available:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state == QUEUED:
                        return job
                if self._draining:
                    return None
                remaining = None if deadline is None \
                    else deadline - time.time()
                if remaining is not None and remaining <= 0:
                    return None
                self._available.wait(remaining)

    def release(self, job: Job) -> None:
        """Return ``job``'s live-slot once it reaches a terminal state."""
        with self._lock:
            count = self._live.get(job.tenant, 0)
            if count <= 1:
                self._live.pop(job.tenant, None)
            else:
                self._live[job.tenant] = count - 1

    # -- lookups -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        return sorted(jobs, key=lambda job: job.submitted_at)

    def counts(self) -> Dict[str, int]:
        """Live-state census for health endpoints and drain loops."""
        census = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        with self._lock:
            for job in self._jobs.values():
                census[job.state] += 1
        return census

    # -- cancellation and drain --------------------------------------------

    def cancel_queued(self, job: Job, detail: str = "cancelled") -> bool:
        """Cancel a job that has not started; running jobs need the pool."""
        if job.transition(CANCELLED, detail=detail):
            self.release(job)
            return True
        return False

    def drain(self) -> None:
        """Stop admitting; wake the dispatcher so it can observe it."""
        with self._available:
            self._draining = True
            self._available.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """True once no job is queued or running (drain completion)."""
        deadline = None if timeout is None else time.time() + timeout
        while True:
            census = self.counts()
            if census[QUEUED] == 0 and census[RUNNING] == 0:
                return True
            if deadline is not None and time.time() >= deadline:
                return False
            time.sleep(0.02)
